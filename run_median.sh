#!/bin/bash
cd /root/repo
for b in fig11 fig12 fig14; do
  echo "=== running $b ($(date +%T)) ==="
  SJ_SCALE=1.0 SJ_REPEAT=3 timeout 3600 cargo run --release -q -p bench --bin $b > results/$b.txt 2>&1
  echo "=== done $b rc=$? ($(date +%T)) ==="
done
echo ALL_DONE
