#!/bin/bash
# Runs every experiment binary at full paper scale, one log per experiment.
set -u
cd /root/repo
for b in table1 table2 table3 fig3 fig4 fig5 fig6 fig11 fig11m fig12 fig13 fig14 ablations ext_baselines ext_skew; do
  echo "=== running $b ($(date +%T)) ==="
  SJ_SCALE=${SJ_SCALE:-1.0} SJ_REPEAT=${SJ_REPEAT:-1} timeout 3600 cargo run --release -q -p bench --bin $b > results/$b.txt 2>&1
  echo "=== done $b rc=$? ($(date +%T)) ==="
done
echo ALL_DONE
