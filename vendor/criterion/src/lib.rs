//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no cargo registry access, so this crate
//! provides the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple wall-clock loop: a short
//! warm-up, then `sample_size` samples of an adaptively sized batch,
//! reporting the median per-iteration time. No statistics, plots or
//! baselines; output is one line per benchmark.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier, preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Benchmark label, `group/function/parameter` style.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Work-per-iteration declaration; reported as a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Measurement loop: runs the routine in timed batches.
pub struct Bencher {
    samples: usize,
    /// Median seconds per iteration of the last `iter` call.
    last_secs_per_iter: f64,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up + batch sizing: aim for ~5ms per sample.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 100_000) as usize;
        let mut samples: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                t.elapsed().as_secs_f64() / batch as f64
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        self.last_secs_per_iter = samples[samples.len() / 2];
    }
}

fn report(id: &str, secs_per_iter: f64, throughput: Option<Throughput>) {
    let human = |s: f64| -> String {
        if s >= 1.0 {
            format!("{s:.3} s")
        } else if s >= 1e-3 {
            format!("{:.3} ms", s * 1e3)
        } else if s >= 1e-6 {
            format!("{:.3} µs", s * 1e6)
        } else {
            format!("{:.1} ns", s * 1e9)
        }
    };
    match throughput {
        Some(Throughput::Elements(n)) => println!(
            "bench: {id:<50} {:>12}/iter  {:>14.0} elem/s",
            human(secs_per_iter),
            n as f64 / secs_per_iter
        ),
        Some(Throughput::Bytes(n)) => println!(
            "bench: {id:<50} {:>12}/iter  {:>14.0} B/s",
            human(secs_per_iter),
            n as f64 / secs_per_iter
        ),
        None => println!("bench: {id:<50} {:>12}/iter", human(secs_per_iter)),
    }
}

/// A named set of related benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            last_secs_per_iter: 0.0,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.last_secs_per_iter, self.throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            last_secs_per_iter: 0.0,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), b.last_secs_per_iter, self.throughput);
        self
    }

    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: 10,
            last_secs_per_iter: 0.0,
        };
        f(&mut b);
        report(&id.to_string(), b.last_secs_per_iter, None);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            samples: 3,
            last_secs_per_iter: 0.0,
        };
        b.iter(|| (0..1000u64).sum::<u64>());
        assert!(b.last_secs_per_iter > 0.0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2).throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::new("f", 1), &5u64, |b, &n| {
            b.iter(|| n * 2);
        });
        g.finish();
    }
}
