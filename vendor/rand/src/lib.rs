//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no cargo registry access, so this crate
//! reimplements exactly the surface the workspace uses: `StdRng` (a
//! deterministic xoshiro256++ seeded via SplitMix64), `Rng::gen_range` /
//! `gen_bool`, `SeedableRng::seed_from_u64`, and `SliceRandom`
//! (`shuffle` / `choose` / `choose_multiple`).
//!
//! The generator is *not* stream-compatible with the real `rand::StdRng`;
//! synthetic datasets are deterministic per seed within this workspace,
//! which is all the experiments require.

use std::ops::Range;

/// Minimal core trait: everything is derived from uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore + Sized {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        unit_f64(self.next_u64()) < p
    }
}

impl<G: RngCore + Sized> Rng for G {}

/// Seeding (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// The workspace's standard generator: xoshiro256++ with SplitMix64 seeding.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the canonical way to seed xoshiro state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ (Blackman & Vigna).
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

fn unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniformly sampleable types (stand-in for `rand`'s `SampleUniform`).
/// A single blanket `SampleRange` impl below mirrors real rand's shape so
/// that float-literal inference (`gen_range(0.0..1.0)` ⇒ `f64`) works.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[lo, hi)`; `hi_inclusive` widens to `[lo, hi]`.
    fn sample_between<G: RngCore + ?Sized>(lo: Self, hi: Self, hi_inclusive: bool, rng: &mut G)
        -> Self;
}

impl SampleUniform for f64 {
    fn sample_between<G: RngCore + ?Sized>(lo: f64, hi: f64, _incl: bool, rng: &mut G) -> f64 {
        debug_assert!(lo <= hi);
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_between<G: RngCore + ?Sized>(lo: f32, hi: f32, _incl: bool, rng: &mut G) -> f32 {
        debug_assert!(lo <= hi);
        lo + (unit_f64(rng.next_u64()) as f32) * (hi - lo)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<G: RngCore + ?Sized>(lo: $t, hi: $t, incl: bool, rng: &mut G) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + incl as u128;
                assert!(span > 0, "empty integer range");
                let r = (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range sampling (subset of `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        T::sample_between(*self.start(), *self.end(), true, rng)
    }
}

/// Slice helpers (subset of `rand::seq::SliceRandom`).
pub trait SliceRandom {
    type Item;

    fn shuffle<G: RngCore>(&mut self, rng: &mut G);
    fn choose<G: RngCore>(&self, rng: &mut G) -> Option<&Self::Item>;
    /// Up to `amount` distinct elements, in random order.
    fn choose_multiple<G: RngCore>(
        &self,
        rng: &mut G,
        amount: usize,
    ) -> std::vec::IntoIter<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<G: RngCore>(&mut self, rng: &mut G) {
        // Fisher–Yates.
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample(rng);
            self.swap(i, j);
        }
    }

    fn choose<G: RngCore>(&self, rng: &mut G) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(0..self.len()).sample(rng)])
        }
    }

    fn choose_multiple<G: RngCore>(&self, rng: &mut G, amount: usize) -> std::vec::IntoIter<&T> {
        let amount = amount.min(self.len());
        let mut idx: Vec<usize> = (0..self.len()).collect();
        // Partial Fisher–Yates: the first `amount` slots end up random.
        for i in 0..amount {
            let j = (i..idx.len()).sample(rng);
            idx.swap(i, j);
        }
        idx[..amount]
            .iter()
            .map(|&i| &self[i])
            .collect::<Vec<_>>()
            .into_iter()
    }
}

pub mod prelude {
    pub use crate::{Rng, RngCore, SampleRange, SeedableRng, SliceRandom, StdRng};
}

pub mod seq {
    pub use crate::SliceRandom;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&f));
            let i: u32 = rng.gen_range(3u32..10);
            assert!((3..10).contains(&i));
            let n: usize = rng.gen_range(0usize..1);
            assert_eq!(n, 0);
        }
    }

    #[test]
    fn unit_samples_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let x = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&x));
            lo |= x < 0.1;
            hi |= x > 0.9;
        }
        assert!(lo && hi, "samples did not spread across [0,1)");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}/10000");
        assert_eq!((0..100).filter(|_| rng.gen_bool(0.0)).count(), 0);
    }

    #[test]
    fn shuffle_permutes_and_choose_multiple_is_distinct() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        assert_ne!(v, (0..100).collect::<Vec<_>>());
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());

        let picked: Vec<u32> = v.choose_multiple(&mut rng, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let mut uniq = picked.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 10, "choose_multiple repeated an element");
        assert!(v.choose(&mut rng).is_some());
    }
}
