//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no cargo registry access, so this crate
//! reimplements the subset of proptest the workspace's property tests use:
//! the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! [`Strategy`] with `prop_map`, numeric-range and tuple strategies,
//! [`any`] for primitive types and tuples, `prop::collection::vec`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from real proptest, chosen for simplicity:
//!
//! * no shrinking — a failing case reports its case number and message;
//!   cases are deterministic per (test name, case index), so failures are
//!   reproducible by re-running the test;
//! * `prop_assume!` skips the case instead of drawing a replacement input.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::ops::Range;

use rand::prelude::*;

/// Deterministic per-case generator handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seed derived from the fully qualified test name and case index, so
    /// every case is reproducible and independent of execution order.
    pub fn for_case(test_name: &str, case: u64) -> TestRng {
        let mut h = DefaultHasher::new();
        test_name.hash(&mut h);
        TestRng(StdRng::seed_from_u64(h.finish() ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// Verdict of one generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: skip this case.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 100 }
    }
}

/// A generator of values (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, G);

/// Types with a canonical whole-domain strategy (subset of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! tuple_arbitrary {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}

tuple_arbitrary!(A);
tuple_arbitrary!(A, B);
tuple_arbitrary!(A, B, C);
tuple_arbitrary!(A, B, C, D);

/// Whole-domain strategy for an [`Arbitrary`] type.
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::*;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, 0..n)`: a vector with a uniformly drawn length.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.size.is_empty() {
                self.size.start
            } else {
                rng.rng().gen_range(self.size.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Defines property tests: each `fn` becomes a `#[test]` that runs the body
/// over `cases` deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    (@with ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases as u64 {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject) => {}
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest {} failed at case {}: {}", stringify!($name), case, msg)
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{:?} != {:?}: {}", a, b, format!($($fmt)+));
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, Just, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };

    /// Mirror of proptest's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn strategies_generate_in_domain() {
        let mut rng = TestRng::for_case("shim::strategies", 0);
        for case in 0..200u64 {
            let mut rng2 = TestRng::for_case("shim::strategies", case);
            let x = (0u8..16).generate(&mut rng2);
            assert!(x < 16);
            let (a, b) = ((0.0f64..1.0), (5usize..6)).generate(&mut rng2);
            assert!((0.0..1.0).contains(&a));
            assert_eq!(b, 5);
            let v = prop::collection::vec(0u64..10, 0..7).generate(&mut rng2);
            assert!(v.len() < 7 && v.iter().all(|&e| e < 10));
            let mapped = (0u32..4).prop_map(|n| n * 100).generate(&mut rng2);
            assert!(mapped % 100 == 0 && mapped < 400);
            let _: (u32, u32, u32, u32) = any::<(u32, u32, u32, u32)>().generate(&mut rng);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let gen = |case| {
            let mut rng = TestRng::for_case("shim::det", case);
            (any::<u64>().generate(&mut rng), (0.0f64..1.0).generate(&mut rng))
        };
        assert_eq!(gen(3), gen(3));
        assert_ne!(gen(3), gen(4));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_end_to_end(x in 0u32..100, v in prop::collection::vec(0u8..4, 0..10)) {
            prop_assume!(x != 1);
            prop_assert!(x < 100);
            prop_assert_eq!(v.len() < 10, true, "len {}", v.len());
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(pair in any::<(u32, u32)>()) {
            let (a, b) = pair;
            prop_assert_eq!((a, b), pair);
        }
    }
}
