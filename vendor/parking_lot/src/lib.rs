//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to a cargo registry, so this crate
//! provides the subset of the `parking_lot` API the workspace uses, backed
//! by `std::sync`. Semantics match `parking_lot` where it matters here:
//! `lock()` returns a guard directly (poisoning is swallowed — a panicked
//! holder does not poison the lock for later users).

use std::sync::{self, PoisonError};

/// Mutex with the `parking_lot` locking API (`lock()` returns the guard).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// RwLock with the `parking_lot` locking API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
