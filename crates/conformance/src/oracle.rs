//! The metamorphic oracle: every join algorithm, run through the public
//! API, must produce the same result set — equal to a brute-force reference
//! and invariant under semantics-preserving transformations of the input
//! and the configuration.
//!
//! Two oracle relation families are used, both *sound* (a reported
//! difference is always a real bug, never an artefact):
//!
//! * **configuration invariance** — memory budget (and therefore partition
//!   count), tile grid, internal algorithm, thread count, fault plan,
//!   CPU-slowdown factor, I/O channel count: none of these touch the
//!   geometry, so the result set (and for threads/slowdown/channels even
//!   the I/O counters) must not move;
//! * **exact geometric transforms** — scaling by a power of two is exact in
//!   `f64`, and translating by a dyadic-lattice amount after an exact
//!   halving is exact for lattice-aligned workloads (the adversarial
//!   generator only emits such workloads; for foreign inputs exactness is
//!   verified per coordinate and the transform is skipped when it would
//!   round). Exact affine maps preserve the intersection relation, so the
//!   result pairs must be identical.

use geom::{Kpe, Rect};
use quadtree::MxCifQuadtree;
use spatialjoin::{
    Algorithm, CrashPoint, DiskModel, FaultPlan, InternalAlgo, JoinErrorKind, JoinStats,
    RetryPolicy, SimDisk, SpatialJoin,
};

/// Finest quadtree level used for the in-memory MX-CIF reference join.
const QUADTREE_LEVEL: u8 = 12;

/// Every algorithm under conformance test. The three PBSM-RPM entries
/// differ only in the internal (in-memory) join, covering all
/// [`InternalAlgo`]s; quadtree is the paper's §4.1 in-memory join.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgoId {
    PbsmRpmNested,
    PbsmRpmList,
    PbsmRpmTrie,
    PbsmSort,
    S3jReplicated,
    S3jOriginal,
    Sssj,
    Shj,
    /// PBSM partitioning with the two-layer A/B/C/D class scheme (each
    /// pair found exactly once, no duplicate tests).
    TwoLayer,
    Quadtree,
}

impl AlgoId {
    pub const ALL: [AlgoId; 10] = [
        AlgoId::PbsmRpmNested,
        AlgoId::PbsmRpmList,
        AlgoId::PbsmRpmTrie,
        AlgoId::PbsmSort,
        AlgoId::S3jReplicated,
        AlgoId::S3jOriginal,
        AlgoId::Sssj,
        AlgoId::Shj,
        AlgoId::TwoLayer,
        AlgoId::Quadtree,
    ];

    pub fn name(self) -> &'static str {
        match self {
            AlgoId::PbsmRpmNested => "pbsm-rpm-nested",
            AlgoId::PbsmRpmList => "pbsm-rpm-list",
            AlgoId::PbsmRpmTrie => "pbsm-rpm-trie",
            AlgoId::PbsmSort => "pbsm-sort",
            AlgoId::S3jReplicated => "s3j",
            AlgoId::S3jOriginal => "s3j-orig",
            AlgoId::Sssj => "sssj",
            AlgoId::Shj => "shj",
            AlgoId::TwoLayer => "twolayer",
            AlgoId::Quadtree => "quadtree",
        }
    }

    pub fn parse(s: &str) -> Option<AlgoId> {
        AlgoId::ALL.into_iter().find(|a| a.name() == s)
    }
}

impl std::fmt::Display for AlgoId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A semantics-preserving transformation of the workload or configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Transform {
    /// No transform: the base run must equal brute force (and satisfy the
    /// accounting identities). Anchors the whole metamorphic chain to
    /// ground truth.
    Identity,
    /// Exact halving about the origin followed by a dyadic translation
    /// (`x ↦ x/2 + dx`). The halving guarantees both slack inside the unit
    /// square and bit-exactness of the subsequent addition.
    Translate { dx: f64, dy: f64 },
    /// Pure scaling about the origin by a power of two `p ≤ 1` (exact).
    Scale { p: f64 },
    /// Join `(s, r)` instead of `(r, s)`: the mirrored pair set must match.
    SwapInputs,
    /// Different memory budget — and therefore partition count / bucket
    /// count / sort-run length. Results must be invariant.
    Mem { bytes: usize },
    /// Different PBSM tiles-per-partition (`NT = P ·` this).
    Tiles { per_partition: u32 },
    /// Parallel partition execution: results, counters and I/O totals must
    /// be identical to the sequential path.
    Threads { n: usize },
    /// Seeded recoverable fault plan: retries must cure every fault without
    /// changing the result set.
    Faults { seed: u64 },
    /// Different CPU-slowdown factor in the disk model: results *and* I/O
    /// totals must be invariant (time scaling must not leak into logic).
    CpuSlowdown { factor: f64 },
    /// Different number of simulated I/O channels in the disk model: file
    /// layout and request streams are identical for any channel count, so
    /// results *and* I/O totals must be invariant (only the simulated clock
    /// may move, and only downward).
    Channels { d: usize },
    /// Injected crash at `point` followed by a resume on the same disk
    /// state: the interrupted leg's emissions plus the resumed leg's must
    /// equal the uninterrupted result set with zero overlap (exactly-once),
    /// and the resumed run's folded counters must match the uninterrupted
    /// run's.
    Crash { point: CrashPoint },
    /// Cost-based plan selection: profile the workload, let the planner pick
    /// whatever `(algorithm, tiles, internal, buffers)` it ranks best under
    /// the cell's memory budget, and run the winner. Plan choice only moves
    /// the execution strategy, never the geometry, so the result set must be
    /// bit-identical to the reference cell's.
    PlanAuto,
    /// Persistent media damage (and optionally a disk budget in pages): the
    /// run must end in exactly one of two states — the bit-identical clean
    /// result set (quarantine-recompute or fallback recovered it) or a
    /// typed persistent-kind error. A wrong answer, a transient-kind error
    /// or a panic is a conformance failure: damaged sectors fail reads,
    /// they never silently return rotten bytes.
    Chaos { seed: u64, budget: Option<u64> },
}

impl Transform {
    /// Whether this transform is meaningful for `algo`. Geometric
    /// transforms apply everywhere; configuration transforms only where the
    /// configuration surface exists (e.g. no fault plan for the infallible
    /// single-sweep baselines, no tile grid outside PBSM).
    pub fn applies_to(self, algo: AlgoId) -> bool {
        use AlgoId::*;
        match self {
            Transform::Identity
            | Transform::Translate { .. }
            | Transform::Scale { .. }
            | Transform::SwapInputs => true,
            Transform::Mem { .. } | Transform::CpuSlowdown { .. } | Transform::Channels { .. } => {
                algo != Quadtree
            }
            Transform::Tiles { .. } => {
                matches!(algo, PbsmRpmNested | PbsmRpmList | PbsmRpmTrie | PbsmSort | TwoLayer)
            }
            Transform::Threads { .. } | Transform::Faults { .. } => matches!(
                algo,
                PbsmRpmNested
                    | PbsmRpmList
                    | PbsmRpmTrie
                    | PbsmSort
                    | S3jReplicated
                    | S3jOriginal
                    | TwoLayer
            ),
            // Only the checkpointable joins: RPM (and the two-layer class
            // scheme) attribute each pair to one partition (the resume
            // unit); sort-phase dedup and the S³J ablation scan refuse
            // checkpointing with a typed error.
            Transform::Crash { .. } => matches!(
                algo,
                PbsmRpmNested | PbsmRpmList | PbsmRpmTrie | S3jReplicated | S3jOriginal | TwoLayer
            ),
            // The planner's pick is independent of which reference cell it is
            // compared against; one representative avoids re-running the same
            // planned join nine times per workload.
            Transform::PlanAuto => algo == PbsmRpmList,
            // Same family set as `Faults`: the PBSM and S³J joins own the
            // retry/quarantine machinery the chaos relation gates; the
            // baselines refuse fault injection with a typed setup error and
            // the in-memory quadtree has no disk to degrade.
            Transform::Chaos { .. } => matches!(
                algo,
                PbsmRpmNested
                    | PbsmRpmList
                    | PbsmRpmTrie
                    | PbsmSort
                    | S3jReplicated
                    | S3jOriginal
                    | TwoLayer
            ),
        }
    }
}

impl std::fmt::Display for Transform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Transform::Identity => write!(f, "identity"),
            Transform::Translate { dx, dy } => write!(f, "translate {dx} {dy}"),
            Transform::Scale { p } => write!(f, "scale {p}"),
            Transform::SwapInputs => write!(f, "swap"),
            Transform::Mem { bytes } => write!(f, "mem {bytes}"),
            Transform::Tiles { per_partition } => write!(f, "tiles {per_partition}"),
            Transform::Threads { n } => write!(f, "threads {n}"),
            Transform::Faults { seed } => write!(f, "faults {seed}"),
            Transform::CpuSlowdown { factor } => write!(f, "cpu-slowdown {factor}"),
            Transform::Channels { d } => write!(f, "channels {d}"),
            Transform::Crash { point } => write!(f, "crash {point}"),
            Transform::PlanAuto => write!(f, "plan-auto"),
            Transform::Chaos { seed, budget } => match budget {
                None => write!(f, "chaos {seed}"),
                Some(pages) => write!(f, "chaos {seed} budget {pages}"),
            },
        }
    }
}

impl Transform {
    pub fn parse(s: &str) -> Option<Transform> {
        let mut it = s.split_whitespace();
        let head = it.next()?;
        let mut num = || it.next().and_then(|v| v.parse::<f64>().ok());
        let t = match head {
            "identity" => Transform::Identity,
            "translate" => Transform::Translate { dx: num()?, dy: num()? },
            "scale" => Transform::Scale { p: num()? },
            "swap" => Transform::SwapInputs,
            "mem" => Transform::Mem { bytes: num()? as usize },
            "tiles" => Transform::Tiles { per_partition: num()? as u32 },
            "threads" => Transform::Threads { n: num()? as usize },
            "faults" => Transform::Faults { seed: num()? as u64 },
            "cpu-slowdown" => Transform::CpuSlowdown { factor: num()? },
            "channels" => Transform::Channels { d: num()? as usize },
            "crash" => Transform::Crash {
                point: CrashPoint::from_spec(it.next()?)?,
            },
            "plan-auto" => Transform::PlanAuto,
            "chaos" => {
                let seed = it.next()?.parse::<u64>().ok()?;
                let budget = match it.next() {
                    None => None,
                    Some("budget") => Some(it.next()?.parse::<u64>().ok()?),
                    Some(_) => return None,
                };
                Transform::Chaos { seed, budget }
            }
            _ => return None,
        };
        Some(t)
    }
}

/// Base configuration of an oracle run.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Memory budget in bytes. The default is deliberately tiny so even
    /// small adversarial workloads span several partitions.
    pub mem: usize,
    pub threads: usize,
    pub tiles_per_partition: Option<u32>,
    pub fault_seed: Option<u64>,
    pub cpu_slowdown: Option<f64>,
    /// Simulated I/O channels of the disk model (`None` = the default 1).
    pub channels: Option<usize>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            mem: 4 * 1024,
            threads: 1,
            tiles_per_partition: None,
            fault_seed: None,
            cpu_slowdown: None,
            channels: None,
        }
    }
}

/// Outcome of one algorithm run: sorted pairs plus (for the external
/// algorithms) the uniform statistics.
pub struct RunOut {
    pub pairs: Vec<(u64, u64)>,
    pub stats: Option<JoinStats>,
}

/// Brute-force reference join (the ground truth every chain anchors to).
pub fn brute_force(r: &[Kpe], s: &[Kpe]) -> Vec<(u64, u64)> {
    let mut v = Vec::new();
    for a in r {
        for b in s {
            if a.rect.intersects(&b.rect) {
                v.push((a.id.0, b.id.0));
            }
        }
    }
    v.sort_unstable();
    v
}

/// The configured [`Algorithm`] for an oracle cell (`None` for the
/// in-memory quadtree, which has no external configuration surface).
fn configured_algorithm(algo: AlgoId, cfg: &RunConfig) -> Option<Algorithm> {
    let base = match algo {
        AlgoId::PbsmRpmNested => {
            Algorithm::pbsm_rpm(cfg.mem).with_internal(InternalAlgo::NestedLoops)
        }
        AlgoId::PbsmRpmList => {
            Algorithm::pbsm_rpm(cfg.mem).with_internal(InternalAlgo::PlaneSweepList)
        }
        AlgoId::PbsmRpmTrie => {
            Algorithm::pbsm_rpm(cfg.mem).with_internal(InternalAlgo::PlaneSweepTrie)
        }
        AlgoId::PbsmSort => Algorithm::pbsm_original(cfg.mem),
        AlgoId::S3jReplicated => Algorithm::s3j_replicated(cfg.mem),
        AlgoId::S3jOriginal => Algorithm::s3j_original(cfg.mem),
        AlgoId::Sssj => Algorithm::sssj(cfg.mem),
        AlgoId::Shj => Algorithm::shj(cfg.mem),
        AlgoId::TwoLayer => Algorithm::two_layer(cfg.mem),
        AlgoId::Quadtree => return None,
    };
    let mut base = base.with_threads(cfg.threads);
    if let Some(tiles) = cfg.tiles_per_partition {
        base = base.with_tiles_per_partition(tiles);
    }
    Some(base)
}

/// Runs one algorithm through the public API under `cfg`.
pub fn run_algo(algo: AlgoId, cfg: &RunConfig, r: &[Kpe], s: &[Kpe]) -> Result<RunOut, String> {
    let Some(base) = configured_algorithm(algo, cfg) else {
        let tr = MxCifQuadtree::bulk(r, QUADTREE_LEVEL);
        let ts = MxCifQuadtree::bulk(s, QUADTREE_LEVEL);
        let mut pairs = Vec::new();
        tr.join(&ts, &mut |a, b| pairs.push((a.id.0, b.id.0)));
        pairs.sort_unstable();
        return Ok(RunOut { pairs, stats: None });
    };
    run_configured(algo.name(), base, cfg, r, s)
}

/// Runs an already-configured [`Algorithm`] under the cell's fault plan and
/// disk model, gating the same metrics-reconciliation contract as every
/// other oracle cell.
fn run_configured(
    label: &str,
    base: Algorithm,
    cfg: &RunConfig,
    r: &[Kpe],
    s: &[Kpe],
) -> Result<RunOut, String> {
    let mut join = SpatialJoin::new(base);
    if let Some(seed) = cfg.fault_seed {
        join = join.with_faults(FaultPlan::recoverable(seed));
    }
    if cfg.cpu_slowdown.is_some() || cfg.channels.is_some() {
        let base_model = DiskModel::default();
        join = join.with_disk_model(DiskModel {
            cpu_slowdown: cfg.cpu_slowdown.unwrap_or(base_model.cpu_slowdown),
            channels: cfg.channels.unwrap_or(base_model.channels),
            ..base_model
        });
    }
    let run = join
        .try_run(r, s)
        .map_err(|e| format!("{label}: join failed: {e}"))?;
    // Every oracle cell also gates the observability contract: the
    // per-phase metrics must reconcile exactly with the run totals, under
    // whatever faults/threads this cell configured.
    run.stats
        .metrics_report(label, cfg.threads)
        .reconcile()
        .map_err(|e| format!("{label}: metrics fail to reconcile: {e}"))?;
    let mut pairs: Vec<(u64, u64)> = run.pairs.iter().map(|(a, b)| (a.0, b.0)).collect();
    pairs.sort_unstable();
    Ok(RunOut {
        pairs,
        stats: Some(run.stats),
    })
}

/// Applies `x ↦ x/2 + dx` to every coordinate. Returns `None` if any
/// coordinate would leave the unit square or round (the caller skips the
/// transform — soundness over coverage).
fn translated(data: &[Kpe], dx: f64, dy: f64) -> Option<Vec<Kpe>> {
    let map = |v: f64, d: f64| -> Option<f64> {
        let half = v * 0.5; // exact: power-of-two scaling
        let shifted = half + d;
        // Exactness witness: the addition must be reversible bit-for-bit.
        if !(0.0..=1.0).contains(&shifted) || shifted - d != half {
            return None;
        }
        Some(shifted)
    };
    data.iter()
        .map(|k| {
            Some(Kpe::new(
                k.id,
                Rect::new(
                    map(k.rect.xl, dx)?,
                    map(k.rect.yl, dy)?,
                    map(k.rect.xh, dx)?,
                    map(k.rect.yh, dy)?,
                ),
            ))
        })
        .collect()
}

/// Applies exact power-of-two scaling about the origin.
fn scaled(data: &[Kpe], p: f64) -> Vec<Kpe> {
    data.iter()
        .map(|k| {
            Kpe::new(
                k.id,
                Rect::new(k.rect.xl * p, k.rect.yl * p, k.rect.xh * p, k.rect.yh * p),
            )
        })
        .collect()
}

/// Uniform accounting checks on a completed run: the reported result count
/// matches the emitted pairs, the pair stream is duplicate-free, and the
/// duplicate-accounting identity `candidates = results + suppressed` holds
/// for the replicating algorithms (the baselines must report zero
/// suppressed duplicates).
fn accounting(algo: AlgoId, out: &RunOut) -> Option<String> {
    if out.pairs.windows(2).any(|w| w[0] == w[1]) {
        return Some(format!("{algo}: emitted a duplicate result pair"));
    }
    let stats = out.stats.as_ref()?;
    if stats.results() as usize != out.pairs.len() {
        return Some(format!(
            "{algo}: stats.results {} != emitted pairs {}",
            stats.results(),
            out.pairs.len()
        ));
    }
    match stats {
        JoinStats::Pbsm(st) => {
            if st.candidates != st.results + st.duplicates {
                return Some(format!(
                    "{algo}: candidates {} != results {} + suppressed {}",
                    st.candidates, st.results, st.duplicates
                ));
            }
        }
        JoinStats::S3j(st) => {
            if st.candidates != st.results + st.duplicates {
                return Some(format!(
                    "{algo}: candidates {} != results {} + suppressed {}",
                    st.candidates, st.results, st.duplicates
                ));
            }
        }
        JoinStats::Sssj(_) | JoinStats::Shj(_) | JoinStats::Quadtree(_) => {
            if stats.duplicates() != 0 {
                return Some(format!("{algo}: baseline reported suppressed duplicates"));
            }
        }
    }
    None
}

/// The crash-recovery oracle relation, checked in three legs on one cell:
///
/// 1. a **durable** run on a fresh disk with `point` armed runs until the
///    injected crash fires (the pairs it emitted before dying are kept);
/// 2. a **resume** on the same disk state recovers the manifest, truncates
///    any torn journal tail, and completes the run;
/// 3. both legs together must reproduce the uninterrupted result set
///    (`base`) with **zero overlap** — each pair emitted exactly once — and
///    the resumed run's folded counters must equal the uninterrupted run's.
///
/// If the crash point lies beyond the run's end (e.g. `after-commit:3` on a
/// two-partition join) the first leg completes normally; the cell then
/// degenerates to "durable run equals plain run", which must still hold.
fn check_crash_legs(
    algo: AlgoId,
    point: CrashPoint,
    cfg: &RunConfig,
    base: &RunOut,
    r: &[Kpe],
    s: &[Kpe],
) -> Option<String> {
    let join = SpatialJoin::new(configured_algorithm(algo, cfg)?);
    let run_id = 0xC0FFEE;
    let base_model = DiskModel::default();
    let model = DiskModel {
        cpu_slowdown: cfg.cpu_slowdown.unwrap_or(base_model.cpu_slowdown),
        channels: cfg.channels.unwrap_or(base_model.channels),
        ..base_model
    };
    let disk = SimDisk::new(model).with_faults(
        FaultPlan::crash_only(0, point),
        RetryPolicy::default(),
    );
    let mut first: Vec<(u64, u64)> = Vec::new();
    let crash_leg =
        join.try_run_durable_with(&disk, r, s, run_id, &mut |a, b| first.push((a.0, b.0)));
    first.sort_unstable();
    match crash_leg {
        Err(e) if matches!(e.kind, JoinErrorKind::Crashed(_)) => {}
        Err(e) => {
            return Some(format!(
                "{algo} [crash {point}]: crash leg died with a non-crash error: {e}"
            ))
        }
        Ok(_) => {
            // Crash point beyond the end of the run: no interruption.
            if first != base.pairs {
                return Some(format!(
                    "{algo} [crash {point}]: durable run diverges from plain run: {}",
                    first_diff(&first, &base.pairs)
                ));
            }
            return None;
        }
    }
    // Resume on the same disk state; recovery disables the injector.
    let mut second: Vec<(u64, u64)> = Vec::new();
    let stats = match join.try_run_durable_with(&disk, r, s, run_id, &mut |a, b| {
        second.push((a.0, b.0))
    }) {
        Ok(stats) => stats,
        Err(e) => return Some(format!("{algo} [crash {point}]: resume failed: {e}")),
    };
    second.sort_unstable();
    if let Some(dup) = first.iter().find(|p| second.binary_search(p).is_ok()) {
        return Some(format!(
            "{algo} [crash {point}]: pair {dup:?} re-emitted on resume (exactly-once violated)"
        ));
    }
    let mut union: Vec<(u64, u64)> = first.iter().chain(second.iter()).copied().collect();
    union.sort_unstable();
    if union != base.pairs {
        return Some(format!(
            "{algo} [crash {point}]: crash+resume legs diverge from uninterrupted run: {}",
            first_diff(&union, &base.pairs)
        ));
    }
    if let Some(b) = &base.stats {
        if (stats.results(), stats.duplicates()) != (b.results(), b.duplicates()) {
            return Some(format!(
                "{algo} [crash {point}]: resumed totals ({}, {}) != uninterrupted ({}, {})",
                stats.results(),
                stats.duplicates(),
                b.results(),
                b.duplicates()
            ));
        }
    }
    // Under a multi-channel model the resumed run's per-channel buckets
    // (restored files fold back into their channels via the snapshot's
    // channel tags) must still decompose its I/O total exactly.
    let folded = stats
        .io_channels()
        .iter()
        .fold(stats.io_shared(), |acc, c| acc.plus(c));
    if folded != stats.io_total() {
        return Some(format!(
            "{algo} [crash {point}]: resumed per-channel buckets do not sum to io_total"
        ));
    }
    None
}

/// The chaos oracle relation: one cell run under a persistent-damage fault
/// plan (and optionally a page budget that forces ENOSPC mid-run). Exactly
/// two outcomes are conformant:
///
/// 1. the run completes — then its result set must be **bit-identical** to
///    the clean cell's (quarantine-recompute or the disk-full fallback
///    ladder recovered it), with metrics still reconciling and the
///    duplicate-accounting identity intact; or
/// 2. the run dies with a **typed persistent-kind** I/O error.
///
/// A diverging result set, a transient-kind error, or any non-I/O failure
/// is a conformance violation: damaged sectors fail reads, they never
/// silently return rotten bytes.
fn check_chaos(
    algo: AlgoId,
    seed: u64,
    budget: Option<u64>,
    cfg: &RunConfig,
    base: &RunOut,
    r: &[Kpe],
    s: &[Kpe],
) -> Option<String> {
    let base_algo = configured_algorithm(algo, cfg)?;
    let mut plan = FaultPlan::persistent(seed).with_persistent_rate(0.03);
    if let Some(pages) = budget {
        plan = plan.with_disk_budget(pages);
    }
    let mut join = SpatialJoin::new(base_algo).with_faults(plan);
    if cfg.cpu_slowdown.is_some() || cfg.channels.is_some() {
        let base_model = DiskModel::default();
        join = join.with_disk_model(DiskModel {
            cpu_slowdown: cfg.cpu_slowdown.unwrap_or(base_model.cpu_slowdown),
            channels: cfg.channels.unwrap_or(base_model.channels),
            ..base_model
        });
    }
    let label = format!("{algo} [chaos {seed}]");
    match join.try_run(r, s) {
        Ok(run) => {
            if let Err(e) = run.stats.metrics_report(&label, cfg.threads).reconcile() {
                return Some(format!("{label}: metrics fail to reconcile: {e}"));
            }
            let mut pairs: Vec<(u64, u64)> =
                run.pairs.iter().map(|(a, b)| (a.0, b.0)).collect();
            pairs.sort_unstable();
            let out = RunOut {
                pairs,
                stats: Some(run.stats),
            };
            if let Some(msg) = accounting(algo, &out) {
                return Some(format!("{msg} [under chaos {seed}]"));
            }
            if out.pairs != base.pairs {
                return Some(format!(
                    "{label}: silent divergence under persistent damage: {}",
                    first_diff(&out.pairs, &base.pairs)
                ));
            }
            None
        }
        Err(e) => match e.io() {
            Some(io) if io.kind.is_persistent() => None,
            _ => Some(format!(
                "{label}: non-persistent failure under persistent damage: {e}"
            )),
        },
    }
}

fn first_diff(a: &[(u64, u64)], b: &[(u64, u64)]) -> String {
    let only_a = a.iter().find(|p| b.binary_search(p).is_err());
    let only_b = b.iter().find(|p| a.binary_search(p).is_err());
    format!(
        "{} vs {} pairs; first only-left {:?}, first only-right {:?}",
        a.len(),
        b.len(),
        only_a,
        only_b
    )
}

/// Checks one `(algorithm, transform)` cell on one workload. Returns a
/// failure message, or `None` if the oracle relation holds (or the
/// transform does not apply / would be inexact on this workload).
pub fn check_one(
    algo: AlgoId,
    transform: Transform,
    cfg: &RunConfig,
    r: &[Kpe],
    s: &[Kpe],
) -> Option<String> {
    if !transform.applies_to(algo) {
        return None;
    }
    let base = match run_algo(algo, cfg, r, s) {
        Ok(out) => out,
        Err(e) => return Some(e),
    };
    if let Some(msg) = accounting(algo, &base) {
        return Some(msg);
    }
    let (variant, expect): (RunOut, Vec<(u64, u64)>) = match transform {
        Transform::Identity => {
            let want = brute_force(r, s);
            if base.pairs != want {
                return Some(format!(
                    "{algo} [identity]: diverges from brute force: {}",
                    first_diff(&base.pairs, &want)
                ));
            }
            return None;
        }
        Transform::Translate { dx, dy } => {
            let (tr, ts) = (translated(r, dx, dy)?, translated(s, dx, dy)?);
            match run_algo(algo, cfg, &tr, &ts) {
                Ok(out) => (out, base.pairs.clone()),
                Err(e) => return Some(e),
            }
        }
        Transform::Scale { p } => {
            let (sr, ss) = (scaled(r, p), scaled(s, p));
            match run_algo(algo, cfg, &sr, &ss) {
                Ok(out) => (out, base.pairs.clone()),
                Err(e) => return Some(e),
            }
        }
        Transform::SwapInputs => {
            let mut mirrored: Vec<(u64, u64)> =
                base.pairs.iter().map(|&(a, b)| (b, a)).collect();
            mirrored.sort_unstable();
            match run_algo(algo, cfg, s, r) {
                Ok(out) => (out, mirrored),
                Err(e) => return Some(e),
            }
        }
        Transform::Mem { bytes } => {
            let cfg2 = RunConfig { mem: bytes, ..*cfg };
            match run_algo(algo, &cfg2, r, s) {
                Ok(out) => (out, base.pairs.clone()),
                Err(e) => return Some(e),
            }
        }
        Transform::Tiles { per_partition } => {
            let cfg2 = RunConfig {
                tiles_per_partition: Some(per_partition),
                ..*cfg
            };
            match run_algo(algo, &cfg2, r, s) {
                Ok(out) => (out, base.pairs.clone()),
                Err(e) => return Some(e),
            }
        }
        Transform::Threads { n } => {
            let cfg2 = RunConfig { threads: n, ..*cfg };
            match run_algo(algo, &cfg2, r, s) {
                Ok(out) => (out, base.pairs.clone()),
                Err(e) => return Some(e),
            }
        }
        Transform::Faults { seed } => {
            let cfg2 = RunConfig {
                fault_seed: Some(seed),
                ..*cfg
            };
            match run_algo(algo, &cfg2, r, s) {
                Ok(out) => (out, base.pairs.clone()),
                Err(e) => return Some(e),
            }
        }
        Transform::CpuSlowdown { factor } => {
            let cfg2 = RunConfig {
                cpu_slowdown: Some(factor),
                ..*cfg
            };
            match run_algo(algo, &cfg2, r, s) {
                Ok(out) => (out, base.pairs.clone()),
                Err(e) => return Some(e),
            }
        }
        Transform::Channels { d } => {
            let cfg2 = RunConfig {
                channels: Some(d),
                ..*cfg
            };
            match run_algo(algo, &cfg2, r, s) {
                Ok(out) => (out, base.pairs.clone()),
                Err(e) => return Some(e),
            }
        }
        Transform::Crash { point } => {
            return check_crash_legs(algo, point, cfg, &base, r, s);
        }
        Transform::Chaos { seed, budget } => {
            return check_chaos(algo, seed, budget, cfg, &base, r, s);
        }
        Transform::PlanAuto => {
            use spatialjoin::estimate::{DatasetProfile, Planner};
            // Identity coefficients: the oracle gates correctness of the
            // *selected execution*, not accuracy of the calibration.
            let plan = Planner::new(cfg.mem)
                .plan(&DatasetProfile::build(r), &DatasetProfile::build(s));
            let choice = plan.chosen().choice;
            let planned = Algorithm::from_choice(&choice).with_threads(cfg.threads);
            let label = format!("planned:{}", choice.describe());
            match run_configured(&label, planned, cfg, r, s) {
                Ok(out) => (out, base.pairs.clone()),
                Err(e) => return Some(e),
            }
        }
    };
    if let Some(msg) = accounting(algo, &variant) {
        return Some(format!("{msg} [under {transform}]"));
    }
    if variant.pairs != expect {
        return Some(format!(
            "{algo} [{transform}]: result set not invariant: {}",
            first_diff(&variant.pairs, &expect)
        ));
    }
    // Transforms that must not even move the I/O counters: thread count
    // (deterministic parallel reassembly), CPU-slowdown (a pure time
    // scaling — if it leaks into logic, the cost model is broken), and
    // channel count (a pure re-binning of the same requests — file layout
    // must be identical for any D).
    if matches!(
        transform,
        Transform::Threads { .. } | Transform::CpuSlowdown { .. } | Transform::Channels { .. }
    ) {
        if let (Some(a), Some(b)) = (&base.stats, &variant.stats) {
            if a.io_total() != b.io_total() {
                return Some(format!(
                    "{algo} [{transform}]: I/O totals not invariant: {:?} vs {:?}",
                    a.io_total(),
                    b.io_total()
                ));
            }
            if (a.results(), a.duplicates()) != (b.results(), b.duplicates()) {
                return Some(format!(
                    "{algo} [{transform}]: counters not invariant: ({}, {}) vs ({}, {})",
                    a.results(),
                    a.duplicates(),
                    b.results(),
                    b.duplicates()
                ));
            }
        }
    }
    None
}

/// One failed oracle cell.
#[derive(Debug, Clone)]
pub struct Failure {
    pub algo: AlgoId,
    pub transform: Transform,
    pub message: String,
}

/// Runs the full oracle matrix on one workload.
pub fn check_workload(
    r: &[Kpe],
    s: &[Kpe],
    cfg: &RunConfig,
    algos: &[AlgoId],
    transforms: &[Transform],
) -> Vec<Failure> {
    let mut failures = Vec::new();
    for &algo in algos {
        for &transform in transforms {
            if let Some(message) = check_one(algo, transform, cfg, r, s) {
                failures.push(Failure {
                    algo,
                    transform,
                    message,
                });
            }
        }
    }
    failures
}

/// The transform set exercised for one soak seed: all nine relation kinds,
/// with seed-derived dyadic offsets and knob values.
pub fn transforms_for(seed: u64, mem: usize) -> Vec<Transform> {
    let lattice = (1u64 << 20) as f64;
    let dx = ((seed.wrapping_mul(7).wrapping_add(3)) % (1 << 18)) as f64 / lattice;
    let dy = ((seed.wrapping_mul(13).wrapping_add(5)) % (1 << 18)) as f64 / lattice;
    vec![
        Transform::Identity,
        Transform::Translate { dx, dy },
        Transform::Scale { p: 0.5 },
        Transform::SwapInputs,
        Transform::Mem {
            bytes: (mem / 2).max(1024),
        },
        Transform::Mem { bytes: mem * 4 },
        Transform::Tiles {
            per_partition: if seed.is_multiple_of(2) { 1 } else { 9 },
        },
        Transform::Threads {
            n: 2 + (seed % 3) as usize,
        },
        Transform::Faults {
            seed: seed ^ 0xFA17,
        },
        Transform::CpuSlowdown { factor: 1.0 },
        Transform::Channels {
            d: 2 + 2 * (seed % 2) as usize,
        },
        Transform::PlanAuto,
    ]
}

/// The crash-recovery transform set for one soak seed: one instance of each
/// [`CrashPoint`] taxon, with seed-derived commit indices so the soak walks
/// different commit boundaries on different seeds.
pub fn crash_points_for(seed: u64) -> Vec<Transform> {
    vec![
        Transform::Crash {
            point: CrashPoint::AfterCommit(1 + (seed % 3) as u32),
        },
        Transform::Crash {
            point: CrashPoint::MidPartition((seed % 2) as u32),
        },
        Transform::Crash {
            point: CrashPoint::MidRename,
        },
    ]
}

/// The persistent-damage transform set for one soak seed: one pure
/// corruption leg (every damaged sector fails on every re-read) and one leg
/// that additionally caps the disk at a seed-derived page budget so the
/// ENOSPC fallback ladder is exercised alongside quarantine-recompute.
pub fn chaos_transforms_for(seed: u64) -> Vec<Transform> {
    vec![
        Transform::Chaos {
            seed: seed ^ 0x0BAD_5EC7,
            budget: None,
        },
        Transform::Chaos {
            seed: seed.wrapping_mul(31).wrapping_add(7),
            budget: Some(24 + (seed % 5) * 8),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algo_names_round_trip() {
        for algo in AlgoId::ALL {
            assert_eq!(AlgoId::parse(algo.name()), Some(algo));
        }
        assert_eq!(AlgoId::parse("nope"), None);
    }

    #[test]
    fn transform_strings_round_trip() {
        for t in transforms_for(5, 4096) {
            let s = t.to_string();
            assert_eq!(Transform::parse(&s), Some(t), "{s}");
        }
    }

    #[test]
    fn crash_transform_strings_round_trip() {
        for seed in 0..6 {
            for t in crash_points_for(seed) {
                let s = t.to_string();
                assert_eq!(Transform::parse(&s), Some(t), "{s}");
            }
        }
        assert_eq!(Transform::parse("crash bogus"), None);
        assert_eq!(Transform::parse("crash"), None);
    }

    #[test]
    fn crash_oracle_accepts_a_small_adversarial_workload() {
        let (r, s) = datagen::Adversarial { count: 60, seed: 7 }.generate_pair();
        let cfg = RunConfig::default();
        for threads in [1usize, 4] {
            let cfg = RunConfig { threads, ..cfg };
            let failures = check_workload(&r, &s, &cfg, &AlgoId::ALL, &crash_points_for(7));
            assert!(
                failures.is_empty(),
                "threads {threads}: unexpected failures: {:?}",
                failures
                    .iter()
                    .map(|f| format!("{} [{}]: {}", f.algo, f.transform, f.message))
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn chaos_transform_strings_round_trip() {
        for seed in 0..6 {
            for t in chaos_transforms_for(seed) {
                let s = t.to_string();
                assert_eq!(Transform::parse(&s), Some(t), "{s}");
            }
        }
        assert_eq!(Transform::parse("chaos"), None);
        assert_eq!(Transform::parse("chaos 3 pages 9"), None);
        assert_eq!(Transform::parse("chaos 3 budget"), None);
    }

    #[test]
    fn chaos_oracle_accepts_a_small_adversarial_workload() {
        let (r, s) = datagen::Adversarial { count: 60, seed: 9 }.generate_pair();
        let cfg = RunConfig::default();
        for threads in [1usize, 4] {
            let cfg = RunConfig { threads, ..cfg };
            let failures = check_workload(&r, &s, &cfg, &AlgoId::ALL, &chaos_transforms_for(9));
            assert!(
                failures.is_empty(),
                "threads {threads}: unexpected failures: {:?}",
                failures
                    .iter()
                    .map(|f| format!("{} [{}]: {}", f.algo, f.transform, f.message))
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn translated_is_exact_on_lattice_data() {
        let (r, _) = datagen::Adversarial { count: 100, seed: 1 }.generate_pair();
        let dx = 1234.0 / (1u64 << 20) as f64;
        let t = translated(&r, dx, dx).expect("lattice data translates exactly");
        for (a, b) in r.iter().zip(&t) {
            assert_eq!(b.rect.xl, a.rect.xl * 0.5 + dx);
        }
    }

    #[test]
    fn oracle_accepts_a_small_adversarial_workload() {
        let (r, s) = datagen::Adversarial { count: 60, seed: 42 }.generate_pair();
        let cfg = RunConfig::default();
        let failures = check_workload(&r, &s, &cfg, &AlgoId::ALL, &transforms_for(42, cfg.mem));
        assert!(
            failures.is_empty(),
            "unexpected failures: {:?}",
            failures
                .iter()
                .map(|f| format!("{} [{}]: {}", f.algo, f.transform, f.message))
                .collect::<Vec<_>>()
        );
    }
}
