//! Bounded conformance soak: `cargo run -p conformance -- --seeds N`.
//!
//! For each seed, generates an adversarial workload and runs the full
//! algorithm × transform oracle matrix. On failure, shrinks the workload
//! to a minimal counterexample, writes a JSON repro under `--out`, and
//! prints a ready-to-paste regression test. Exit code 1 if any cell failed.

use conformance::{
    chaos_transforms_for, check_one, check_workload, crash_points_for, shrink, transforms_for,
    AlgoId, Repro, RunConfig, Transform,
};
use datagen::Adversarial;
use geom::Kpe;

struct Args {
    seeds: u64,
    first_seed: u64,
    count: usize,
    mem: usize,
    threads: usize,
    channels: Option<usize>,
    out: String,
    algo: Option<AlgoId>,
    transform: Option<Transform>,
    crash_sweep: bool,
    chaos: bool,
    max_shrinks: usize,
    shrink_evals: usize,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            seeds: 16,
            first_seed: 0,
            count: 120,
            mem: 4 * 1024,
            threads: 1,
            channels: None,
            out: "conformance-failures".into(),
            algo: None,
            transform: None,
            crash_sweep: false,
            chaos: false,
            max_shrinks: 3,
            shrink_evals: 2000,
        }
    }
}

const USAGE: &str = "\
conformance -- differential soak across all spatial-join algorithms

USAGE: conformance [OPTIONS]

OPTIONS:
  --seeds N        number of adversarial workloads to generate (default 16)
  --first-seed N   first seed, soak covers [N, N+seeds) (default 0)
  --count N        KPEs per relation per workload (default 120)
  --mem BYTES      base memory budget (default 4096)
  --threads N      base thread count for every cell (default 1)
  --channels D     base I/O channel count of the disk model for every cell
                   (default: the model's default, 1)
  --out DIR        directory for shrunken JSON repros (default conformance-failures)
  --algo NAME      restrict to one algorithm (e.g. pbsm-rpm-list, s3j, quadtree)
  --transform T    restrict to one transform (e.g. identity, swap, 'mem 2048',
                   'crash after-commit:2')
  --crash-sweep    replace the transform matrix with the crash-recovery set:
                   {after-commit:N, mid-partition:N, mid-rename} per seed,
                   checking exactly-once crash+resume against each
                   checkpointable algorithm
  --chaos          replace the transform matrix with the persistent-damage
                   set: one pure-corruption leg and one disk-budget leg per
                   seed; every cell must end bit-identical to the clean run
                   or in a typed persistent error, never a silent wrong
                   answer
  --max-shrinks N  stop shrinking after N distinct failures (default 3)
  --shrink-evals N predicate-evaluation budget per shrink (default 2000)
  --help           print this help
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--seeds" => args.seeds = val("--seeds")?.parse().map_err(|e| format!("--seeds: {e}"))?,
            "--first-seed" => {
                args.first_seed = val("--first-seed")?
                    .parse()
                    .map_err(|e| format!("--first-seed: {e}"))?
            }
            "--count" => args.count = val("--count")?.parse().map_err(|e| format!("--count: {e}"))?,
            "--mem" => args.mem = val("--mem")?.parse().map_err(|e| format!("--mem: {e}"))?,
            "--threads" => {
                args.threads = val("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--channels" => {
                args.channels = Some(
                    val("--channels")?
                        .parse()
                        .map_err(|e| format!("--channels: {e}"))?,
                )
            }
            "--crash-sweep" => args.crash_sweep = true,
            "--chaos" => args.chaos = true,
            "--out" => args.out = val("--out")?,
            "--algo" => {
                let v = val("--algo")?;
                args.algo = Some(AlgoId::parse(&v).ok_or(format!("unknown algo {v:?}"))?);
            }
            "--transform" => {
                let v = val("--transform")?;
                args.transform =
                    Some(Transform::parse(&v).ok_or(format!("unknown transform {v:?}"))?);
            }
            "--max-shrinks" => {
                args.max_shrinks = val("--max-shrinks")?
                    .parse()
                    .map_err(|e| format!("--max-shrinks: {e}"))?
            }
            "--shrink-evals" => {
                args.shrink_evals = val("--shrink-evals")?
                    .parse()
                    .map_err(|e| format!("--shrink-evals: {e}"))?
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };

    let algos: Vec<AlgoId> = match args.algo {
        Some(a) => vec![a],
        None => AlgoId::ALL.to_vec(),
    };
    let cfg = RunConfig {
        mem: args.mem,
        threads: args.threads,
        channels: args.channels,
        ..RunConfig::default()
    };

    let mut total_cells = 0usize;
    let mut failures = 0usize;
    let mut shrunk = 0usize;

    for seed in args.first_seed..args.first_seed + args.seeds {
        let gen = Adversarial {
            count: args.count,
            seed,
        };
        let (r, s) = gen.generate_pair();
        let transforms: Vec<Transform> = match args.transform {
            Some(t) => vec![t],
            None if args.crash_sweep => crash_points_for(seed),
            None if args.chaos => chaos_transforms_for(seed),
            None => transforms_for(seed, args.mem),
        };
        let found = check_workload(&r, &s, &cfg, &algos, &transforms);
        total_cells += algos.len() * transforms.len();
        if found.is_empty() {
            println!("seed {seed:4}: ok ({} algos x {} transforms)", algos.len(), transforms.len());
            continue;
        }
        failures += found.len();
        for f in &found {
            eprintln!("seed {seed:4}: FAIL {} [{}]: {}", f.algo, f.transform, f.message);
        }
        if shrunk >= args.max_shrinks {
            continue;
        }
        // Shrink the first failure of this seed against its own cell.
        let f = &found[0];
        let (algo, transform) = (f.algo, f.transform);
        eprintln!(
            "seed {seed:4}: shrinking {} [{}] from {}+{} KPEs...",
            algo,
            transform,
            r.len(),
            s.len()
        );
        // The partition count scales with `bytes / mem`, so at a fixed
        // budget no counterexample can drop below the two-partition
        // threshold (~85 KPEs at 4 KiB), and greedy removal stalls on the
        // p-threshold: dropping one KPE changes p and masks the failure.
        // Decouple the two by shrinking against "fails at ANY budget on a
        // halving ladder", probing only budgets that keep p ≲ 16 for the
        // current workload size so every evaluation stays fast.
        let mut ladder = Vec::new();
        let mut m = args.mem;
        while m >= 32 {
            ladder.push(m);
            m /= 2;
        }
        let probe = |mem: usize, r: &[Kpe], s: &[Kpe]| -> bool {
            let bytes = (r.len() + s.len()) * geom::Kpe::ENCODED_SIZE;
            mem * 13 >= bytes
                && check_one(algo, transform, &RunConfig { mem, ..cfg }, r, s).is_some()
        };
        let (mr, ms) = shrink(
            &r,
            &s,
            |r, s| ladder.iter().any(|&mem| probe(mem, r, s)),
            args.shrink_evals,
        );
        // Smallest budget on the ladder that still reproduces the failure.
        let repro_mem = ladder
            .iter()
            .rev()
            .copied()
            .find(|&mem| probe(mem, &mr, &ms))
            .unwrap_or(args.mem);
        let repro_cfg = RunConfig {
            mem: repro_mem,
            ..cfg
        };
        let message = check_one(algo, transform, &repro_cfg, &mr, &ms)
            .unwrap_or_else(|| f.message.clone());
        let repro = Repro {
            label: format!("seed {seed}: {message}"),
            algo: Some(algo),
            transform: Some(transform),
            mem: (repro_mem != args.mem).then_some(repro_mem),
            r: mr,
            s: ms,
        };
        let name = format!("seed{seed}-{}.json", algo);
        if let Err(e) = std::fs::create_dir_all(&args.out)
            .and_then(|()| std::fs::write(format!("{}/{name}", args.out), repro.to_json()))
        {
            eprintln!("seed {seed:4}: could not write repro {name}: {e}");
        } else {
            eprintln!(
                "seed {seed:4}: shrunk to {}+{} KPEs -> {}/{name}",
                repro.r.len(),
                repro.s.len(),
                args.out
            );
        }
        eprintln!("--- suggested regression test ---");
        eprintln!("{}", repro.regression_snippet(&format!("corpus_seed{seed}")));
        shrunk += 1;
    }

    println!(
        "conformance: {} seeds, {total_cells} oracle cells, {failures} failures",
        args.seeds
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
