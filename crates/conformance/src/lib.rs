//! Differential conformance harness for the spatial-join workspace.
//!
//! The paper's central claims are *correctness* claims: the Reference Point
//! Method (PBSM) and the modified RPM (S³J) must suppress exactly the
//! duplicates that replication introduces, under every grid geometry, level
//! assignment and thread count. This crate hunts the boundary conditions
//! those claims hinge on, automatically:
//!
//! * [`datagen::adversarial`] produces the degenerate geometry real
//!   generators avoid — grid-aligned edges, zero-area MBRs, shared-edge and
//!   point-touch pairs, coordinate duplicates, hot tiles — on a dyadic
//!   lattice so geometric transforms are exact in `f64`;
//! * [`oracle`] runs every algorithm through the public API and asserts
//!   result-set equality under semantics-preserving transformations
//!   (translate, scale, R↔S swap, memory/partition-count changes, tile-grid
//!   changes, thread counts, fault plans, CPU-slowdown changes, I/O channel
//!   counts) plus the
//!   duplicate-accounting identity `candidates = results + suppressed`;
//! * [`shrink`] bisects a failing workload down to a minimal KPE set;
//! * [`repro`] emits/replays JSON repro files under `tests/corpus/` and
//!   generates ready-to-paste regression tests.
//!
//! The `conformance` binary (`cargo run -p conformance -- --seeds N`) wires
//! all of it into a bounded soak for CI.

pub mod oracle;
pub mod repro;
pub mod shrink;

pub use oracle::{
    brute_force, chaos_transforms_for, check_one, check_workload, crash_points_for, run_algo,
    transforms_for, AlgoId, Failure, RunConfig, Transform,
};
pub use repro::Repro;
pub use shrink::shrink;
