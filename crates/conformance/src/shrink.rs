//! Counterexample shrinking: delta-debugging a failing workload down to a
//! minimal KPE set.
//!
//! The predicate is the oracle cell that failed (`check_one(...)
//! .is_some()`), so shrinking preserves *the same* failure class — the
//! result is the smallest sub-workload on which that algorithm/transform
//! pair still misbehaves. Classic ddmin over both relations: try removing
//! chunks of size n/2, n/4, …, 1 from each relation in turn, restarting
//! whenever a removal keeps the failure alive, until a fixpoint where no
//! single KPE can be dropped.

use geom::{Kpe, RecordId};

/// Removes `chunk` elements starting at `at` (clamped) from a copy of `v`.
fn without(v: &[Kpe], at: usize, chunk: usize) -> Vec<Kpe> {
    let end = (at + chunk).min(v.len());
    let mut out = Vec::with_capacity(v.len() - (end - at));
    out.extend_from_slice(&v[..at]);
    out.extend_from_slice(&v[end..]);
    out
}

/// Shrinks `(r, s)` to a locally minimal failing workload.
///
/// `fails` must return `true` when the workload still exhibits the failure.
/// It is assumed (and debug-asserted) to hold on the input. `max_evals`
/// bounds the number of predicate evaluations; on exhaustion the best
/// workload found so far is returned — still failing, just possibly not
/// 1-minimal.
pub fn shrink<F>(r: &[Kpe], s: &[Kpe], mut fails: F, max_evals: usize) -> (Vec<Kpe>, Vec<Kpe>)
where
    F: FnMut(&[Kpe], &[Kpe]) -> bool,
{
    debug_assert!(fails(r, s), "shrink called on a non-failing workload");
    let mut cur_r = r.to_vec();
    let mut cur_s = s.to_vec();
    let mut evals = 0usize;

    loop {
        let mut progressed = false;
        // Alternate relations so neither starves the other.
        for rel in 0..2 {
            let len = if rel == 0 { cur_r.len() } else { cur_s.len() };
            if len == 0 {
                continue;
            }
            let mut chunk = len.div_ceil(2);
            loop {
                let mut at = 0;
                // Re-read the length every step: a successful removal
                // shrinks the relation under our feet.
                while at < if rel == 0 { cur_r.len() } else { cur_s.len() } {
                    if evals >= max_evals {
                        return (cur_r, cur_s);
                    }
                    let (cand_r, cand_s) = if rel == 0 {
                        (without(&cur_r, at, chunk), cur_s.clone())
                    } else {
                        (cur_r.clone(), without(&cur_s, at, chunk))
                    };
                    evals += 1;
                    if fails(&cand_r, &cand_s) {
                        cur_r = cand_r;
                        cur_s = cand_s;
                        progressed = true;
                        // Re-test the same offset: the element now at `at`
                        // is new.
                    } else {
                        at += chunk;
                    }
                }
                if chunk == 1 {
                    break;
                }
                chunk = chunk.div_ceil(2);
            }
        }
        if !progressed {
            break;
        }
    }

    // Canonicalise: renumber ids sequentially per relation — repro files
    // and regression snippets read better with ids 0..n. Keep the
    // renumbering only if the failure survives it (ids can matter, e.g.
    // for tie-breaks on identical rectangles).
    let renum = |v: &[Kpe]| -> Vec<Kpe> {
        v.iter()
            .enumerate()
            .map(|(i, k)| Kpe::new(RecordId(i as u64), k.rect))
            .collect()
    };
    let (nr, ns) = (renum(&cur_r), renum(&cur_s));
    if evals < max_evals && fails(&nr, &ns) {
        (nr, ns)
    } else {
        (cur_r, cur_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::Rect;

    fn kpe(id: u64, x: f64) -> Kpe {
        Kpe::new(RecordId(id), Rect::new(x, 0.0, x + 0.1, 0.1))
    }

    /// Predicate: "r contains id 7 and s contains id 3" — shrinking must
    /// isolate exactly those two KPEs.
    #[test]
    fn shrinks_to_the_two_culprits() {
        let r: Vec<Kpe> = (0..20).map(|i| kpe(i, i as f64 / 32.0)).collect();
        let s: Vec<Kpe> = (0..20).map(|i| kpe(i, i as f64 / 32.0)).collect();
        let (mr, ms) = shrink(
            &r,
            &s,
            |r, s| r.iter().any(|k| k.id.0 == 7) && s.iter().any(|k| k.id.0 == 3),
            10_000,
        );
        assert_eq!(mr.len(), 1);
        assert_eq!(ms.len(), 1);
        // Renumbering was rejected (the predicate depends on original ids).
        assert_eq!(mr[0].id.0, 7);
        assert_eq!(ms[0].id.0, 3);
    }

    /// A predicate on geometry alone accepts the canonical renumbering.
    #[test]
    fn renumbers_when_ids_do_not_matter() {
        let r: Vec<Kpe> = (0..16).map(|i| kpe(i + 100, i as f64 / 32.0)).collect();
        let s: Vec<Kpe> = (0..16).map(|i| kpe(i + 200, i as f64 / 32.0)).collect();
        let (mr, ms) = shrink(
            &r,
            &s,
            |r, s| r.len() + s.len() >= 3 && !r.is_empty() && !s.is_empty(),
            10_000,
        );
        assert_eq!(mr.len() + ms.len(), 3);
        let mut ids: Vec<u64> = mr.iter().map(|k| k.id.0).collect();
        ids.sort_unstable();
        assert!(ids.iter().enumerate().all(|(i, &id)| id == i as u64));
        assert!(ms.iter().enumerate().all(|(i, k)| k.id.0 == i as u64));
    }

    #[test]
    fn respects_eval_budget() {
        let r: Vec<Kpe> = (0..64).map(|i| kpe(i, 0.0)).collect();
        let s: Vec<Kpe> = (0..64).map(|i| kpe(i, 0.0)).collect();
        let mut evals = 0;
        let (mr, ms) = shrink(
            &r,
            &s,
            |r, s| {
                evals += 1;
                !r.is_empty() && !s.is_empty()
            },
            10,
        );
        assert!(evals <= 12); // budget + the initial debug_assert + renumber probe
        assert!(!mr.is_empty() && !ms.is_empty());
    }
}
