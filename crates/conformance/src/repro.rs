//! JSON repro files and regression-test generation.
//!
//! A repro is the shrunken counterexample the soak emits on failure: the
//! two relations (ids positional), plus the algorithm/transform cell that
//! failed. Files live under `tests/corpus/` and are replayed by the
//! `corpus` integration test against *all* algorithms, so a bug found in
//! one algorithm permanently guards every other.
//!
//! The workspace has no serde; coordinates are serialised with Rust's
//! `f64` `Display` (shortest representation that round-trips exactly) and
//! parsed back with `str::parse`, so a repro file is bit-exact. The parser
//! below covers exactly the subset the writer emits (one object; string
//! and rect-array values) plus arbitrary whitespace.

use crate::oracle::{self, AlgoId, Failure, RunConfig, Transform};
use geom::{Kpe, Rect, RecordId};

#[derive(Debug, Clone, PartialEq)]
pub struct Repro {
    /// Human-readable one-liner: what this repro caught.
    pub label: String,
    /// The algorithm cell that failed, if recorded.
    pub algo: Option<AlgoId>,
    /// The transform cell that failed, if recorded.
    pub transform: Option<Transform>,
    /// Memory budget the failure reproduces under (the shrinker co-shrinks
    /// this with the workload: partition counts scale with `bytes / mem`,
    /// so a tiny counterexample needs a tiny budget to span partitions).
    pub mem: Option<usize>,
    pub r: Vec<Kpe>,
    pub s: Vec<Kpe>,
}

fn rects_json(data: &[Kpe], indent: &str) -> String {
    let rows: Vec<String> = data
        .iter()
        .map(|k| {
            format!(
                "{indent}  [{}, {}, {}, {}]",
                k.rect.xl, k.rect.yl, k.rect.xh, k.rect.yh
            )
        })
        .collect();
    if rows.is_empty() {
        "[]".to_string()
    } else {
        format!("[\n{}\n{indent}]", rows.join(",\n"))
    }
}

fn kpes_from_rects(rects: Vec<[f64; 4]>) -> Vec<Kpe> {
    rects
        .into_iter()
        .enumerate()
        .map(|(i, c)| Kpe::new(RecordId(i as u64), Rect::new(c[0], c[1], c[2], c[3])))
        .collect()
}

impl Repro {
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"label\": \"{}\",\n", self.label.replace('"', "'")));
        if let Some(algo) = self.algo {
            out.push_str(&format!("  \"algo\": \"{algo}\",\n"));
        }
        if let Some(t) = self.transform {
            out.push_str(&format!("  \"transform\": \"{t}\",\n"));
        }
        if let Some(mem) = self.mem {
            out.push_str(&format!("  \"mem\": {mem},\n"));
        }
        out.push_str(&format!("  \"r\": {},\n", rects_json(&self.r, "  ")));
        out.push_str(&format!("  \"s\": {}\n", rects_json(&self.s, "  ")));
        out.push_str("}\n");
        out
    }

    pub fn from_json(text: &str) -> Result<Repro, String> {
        let mut p = Parser { b: text.as_bytes(), i: 0 };
        p.expect(b'{')?;
        let mut label = String::new();
        let mut algo = None;
        let mut transform = None;
        let mut mem = None;
        let (mut r, mut s) = (None, None);
        loop {
            p.skip_ws();
            if p.peek() == Some(b'}') {
                break;
            }
            let key = p.string()?;
            p.expect(b':')?;
            match key.as_str() {
                "label" => label = p.string()?,
                "algo" => {
                    let v = p.string()?;
                    algo = Some(AlgoId::parse(&v).ok_or(format!("unknown algo {v:?}"))?);
                }
                "transform" => {
                    let v = p.string()?;
                    transform =
                        Some(Transform::parse(&v).ok_or(format!("unknown transform {v:?}"))?);
                }
                "mem" => mem = Some(p.number()? as usize),
                "r" => r = Some(kpes_from_rects(p.rect_array()?)),
                "s" => s = Some(kpes_from_rects(p.rect_array()?)),
                other => return Err(format!("unknown key {other:?}")),
            }
            p.skip_ws();
            if p.peek() == Some(b',') {
                p.i += 1;
            }
        }
        Ok(Repro {
            label,
            algo,
            transform,
            mem,
            r: r.ok_or("missing \"r\"")?,
            s: s.ok_or("missing \"s\"")?,
        })
    }

    /// Replays this repro: every algorithm is checked against brute force
    /// (`Identity`), and the recorded failing transform — if any — is
    /// re-applied to every algorithm it applies to.
    pub fn replay(&self, cfg: &RunConfig) -> Vec<Failure> {
        let mut transforms = vec![Transform::Identity];
        if let Some(t) = self.transform {
            if t != Transform::Identity {
                transforms.push(t);
            }
        }
        let cfg = RunConfig {
            mem: self.mem.unwrap_or(cfg.mem),
            ..*cfg
        };
        oracle::check_workload(&self.r, &self.s, &cfg, &AlgoId::ALL, &transforms)
    }

    /// A ready-to-paste `#[test]` reproducing this failure via the public
    /// API (printed by the soak next to the JSON file).
    pub fn regression_snippet(&self, name: &str) -> String {
        let fmt_rel = |data: &[Kpe]| -> String {
            data.iter()
                .map(|k| {
                    format!(
                        "        ({}, {}, {}, {}),\n",
                        k.rect.xl, k.rect.yl, k.rect.xh, k.rect.yh
                    )
                })
                .collect()
        };
        let algo = self.algo.map_or("pbsm-rpm-list".into(), |a| a.to_string());
        let transform = self
            .transform
            .map_or("identity".into(), |t| t.to_string());
        let cfg_expr = match self.mem {
            Some(mem) => format!(
                "conformance::RunConfig {{ mem: {mem}, ..Default::default() }}"
            ),
            None => "conformance::RunConfig::default()".to_string(),
        };
        format!(
            "#[test]\n\
             fn {name}() {{\n\
             \x20   // {label}\n\
             \x20   let rel = |coords: &[(f64, f64, f64, f64)]| -> Vec<Kpe> {{\n\
             \x20       coords.iter().enumerate()\n\
             \x20           .map(|(i, &(xl, yl, xh, yh))| Kpe::new(RecordId(i as u64), Rect::new(xl, yl, xh, yh)))\n\
             \x20           .collect()\n\
             \x20   }};\n\
             \x20   let r = rel(&[\n{r}    ]);\n\
             \x20   let s = rel(&[\n{s}    ]);\n\
             \x20   let algo = conformance::AlgoId::parse(\"{algo}\").unwrap();\n\
             \x20   let transform = conformance::Transform::parse(\"{transform}\").unwrap();\n\
             \x20   let cfg = {cfg_expr};\n\
             \x20   assert_eq!(conformance::check_one(algo, transform, &cfg, &r, &s), None);\n\
             }}\n",
            label = self.label,
            r = fmt_rel(&self.r),
            s = fmt_rel(&self.s),
        )
    }
}

/// Minimal recursive-descent parser for the repro JSON subset.
struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                c as char,
                self.i,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.i;
        while let Some(c) = self.peek() {
            if c == b'"' {
                let s = std::str::from_utf8(&self.b[start..self.i])
                    .map_err(|e| e.to_string())?
                    .to_string();
                self.i += 1;
                return Ok(s);
            }
            self.i += 1;
        }
        Err("unterminated string".into())
    }

    fn number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let start = self.i;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }

    fn rect_array(&mut self) -> Result<Vec<[f64; 4]>, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b']') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b',') => {
                    self.i += 1;
                }
                Some(b'[') => {
                    self.i += 1;
                    let mut coords = [0.0f64; 4];
                    for (k, c) in coords.iter_mut().enumerate() {
                        if k > 0 {
                            self.expect(b',')?;
                        }
                        *c = self.number()?;
                    }
                    self.expect(b']')?;
                    out.push(coords);
                }
                other => {
                    return Err(format!(
                        "expected rect array at byte {}, found {:?}",
                        self.i,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Repro {
        Repro {
            label: "shared edge under mem change".into(),
            algo: Some(AlgoId::PbsmRpmList),
            transform: Some(Transform::Mem { bytes: 2048 }),
            mem: Some(1024),
            r: kpes_from_rects(vec![[0.25, 0.5, 0.25, 0.75], [0.0, 0.0, 1.0, 1.0]]),
            s: kpes_from_rects(vec![[0.25, 0.125, 0.5, 0.5]]),
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let r = sample();
        let back = Repro::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn round_trips_awkward_floats() {
        // Shortest-repr Display must survive parse bit-for-bit, including
        // non-dyadic snapped lattice values.
        let lattice = (1u64 << 20) as f64;
        let v = (0.333_333 * lattice).round() / lattice;
        let r = Repro {
            label: String::new(),
            algo: None,
            transform: None,
            mem: None,
            r: kpes_from_rects(vec![[v, v, v, v]]),
            s: kpes_from_rects(vec![[0.1, 0.2, 0.3, 0.4]]),
        };
        let back = Repro::from_json(&r.to_json()).unwrap();
        assert_eq!(back.r[0].rect.xl.to_bits(), v.to_bits());
        assert_eq!(back.s[0].rect.yh.to_bits(), 0.4f64.to_bits());
    }

    #[test]
    fn replay_of_a_valid_workload_is_clean() {
        let r = sample();
        assert!(r.replay(&RunConfig::default()).is_empty());
    }

    #[test]
    fn snippet_mentions_the_cell() {
        let snip = sample().regression_snippet("corpus_shared_edge");
        assert!(snip.contains("fn corpus_shared_edge()"));
        assert!(snip.contains("pbsm-rpm-list"));
        assert!(snip.contains("mem 2048"));
    }
}
