//! # spatialjoin — index-free spatial join processing
//!
//! A faithful reproduction of *Dittrich & Seeger, "Data Redundancy and
//! Duplicate Detection in Spatial Join Processing", ICDE 2000*: the improved
//! **PBSM** (grid partitioning with online Reference-Point duplicate
//! elimination and an interval-trie plane sweep) and the improved **S³J**
//! (size separation with controlled ≤4× replication), plus the **SSSJ**
//! baseline, all running out-of-core against a simulated disk with the
//! paper's `PT + n` cost model.
//!
//! ## Quick start
//!
//! ```
//! use spatialjoin::{Algorithm, SpatialJoin};
//!
//! // Two TIGER-like synthetic datasets (1% of the paper's LA files).
//! let roads  = spatialjoin::datagen::sized(&spatialjoin::datagen::la_rr_config(1), 0.01).generate();
//! let rivers = spatialjoin::datagen::sized(&spatialjoin::datagen::la_st_config(1), 0.01).generate();
//!
//! // PBSM with the Reference Point Method and 256 KiB of memory.
//! let join = SpatialJoin::new(Algorithm::pbsm_rpm(256 * 1024));
//! let run = join.run(&roads, &rivers);
//!
//! println!(
//!     "{} intersecting pairs in {:.3}s simulated ({} duplicates suppressed online)",
//!     run.pairs.len(),
//!     run.stats.total_seconds(),
//!     run.stats.duplicates(),
//! );
//! # assert!(run.pairs.len() > 0);
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`geom`] | rectangles, KPEs, the reference point |
//! | [`sfc`] | Peano/Hilbert locational codes, MX-CIF level functions |
//! | [`storage`] | simulated disk (`PT + n`), paged files, external sort |
//! | [`sweep`] | internal joins: nested loops, list sweep, interval-trie sweep |
//! | [`quadtree`] | MX-CIF quadtree + synchronized-traversal join (§4.1) |
//! | [`datagen`] | TIGER-like synthetic datasets (Table 1 equivalents) |
//! | [`pbsm`] | PBSM with sort-phase or Reference-Point dedup (§3) |
//! | [`s3j`] | S³J original / with controlled replication (§4) |
//! | [`sssj`] | sweeping-based baseline ([APR+ 98]) |
//! | [`rtree`] | STR R-tree + synchronized R-tree join ([BKS 93]) |
//! | [`shj`] | Spatial Hash Join baseline ([LR 96]) |
//! | [`estimate`] | grid histograms, selectivity estimation, partition advice |
//! | [`refine`] | refinement step: exact-geometry verification ([BKSS 94]) |
//! | [`exec`] | open-next-close operator tree, streaming join operators |

pub use datagen;
pub use exec;
pub use refine;
pub use rtree;
pub use estimate;
pub use shj;
pub use geom;
pub use pbsm;
pub use quadtree;
pub use s3j;
pub use sfc;
pub use sssj;
pub use storage;
pub use sweep;

pub use geom::{dataset_stats, reference_point, DatasetStats, Kpe, Point, Rect, RecordId};
pub use storage::{
    CancelToken, CrashPoint, DiskModel, FaultPlan, IoError, IoErrorKind, IoStats, JoinError,
    JoinErrorKind, RetryPolicy, SimDisk,
};
pub use storage::{MetricsReport, PhaseMetric, Recorder, RunCounters, METRICS_SCHEMA_VERSION};
pub use sweep::InternalAlgo;

use std::sync::Arc;
use std::time::Instant;
use storage::{FileId, Recovered, RunCheckpoint, RunControl};

use pbsm::{Dedup, PbsmConfig, PbsmStats};
use s3j::{S3jConfig, S3jStats};
use shj::{ShjConfig, ShjStats};
use sssj::{SssjConfig, SssjStats};

/// Configuration of the in-memory MX-CIF quadtree join (§4.1 machinery
/// promoted to a runnable variant).
#[derive(Debug, Clone, Copy)]
pub struct QuadtreeConfig {
    /// Memory budget in bytes. The variant holds both relations (and both
    /// trees) in memory, so a run whose inputs exceed the budget is refused
    /// with a typed `Unsupported` error instead of silently cheating the
    /// out-of-core cost model.
    pub mem_bytes: usize,
    /// Finest decomposition level of the MX-CIF trees.
    pub max_level: u8,
}

impl Default for QuadtreeConfig {
    fn default() -> Self {
        QuadtreeConfig {
            mem_bytes: 8 << 20,
            max_level: 12,
        }
    }
}

/// Statistics of the in-memory MX-CIF quadtree join. All I/O buckets are
/// zero by construction — the variant never touches the simulated disk —
/// but they are carried in full (including one bucket per data channel) so
/// metrics reconciliation sees the same shape as every other run.
#[derive(Debug, Clone)]
pub struct QuadtreeStats {
    pub results: u64,
    /// Pair tests performed by the synchronized traversal.
    pub tests: u64,
    /// Nodes in the R/S trees after bulk-loading.
    pub nodes_r: u64,
    pub nodes_s: u64,
    pub cpu_build: f64,
    pub cpu_join: f64,
    pub model: DiskModel,
    /// Always all-zero, sized to the model's data-channel count.
    pub io_channels: Vec<IoStats>,
}

impl QuadtreeStats {
    pub fn cpu_seconds(&self) -> f64 {
        self.cpu_build + self.cpu_join
    }

    pub fn scaled_cpu_seconds(&self) -> f64 {
        self.model.scaled_cpu(self.cpu_seconds())
    }
}

/// Algorithm selection with its full configuration.
#[derive(Debug, Clone)]
pub enum Algorithm {
    Pbsm(PbsmConfig),
    S3j(S3jConfig),
    Sssj(SssjConfig),
    Shj(ShjConfig),
    Quadtree(QuadtreeConfig),
}

impl Algorithm {
    /// PBSM as improved by the paper: Reference Point Method dedup.
    /// The internal algorithm defaults to the list sweep; switch to
    /// [`InternalAlgo::PlaneSweepTrie`] for large memories (§3.2.2).
    pub fn pbsm_rpm(mem_bytes: usize) -> Algorithm {
        Algorithm::Pbsm(PbsmConfig {
            mem_bytes,
            ..Default::default()
        })
    }

    /// Original PBSM ([PD 96]): duplicates removed in a final sort phase.
    pub fn pbsm_original(mem_bytes: usize) -> Algorithm {
        Algorithm::Pbsm(PbsmConfig {
            mem_bytes,
            dedup: Dedup::SortPhase,
            ..Default::default()
        })
    }

    /// Two-layer space-oriented partitioning (Tsitsigkos et al.): PBSM's
    /// grid partitioning with a per-tile second layer of object classes
    /// (A–D by which tile borders an object crosses) instead of any
    /// per-candidate duplicate test — the structural generalisation of the
    /// paper's Reference Point Method. Inherits PBSM's full fault, crash
    /// and channel machinery.
    pub fn two_layer(mem_bytes: usize) -> Algorithm {
        Algorithm::Pbsm(PbsmConfig {
            mem_bytes,
            dedup: Dedup::TwoLayer,
            ..Default::default()
        })
    }

    /// In-memory MX-CIF quadtree join (§4.1): bulk-load both relations,
    /// synchronized traversal, no disk I/O. Refused when the inputs exceed
    /// the memory budget.
    pub fn quadtree(mem_bytes: usize) -> Algorithm {
        Algorithm::Quadtree(QuadtreeConfig {
            mem_bytes,
            ..Default::default()
        })
    }

    /// S³J as improved by the paper: size separation with ≤4× replication
    /// and online duplicate elimination (§4.3).
    pub fn s3j_replicated(mem_bytes: usize) -> Algorithm {
        Algorithm::S3j(S3jConfig {
            mem_bytes,
            replicate: true,
            ..Default::default()
        })
    }

    /// Original S³J ([KS 97]): covering-cell assignment, no replication.
    pub fn s3j_original(mem_bytes: usize) -> Algorithm {
        Algorithm::S3j(S3jConfig {
            mem_bytes,
            replicate: false,
            ..Default::default()
        })
    }

    /// Scalable Sweeping-Based Spatial Join baseline ([APR+ 98]).
    pub fn sssj(mem_bytes: usize) -> Algorithm {
        Algorithm::Sssj(SssjConfig {
            mem_bytes,
            ..Default::default()
        })
    }

    /// Spatial Hash Join baseline ([LR 96]): build-side partitioning,
    /// probe-side replication, no duplicates by construction.
    pub fn shj(mem_bytes: usize) -> Algorithm {
        Algorithm::Shj(ShjConfig {
            mem_bytes,
            ..Default::default()
        })
    }

    /// Materialises a planner-selected [`estimate::PlanChoice`] as a runnable
    /// configuration: the choice's algorithm family, internal sweep,
    /// tiles-per-partition, write-buffer split and memory budget, with every
    /// other knob at its default. The planner's choices are self-describing
    /// precisely so this mapping stays total.
    pub fn from_choice(choice: &estimate::PlanChoice) -> Algorithm {
        use estimate::PlanAlgo;
        match choice.algo {
            PlanAlgo::PbsmRpm => Algorithm::Pbsm(PbsmConfig {
                mem_bytes: choice.mem_bytes,
                internal: choice.internal,
                tiles_per_partition: choice.tiles_per_partition,
                partition_buffer_pages: choice.buffer_pages,
                ..Default::default()
            }),
            PlanAlgo::PbsmSort => Algorithm::Pbsm(PbsmConfig {
                mem_bytes: choice.mem_bytes,
                internal: choice.internal,
                tiles_per_partition: choice.tiles_per_partition,
                partition_buffer_pages: choice.buffer_pages,
                dedup: Dedup::SortPhase,
                ..Default::default()
            }),
            PlanAlgo::S3jReplicated => Algorithm::S3j(S3jConfig {
                mem_bytes: choice.mem_bytes,
                internal: choice.internal,
                level_buffer_pages: choice.buffer_pages,
                replicate: true,
                ..Default::default()
            }),
            PlanAlgo::S3jOriginal => Algorithm::S3j(S3jConfig {
                mem_bytes: choice.mem_bytes,
                internal: choice.internal,
                level_buffer_pages: choice.buffer_pages,
                replicate: false,
                ..Default::default()
            }),
            PlanAlgo::Sssj => Algorithm::sssj(choice.mem_bytes),
            PlanAlgo::Shj => Algorithm::Shj(ShjConfig {
                mem_bytes: choice.mem_bytes,
                internal: choice.internal,
                ..Default::default()
            }),
            PlanAlgo::TwoLayer => Algorithm::Pbsm(PbsmConfig {
                mem_bytes: choice.mem_bytes,
                internal: choice.internal,
                tiles_per_partition: choice.tiles_per_partition,
                partition_buffer_pages: choice.buffer_pages,
                dedup: Dedup::TwoLayer,
                ..Default::default()
            }),
            PlanAlgo::Quadtree => Algorithm::Quadtree(QuadtreeConfig {
                mem_bytes: choice.mem_bytes,
                ..Default::default()
            }),
        }
    }

    /// Sets the partition-join worker-thread knob (`0` = all cores, `1` =
    /// sequential) on algorithms that support parallel partition execution
    /// (PBSM and S³J); a no-op for the single-sweep baselines. Results and
    /// deterministic counters are identical for every value.
    pub fn with_threads(mut self, threads: usize) -> Algorithm {
        match &mut self {
            Algorithm::Pbsm(c) => c.threads = threads,
            Algorithm::S3j(c) => c.threads = threads,
            Algorithm::Sssj(_) | Algorithm::Shj(_) | Algorithm::Quadtree(_) => {}
        }
        self
    }

    /// Overrides the memory budget `M` on any algorithm. This is the
    /// partition-count lever of the conformance oracle: PBSM's partition
    /// count follows formula (1) from `M`, SHJ's bucket count likewise, and
    /// the sort-based algorithms size their runs from it — while the result
    /// set must stay byte-identical for every value.
    pub fn with_mem(mut self, mem_bytes: usize) -> Algorithm {
        match &mut self {
            Algorithm::Pbsm(c) => c.mem_bytes = mem_bytes,
            Algorithm::S3j(c) => c.mem_bytes = mem_bytes,
            Algorithm::Sssj(c) => c.mem_bytes = mem_bytes,
            Algorithm::Shj(c) => c.mem_bytes = mem_bytes,
            Algorithm::Quadtree(c) => c.mem_bytes = mem_bytes,
        }
        self
    }

    /// The configured memory budget in bytes.
    pub fn mem_bytes(&self) -> usize {
        match self {
            Algorithm::Pbsm(c) => c.mem_bytes,
            Algorithm::S3j(c) => c.mem_bytes,
            Algorithm::Sssj(c) => c.mem_bytes,
            Algorithm::Shj(c) => c.mem_bytes,
            Algorithm::Quadtree(c) => c.mem_bytes,
        }
    }

    /// Sets the in-memory join algorithm used for partition/bucket pairs on
    /// the algorithms that have one (PBSM, S³J, SHJ); a no-op for SSSJ,
    /// whose single sweep *is* the algorithm. Results are invariant.
    pub fn with_internal(mut self, internal: InternalAlgo) -> Algorithm {
        match &mut self {
            Algorithm::Pbsm(c) => c.internal = internal,
            Algorithm::S3j(c) => c.internal = internal,
            Algorithm::Shj(c) => c.internal = internal,
            Algorithm::Sssj(_) | Algorithm::Quadtree(_) => {}
        }
        self
    }

    /// Sets PBSM's tiles-per-partition knob (`NT = P ·` this) — the
    /// tile-grid lever of the conformance oracle; a no-op elsewhere.
    /// Results are invariant for every value ≥ 1.
    pub fn with_tiles_per_partition(mut self, tiles: u32) -> Algorithm {
        if let Algorithm::Pbsm(c) = &mut self {
            c.tiles_per_partition = tiles;
        }
        self
    }

    /// The configured worker-thread knob (`None` for algorithms without
    /// partition-level parallelism).
    pub fn threads(&self) -> Option<usize> {
        match self {
            Algorithm::Pbsm(c) => Some(c.threads),
            Algorithm::S3j(c) => Some(c.threads),
            Algorithm::Sssj(_) | Algorithm::Shj(_) | Algorithm::Quadtree(_) => None,
        }
    }

    /// Human-readable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Pbsm(c) => match c.dedup {
                Dedup::SortPhase => "PBSM (sort-phase dedup)",
                Dedup::ReferencePoint => "PBSM (reference point)",
                Dedup::None => "PBSM (raw candidates)",
                Dedup::TwoLayer => "PBSM (two-layer classes)",
            },
            Algorithm::S3j(c) => {
                if c.replicate {
                    "S3J (replicated)"
                } else {
                    "S3J (original)"
                }
            }
            Algorithm::Sssj(_) => "SSSJ",
            Algorithm::Shj(_) => "SHJ (spatial hash join)",
            Algorithm::Quadtree(_) => "MX-CIF quadtree (in-memory)",
        }
    }
}

/// Statistics of a completed join, uniform across algorithms.
#[derive(Debug, Clone)]
pub enum JoinStats {
    Pbsm(PbsmStats),
    S3j(S3jStats),
    Sssj(SssjStats),
    Shj(ShjStats),
    Quadtree(QuadtreeStats),
}

impl JoinStats {
    /// Number of (duplicate-free) result pairs.
    pub fn results(&self) -> u64 {
        match self {
            JoinStats::Pbsm(s) => s.results,
            JoinStats::S3j(s) => s.results,
            JoinStats::Sssj(s) => s.results,
            JoinStats::Shj(s) => s.results,
            JoinStats::Quadtree(s) => s.results,
        }
    }

    /// Duplicates suppressed online or removed by sorting.
    pub fn duplicates(&self) -> u64 {
        match self {
            JoinStats::Pbsm(s) => s.duplicates,
            JoinStats::S3j(s) => s.duplicates,
            JoinStats::Sssj(_) => 0,
            JoinStats::Shj(_) => 0,
            JoinStats::Quadtree(_) => 0,
        }
    }

    /// Measured CPU seconds.
    pub fn cpu_seconds(&self) -> f64 {
        match self {
            JoinStats::Pbsm(s) => s.cpu_seconds(),
            JoinStats::S3j(s) => s.cpu_seconds(),
            JoinStats::Sssj(s) => s.cpu_seconds(),
            JoinStats::Shj(s) => s.cpu_seconds(),
            JoinStats::Quadtree(s) => s.cpu_seconds(),
        }
    }

    /// CPU seconds stretched to the emulated 1999 machine.
    pub fn scaled_cpu_seconds(&self) -> f64 {
        match self {
            JoinStats::Pbsm(s) => s.scaled_cpu_seconds(),
            JoinStats::S3j(s) => s.scaled_cpu_seconds(),
            JoinStats::Sssj(s) => s.scaled_cpu_seconds(),
            JoinStats::Shj(s) => s.scaled_cpu_seconds(),
            JoinStats::Quadtree(s) => s.scaled_cpu_seconds(),
        }
    }

    /// Simulated disk seconds under the configured [`DiskModel`].
    pub fn io_seconds(&self) -> f64 {
        match self {
            JoinStats::Pbsm(s) => s.io_seconds(),
            JoinStats::S3j(s) => s.io_seconds(),
            JoinStats::Sssj(s) => s.io_seconds(),
            JoinStats::Shj(s) => s.io_seconds(),
            JoinStats::Quadtree(_) => 0.0,
        }
    }

    /// Named per-phase I/O buckets. The buckets are disjoint — each disk
    /// request (including its retries and backoff) is charged to exactly one
    /// phase — so they sum to [`JoinStats::io_total`]; reporting per-phase
    /// and total counters therefore never counts a retry twice.
    pub fn io_phases(&self) -> Vec<(&'static str, IoStats)> {
        match self {
            JoinStats::Pbsm(s) => vec![
                ("partition", s.io_partition),
                ("repartition", s.io_repart),
                ("join", s.io_join),
                ("dedup", s.io_dedup),
                ("checkpoint", s.io_checkpoint),
            ],
            JoinStats::S3j(s) => vec![
                ("partition", s.io_partition),
                ("sort", s.io_sort),
                ("join", s.io_join),
                ("checkpoint", s.io_checkpoint),
            ],
            JoinStats::Sssj(s) => vec![("sort", s.io_sort), ("join", s.io_join)],
            JoinStats::Shj(s) => vec![
                ("build", s.io_build),
                ("probe", s.io_probe),
                ("join", s.io_join),
            ],
            JoinStats::Quadtree(_) => vec![
                ("build", IoStats::default()),
                ("join", IoStats::default()),
            ],
        }
    }

    /// Total I/O counters across all phases.
    pub fn io_total(&self) -> IoStats {
        match self {
            JoinStats::Pbsm(s) => s.io_total(),
            JoinStats::S3j(s) => s.io_total(),
            JoinStats::Sssj(s) => s.io_total(),
            JoinStats::Shj(s) => s.io_total(),
            JoinStats::Quadtree(_) => IoStats::default(),
        }
    }

    /// I/O charged to the serial shared lane (manifest, journal, results,
    /// dedup scratch, and any untagged file). Together with
    /// [`JoinStats::io_channels`] this decomposes [`JoinStats::io_total`]
    /// field-for-field.
    pub fn io_shared(&self) -> IoStats {
        match self {
            JoinStats::Pbsm(s) => s.io_shared,
            JoinStats::S3j(s) => s.io_shared,
            JoinStats::Sssj(s) => s.io_shared,
            JoinStats::Shj(s) => s.io_shared,
            JoinStats::Quadtree(_) => IoStats::default(),
        }
    }

    /// Per-data-channel I/O, one bucket per channel of the run's disk.
    pub fn io_channels(&self) -> &[IoStats] {
        match self {
            JoinStats::Pbsm(s) => &s.io_channels,
            JoinStats::S3j(s) => &s.io_channels,
            JoinStats::Sssj(s) => &s.io_channels,
            JoinStats::Shj(s) => &s.io_channels,
            JoinStats::Quadtree(s) => &s.io_channels,
        }
    }

    /// Channel-parallel disk time: shared lane plus the busiest data
    /// channel. Equals [`JoinStats::io_seconds`] bit-exactly at one channel.
    pub fn io_parallel_seconds(&self) -> f64 {
        match self {
            JoinStats::Pbsm(s) => s.io_parallel_seconds(),
            JoinStats::S3j(s) => s.io_parallel_seconds(),
            JoinStats::Sssj(s) => s.io_parallel_seconds(),
            JoinStats::Shj(s) => s.io_parallel_seconds(),
            JoinStats::Quadtree(_) => 0.0,
        }
    }

    /// Disk time hidden behind computation by double-buffered prefetch
    /// (zero with one channel, and zero under `cpu_slowdown = 0`).
    pub fn prefetch_hidden_seconds(&self) -> f64 {
        match self {
            JoinStats::Pbsm(s) => s.prefetch_hidden_seconds(),
            JoinStats::S3j(s) => s.prefetch_hidden_seconds(),
            JoinStats::Sssj(s) => s.prefetch_hidden_seconds(),
            JoinStats::Shj(s) => s.prefetch_hidden_seconds(),
            JoinStats::Quadtree(_) => 0.0,
        }
    }

    /// The paper's "total runtime": emulated CPU + channel-parallel disk
    /// time, minus disk time hidden behind computation by prefetch. With one
    /// channel this reduces bit-exactly to
    /// `scaled_cpu_seconds() + io_seconds()`, the pre-channel serial clock.
    pub fn total_seconds(&self) -> f64 {
        match self {
            JoinStats::Pbsm(s) => s.total_seconds(),
            JoinStats::S3j(s) => s.total_seconds(),
            JoinStats::Sssj(s) => s.total_seconds(),
            JoinStats::Shj(s) => s.total_seconds(),
            JoinStats::Quadtree(s) => s.scaled_cpu_seconds(),
        }
    }

    /// Simulated position of the first emitted result (pipelining metric).
    pub fn first_result_seconds(&self) -> Option<f64> {
        match self {
            JoinStats::Pbsm(s) => s.first_result_seconds(),
            JoinStats::S3j(s) => s.first_result_seconds(),
            JoinStats::Sssj(s) => s.first_result_seconds(),
            JoinStats::Shj(_) | JoinStats::Quadtree(_) => None,
        }
    }

    /// The I/O-only leg of the first-result position: pure simulated time,
    /// never past `io_seconds()`. The probe minimizes the *combined*
    /// position over emitting tasks, so under `cpu_slowdown = 0` this is
    /// bit-identical at every thread count; with live CPU costing the
    /// minimizing task can shift with the host measurement.
    pub fn first_result_io_seconds(&self) -> Option<f64> {
        let io = match self {
            JoinStats::Pbsm(s) => s.first_result_io.as_ref(),
            JoinStats::S3j(s) => s.first_result_io.as_ref(),
            JoinStats::Sssj(s) => s.first_result_io.as_ref(),
            JoinStats::Shj(_) | JoinStats::Quadtree(_) => None,
        }?;
        Some(self.model().seconds(io))
    }

    /// Candidate pairs tested by the filter step, for algorithms that track
    /// them (`candidates == results + duplicates` holds by construction).
    pub fn candidates(&self) -> Option<u64> {
        match self {
            JoinStats::Pbsm(s) => Some(s.candidates),
            JoinStats::S3j(s) => Some(s.candidates),
            JoinStats::Sssj(_) | JoinStats::Shj(_) | JoinStats::Quadtree(_) => None,
        }
    }

    /// Rectangle/interval comparisons performed by the internal joins — the
    /// deterministic CPU-work proxy the paper's CPU plots measure
    /// indirectly. For the two-layer class scheme this is where the saved
    /// intersection and duplicate tests show up.
    pub fn tests(&self) -> u64 {
        match self {
            JoinStats::Pbsm(s) => s.join_counters.tests,
            JoinStats::S3j(s) => s.join_counters.tests,
            JoinStats::Sssj(s) => s.join_counters.tests,
            JoinStats::Shj(s) => s.join_counters.tests,
            JoinStats::Quadtree(s) => s.tests,
        }
    }

    /// The disk model the run was costed under.
    pub fn model(&self) -> DiskModel {
        match self {
            JoinStats::Pbsm(s) => s.model,
            JoinStats::S3j(s) => s.model,
            JoinStats::Sssj(s) => s.model,
            JoinStats::Shj(s) => s.model,
            JoinStats::Quadtree(s) => s.model,
        }
    }

    /// Builds the versioned, reconciled metrics document for this run.
    ///
    /// Phase CPU rows use the *same* field order as each stats struct's
    /// `cpu_seconds()` fold, so [`MetricsReport::reconcile`] can demand
    /// bit-exact agreement between the phase sum and the total; the
    /// checkpoint phase carries its I/O bucket with zero CPU (commit work is
    /// I/O-dominated and not separately timed).
    pub fn metrics_report(&self, algo: &str, threads: usize) -> MetricsReport {
        let cpu_phases: Vec<(&'static str, f64)> = match self {
            JoinStats::Pbsm(s) => vec![
                ("partition", s.cpu_partition),
                ("repartition", s.cpu_repart),
                ("join", s.cpu_join),
                ("dedup", s.cpu_dedup),
                ("checkpoint", 0.0),
            ],
            JoinStats::S3j(s) => vec![
                ("partition", s.cpu_partition),
                ("sort", s.cpu_sort),
                ("join", s.cpu_join),
                ("checkpoint", 0.0),
            ],
            JoinStats::Sssj(s) => vec![("sort", s.cpu_sort), ("join", s.cpu_join)],
            JoinStats::Shj(s) => vec![
                ("build", s.cpu_build),
                ("probe", s.cpu_probe),
                ("join", s.cpu_join),
            ],
            JoinStats::Quadtree(s) => vec![("build", s.cpu_build), ("join", s.cpu_join)],
        };
        let io_phases = self.io_phases();
        debug_assert_eq!(io_phases.len(), cpu_phases.len());
        let phases = io_phases
            .iter()
            .zip(&cpu_phases)
            .map(|((name, io), (cpu_name, cpu))| {
                debug_assert_eq!(name, cpu_name);
                PhaseMetric {
                    name,
                    io: *io,
                    cpu_seconds: *cpu,
                }
            })
            .collect();
        let counters = match self {
            JoinStats::Pbsm(s) => RunCounters {
                candidates: Some(s.candidates),
                results: s.results,
                duplicates: s.duplicates,
                partitions: u64::from(s.partitions),
                requeued_partitions: u64::from(s.requeued_partitions),
                degraded_partitions: u64::from(s.degraded_partitions),
                checkpoint_commits: s.checkpoint_commits,
                partition_cache_hits: 0,
            },
            JoinStats::S3j(s) => RunCounters {
                candidates: Some(s.candidates),
                results: s.results,
                duplicates: s.duplicates,
                checkpoint_commits: s.checkpoint_commits,
                ..RunCounters::default()
            },
            JoinStats::Sssj(s) => RunCounters {
                results: s.results,
                ..RunCounters::default()
            },
            JoinStats::Shj(s) => RunCounters {
                results: s.results,
                ..RunCounters::default()
            },
            JoinStats::Quadtree(s) => RunCounters {
                results: s.results,
                ..RunCounters::default()
            },
        };
        MetricsReport {
            schema_version: METRICS_SCHEMA_VERSION,
            algo: algo.to_string(),
            threads,
            model: self.model(),
            phases,
            counters,
            io_total: self.io_total(),
            channels: self.model().data_channels(),
            io_shared: self.io_shared(),
            io_channels: self.io_channels().to_vec(),
            cpu_seconds: self.cpu_seconds(),
            scaled_cpu_seconds: self.scaled_cpu_seconds(),
            io_seconds: self.io_seconds(),
            io_parallel_seconds: self.io_parallel_seconds(),
            prefetch_hidden_seconds: self.prefetch_hidden_seconds(),
            total_seconds: self.total_seconds(),
            first_result_seconds: self.first_result_seconds(),
            first_result_io_seconds: self.first_result_io_seconds(),
        }
    }
}

/// A configured spatial join, ready to run.
#[derive(Debug, Clone)]
pub struct SpatialJoin {
    algorithm: Algorithm,
    disk_model: DiskModel,
    fault_plan: Option<FaultPlan>,
    retry: RetryPolicy,
    cancel: Option<CancelToken>,
    deadline: Option<f64>,
    recorder: Option<Arc<Recorder>>,
}

/// Result of [`SpatialJoin::run`]: materialised pairs plus statistics.
#[derive(Debug)]
pub struct JoinRun {
    pub pairs: Vec<(RecordId, RecordId)>,
    pub stats: JoinStats,
}

impl SpatialJoin {
    pub fn new(algorithm: Algorithm) -> Self {
        SpatialJoin {
            algorithm,
            disk_model: DiskModel::default(),
            fault_plan: None,
            retry: RetryPolicy::default(),
            cancel: None,
            deadline: None,
            recorder: None,
        }
    }

    /// Overrides the simulated disk parameters.
    pub fn with_disk_model(mut self, model: DiskModel) -> Self {
        self.disk_model = model;
        self
    }

    /// Attaches a seeded fault plan to the per-run simulated disk. Only the
    /// partition-based joins (PBSM, S³J) have fallible code paths; running a
    /// baseline algorithm with a fault plan makes [`SpatialJoin::try_run`]
    /// return [`IoErrorKind::Unsupported`].
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Overrides the page-request retry policy used when a fault plan is
    /// attached (default: 4 attempts, exponential backoff).
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Shares a cooperative-cancellation token with the join. Tripping it
    /// from any thread stops the run at the next partition boundary with a
    /// typed `Cancelled` error (partial results already emitted stand).
    /// Only the partition-based joins (PBSM, S³J) poll the token; attaching
    /// one to a baseline makes [`SpatialJoin::try_run`] return
    /// [`IoErrorKind::Unsupported`].
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Simulated-time deadline in seconds (disk time under the cost model
    /// plus emulated CPU time). Checked at partition granularity; expiry
    /// surfaces as a typed `DeadlineExceeded` error after the tuples
    /// emitted so far. Baselines are refused as with
    /// [`SpatialJoin::with_cancel`].
    pub fn with_deadline(mut self, seconds: f64) -> Self {
        self.deadline = Some(seconds);
        self
    }

    /// Attaches a shared trace recorder. The partition-based joins (PBSM,
    /// S³J) record phase spans and per-partition events on the simulated
    /// clock into it; the single-sweep baselines run unobserved (attaching a
    /// recorder to one is a no-op, never an error). Read the trace back with
    /// [`Recorder::to_json`] after the run.
    pub fn with_recorder(mut self, recorder: Arc<Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    pub fn algorithm(&self) -> &Algorithm {
        &self.algorithm
    }

    fn control(&self) -> RunControl {
        let mut ctl = RunControl::none();
        if let Some(t) = &self.cancel {
            ctl = ctl.with_cancel(t.clone());
        }
        if let Some(d) = self.deadline {
            ctl = ctl.with_deadline(d);
        }
        if let Some(r) = &self.recorder {
            ctl = ctl.with_recorder(Arc::clone(r));
        }
        ctl
    }

    fn interruptible(&self) -> bool {
        self.cancel.is_some() || self.deadline.is_some()
    }

    fn make_disk(&self) -> SimDisk {
        let disk = SimDisk::new(self.disk_model);
        match self.fault_plan {
            Some(plan) => disk.with_faults(plan, self.retry),
            None => disk,
        }
    }

    /// Runs the join, streaming results into `out`. A fresh simulated disk
    /// is created per run, so statistics are independent across runs.
    ///
    /// A request that exhausts its retry budget and every degradation path
    /// surfaces as a typed [`JoinError`]; without a fault plan this never
    /// happens.
    pub fn try_run_with(
        &self,
        r: &[Kpe],
        s: &[Kpe],
        out: &mut dyn FnMut(RecordId, RecordId),
    ) -> Result<JoinStats, JoinError> {
        match &self.algorithm {
            Algorithm::Pbsm(cfg) => {
                pbsm::try_pbsm_join_ctl(&self.make_disk(), r, s, cfg, &self.control(), out)
                    .map(JoinStats::Pbsm)
            }
            Algorithm::S3j(cfg) => {
                s3j::try_s3j_join_ctl(&self.make_disk(), r, s, cfg, &self.control(), out)
                    .map(JoinStats::S3j)
            }
            // The single-sweep baselines and the in-memory quadtree have no
            // fallible code path and do not poll cancellation; refuse the
            // combination up front rather than panicking mid-join or
            // silently ignoring a deadline.
            Algorithm::Sssj(_) | Algorithm::Shj(_) | Algorithm::Quadtree(_)
                if self.fault_plan.is_some() || self.interruptible() =>
            {
                Err(JoinError::new("setup", IoError::unsupported()))
            }
            Algorithm::Sssj(cfg) => Ok(JoinStats::Sssj(sssj::sssj_join(
                &self.make_disk(),
                r,
                s,
                cfg,
                out,
            ))),
            Algorithm::Shj(cfg) => Ok(JoinStats::Shj(shj::shj_join(
                &self.make_disk(),
                r,
                s,
                cfg,
                out,
            ))),
            // The quadtree variant holds both relations' trees in memory at
            // once; enforcing the budget honestly keeps it comparable to the
            // external algorithms (and keeps the planner from "winning" with
            // an algorithm that could not actually run in the given budget).
            Algorithm::Quadtree(cfg) => {
                let input_bytes = (r.len() + s.len()) * Kpe::ENCODED_SIZE;
                if input_bytes > cfg.mem_bytes {
                    return Err(JoinError::new("setup", IoError::unsupported()));
                }
                let t0 = Instant::now();
                let tr = quadtree::MxCifQuadtree::bulk(r, cfg.max_level);
                let ts = quadtree::MxCifQuadtree::bulk(s, cfg.max_level);
                let cpu_build = t0.elapsed().as_secs_f64();
                let t1 = Instant::now();
                let mut results = 0u64;
                let tests = tr.join(&ts, &mut |a, b| {
                    results += 1;
                    out(a.id, b.id);
                });
                let cpu_join = t1.elapsed().as_secs_f64();
                Ok(JoinStats::Quadtree(QuadtreeStats {
                    results,
                    tests,
                    nodes_r: tr.node_count() as u64,
                    nodes_s: ts.node_count() as u64,
                    cpu_build,
                    cpu_join,
                    model: self.disk_model,
                    io_channels: vec![IoStats::default(); self.disk_model.data_channels()],
                }))
            }
        }
    }

    /// Infallible [`SpatialJoin::try_run_with`] for fault-free configurations.
    pub fn run_with(
        &self,
        r: &[Kpe],
        s: &[Kpe],
        out: &mut dyn FnMut(RecordId, RecordId),
    ) -> JoinStats {
        self.try_run_with(r, s, out)
            .unwrap_or_else(|e| panic!("unhandled simulated-disk error: {e}"))
    }

    /// Runs the join and materialises all result pairs.
    pub fn try_run(&self, r: &[Kpe], s: &[Kpe]) -> Result<JoinRun, JoinError> {
        let mut pairs = Vec::new();
        let stats = self.try_run_with(r, s, &mut |a, b| pairs.push((a, b)))?;
        Ok(JoinRun { pairs, stats })
    }

    /// Infallible [`SpatialJoin::try_run`] for fault-free configurations.
    pub fn run(&self, r: &[Kpe], s: &[Kpe]) -> JoinRun {
        self.try_run(r, s)
            .unwrap_or_else(|e| panic!("unhandled simulated-disk error: {e}"))
    }

    /// Runs the join, counting results without materialising them.
    pub fn try_count(&self, r: &[Kpe], s: &[Kpe]) -> Result<(u64, JoinStats), JoinError> {
        let mut n = 0u64;
        let stats = self.try_run_with(r, s, &mut |_, _| n += 1)?;
        Ok((n, stats))
    }

    /// Infallible [`SpatialJoin::try_count`] for fault-free configurations.
    pub fn count(&self, r: &[Kpe], s: &[Kpe]) -> (u64, JoinStats) {
        self.try_count(r, s)
            .unwrap_or_else(|e| panic!("unhandled simulated-disk error: {e}"))
    }

    /// Manifest algorithm tag of the checkpointable joins; `None` for the
    /// single-sweep baselines (which cannot be checkpointed).
    fn algo_tag(&self) -> Option<u8> {
        match &self.algorithm {
            Algorithm::Pbsm(_) => Some(1),
            Algorithm::S3j(_) => Some(2),
            Algorithm::Sssj(_) | Algorithm::Shj(_) | Algorithm::Quadtree(_) => None,
        }
    }

    /// Run fingerprint: FNV-1a over the algorithm configuration and both
    /// relations' contents. A resume is refused when the fingerprint does
    /// not match the one in the recovered manifest — a changed config or
    /// input would silently corrupt exactly-once accounting. The worker
    /// thread knob is normalised out: a run may legally be resumed with a
    /// different degree of parallelism (the output stream is identical).
    pub fn fingerprint(&self, r: &[Kpe], s: &[Kpe]) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        fn eat(h: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *h ^= b as u64;
                *h = h.wrapping_mul(FNV_PRIME);
            }
        }
        let mut h = FNV_OFFSET;
        let algo = self.algorithm.clone().with_threads(1);
        eat(&mut h, format!("{algo:?}").as_bytes());
        for rel in [r, s] {
            eat(&mut h, &(rel.len() as u64).to_le_bytes());
            for k in rel {
                eat(&mut h, &k.id.0.to_le_bytes());
                for c in [k.rect.xl, k.rect.yl, k.rect.xh, k.rect.yh] {
                    eat(&mut h, &c.to_bits().to_le_bytes());
                }
            }
        }
        h
    }

    /// Runs the join as a *durable, checkpointed* run on `disk` — the
    /// crash-recovery entry point.
    ///
    /// On an empty disk this creates the superblock (by convention the
    /// disk's first file, raw id 0) and starts a fresh run under `run_id`.
    /// On a disk restored from an interrupted run's snapshot it recovers
    /// the published manifest (verifying [`SpatialJoin::fingerprint`]),
    /// truncates any torn journal tail, sweeps orphan files, and resumes:
    /// journal-committed partitions are skipped and only the uncommitted
    /// partitions' pairs are emitted, so the interrupted leg plus this leg
    /// together produce the uninterrupted output exactly once.
    ///
    /// Only the partition-based joins with online duplicate suppression
    /// can be checkpointed; baselines, PBSM sort-phase dedup and the S³J
    /// ablation scan are refused with [`IoErrorKind::Unsupported`].
    pub fn try_run_durable(
        &self,
        disk: &SimDisk,
        r: &[Kpe],
        s: &[Kpe],
        run_id: u64,
    ) -> Result<JoinRun, JoinError> {
        let mut pairs = Vec::new();
        let stats =
            self.try_run_durable_with(disk, r, s, run_id, &mut |a, b| pairs.push((a, b)))?;
        Ok(JoinRun { pairs, stats })
    }

    /// Streaming form of [`SpatialJoin::try_run_durable`]: result pairs go to
    /// `out` as each partition commits. Unlike the materialising wrapper,
    /// pairs emitted *before* an interruption stay observable — exactly what
    /// the crash-recovery oracle needs to check that the interrupted leg plus
    /// the resumed leg reproduce the uninterrupted output with no overlap.
    pub fn try_run_durable_with(
        &self,
        disk: &SimDisk,
        r: &[Kpe],
        s: &[Kpe],
        run_id: u64,
        out: &mut dyn FnMut(RecordId, RecordId),
    ) -> Result<JoinStats, JoinError> {
        let Some(tag) = self.algo_tag() else {
            return Err(JoinError::new("setup", IoError::unsupported()));
        };
        let fp = self.fingerprint(r, s);
        let sb = FileId::from_raw(0);
        let cp = if disk.exists(sb) {
            match storage::recover(disk, sb, fp)? {
                Recovered::Resumed(cp) => cp,
                Recovered::Fresh => RunCheckpoint::start(disk, sb, run_id, fp, tag),
            }
        } else {
            let created = disk.create();
            debug_assert_eq!(created.raw(), 0, "superblock must be the disk's first file");
            RunCheckpoint::start(disk, created, run_id, fp, tag)
        };
        let ctl = self.control().with_checkpoint(cp);
        match &self.algorithm {
            Algorithm::Pbsm(cfg) => {
                pbsm::try_pbsm_join_ctl(disk, r, s, cfg, &ctl, out).map(JoinStats::Pbsm)
            }
            Algorithm::S3j(cfg) => {
                s3j::try_s3j_join_ctl(disk, r, s, cfg, &ctl, out).map(JoinStats::S3j)
            }
            // `algo_tag` returned above for the baselines and the quadtree.
            Algorithm::Sssj(_) | Algorithm::Shj(_) | Algorithm::Quadtree(_) => {
                Err(JoinError::new("setup", IoError::unsupported()))
            }
        }
    }

    /// Filter step + refinement step in one pipelined pass: every candidate
    /// the filter emits is verified against exact geometry by `refiner`
    /// immediately ([BKSS 94]-style multi-step processing — possible online
    /// precisely because the Reference Point Method keeps the candidate
    /// stream duplicate-free, §3.1).
    pub fn try_run_refined<R: refine::Refiner>(
        &self,
        r: &[Kpe],
        s: &[Kpe],
        refiner: R,
    ) -> Result<RefinedRun, JoinError> {
        let mut pairs = Vec::new();
        let mut sink = |a: RecordId, b: RecordId| pairs.push((a, b));
        let mut stage = refine::Refinement::new(refiner, &mut sink);
        let filter = self.try_run_with(r, s, &mut |a, b| stage.accept(a, b))?;
        let refine = stage.stats();
        Ok(RefinedRun {
            pairs,
            filter,
            refine,
        })
    }

    /// Infallible [`SpatialJoin::try_run_refined`] for fault-free
    /// configurations.
    pub fn run_refined<R: refine::Refiner>(
        &self,
        r: &[Kpe],
        s: &[Kpe],
        refiner: R,
    ) -> RefinedRun {
        self.try_run_refined(r, s, refiner)
            .unwrap_or_else(|e| panic!("unhandled simulated-disk error: {e}"))
    }

    /// Exact-intersection refinement with the raster-interval pre-filter
    /// ([`refine::RasterFilter`]) in front of the exact geometry test.
    /// Results are bit-identical to the unfiltered run; only the
    /// [`refine::RefineStats`] raster counters differ.
    pub fn try_run_refined_raster(
        &self,
        r: &datagen::LineDataset,
        s: &datagen::LineDataset,
        curve: sfc::Curve,
    ) -> Result<RefinedRun, JoinError> {
        self.try_run_refined(
            &r.kpes,
            &s.kpes,
            refine::RasterFilter::intersect(&r.segments, &s.segments, curve),
        )
    }

    /// ε-distance join over exact line geometry (the similarity-join
    /// direction of the paper's future work, [KS 98]): the filter step runs
    /// this join over `ε/2`-expanded MBRs, the refinement step verifies
    /// exact segment distance.
    pub fn try_within_distance(
        &self,
        r: &datagen::LineDataset,
        s: &datagen::LineDataset,
        eps: f64,
    ) -> Result<RefinedRun, JoinError> {
        self.within_distance_impl(r, s, eps, None)
    }

    /// [`SpatialJoin::try_within_distance`] with the raster-interval
    /// pre-filter: certain accepts/rejects skip the exact distance test.
    pub fn try_within_distance_raster(
        &self,
        r: &datagen::LineDataset,
        s: &datagen::LineDataset,
        eps: f64,
        curve: sfc::Curve,
    ) -> Result<RefinedRun, JoinError> {
        self.within_distance_impl(r, s, eps, Some(curve))
    }

    fn within_distance_impl(
        &self,
        r: &datagen::LineDataset,
        s: &datagen::LineDataset,
        eps: f64,
        curve: Option<sfc::Curve>,
    ) -> Result<RefinedRun, JoinError> {
        assert!(eps >= 0.0);
        let expand = |data: &[Kpe]| -> Vec<Kpe> {
            data.iter()
                .map(|k| Kpe::new(k.id, k.rect.expanded(eps / 2.0)))
                .collect()
        };
        let re = expand(&r.kpes);
        let se = expand(&s.kpes);
        match curve {
            Some(c) => self.try_run_refined(
                &re,
                &se,
                refine::RasterFilter::within_distance(&r.segments, &s.segments, eps, c),
            ),
            None => self.try_run_refined(
                &re,
                &se,
                refine::SegmentWithinDistance {
                    r: &r.segments,
                    s: &s.segments,
                    eps,
                },
            ),
        }
    }

    /// Infallible [`SpatialJoin::try_within_distance`] for fault-free
    /// configurations.
    pub fn within_distance(
        &self,
        r: &datagen::LineDataset,
        s: &datagen::LineDataset,
        eps: f64,
    ) -> RefinedRun {
        self.try_within_distance(r, s, eps)
            .unwrap_or_else(|e| panic!("unhandled simulated-disk error: {e}"))
    }
}

/// Result of a combined filter + refinement run.
pub struct RefinedRun {
    /// Pairs whose exact geometries satisfy the predicate.
    pub pairs: Vec<(RecordId, RecordId)>,
    /// Filter-step statistics.
    pub filter: JoinStats,
    /// Refinement-step statistics (candidates, hits, false-positive rate).
    pub refine: refine::RefineStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_pair() -> (Vec<Kpe>, Vec<Kpe>) {
        let r = datagen::sized(&datagen::la_rr_config(7), 0.01).generate();
        let s = datagen::sized(&datagen::la_st_config(7), 0.01).generate();
        (r, s)
    }

    #[test]
    fn all_algorithms_agree_through_the_public_api() {
        let (r, s) = small_pair();
        let mem = 64 * 1024;
        let algorithms = [
            Algorithm::pbsm_rpm(mem),
            Algorithm::pbsm_original(mem),
            Algorithm::s3j_replicated(mem),
            Algorithm::s3j_original(mem),
            Algorithm::sssj(mem),
            Algorithm::shj(mem),
            Algorithm::two_layer(mem),
            Algorithm::quadtree(1 << 20),
        ];
        let mut reference: Option<Vec<(u64, u64)>> = None;
        for algo in algorithms {
            let name = algo.name();
            let run = SpatialJoin::new(algo).run(&r, &s);
            let mut pairs: Vec<(u64, u64)> =
                run.pairs.iter().map(|(a, b)| (a.0, b.0)).collect();
            pairs.sort_unstable();
            assert_eq!(run.stats.results() as usize, pairs.len(), "{name}");
            match &reference {
                None => reference = Some(pairs),
                Some(want) => assert_eq!(&pairs, want, "{name} diverges"),
            }
        }
    }

    #[test]
    fn count_matches_run() {
        let (r, s) = small_pair();
        let join = SpatialJoin::new(Algorithm::pbsm_rpm(64 * 1024));
        let run = join.run(&r, &s);
        let (n, stats) = join.count(&r, &s);
        assert_eq!(n as usize, run.pairs.len());
        assert_eq!(stats.results(), run.stats.results());
    }

    #[test]
    fn disk_model_scales_io_seconds() {
        let (r, s) = small_pair();
        let slow = DiskModel {
            transfer_secs_per_page: 0.01,
            ..Default::default()
        };
        let fast = DiskModel {
            transfer_secs_per_page: 0.0001,
            ..Default::default()
        };
        let mem = 48 * 1024;
        let (_, st_slow) = SpatialJoin::new(Algorithm::pbsm_rpm(mem))
            .with_disk_model(slow)
            .count(&r, &s);
        let (_, st_fast) = SpatialJoin::new(Algorithm::pbsm_rpm(mem))
            .with_disk_model(fast)
            .count(&r, &s);
        assert!(st_slow.io_seconds() > st_fast.io_seconds() * 10.0);
        // Same work, same counters.
        assert_eq!(st_slow.io_total(), st_fast.io_total());
    }

    #[test]
    fn recoverable_faults_do_not_change_results() {
        let (r, s) = small_pair();
        for algo in [Algorithm::pbsm_rpm(64 * 1024), Algorithm::s3j_replicated(64 * 1024)] {
            let clean = SpatialJoin::new(algo.clone()).run(&r, &s);
            let faulty = SpatialJoin::new(algo)
                .with_faults(FaultPlan::recoverable(11))
                .try_run(&r, &s)
                .expect("recoverable faults must be cured by retries");
            let sort = |run: &JoinRun| {
                let mut v: Vec<(u64, u64)> = run.pairs.iter().map(|(a, b)| (a.0, b.0)).collect();
                v.sort_unstable();
                v
            };
            assert_eq!(sort(&clean), sort(&faulty));
            let io = faulty.stats.io_total();
            assert!(io.faults_injected > 0, "plan must actually fire");
            assert!(io.read_retries + io.write_retries > 0);
            assert_eq!(clean.stats.io_total().faults_injected, 0);
        }
    }

    #[test]
    fn unrecoverable_faults_surface_typed_errors() {
        let (r, s) = small_pair();
        for algo in [Algorithm::pbsm_rpm(64 * 1024), Algorithm::s3j_replicated(64 * 1024)] {
            let err = SpatialJoin::new(algo)
                .with_faults(FaultPlan::unrecoverable(5))
                .try_run(&r, &s)
                .expect_err("every request fails: the join cannot succeed");
            let io = err.io().expect("fault-induced errors carry an IoError");
            assert!(io.kind.is_transient() || io.attempts >= 1);
            assert!(!err.phase.is_empty());
        }
    }

    #[test]
    fn baselines_reject_fault_plans_up_front() {
        let (r, s) = small_pair();
        for algo in [
            Algorithm::sssj(64 * 1024),
            Algorithm::shj(64 * 1024),
            Algorithm::quadtree(1 << 20),
        ] {
            let err = SpatialJoin::new(algo)
                .with_faults(FaultPlan::recoverable(1))
                .try_run(&r, &s)
                .expect_err("baselines have no fallible code path");
            assert_eq!(err.io().map(|io| io.kind), Some(IoErrorKind::Unsupported));
            assert_eq!(err.phase, "setup");
        }
    }

    #[test]
    fn quadtree_refuses_inputs_over_its_memory_budget() {
        let (r, s) = small_pair();
        let err = SpatialJoin::new(Algorithm::quadtree(1024))
            .try_run(&r, &s)
            .expect_err("both trees cannot fit 1 KiB");
        assert_eq!(err.io().map(|io| io.kind), Some(IoErrorKind::Unsupported));
        assert_eq!(err.phase, "setup");
    }

    #[test]
    fn retry_policy_none_turns_recoverable_into_failure() {
        let (r, s) = small_pair();
        let res = SpatialJoin::new(Algorithm::pbsm_rpm(64 * 1024))
            .with_faults(FaultPlan::recoverable(11))
            .with_retry(RetryPolicy::none())
            .try_run(&r, &s);
        // With one attempt per request and no degradation deep enough to
        // outlast a 5% identity fault rate, the join is overwhelmingly
        // likely to fail — and must do so with a typed error, not a panic.
        if let Err(e) = res {
            assert!(e.io().is_some_and(|io| io.attempts >= 1));
        }
    }

    #[test]
    fn names_are_distinct_and_stable() {
        let names: Vec<&str> = [
            Algorithm::pbsm_rpm(1),
            Algorithm::pbsm_original(1),
            Algorithm::s3j_replicated(1),
            Algorithm::s3j_original(1),
            Algorithm::sssj(1),
            Algorithm::shj(1),
            Algorithm::two_layer(1),
            Algorithm::quadtree(1),
        ]
        .iter()
        .map(|a| a.name())
        .collect();
        let mut uniq = names.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), names.len());
    }
}
