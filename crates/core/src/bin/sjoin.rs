//! `sjoin` — command-line spatial join runner.
//!
//! ```text
//! sjoin [--left la_rr|la_st|cal_st|uniform|clustered]
//!       [--right la_rr|la_st|cal_st|uniform|clustered|self]
//!       [--algo pbsm|pbsm-trie|pbsm-sort|twolayer|s3j|s3j-orig|sssj|shj|quadtree]
//!       [--mem-mb <f64>] [--scale <f64>] [--p <f64>] [--seed <u64>]
//!       [--threads <n>] [--channels <d>] [--limit <n>] [--refine]
//!       [--distance <eps>] [--raster-filter] [--stats]
//!       [--faults <seed>] [--fault-rate <p>] [--retry <n>] [--deadline <s>]
//!       [--persistent-rate <p>] [--disk-budget <pages>]
//!       [--degraded-channel <c:factor>]
//!       [--durable] [--crash <spec>] [--run-dir <dir>] [--resume <id>]
//!       [--metrics-json <path>] [--trace <path>]
//!       [--plan off|auto|explain] [--plan-coeffs <path>]
//! sjoin scrub [--run-dir <dir>]
//! ```
//!
//! Examples:
//!
//! ```text
//! sjoin --scale 0.05                          # LA_RR ⋈ LA_ST with PBSM-RPM
//! sjoin --algo s3j --mem-mb 2.5 --p 3         # S3J on LA_RR(3) ⋈ LA_ST(3)
//! sjoin --left cal_st --right self --stats    # J5 with phase breakdown
//! sjoin --refine --limit 5                    # exact road crossings
//! sjoin --channels 4 --threads 4 --stats      # 4 I/O channels: overlapped I/O
//! sjoin --faults 7 --metrics-json m.json      # reconciled metrics under faults
//! sjoin --durable --crash after-commit:2      # die mid-run, then --resume 42
//! sjoin --plan auto --mem-mb 2                # planner picks the algorithm
//! sjoin --plan explain                        # ranked candidate table, then run
//! ```
//!
//! Exit codes: 0 success, 1 join error, 2 usage error, 3 resumable
//! interruption of a durable run (crash point, deadline, cancellation).

use spatialjoin::estimate::{Coefficients, DatasetProfile, PlanMode, Planner};
use spatialjoin::{
    datagen, refine, Algorithm, CrashPoint, DiskModel, FaultPlan, InternalAlgo, JoinRun,
    JoinStats, Recorder, RetryPolicy, SimDisk, SpatialJoin,
};

struct Args {
    left: String,
    right: String,
    algo: String,
    mem_mb: f64,
    scale: f64,
    p: f64,
    seed: u64,
    threads: usize,
    channels: usize,
    limit: usize,
    refine: bool,
    distance: Option<f64>,
    raster_filter: bool,
    stats: bool,
    faults: Option<u64>,
    fault_rate: Option<f64>,
    persistent_rate: Option<f64>,
    disk_budget: Option<u64>,
    degraded_channel: Option<(usize, f64)>,
    retry: Option<u32>,
    deadline: Option<f64>,
    crash: Option<CrashPoint>,
    durable: bool,
    run_dir: String,
    resume: Option<u64>,
    metrics_json: Option<String>,
    trace: Option<String>,
    plan: PlanMode,
    plan_coeffs: Option<String>,
}

/// Every flag the parser accepts, kept next to the `match` below so the
/// usage test can diff it against `HELP` — the drift this guards against is
/// exactly what PR 5 had to fix.
const VALID_FLAGS: &[&str] = &[
    "--left",
    "--right",
    "--algo",
    "--mem-mb",
    "--scale",
    "--p",
    "--seed",
    "--threads",
    "--channels",
    "--limit",
    "--refine",
    "--distance",
    "--raster-filter",
    "--stats",
    "--faults",
    "--fault-rate",
    "--persistent-rate",
    "--disk-budget",
    "--degraded-channel",
    "--retry",
    "--deadline",
    "--crash",
    "--durable",
    "--run-dir",
    "--resume",
    "--metrics-json",
    "--trace",
    "--plan",
    "--plan-coeffs",
    "--help",
];

/// Levenshtein edit distance, for "did you mean" on unknown flags.
fn edit_distance(a: &str, b: &str) -> usize {
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.chars().enumerate() {
        let mut cur = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

/// The closest valid flag within a small edit radius, if any.
fn nearest_flag(unknown: &str) -> Option<&'static str> {
    VALID_FLAGS
        .iter()
        .map(|&f| (edit_distance(unknown, f), f))
        .min()
        .filter(|&(d, _)| d <= 3)
        .map(|(_, f)| f)
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut args = Args {
            left: "la_rr".into(),
            right: "la_st".into(),
            algo: "pbsm".into(),
            mem_mb: 5.0,
            scale: 0.05,
            p: 1.0,
            seed: 42,
            threads: 1,
            channels: 1,
            limit: 0,
            refine: false,
            distance: None,
            raster_filter: false,
            stats: false,
            faults: None,
            fault_rate: None,
            persistent_rate: None,
            disk_budget: None,
            degraded_channel: None,
            retry: None,
            deadline: None,
            crash: None,
            durable: false,
            run_dir: "runs".into(),
            resume: None,
            metrics_json: None,
            trace: None,
            plan: PlanMode::Off,
            plan_coeffs: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut val = |name: &str| -> Result<String, String> {
                it.next().ok_or_else(|| format!("{name} needs a value"))
            };
            match flag.as_str() {
                "--left" => args.left = val("--left")?,
                "--right" => args.right = val("--right")?,
                "--algo" => args.algo = val("--algo")?,
                "--mem-mb" => args.mem_mb = parse_num(&val("--mem-mb")?)?,
                "--scale" => args.scale = parse_num(&val("--scale")?)?,
                "--p" => args.p = parse_num(&val("--p")?)?,
                "--seed" => args.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
                "--threads" => {
                    args.threads =
                        val("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?
                }
                "--channels" => {
                    args.channels =
                        val("--channels")?.parse().map_err(|e| format!("--channels: {e}"))?;
                    if args.channels == 0 {
                        return Err("--channels: need at least one I/O channel".into());
                    }
                }
                "--limit" => args.limit = val("--limit")?.parse().map_err(|e| format!("--limit: {e}"))?,
                "--refine" => args.refine = true,
                "--distance" => args.distance = Some(parse_num(&val("--distance")?)?),
                "--raster-filter" => {
                    args.raster_filter = true;
                    args.refine = true; // a pre-filter for the refinement step
                }
                "--stats" => args.stats = true,
                "--faults" => {
                    args.faults =
                        Some(val("--faults")?.parse().map_err(|e| format!("--faults: {e}"))?)
                }
                "--fault-rate" => args.fault_rate = Some(parse_num(&val("--fault-rate")?)?),
                "--persistent-rate" => {
                    args.persistent_rate = Some(parse_num(&val("--persistent-rate")?)?)
                }
                "--disk-budget" => {
                    args.disk_budget = Some(
                        val("--disk-budget")?
                            .parse()
                            .map_err(|e| format!("--disk-budget: {e}"))?,
                    )
                }
                "--degraded-channel" => {
                    args.degraded_channel = Some(parse_degraded_channel(&val("--degraded-channel")?)?)
                }
                "--retry" => {
                    args.retry =
                        Some(val("--retry")?.parse().map_err(|e| format!("--retry: {e}"))?)
                }
                "--deadline" => args.deadline = Some(parse_num(&val("--deadline")?)?),
                "--crash" => {
                    let spec = val("--crash")?;
                    args.crash = Some(CrashPoint::from_spec(&spec).ok_or_else(|| {
                        format!(
                            "--crash: bad spec {spec} \
                             (after-commit:N | mid-partition:N | mid-rename)"
                        )
                    })?)
                }
                "--durable" => args.durable = true,
                "--run-dir" => args.run_dir = val("--run-dir")?,
                "--resume" => {
                    args.resume =
                        Some(val("--resume")?.parse().map_err(|e| format!("--resume: {e}"))?)
                }
                "--metrics-json" => args.metrics_json = Some(val("--metrics-json")?),
                "--trace" => args.trace = Some(val("--trace")?),
                "--plan" => args.plan = PlanMode::parse(&val("--plan")?).map_err(|e| format!("--plan: {e}"))?,
                "--plan-coeffs" => args.plan_coeffs = Some(val("--plan-coeffs")?),
                "--help" | "-h" => {
                    println!("{}", HELP);
                    std::process::exit(0);
                }
                other => {
                    return Err(match nearest_flag(other) {
                        Some(near) => {
                            format!("unknown flag {other} (did you mean {near}? try --help)")
                        }
                        None => format!("unknown flag {other} (try --help)"),
                    })
                }
            }
        }
        Ok(args)
    }
}

const HELP: &str = "sjoin - index-free spatial joins (Dittrich & Seeger, ICDE 2000)
  --left/--right  la_rr | la_st | cal_st | uniform | clustered | self (right only)
  --algo          pbsm | pbsm-trie | pbsm-sort | twolayer | s3j | s3j-orig |
                  sssj | shj | quadtree
  --mem-mb N      memory budget in MiB                  (default 5)
  --scale F       dataset scale, 1.0 = paper size       (default 0.05)
  --p F           grow MBR edges by factor p            (default 1)
  --seed N        dataset seed                          (default 42)
  --threads N     worker threads for the join phase, 0 = all cores (default 1)
  --channels D    independent simulated I/O channels (default 1); partition and
                  level files overlap across channels, shared files (manifest,
                  journal, results) stay serial — results are identical, only
                  the simulated clock improves
  --limit N       print the first N result pairs
  --refine        verify candidates against exact segment geometry
  --distance EPS  eps-distance join instead of intersection (implies --refine)
  --raster-filter raster-interval pre-filter for the refinement step (implies
                  --refine): certain accepts/rejects skip the exact geometry
                  test; results are bit-identical, counters show the savings
  --stats         print the phase breakdown
  --faults SEED   inject seeded deterministic disk faults
  --fault-rate P  fraction of request identities that fail  (default 0.05)
  --persistent-rate P  fraction of (channel, page) sectors with persistent
                  media damage: re-reads always fail, so the join must
                  quarantine and recompute the affected partition/level files
                  (exit 0 with a `degraded` line) or surface a typed error
  --disk-budget N cap the simulated volume at N pages; writes past it fail
                  with disk-full and trigger the typed fallback ladder
  --degraded-channel C:F  multiply data channel C's transfer time by F
                  (results unchanged; only the simulated clock degrades)
  --retry N       attempts per page request, incl. the first (default 4)
  --deadline S    simulated-time deadline in seconds; expiry exits 3 (resumable
                  when the run is durable)
  --durable       checkpoint the run (manifest + journal); interruptions leave
                  a resumable state snapshot under --run-dir
  --crash SPEC    durable run that dies at a crash point:
                  after-commit:N | mid-partition:N | mid-rename
  --run-dir DIR   where interrupted durable runs keep state.bin (default runs)
  --resume ID     resume an interrupted durable run (pass the SAME dataset,
                  algorithm and memory flags; threads may differ)
  --metrics-json P  write the reconciled metrics report (versioned JSON) to P;
                  refuses to write numbers that do not sum to the run totals
  --trace P       write the phase-span/partition-event trace (simulated-time
                  JSON) to P
  --plan MODE     off (default) runs --algo as given; auto lets the cost-based
                  planner pick the algorithm, tiles, sweep and buffer split for
                  the memory budget; explain also prints the ranked candidate
                  table (predicted vs chosen) before running the winner
  --plan-coeffs P fitted correction coefficients for the planner's cost model
                  (default planner-coeffs.json if present; refit with
                  `cargo run -p bench --bin planner-eval -- --fit BENCH_pr10.json`)

  sjoin scrub [--run-dir DIR]   offline integrity walk over the interrupted
                  durable runs under DIR (default runs): validates each
                  state.bin snapshot and prints a machine-readable JSON
                  summary; exit 0 when every snapshot is sound, 1 otherwise";

fn parse_num(v: &str) -> Result<f64, String> {
    v.parse().map_err(|e| format!("bad number {v}: {e}"))
}

/// Parses a `--degraded-channel` spec: `CHANNEL:FACTOR`, factor ≥ 1.
fn parse_degraded_channel(spec: &str) -> Result<(usize, f64), String> {
    let err = || format!("--degraded-channel: bad spec {spec} (want CHANNEL:FACTOR, e.g. 0:4)");
    let (c, f) = spec.split_once(':').ok_or_else(err)?;
    let channel: usize = c.parse().map_err(|_| err())?;
    let factor: f64 = f.parse().map_err(|_| err())?;
    if !factor.is_finite() || factor < 1.0 {
        return Err(format!("--degraded-channel: factor must be >= 1, got {factor}"));
    }
    Ok((channel, factor))
}

/// Assembles the fault plan from the injection flags, or `None` when no
/// fault flag was given. `--faults SEED` supplies the transient plan; the
/// persistent taxa (`--persistent-rate`, `--disk-budget`,
/// `--degraded-channel`) compose onto it, or onto an otherwise-clean plan
/// keyed on the dataset seed when `--faults` is absent.
fn fault_plan(args: &Args) -> Option<FaultPlan> {
    let taxa = args.persistent_rate.is_some()
        || args.disk_budget.is_some()
        || args.degraded_channel.is_some();
    if args.faults.is_none() && !taxa {
        return None;
    }
    let mut plan = match args.faults {
        Some(seed) => FaultPlan::recoverable(seed),
        None => FaultPlan::none(args.seed),
    };
    if let Some(rate) = args.fault_rate {
        plan.fault_rate = rate.clamp(0.0, 1.0);
    }
    if let Some(rate) = args.persistent_rate {
        plan = plan.with_persistent_rate(rate.clamp(0.0, 1.0));
    }
    if let Some(pages) = args.disk_budget {
        plan = plan.with_disk_budget(pages);
    }
    if let Some((channel, factor)) = args.degraded_channel {
        plan = plan.with_degraded_channel(channel, factor);
    }
    Some(plan)
}

/// Quarantine and fallback events that let the run finish *exactly* despite
/// persistent media damage. Printed unconditionally (not only under
/// `--stats`): the join exits 0 because the result is correct, but an
/// operator should know the media is rotting under it.
fn degraded_line(stats: &JoinStats) -> Option<String> {
    let mut parts = Vec::new();
    match stats {
        JoinStats::Pbsm(s) => {
            if s.quarantined_partitions > 0 {
                parts.push(format!(
                    "{} partition file(s) quarantined and recomputed from source",
                    s.quarantined_partitions
                ));
            }
            if s.enospc_fallbacks > 0 {
                parts.push(format!("{} disk-full fallback(s)", s.enospc_fallbacks));
            }
        }
        JoinStats::S3j(s) => {
            if s.quarantined_levels > 0 {
                parts.push(format!(
                    "{} level file(s) quarantined and recomputed from source",
                    s.quarantined_levels
                ));
            }
        }
        JoinStats::Sssj(_) | JoinStats::Shj(_) | JoinStats::Quadtree(_) => {}
    }
    if parts.is_empty() {
        None
    } else {
        Some(parts.join(", "))
    }
}

fn dataset(name: &str, scale: f64, seed: u64) -> Result<datagen::LineDataset, String> {
    let cfg = match name {
        "la_rr" => datagen::la_rr_config(seed),
        "la_st" => datagen::la_st_config(seed),
        "cal_st" => datagen::cal_st_config(seed),
        "uniform" | "clustered" => datagen::LineNetwork {
            count: (50_000_f64 * scale).max(16.0) as usize,
            coverage: 0.1,
            segments_per_line: if name == "clustered" { 60 } else { 2 },
            seed,
        },
        other => return Err(format!("unknown dataset {other}")),
    };
    Ok(datagen::sized(&cfg, if matches!(name, "uniform" | "clustered") { 1.0 } else { scale })
        .generate_dataset())
}

fn algorithm(name: &str, mem: usize) -> Result<Algorithm, String> {
    Ok(match name {
        "pbsm" => Algorithm::pbsm_rpm(mem),
        "pbsm-trie" => {
            let Algorithm::Pbsm(mut cfg) = Algorithm::pbsm_rpm(mem) else {
                unreachable!()
            };
            cfg.internal = InternalAlgo::PlaneSweepTrie;
            Algorithm::Pbsm(cfg)
        }
        "pbsm-sort" => Algorithm::pbsm_original(mem),
        "s3j" => Algorithm::s3j_replicated(mem),
        "s3j-orig" => Algorithm::s3j_original(mem),
        "sssj" => Algorithm::sssj(mem),
        "shj" => Algorithm::shj(mem),
        "twolayer" => Algorithm::two_layer(mem),
        "quadtree" => Algorithm::quadtree(mem),
        other => return Err(format!("unknown algorithm {other}")),
    })
}

fn print_phase_stats(stats: &JoinStats) {
    match stats {
        JoinStats::Pbsm(s) => {
            println!("  partitions       : {} (grid {}x{})", s.partitions, s.grid.gx, s.grid.gy);
            println!(
                "  replication      : {} copies written (+{} while repartitioning)",
                s.copies_r + s.copies_s,
                s.repart_copies
            );
            println!("  repartitioned    : {} pairs", s.repartitioned_pairs);
            if s.degraded_partitions + s.requeued_partitions > 0 {
                println!(
                    "  fault recovery   : {} partitions degraded, {} requeued",
                    s.degraded_partitions, s.requeued_partitions
                );
            }
            println!("  candidates       : {}", s.candidates);
            println!("  duplicates       : {}", s.duplicates);
            println!("  intersection tests: {}", s.join_counters.tests);
        }
        JoinStats::S3j(s) => {
            println!(
                "  level copies     : {} / {} (r/s), {} levels occupied",
                s.copies_r,
                s.copies_s,
                s.histogram_r.iter().filter(|&&n| n > 0).count()
            );
            println!("  sort runs        : {}", s.sort_runs);
            println!("  candidates       : {}", s.candidates);
            println!("  duplicates       : {}", s.duplicates);
            println!("  intersection tests: {}", s.join_counters.tests);
        }
        JoinStats::Sssj(s) => {
            println!("  sort runs        : {} + {}", s.sort_r.runs, s.sort_s.runs);
            println!("  peak sweep status: {} rects", s.peak_status);
            println!("  intersection tests: {}", s.join_counters.tests);
        }
        JoinStats::Shj(s) => {
            println!("  buckets          : {}", s.buckets);
            println!(
                "  probe copies     : {} ({} filtered out)",
                s.probe_copies, s.probe_filtered
            );
            println!("  overflowed pairs : {}", s.overflowed_pairs);
            println!("  intersection tests: {}", s.join_counters.tests);
        }
        JoinStats::Quadtree(s) => {
            println!("  tree nodes       : {} + {} (r/s)", s.nodes_r, s.nodes_s);
            println!("  intersection tests: {}", s.tests);
        }
    }
}

/// Writes the `--metrics-json` and `--trace` artifacts. The metrics
/// exporter *refuses to write* a report that fails reconciliation — a
/// mismatch means the accounting is broken, and a broken number on disk is
/// worse than no number (exit 1, like any other join failure).
fn export_observability(
    args: &Args,
    stats: &JoinStats,
    algo_name: &str,
    recorder: Option<&Recorder>,
) {
    if let Some(path) = &args.metrics_json {
        let report = stats.metrics_report(algo_name, args.threads);
        if let Err(e) = report.reconcile() {
            eprintln!("error: refusing to write {path}: {e}");
            std::process::exit(1);
        }
        std::fs::write(path, report.to_json())
            .unwrap_or_else(|e| die(format!("cannot write {path}: {e}")));
        println!("metrics written  : {path}");
    }
    if let (Some(path), Some(rec)) = (&args.trace, recorder) {
        std::fs::write(path, rec.to_json())
            .unwrap_or_else(|e| die(format!("cannot write {path}: {e}")));
        println!("trace written    : {path}");
    }
}

/// Per-phase retry/fault breakdown plus the total. The phase buckets are
/// disjoint (each request, retries included, is charged to exactly one
/// phase), so the total line is their sum — no retry is counted twice.
fn print_fault_stats(stats: &JoinStats) {
    let io = stats.io_total();
    if io.faults_injected == 0 {
        return;
    }
    let line = |phase: &str, s: &spatialjoin::IoStats| {
        println!(
            "  faults [{phase:<10}]: {} ({} read retries, {} write retries, {} backoff units)",
            s.faults_injected, s.read_retries, s.write_retries, s.backoff_units
        );
    };
    for (phase, s) in stats.io_phases() {
        if s.faults_injected > 0 {
            line(phase, &s);
        }
    }
    line("total", &io);
}

/// `sjoin scrub [--run-dir DIR]`: offline integrity walk over interrupted
/// durable runs. Each `<DIR>/<id>/state.bin` snapshot is restored onto a
/// scratch simulated disk, which validates the container end to end
/// (magic, version, per-file framing, trailing bytes). Prints one JSON
/// summary line; exits 0 when every snapshot is sound, 1 otherwise.
fn run_scrub(rest: Vec<String>) -> ! {
    let mut run_dir = "runs".to_string();
    let mut it = rest.into_iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--run-dir" => match it.next() {
                Some(v) => run_dir = v,
                None => die::<()>("--run-dir needs a value".into()),
            },
            other => die::<()>(format!("scrub: unknown flag {other} (scrub takes --run-dir only)")),
        }
    }
    let (summary, sound) = scrub_summary(std::path::Path::new(&run_dir));
    println!("{summary}");
    std::process::exit(i32::from(!sound));
}

/// The machine-readable scrub report and whether every snapshot was sound.
/// A run directory without a readable `state.bin` counts as corrupt: an
/// interrupted run that lost its snapshot cannot be resumed.
fn scrub_summary(dir: &std::path::Path) -> (String, bool) {
    let mut entries: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.is_dir())
                .collect()
        })
        .unwrap_or_default();
    entries.sort();
    let mut runs: Vec<String> = Vec::new();
    let (mut ok, mut corrupt) = (0usize, 0usize);
    for path in entries {
        let id = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let entry = match std::fs::read(path.join("state.bin")) {
            Err(_) => {
                corrupt += 1;
                format!("{{\"id\":\"{id}\",\"status\":\"missing-state\"}}")
            }
            Ok(bytes) => {
                let disk = SimDisk::with_default_model();
                match disk.restore_files(&bytes) {
                    Ok(()) => {
                        ok += 1;
                        let files = disk.file_ids();
                        let spares = files.iter().filter(|&&f| disk.is_spare(f)).count();
                        format!(
                            "{{\"id\":\"{id}\",\"status\":\"ok\",\"bytes\":{},\"files\":{},\
                             \"pages\":{},\"spare_files\":{}}}",
                            bytes.len(),
                            files.len(),
                            disk.pages_in_use(),
                            spares
                        )
                    }
                    Err(e) => {
                        corrupt += 1;
                        format!(
                            "{{\"id\":\"{id}\",\"status\":\"corrupt\",\"bytes\":{},\
                             \"error\":\"{}\"}}",
                            bytes.len(),
                            e.kind.describe()
                        )
                    }
                }
            }
        };
        runs.push(entry);
    }
    let summary = format!(
        "{{\"run_dir\":{:?},\"scanned\":{},\"ok\":{},\"corrupt\":{},\"runs\":[{}]}}",
        dir.display().to_string(),
        runs.len(),
        ok,
        corrupt,
        runs.join(",")
    );
    (summary, corrupt == 0)
}

/// Runs a durable (checkpointed) join: fresh on an empty disk, resumed from
/// a state snapshot under `--run-dir` otherwise. A resumable interruption
/// (crash point, deadline, cancellation) persists the disk image and exits
/// 3 with a resume hint; success removes the snapshot.
fn run_durable(args: &Args, join: &SpatialJoin, left: &[spatialjoin::Kpe], right: &[spatialjoin::Kpe]) -> JoinRun {
    let run_id = args.resume.unwrap_or(args.seed);
    let state = std::path::Path::new(&args.run_dir)
        .join(run_id.to_string())
        .join("state.bin");
    let disk = SimDisk::new(DiskModel {
        channels: args.channels,
        ..Default::default()
    });
    if let Some(id) = args.resume {
        let bytes = std::fs::read(&state).unwrap_or_else(|e| {
            die(format!("--resume {id}: cannot read {}: {e}", state.display()))
        });
        disk.restore_files(&bytes)
            .unwrap_or_else(|e| die(format!("--resume {id}: corrupt snapshot: {e}")));
    } else if args.crash.is_some() || fault_plan(args).is_some() {
        let mut plan = fault_plan(args).unwrap_or_else(|| FaultPlan::none(args.seed));
        plan.crash = args.crash;
        // Fault state lives on the disk for durable runs: the checkpoint
        // layer arms crash injection from the disk's own plan.
        let retry = args
            .retry
            .map(RetryPolicy::with_max_attempts)
            .unwrap_or_default();
        let faulty = disk.with_faults(plan, retry);
        return finish_durable(join, left, right, run_id, &state, &faulty);
    }
    finish_durable(join, left, right, run_id, &state, &disk)
}

fn finish_durable(
    join: &SpatialJoin,
    left: &[spatialjoin::Kpe],
    right: &[spatialjoin::Kpe],
    run_id: u64,
    state: &std::path::Path,
    disk: &SimDisk,
) -> JoinRun {
    match join.try_run_durable(disk, left, right, run_id) {
        Ok(run) => {
            let _ = std::fs::remove_file(state);
            run
        }
        Err(e) if e.is_resumable() => {
            if let Some(dir) = state.parent() {
                std::fs::create_dir_all(dir)
                    .unwrap_or_else(|err| die(format!("cannot create {}: {err}", dir.display())));
            }
            std::fs::write(state, disk.export_files())
                .unwrap_or_else(|err| die(format!("cannot write {}: {err}", state.display())));
            eprintln!("error: {e}");
            eprintln!(
                "run {run_id} is resumable: state saved to {}; \
                 rerun with the same flags plus --resume {run_id}",
                state.display()
            );
            std::process::exit(3);
        }
        Err(e) => die_join(e),
    }
}

fn main() {
    let mut argv = std::env::args().skip(1);
    if argv.next().as_deref() == Some("scrub") {
        run_scrub(argv.collect());
    }
    let args = match Args::parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let mem = (args.mem_mb * 1024.0 * 1024.0) as usize;
    let left = dataset(&args.left, args.scale, args.seed).unwrap_or_else(die);
    let right = if args.right == "self" {
        left.clone()
    } else {
        dataset(&args.right, args.scale, args.seed ^ 0xFFFF).unwrap_or_else(die)
    };
    let (left, right) = if args.p != 1.0 {
        (
            datagen::scale_dataset(&left, args.p),
            datagen::scale_dataset(&right, args.p),
        )
    } else {
        (left, right)
    };
    let algo = if args.plan == PlanMode::Off {
        algorithm(&args.algo, mem).unwrap_or_else(die)
    } else {
        // Planner-selected configuration. Durable runs are refused: a
        // resume must replay the *same* configuration, and the planner's
        // pick is a function of the data, not of the manifest.
        if args.durable || args.crash.is_some() || args.resume.is_some() {
            die::<()>(
                "--plan auto|explain and durable runs don't mix; pick --algo explicitly".into(),
            );
        }
        let coeffs_path = args.plan_coeffs.clone().unwrap_or_else(|| "planner-coeffs.json".into());
        let coeffs = Coefficients::load(std::path::Path::new(&coeffs_path)).unwrap_or_else(die);
        let planner = Planner::new(mem)
            .with_disk_model(DiskModel {
                channels: args.channels,
                ..Default::default()
            })
            .with_coefficients(coeffs);
        let plan = planner.plan(
            &DatasetProfile::build(&left.kpes),
            &DatasetProfile::build(&right.kpes),
        );
        if args.plan == PlanMode::Explain {
            print!("{}", plan.render_table());
        }
        let chosen = plan.chosen();
        println!(
            "plan chosen      : {} (predicted {:.2} s total, {:.0} candidates)",
            chosen.choice.describe(),
            chosen.predicted.total_seconds,
            chosen.predicted.candidates,
        );
        Algorithm::from_choice(&chosen.choice)
    };
    let mut join = SpatialJoin::new(algo.with_threads(args.threads)).with_disk_model(DiskModel {
        channels: args.channels,
        ..Default::default()
    });
    if let Some(plan) = fault_plan(&args) {
        join = join.with_faults(plan);
    }
    if let Some(n) = args.retry {
        join = join.with_retry(RetryPolicy::with_max_attempts(n));
    }
    if let Some(d) = args.deadline {
        join = join.with_deadline(d);
    }
    let recorder = args.trace.as_ref().map(|_| Recorder::shared());
    if let Some(r) = &recorder {
        join = join.with_recorder(std::sync::Arc::clone(r));
    }
    let durable = args.durable || args.crash.is_some() || args.resume.is_some();
    if durable && (args.refine || args.distance.is_some()) {
        die::<()>("durable runs checkpoint the filter step only; drop --refine/--distance".into());
    }
    println!(
        "{} ({} MBRs) ⋈ {} ({} MBRs), {} , M = {} MiB",
        args.left,
        left.len(),
        args.right,
        right.len(),
        join.algorithm().name(),
        args.mem_mb
    );

    if let Some(eps) = args.distance {
        let run = if args.raster_filter {
            join.try_within_distance_raster(&left, &right, eps, spatialjoin::sfc::Curve::Hilbert)
        } else {
            join.try_within_distance(&left, &right, eps)
        }
        .unwrap_or_else(die_join);
        println!("pairs within eps={eps}: {}", run.pairs.len());
        println!(
            "filter candidates {}, false-positive rate {:.1}%",
            run.refine.candidates,
            100.0 * run.refine.false_positive_rate()
        );
        print_raster_line(&args, &run.refine);
        println!("filter time {:.2}s simulated", run.filter.total_seconds());
        for (a, b) in run.pairs.iter().take(args.limit) {
            println!("  #{} ~ #{}", a.0, b.0);
        }
        export_observability(&args, &run.filter, join.algorithm().name(), recorder.as_deref());
        return;
    }

    if args.refine {
        let run = if args.raster_filter {
            join.try_run_refined_raster(&left, &right, spatialjoin::sfc::Curve::Hilbert)
        } else {
            join.try_run_refined(
                &left.kpes,
                &right.kpes,
                refine::SegmentIntersect {
                    r: &left.segments,
                    s: &right.segments,
                },
            )
        }
        .unwrap_or_else(die_join);
        println!("exact intersections: {}", run.pairs.len());
        println!(
            "filter candidates {}, false-positive rate {:.1}%",
            run.refine.candidates,
            100.0 * run.refine.false_positive_rate()
        );
        print_raster_line(&args, &run.refine);
        println!("filter time {:.2}s simulated", run.filter.total_seconds());
        for (a, b) in run.pairs.iter().take(args.limit) {
            println!("  #{} x #{}", a.0, b.0);
        }
        export_observability(&args, &run.filter, join.algorithm().name(), recorder.as_deref());
        return;
    }

    let run = if durable {
        run_durable(&args, &join, &left.kpes, &right.kpes)
    } else {
        join.try_run(&left.kpes, &right.kpes).unwrap_or_else(die_join)
    };
    println!("results          : {}", run.stats.results());
    println!("duplicates       : {}", run.stats.duplicates());
    println!("cpu (emulated)   : {:.2} s", run.stats.scaled_cpu_seconds());
    println!("disk (simulated) : {:.2} s", run.stats.io_seconds());
    if args.channels > 1 {
        println!(
            "disk (parallel)  : {:.2} s over {} channels, {:.2} s hidden by prefetch",
            run.stats.io_parallel_seconds(),
            args.channels,
            run.stats.prefetch_hidden_seconds()
        );
    }
    println!("total            : {:.2} s", run.stats.total_seconds());
    if let Some(first) = run.stats.first_result_seconds() {
        println!("first result at  : {first:.2} s");
    }
    if let Some(degraded) = degraded_line(&run.stats) {
        println!("degraded         : {degraded}");
    }
    if args.stats {
        print_phase_stats(&run.stats);
        print_fault_stats(&run.stats);
    }
    for (a, b) in run.pairs.iter().take(args.limit) {
        println!("  #{} x #{}", a.0, b.0);
    }
    export_observability(&args, &run.stats, join.algorithm().name(), recorder.as_deref());
}

/// The raster stage's contribution, printed only when `--raster-filter`
/// is on (it is the only source of nonzero raster counters).
fn print_raster_line(args: &Args, st: &refine::RefineStats) {
    if !args.raster_filter {
        return;
    }
    println!(
        "raster filter: {} rejected, {} accepted, {} exact tests",
        st.raster_rejects,
        st.raster_accepts,
        st.exact_tests()
    );
}

fn die<T>(e: String) -> T {
    eprintln!("error: {e}");
    std::process::exit(2);
}

fn die_join<T>(e: spatialjoin::JoinError) -> T {
    eprintln!("error: {e}");
    std::process::exit(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The drift this PR fixed: every flag the parser accepts must be
    /// documented in `--help` (and `VALID_FLAGS` is what the parser's
    /// unknown-flag suggestions draw from, so it must stay complete too).
    #[test]
    fn every_valid_flag_is_documented_in_help() {
        for flag in VALID_FLAGS {
            if *flag == "--help" {
                continue; // --help documents the others, not itself
            }
            assert!(
                HELP.contains(flag),
                "flag {flag} accepted by the parser but missing from HELP"
            );
        }
    }

    #[test]
    fn unknown_flags_suggest_the_nearest_valid_one() {
        assert_eq!(nearest_flag("--thread"), Some("--threads"));
        assert_eq!(nearest_flag("--metrics-jsn"), Some("--metrics-json"));
        assert_eq!(nearest_flag("--fault"), Some("--faults"));
        assert_eq!(nearest_flag("--resumee"), Some("--resume"));
        // Far from everything: no misleading suggestion.
        assert_eq!(nearest_flag("--zzzzzzzzzzzz"), None);
    }

    #[test]
    fn unknown_plan_modes_suggest_the_nearest_valid_one() {
        // `--plan` value errors go through the same nearest-match treatment
        // as unknown flags: a typo'd mode names the intended one.
        assert!(PlanMode::parse("auot").unwrap_err().contains("\"auto\""));
        assert!(PlanMode::parse("explan").unwrap_err().contains("\"explain\""));
        assert!(PlanMode::parse("of").unwrap_err().contains("\"off\""));
        // Far from everything: list the valid modes instead of guessing.
        let err = PlanMode::parse("qwertyuiop").unwrap_err();
        assert!(err.contains("off|auto|explain"), "{err}");
    }

    #[test]
    fn degraded_channel_spec_parses() {
        assert_eq!(parse_degraded_channel("0:4"), Ok((0, 4.0)));
        assert_eq!(parse_degraded_channel("2:1.5"), Ok((2, 1.5)));
        assert!(parse_degraded_channel("nope").is_err());
        assert!(parse_degraded_channel("1:0.5").is_err(), "factor < 1 must be refused");
        assert!(parse_degraded_channel("1:").is_err());
    }

    #[test]
    fn scrub_walks_run_dirs_and_flags_corruption() {
        let base = std::env::temp_dir().join(format!("sjoin-scrub-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        for id in ["41", "42", "43"] {
            std::fs::create_dir_all(base.join(id)).expect("test dir");
        }
        // 41: a sound snapshot with one spare file.
        let disk = SimDisk::with_default_model();
        let f = disk.create_on(3);
        disk.append(f, &[7u8; 100]);
        let spare = disk.create_spare_like(f);
        disk.append(spare, &[8u8; 10]);
        std::fs::write(base.join("41").join("state.bin"), disk.export_files()).expect("write");
        // 42: a truncated snapshot. 43: no state.bin at all.
        std::fs::write(base.join("42").join("state.bin"), b"SJDKgarbage").expect("write");
        let (summary, sound) = scrub_summary(&base);
        assert!(!sound, "{summary}");
        assert!(summary.contains("\"scanned\":3"), "{summary}");
        assert!(summary.contains("\"ok\":1"), "{summary}");
        assert!(summary.contains("\"corrupt\":2"), "{summary}");
        assert!(summary.contains("\"status\":\"missing-state\""), "{summary}");
        assert!(summary.contains("\"spare_files\":1"), "{summary}");
        // A sound-only dir scrubs clean.
        std::fs::remove_dir_all(base.join("42")).expect("rm");
        std::fs::remove_dir_all(base.join("43")).expect("rm");
        let (summary, sound) = scrub_summary(&base);
        assert!(sound, "{summary}");
        std::fs::remove_dir_all(&base).expect("rm");
    }

    #[test]
    fn edit_distance_is_sane() {
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", "abd"), 1);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }
}
