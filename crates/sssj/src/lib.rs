//! Scalable Sweeping-Based Spatial Join (SSSJ) — comparison baseline.
//!
//! SSSJ ([APR+ 98]) is the third index-free competitor the paper discusses
//! (§1): externally sort both relations by their left edge, then run a
//! single plane sweep over the merged streams, keeping the sweep-line status
//! in memory. It is worst-case optimal and produces no duplicates (nothing
//! is replicated) — but it is *blocking*: not a single result can be
//! produced before both inputs are completely sorted, which is exactly the
//! [Gra 93] pipelining objection the paper raises against it.
//!
//! This implementation keeps the status structures in memory (lists with
//! lazy deletion), which on the paper's real datasets is the common case;
//! the original's distribution-sweeping fallback for an oversized status is
//! out of scope (documented in DESIGN.md). When both inputs fit in the
//! memory budget the sort happens entirely in memory and no I/O is charged,
//! matching the paper's cost model where input scans are free.

use std::time::Instant;

use geom::{Kpe, RecordId};
use storage::{external_sort_slice, DiskModel, IoStats, RecordReader, SimDisk, SortStats};
use sweep::JoinCounters;

/// SSSJ tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct SssjConfig {
    /// Memory budget for the two external sorts.
    pub mem_bytes: usize,
    /// Buffer pages for sequential scans.
    pub io_buffer_pages: usize,
}

impl Default for SssjConfig {
    fn default() -> Self {
        SssjConfig {
            mem_bytes: 8 << 20,
            io_buffer_pages: 4,
        }
    }
}

/// Measurements of one SSSJ run.
#[derive(Debug, Clone)]
pub struct SssjStats {
    pub results: u64,
    pub join_counters: JoinCounters,
    pub sort_r: SortStats,
    pub sort_s: SortStats,
    pub io_sort: IoStats,
    pub io_join: IoStats,
    pub cpu_sort: f64,
    pub cpu_join: f64,
    /// Peak rectangles resident in the sweep-line status.
    pub peak_status: usize,
    /// Shared-lane I/O. SSSJ's sort/sweep files are untagged (one run file
    /// pair, scanned sequentially — no partition structure to spread), so
    /// this equals [`io_total`](Self::io_total) and `io_channels` is empty
    /// of traffic: extra channels cannot speed SSSJ up.
    pub io_shared: IoStats,
    /// Per-data-channel I/O — always `model.data_channels()` zero entries.
    pub io_channels: Vec<IoStats>,
    pub model: DiskModel,
    /// CPU/I/O position of the first emitted result (None if no results).
    pub first_result_cpu: Option<f64>,
    pub first_result_io: Option<IoStats>,
}

impl SssjStats {
    pub fn io_total(&self) -> IoStats {
        self.io_sort.plus(&self.io_join)
    }

    pub fn cpu_seconds(&self) -> f64 {
        self.cpu_sort + self.cpu_join
    }

    pub fn io_seconds(&self) -> f64 {
        self.model.seconds(&self.io_total())
    }

    /// CPU seconds stretched to the emulated 1999 machine.
    pub fn scaled_cpu_seconds(&self) -> f64 {
        self.model.scaled_cpu(self.cpu_seconds())
    }

    /// Simulated I/O wall time under the multi-channel clock. All SSSJ I/O
    /// is shared-lane, so this is bit-identical to
    /// [`io_seconds`](Self::io_seconds) at every channel count.
    pub fn io_parallel_seconds(&self) -> f64 {
        self.model.parallel_io_seconds(&self.io_shared, &self.io_channels)
    }

    /// I/O time hidden behind computation — always zero here (no data
    /// channels carry traffic, so there is nothing to overlap).
    pub fn prefetch_hidden_seconds(&self) -> f64 {
        self.model
            .prefetch_hidden_seconds(self.scaled_cpu_seconds(), &self.io_channels)
    }

    pub fn total_seconds(&self) -> f64 {
        self.model
            .total_seconds(self.scaled_cpu_seconds(), &self.io_shared, &self.io_channels)
    }

    /// Simulated time at which the first result appeared (None if empty).
    pub fn first_result_seconds(&self) -> Option<f64> {
        Some(
            self.model.scaled_cpu(self.first_result_cpu?)
                + self.model.seconds(self.first_result_io.as_ref()?),
        )
    }
}

/// Runs SSSJ on `r ⋈ s`, invoking `out` for every result pair (exactly
/// once; ordered `(r, s)` orientation).
pub fn sssj_join(
    disk: &SimDisk,
    r: &[Kpe],
    s: &[Kpe],
    cfg: &SssjConfig,
    out: &mut dyn FnMut(RecordId, RecordId),
) -> SssjStats {
    let run_start = Instant::now();
    let io0 = disk.stats();
    let key = |k: &Kpe| ordered_f64(k.rect.xl);
    let in_memory = (r.len() + s.len()) * Kpe::ENCODED_SIZE <= cfg.mem_bytes;

    // --- Sort phase (blocking) ----------------------------------------------
    enum Sorted {
        Mem(Vec<Kpe>),
        Disk(storage::FileId),
    }
    let (sorted_r, sorted_s, sort_r, sort_s) = if in_memory {
        let mut rv = r.to_vec();
        let mut sv = s.to_vec();
        rv.sort_by_key(key);
        sv.sort_by_key(key);
        (
            Sorted::Mem(rv),
            Sorted::Mem(sv),
            SortStats { runs: 1, merge_passes: 0 },
            SortStats { runs: 1, merge_passes: 0 },
        )
    } else {
        // The baseline deliberately uses the panicking storage wrappers:
        // SSSJ does not opt into fault injection (`SpatialJoin::try_run`
        // refuses the combination up front), so on a fault-free disk these
        // calls cannot fail.
        let (fr, st_r) = external_sort_slice::<Kpe, _, _>(disk, r, cfg.mem_bytes / 2, key);
        let (fs, st_s) = external_sort_slice::<Kpe, _, _>(disk, s, cfg.mem_bytes / 2, key);
        (Sorted::Disk(fr), Sorted::Disk(fs), st_r, st_s)
    };
    let io_sort = disk.stats().delta(&io0);
    let cpu_sort = run_start.elapsed().as_secs_f64();

    // --- Sweep phase ----------------------------------------------------------
    let t1 = Instant::now();
    let io1 = disk.stats();
    let mut counters = JoinCounters::default();
    let mut peak_status = 0usize;
    let mut first_result_cpu: Option<f64> = None;
    let mut first_result_io: Option<IoStats> = None;
    {
        let mut emit = |a: RecordId, b: RecordId| {
            if first_result_cpu.is_none() {
                first_result_cpu = Some(run_start.elapsed().as_secs_f64());
                first_result_io = Some(disk.stats());
            }
            out(a, b);
        };
        match (&sorted_r, &sorted_s) {
            (Sorted::Mem(rv), Sorted::Mem(sv)) => sweep(
                rv.iter().copied(),
                sv.iter().copied(),
                &mut counters,
                &mut peak_status,
                &mut emit,
            ),
            (Sorted::Disk(fr), Sorted::Disk(fs)) => sweep(
                RecordReader::<Kpe>::new(disk, *fr, cfg.io_buffer_pages),
                RecordReader::<Kpe>::new(disk, *fs, cfg.io_buffer_pages),
                &mut counters,
                &mut peak_status,
                &mut emit,
            ),
            _ => unreachable!("both relations take the same path"),
        }
    }
    if let Sorted::Disk(f) = sorted_r {
        disk.delete(f);
    }
    if let Sorted::Disk(f) = sorted_s {
        disk.delete(f);
    }

    let io_join = disk.stats().delta(&io1);
    let model = disk.model();
    SssjStats {
        results: counters.results,
        join_counters: counters,
        sort_r,
        sort_s,
        io_sort,
        io_join,
        cpu_sort,
        cpu_join: t1.elapsed().as_secs_f64(),
        peak_status,
        io_shared: io_sort.plus(&io_join),
        io_channels: vec![IoStats::default(); model.data_channels()],
        model,
        first_result_cpu,
        first_result_io,
    }
}

/// The external plane sweep over two `xl`-sorted streams: active lists with
/// lazy deletion; each intersecting pair reported exactly once.
fn sweep(
    mut rs: impl Iterator<Item = Kpe>,
    mut ss: impl Iterator<Item = Kpe>,
    counters: &mut JoinCounters,
    peak_status: &mut usize,
    emit: &mut dyn FnMut(RecordId, RecordId),
) {
    let mut active_r: Vec<Kpe> = Vec::new();
    let mut active_s: Vec<Kpe> = Vec::new();
    let mut nr = rs.next();
    let mut ns = ss.next();
    while nr.is_some() || ns.is_some() {
        let take_r = match (&nr, &ns) {
            (Some(a), Some(b)) => a.rect.xl <= b.rect.xl,
            (Some(_), None) => true,
            _ => false,
        };
        if take_r {
            // Invariant: `take_r` is only true when `nr` is `Some`.
            let cur = nr.take().expect("take_r implies nr is Some");
            nr = rs.next();
            sweep_step(&cur, &mut active_s, counters, &mut |b| emit(cur.id, b.id));
            active_r.push(cur);
        } else {
            // Invariant: the loop condition guarantees `ns` is `Some` when
            // `take_r` is false (both-None ends the loop, r-only sets it).
            let cur = ns.take().expect("!take_r implies ns is Some");
            ns = ss.next();
            sweep_step(&cur, &mut active_r, counters, &mut |a| emit(a.id, cur.id));
            active_s.push(cur);
        }
        *peak_status = (*peak_status).max(active_r.len() + active_s.len());
    }
}

/// Tests `cur` against the other relation's active list, lazily evicting
/// rectangles the sweep line has passed.
fn sweep_step(
    cur: &Kpe,
    other_active: &mut Vec<Kpe>,
    counters: &mut JoinCounters,
    emit: &mut dyn FnMut(&Kpe),
) {
    let x = cur.rect.xl;
    let mut i = 0;
    while i < other_active.len() {
        if other_active[i].rect.xh < x {
            other_active.swap_remove(i);
            continue;
        }
        counters.tests += 1;
        let e = &other_active[i];
        if e.rect.yl <= cur.rect.yh && cur.rect.yl <= e.rect.yh {
            counters.results += 1;
            emit(e);
        }
        i += 1;
    }
}

/// Monotone map of finite f64 sort keys to u64 (sign-magnitude flip).
#[inline]
fn ordered_f64(v: f64) -> u64 {
    let bits = v.to_bits();
    if bits >> 63 == 0 {
        bits | (1 << 63)
    } else {
        !bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::LineNetwork;

    fn brute(r: &[Kpe], s: &[Kpe]) -> Vec<(u64, u64)> {
        let mut v = Vec::new();
        for a in r {
            for b in s {
                if a.rect.intersects(&b.rect) {
                    v.push((a.id.0, b.id.0));
                }
            }
        }
        v.sort_unstable();
        v
    }

    fn tiger(n: usize, seed: u64) -> Vec<Kpe> {
        LineNetwork {
            count: n,
            coverage: 0.1,
            segments_per_line: 15,
            seed,
        }
        .generate()
    }

    #[test]
    fn in_memory_path_matches_brute_force_with_zero_io() {
        let r = tiger(2000, 1);
        let s = tiger(2200, 2);
        let disk = SimDisk::with_default_model();
        let mut got = Vec::new();
        let stats = sssj_join(&disk, &r, &s, &SssjConfig::default(), &mut |a, b| {
            got.push((a.0, b.0))
        });
        got.sort_unstable();
        assert_eq!(got, brute(&r, &s));
        assert_eq!(stats.results as usize, got.len());
        assert_eq!(disk.stats(), IoStats::default(), "in-memory path is free");
    }

    #[test]
    fn external_sort_path_still_correct() {
        let r = tiger(3000, 3);
        let s = tiger(3000, 4);
        let disk = SimDisk::with_default_model();
        let cfg = SssjConfig {
            mem_bytes: 32 * 1024, // tiny memory => runs + multiway merge
            ..Default::default()
        };
        let mut got = Vec::new();
        let stats = sssj_join(&disk, &r, &s, &cfg, &mut |a, b| got.push((a.0, b.0)));
        got.sort_unstable();
        assert_eq!(got, brute(&r, &s));
        assert!(stats.sort_r.runs > 1);
        assert!(stats.io_sort.pages_written > 0);
    }

    #[test]
    fn negative_coordinates_sort_correctly() {
        use geom::{Rect, RecordId};
        let r = vec![
            Kpe::new(RecordId(0), Rect::new(-0.5, 0.0, -0.4, 1.0)),
            Kpe::new(RecordId(1), Rect::new(-0.45, 0.0, 0.2, 1.0)),
            Kpe::new(RecordId(2), Rect::new(0.1, 0.0, 0.3, 1.0)),
        ];
        let disk = SimDisk::with_default_model();
        let mut got = Vec::new();
        sssj_join(&disk, &r, &r, &SssjConfig::default(), &mut |a, b| {
            got.push((a.0, b.0))
        });
        got.sort_unstable();
        assert_eq!(got, brute(&r, &r));
    }

    #[test]
    fn first_result_waits_for_sorting_on_external_path() {
        let r = tiger(4000, 5);
        let s = tiger(4000, 6);
        let disk = SimDisk::with_default_model();
        let cfg = SssjConfig {
            mem_bytes: 32 * 1024,
            ..Default::default()
        };
        let stats = sssj_join(&disk, &r, &s, &cfg, &mut |_, _| {});
        let first_io = stats.first_result_io.expect("has results");
        // Blocking: all sort I/O is already on the meter at first result.
        assert!(first_io.pages_written >= stats.io_sort.pages_written);
        assert!(stats.first_result_seconds().unwrap() <= stats.total_seconds());
    }

    #[test]
    fn empty_inputs() {
        let disk = SimDisk::with_default_model();
        let stats = sssj_join(&disk, &[], &[], &SssjConfig::default(), &mut |_, _| {
            panic!("no results expected")
        });
        assert_eq!(stats.results, 0);
        assert!(stats.first_result_seconds().is_none());
    }

    #[test]
    fn sweep_peak_status_is_tracked() {
        let r = tiger(1000, 7);
        let disk = SimDisk::with_default_model();
        let stats = sssj_join(&disk, &r, &r, &SssjConfig::default(), &mut |_, _| {});
        assert!(stats.peak_status > 0);
        assert!(stats.peak_status <= 2 * r.len());
    }
}
