//! Partition Based Spatial-Merge Join (PBSM).
//!
//! PBSM ([PD 96]) is the divide-&-conquer spatial join for unindexed inputs:
//!
//! 1. **Partitioning** — an equidistant grid of `NT ≥ P` tiles is laid over
//!    the data space; tiles are hashed onto `P` partitions (formula (1):
//!    `P = ⌈t·(‖R‖+‖S‖)·sizeof(KPE)/M⌉`, with the safety factor `t > 1` of
//!    paper §3.2.3). A KPE is *replicated* into every partition owning a tile
//!    its MBR overlaps.
//! 2. **Repartitioning** — partition pairs that exceed memory are split
//!    recursively (the larger side first, §3.2.3) by refining the grid.
//! 3. **Join** — each partition pair is loaded and joined in memory with a
//!    pluggable internal algorithm ([`sweep::InternalAlgo`]).
//! 4. **Duplicate handling** — replication makes duplicate results
//!    unavoidable. The original PBSM sorts the complete candidate set in a
//!    final phase ([`Dedup::SortPhase`]); this paper's contribution is the
//!    online **Reference Point Method** ([`Dedup::ReferencePoint`]): report a
//!    pair only if its reference point lies inside the region of the
//!    partition being processed — at most six extra comparisons, no
//!    materialisation, no blocking.
//!
//! Entry point: [`pbsm_join`]; all phase timings, I/O breakdowns and
//! counters land in [`PbsmStats`].

mod grid;
mod join;

pub use grid::{PartitionMap, RegionChain, TileGrid, TileScheme};
pub use join::{pbsm_join, try_pbsm_join, try_pbsm_join_ctl, Dedup, PbsmConfig, PbsmStats};
