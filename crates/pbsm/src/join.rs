use std::time::Instant;

use geom::{reference_point, Kpe, RecordId};
use storage::{
    try_external_sort, try_read_all, DiskModel, FileId, IdPair, IoError, IoStats, JoinError,
    RecordReader, RecordWriter, RunCheckpoint, RunControl, RunPhase, SimDisk, SortStats,
};
use sweep::{InternalAlgo, InternalJoin, JoinCounters};

use crate::grid::{PartitionMap, RegionChain, TileGrid, TileScheme};

/// Maximum repartitioning recursion before a pair is joined over-budget
/// (guards against pathological replication blow-up).
const MAX_REPART_DEPTH: u32 = 12;

/// Duplicate-handling strategy of the final phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Dedup {
    /// Original PBSM ([PD 96]): materialise all candidates, sort them
    /// (externally if necessary), drop equal neighbours. Blocks the
    /// pipeline and pays I/O proportional to the result size (Figure 3a).
    SortPhase,
    /// This paper's online Reference Point Method: report a pair only when
    /// its reference point lies in the region of the current partition.
    #[default]
    ReferencePoint,
    /// Diagnostic mode: emit raw candidates, duplicates included. Used by
    /// tests to observe the replication-induced duplication rate.
    None,
    /// Two-layer space-oriented partitioning (Tsitsigkos et al.): inside a
    /// partition every record is bucketed per overlapped tile and classified
    /// by where its lower-left corner starts, and only the nine class
    /// combinations that can contain a pair's reference point are joined.
    /// Exactly-once by construction — no per-candidate duplicate test at
    /// all, and most combinations need only 2–3 border comparisons instead
    /// of the full intersection test. A structural generalisation of RPM.
    TwoLayer,
}

/// PBSM tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct PbsmConfig {
    /// Memory budget `M` in bytes for the join phase (and sort phase).
    pub mem_bytes: usize,
    /// Safety factor `t > 1` applied inside formula (1) (§3.2.3).
    pub safety_factor: f64,
    /// Tiles per partition (`NT = P ·` this; §3.1 suggests `NT ≥ P`).
    pub tiles_per_partition: u32,
    /// In-memory join algorithm for partition pairs.
    pub internal: InternalAlgo,
    /// Duplicate handling.
    pub dedup: Dedup,
    /// Tile→partition assignment scheme.
    pub tile_scheme: TileScheme,
    /// Write-buffer pages per partition file during partitioning.
    pub partition_buffer_pages: usize,
    /// Buffer pages for sequential scans (loading pairs, candidates).
    pub io_buffer_pages: usize,
    /// Salt for the tile hash.
    pub seed: u64,
    /// Worker threads for the partition-pair join phase (phases 2+3).
    /// `0` means "all available cores"; `1` runs the sequential code path.
    /// The result stream and all deterministic counters are identical for
    /// every value — partition pairs are tagged and re-assembled in
    /// canonical order.
    pub threads: usize,
    /// How many times a partition task that failed terminally (its retry
    /// budget and repartition fallback both exhausted) may be requeued onto
    /// another worker before the error propagates. Only the parallel
    /// executor requeues; the sequential path degrades in place.
    pub max_partition_requeues: u32,
}

impl Default for PbsmConfig {
    fn default() -> Self {
        PbsmConfig {
            mem_bytes: 8 << 20,
            safety_factor: 1.2,
            tiles_per_partition: 4,
            internal: InternalAlgo::PlaneSweepList,
            dedup: Dedup::ReferencePoint,
            tile_scheme: TileScheme::Hash,
            partition_buffer_pages: 1,
            io_buffer_pages: 4,
            seed: 0x5EED,
            threads: 0,
            max_partition_requeues: 1,
        }
    }
}

/// Everything PBSM measured while running.
#[derive(Debug, Clone)]
pub struct PbsmStats {
    pub partitions: u32,
    pub grid: TileGrid,
    /// KPE copies written during partitioning (≥ input size; the excess is
    /// the replication the Reference Point Method exists to pay for).
    pub copies_r: u64,
    pub copies_s: u64,
    /// KPE copies written while repartitioning.
    pub repart_copies: u64,
    /// Partition pairs that had to be repartitioned.
    pub repartitioned_pairs: u32,
    /// Deepest repartitioning recursion reached.
    pub repart_depth: u32,
    /// Pairs emitted by the internal joins before duplicate handling.
    pub candidates: u64,
    /// Final (duplicate-free, except [`Dedup::None`]) result count.
    pub results: u64,
    /// Duplicates suppressed online (RPM) or removed by the sort phase.
    pub duplicates: u64,
    /// Partition tasks re-run on another worker after a terminal failure.
    pub requeued_partitions: u32,
    /// Partition pairs whose load exhausted the retry budget and that fell
    /// back to recursive repartitioning (graceful degradation).
    pub degraded_partitions: u32,
    /// Partition pairs abandoned to persistent media damage and recomputed
    /// in memory from the source relations (quarantine-recompute). RPM's
    /// stateless per-pair reference-point test keeps the recompute leg
    /// duplicate-free, so the output is identical to an undamaged run's.
    pub quarantined_partitions: u32,
    /// Times the partition phase hit simulated ENOSPC and fell back to a
    /// smaller-footprint plan (coarser tiling, then the in-memory
    /// single-partition path).
    pub enospc_fallbacks: u32,
    /// Durable per-partition journal commits performed by this run (zero
    /// unless the run is checkpointed).
    pub checkpoint_commits: u64,
    pub join_counters: JoinCounters,
    pub io_partition: IoStats,
    pub io_repart: IoStats,
    pub io_join: IoStats,
    pub io_dedup: IoStats,
    /// I/O spent on durability (manifest publishes, journal commits, result
    /// flushes) when the run is checkpointed; zero otherwise.
    pub io_checkpoint: IoStats,
    /// Shared-lane I/O: untagged files (manifest, journal, results, the
    /// dedup scratch disk) whose requests serialize on the multi-channel
    /// clock. Together with `io_channels` this is an exact field-for-field
    /// decomposition of [`io_total`](Self::io_total).
    pub io_shared: IoStats,
    /// Per-data-channel I/O (partition files ride channel `pid mod D`,
    /// repartition sub-files their top-level partition's channel). Always
    /// `model.data_channels()` entries; with one channel the split is
    /// trivial and the clock is bit-identical to the serial model.
    pub io_channels: Vec<IoStats>,
    pub cpu_partition: f64,
    pub cpu_repart: f64,
    pub cpu_join: f64,
    pub cpu_dedup: f64,
    pub sort: Option<SortStats>,
    pub model: DiskModel,
    /// CPU position of the earliest result on the *pipelined* clock: the
    /// join-phase CPU base plus the emitting task's own CPU up to its first
    /// pair, minimized over all emitting tasks. With more than one worker
    /// this is when the first result *could* reach the consumer on dedicated
    /// cores — never later than any single worker's emission.
    pub first_result_cpu: Option<f64>,
    /// I/O meter at the earliest result on the pipelined clock: the meter at
    /// join-phase entry plus the emitting task's own I/O delta (its reads,
    /// repartition writes and — when checkpointed — commit I/O) up to its
    /// first pair, minimized over tasks together with `first_result_cpu`.
    pub first_result_io: Option<IoStats>,
}

impl PbsmStats {
    fn new(model: DiskModel) -> Self {
        PbsmStats {
            partitions: 0,
            grid: TileGrid { gx: 1, gy: 1 },
            copies_r: 0,
            copies_s: 0,
            repart_copies: 0,
            repartitioned_pairs: 0,
            repart_depth: 0,
            candidates: 0,
            results: 0,
            duplicates: 0,
            requeued_partitions: 0,
            degraded_partitions: 0,
            quarantined_partitions: 0,
            enospc_fallbacks: 0,
            checkpoint_commits: 0,
            join_counters: JoinCounters::default(),
            io_partition: IoStats::default(),
            io_repart: IoStats::default(),
            io_join: IoStats::default(),
            io_dedup: IoStats::default(),
            io_checkpoint: IoStats::default(),
            io_shared: IoStats::default(),
            io_channels: vec![IoStats::default(); model.data_channels()],
            cpu_partition: 0.0,
            cpu_repart: 0.0,
            cpu_join: 0.0,
            cpu_dedup: 0.0,
            sort: None,
            model,
            first_result_cpu: None,
            first_result_io: None,
        }
    }

    /// Simulated time at which the first result appeared (None if empty) —
    /// the pipelining metric: RPM emits during the join phase, the sort
    /// phase only after the complete candidate set is sorted. Measured on
    /// the pipelined clock (min over emitting tasks of base + own work), so
    /// it is the same at every thread count.
    pub fn first_result_seconds(&self) -> Option<f64> {
        Some(
            self.model.scaled_cpu(self.first_result_cpu?)
                + self.model.seconds(self.first_result_io.as_ref()?),
        )
    }

    pub fn io_total(&self) -> IoStats {
        self.io_partition
            .plus(&self.io_repart)
            .plus(&self.io_join)
            .plus(&self.io_dedup)
            .plus(&self.io_checkpoint)
    }

    pub fn cpu_seconds(&self) -> f64 {
        self.cpu_partition + self.cpu_repart + self.cpu_join + self.cpu_dedup
    }

    pub fn io_seconds(&self) -> f64 {
        self.model.seconds(&self.io_total())
    }

    /// CPU seconds stretched to the emulated 1999 machine.
    pub fn scaled_cpu_seconds(&self) -> f64 {
        self.model.scaled_cpu(self.cpu_seconds())
    }

    /// Simulated I/O wall time under the multi-channel clock: the shared
    /// lane serializes, data channels overlap (`shared + max over
    /// channels`). With one channel this is bit-identical to
    /// [`io_seconds`](Self::io_seconds).
    pub fn io_parallel_seconds(&self) -> f64 {
        self.model.parallel_io_seconds(&self.io_shared, &self.io_channels)
    }

    /// I/O time hidden behind computation by the double-buffered partition
    /// prefetch — zero with a single channel (nowhere to overlap).
    pub fn prefetch_hidden_seconds(&self) -> f64 {
        self.model
            .prefetch_hidden_seconds(self.scaled_cpu_seconds(), &self.io_channels)
    }

    /// The paper's "total runtime": (emulated) CPU plus simulated disk time
    /// on the multi-channel clock, minus the prefetch overlap. With one
    /// channel this reduces bit-exactly to `scaled_cpu + io_seconds`.
    pub fn total_seconds(&self) -> f64 {
        self.model
            .total_seconds(self.scaled_cpu_seconds(), &self.io_shared, &self.io_channels)
    }

    /// Fraction of the total runtime spent repartitioning (Figure 6).
    pub fn repart_fraction(&self) -> f64 {
        let repart = self.model.scaled_cpu(self.cpu_repart) + self.model.seconds(&self.io_repart);
        if self.total_seconds() > 0.0 {
            repart / self.total_seconds()
        } else {
            0.0
        }
    }

    /// Replication rate: copies written per input KPE.
    pub fn replication_rate(&self, input_len: usize) -> f64 {
        (self.copies_r + self.copies_s) as f64 / input_len.max(1) as f64
    }

    /// Folds a per-worker partial into this stats struct — the deterministic
    /// reduction of the parallel executor. Work counts and I/O counters are
    /// pure sums (independent of worker interleaving); CPU phase times take
    /// the **max over workers**, because workers run concurrently and a
    /// phase costs as much wall-clock as its slowest worker; the recursion
    /// depth takes the max. Run-level fields (`partitions`, `grid`, `model`,
    /// `sort`, first-result probes, and the channel decomposition
    /// `io_shared`/`io_channels`, which the coordinator derives from the
    /// disk's per-channel meters after all forks fold back) belong to the
    /// coordinating run and are kept from `self`.
    pub fn merge(&mut self, other: &PbsmStats) {
        self.copies_r += other.copies_r;
        self.copies_s += other.copies_s;
        self.repart_copies += other.repart_copies;
        self.repartitioned_pairs += other.repartitioned_pairs;
        self.repart_depth = self.repart_depth.max(other.repart_depth);
        self.candidates += other.candidates;
        self.results += other.results;
        self.duplicates += other.duplicates;
        self.requeued_partitions += other.requeued_partitions;
        self.degraded_partitions += other.degraded_partitions;
        self.quarantined_partitions += other.quarantined_partitions;
        self.enospc_fallbacks += other.enospc_fallbacks;
        self.checkpoint_commits += other.checkpoint_commits;
        self.join_counters.merge(&other.join_counters);
        self.io_partition = self.io_partition.plus(&other.io_partition);
        self.io_repart = self.io_repart.plus(&other.io_repart);
        self.io_join = self.io_join.plus(&other.io_join);
        self.io_dedup = self.io_dedup.plus(&other.io_dedup);
        self.io_checkpoint = self.io_checkpoint.plus(&other.io_checkpoint);
        self.cpu_partition = self.cpu_partition.max(other.cpu_partition);
        self.cpu_repart = self.cpu_repart.max(other.cpu_repart);
        self.cpu_join = self.cpu_join.max(other.cpu_join);
        self.cpu_dedup = self.cpu_dedup.max(other.cpu_dedup);
    }
}

struct Ctx<'a> {
    disk: &'a SimDisk,
    cfg: &'a PbsmConfig,
    internal: &'a mut (dyn InternalJoin + Send),
    stats: &'a mut PbsmStats,
    /// Compute clock for the `cpu_join`/`cpu_repart` phase accounting: wall
    /// time on the sequential path, a per-worker [`parallel::WorkClock`] on
    /// the parallel path (so the max-over-workers reduction reports the
    /// phase cost on dedicated cores, not host timeslicing).
    clock: &'a dyn Fn() -> f64,
    /// The source relations, kept around so a partition file lost to
    /// *persistent* media damage can be quarantined and its pair recomputed
    /// in memory (source reads are free of charge per the paper's cost
    /// model, §2 — the inputs live outside the simulated disk).
    sources: (&'a [Kpe], &'a [Kpe]),
}

/// Runs PBSM on `r ⋈ s`, invoking `out` for every result pair.
///
/// Infallible wrapper over [`try_pbsm_join`]; panics with the typed error's
/// message if a request exhausts the disk's retry budget and every
/// degradation path (impossible on a fault-free disk).
pub fn pbsm_join(
    disk: &SimDisk,
    r: &[Kpe],
    s: &[Kpe],
    cfg: &PbsmConfig,
    out: &mut dyn FnMut(RecordId, RecordId),
) -> PbsmStats {
    try_pbsm_join(disk, r, s, cfg, out)
        .unwrap_or_else(|e| panic!("unhandled simulated-disk error: {e}"))
}

/// Runs PBSM on `r ⋈ s`, invoking `out` for every result pair.
///
/// Reading the inputs and delivering the output are free of charge, per the
/// paper's cost model (§2); all intermediate files (partitions, repartitions,
/// candidate sets) live on `disk` and are fully accounted.
///
/// Failure semantics: every page request already retried under the disk's
/// [`storage::RetryPolicy`] before an error reaches this layer. A partition
/// pair whose load still fails *degrades gracefully* into recursive
/// repartitioning (counted in [`PbsmStats::degraded_partitions`]) — safe
/// because a failed load has emitted nothing, and the refined sub-regions
/// keep the output duplicate-free. On the parallel path a terminally failed
/// task is requeued onto another worker up to
/// [`PbsmConfig::max_partition_requeues`] times; its buffered output is
/// discarded, so nothing is double-emitted. Only when all of that is
/// exhausted does the typed [`JoinError`] surface. Failed attempts, retries
/// and backoff stay charged to the disk meter either way.
pub fn try_pbsm_join(
    disk: &SimDisk,
    r: &[Kpe],
    s: &[Kpe],
    cfg: &PbsmConfig,
    out: &mut dyn FnMut(RecordId, RecordId),
) -> Result<PbsmStats, JoinError> {
    try_pbsm_join_ctl(disk, r, s, cfg, &RunControl::none(), out)
}

/// [`try_pbsm_join`] with run-control plumbing: cooperative cancellation, a
/// simulated-time deadline (both checked at partition granularity), and —
/// when [`RunControl::checkpoint`] is set — durable per-partition commits
/// with exactly-once resume.
///
/// Checkpointing requires [`Dedup::ReferencePoint`] or [`Dedup::TwoLayer`]:
/// both attribute every result pair to exactly one top-level partition (the
/// one owning the pair's reference point / reference tile), which is what
/// makes skipping journal-committed partitions duplicate-free. The
/// sort-phase dedup classifies pairs only after a *global* sort and the
/// diagnostic mode never dedups, so neither supports partition-granular
/// resume; both are refused up front with a typed `Unsupported` error.
///
/// Under checkpointing each partition's result pairs are buffered, durably
/// flushed to the run's results file, journaled (the commit point — crash
/// injection fires here), and only then emitted. An interrupted run has
/// therefore emitted exactly its committed partitions' pairs, and a resumed
/// run emits exactly the uncommitted ones: together the two legs produce the
/// uninterrupted output with zero re-emissions. A resumed run folds the
/// journaled counters into its stats, so its reported totals equal an
/// uninterrupted run's.
pub fn try_pbsm_join_ctl(
    disk: &SimDisk,
    r: &[Kpe],
    s: &[Kpe],
    cfg: &PbsmConfig,
    ctl: &RunControl,
    out: &mut dyn FnMut(RecordId, RecordId),
) -> Result<PbsmStats, JoinError> {
    let mut cp = ctl.checkpoint.as_ref().map(|m| m.lock());
    let checkpointing = cp.is_some();
    if checkpointing && !matches!(cfg.dedup, Dedup::ReferencePoint | Dedup::TwoLayer) {
        return Err(JoinError::new("setup", IoError::unsupported()));
    }
    let model = disk.model();
    let mut stats = PbsmStats::new(model);
    // Absolute position on the simulated timeline: disk-model seconds for an
    // I/O meter reading plus scaled CPU — phase spans and events are stamped
    // with this, never with wall time.
    let sim_at = |io: &IoStats, cpu: f64| model.seconds(io) + model.scaled_cpu(cpu);

    // A recovered run that already published `Done`: everything was emitted
    // before the original process exited, so report the journaled totals and
    // emit nothing (re-emitting would break exactly-once).
    if let Some(cp) = cp.as_ref() {
        if cp.phase() == RunPhase::Done {
            stats.partitions = cp.partitions();
            stats.grid = TileGrid::for_partitions(cp.partitions().max(1), cfg.tiles_per_partition);
            for e in cp.committed() {
                stats.candidates += e.candidates;
                stats.results += e.results;
                stats.duplicates += e.duplicates;
            }
            return Ok(stats);
        }
    }
    let resuming = cp.as_ref().is_some_and(|c| c.phase() == RunPhase::Join);

    // --- Phase 1: partitioning (formula (1) with safety factor t) ----------
    let t0 = Instant::now();
    let io0 = disk.stats();
    // Per-channel baseline for the run's channel decomposition (the disk
    // may carry charges from earlier runs; only this run's deltas count).
    let ch0 = disk.channel_stats();
    let input_bytes = (r.len() + s.len()) * Kpe::ENCODED_SIZE;
    let mut p =
        ((cfg.safety_factor * input_bytes as f64 / cfg.mem_bytes as f64).ceil() as u32).max(1);
    let mut grid = TileGrid::for_partitions(p, cfg.tiles_per_partition);
    let mut map = PartitionMap::new(p, cfg.tile_scheme, cfg.seed);
    stats.partitions = p;
    stats.grid = grid;

    // With a single partition the "pair" is the whole input: per the cost
    // model it can be joined straight from memory, so the partition files
    // are never materialised (the same shortcut every in-memory hash join
    // takes when it fits).
    let mut single = p == 1;
    let (files_r, files_s) = if single {
        stats.copies_r = r.len() as u64; // one logical copy each, not on disk
        stats.copies_s = s.len() as u64;
        (Vec::new(), Vec::new())
    } else if resuming {
        // The manifest's partition files survived the crash intact: the
        // whole partition phase (and its page writes) is skipped.
        debug_assert_eq!(
            cp.as_ref().map_or(0, |c| c.partitions()),
            p,
            "fingerprint-matched resume must re-derive the partition count"
        );
        cp.as_ref().map_or_else(Default::default, |c| {
            let (fr, fs) = c.files();
            (fr.to_vec(), fs.to_vec())
        })
    } else {
        let mut poll = |record: u64| {
            // The whole phase is one sequential pass, so interruption checks
            // happen every 64 input records instead of per partition.
            if !record.is_multiple_of(64) {
                return None;
            }
            ctl.charge(
                "partition",
                disk.io_seconds() + model.scaled_cpu(t0.elapsed().as_secs_f64()),
            )
        };
        let run_both = |g: TileGrid,
                        m: PartitionMap,
                        poll: &mut dyn FnMut(u64) -> Option<JoinError>|
         -> Result<(Partitioned, Partitioned), JoinError> {
            let fr = partition_relation(disk, r, g, m, cfg.partition_buffer_pages, poll)?;
            match partition_relation(disk, s, g, m, cfg.partition_buffer_pages, poll) {
                Ok(fs) => Ok((fr, fs)),
                Err(e) => {
                    for &f in &fr.0 {
                        disk.delete(f);
                    }
                    Err(e)
                }
            }
        };
        let is_enospc = |e: &JoinError| {
            e.io().is_some_and(|io| io.kind == storage::IoErrorKind::DiskFull)
        };
        let mut res = run_both(grid, map, &mut poll);
        // ENOSPC fallback ladder, fresh (non-checkpointed) runs only — the
        // resume fingerprint pins a checkpointed run's partition geometry,
        // so those surface the typed error for the caller to re-plan.
        // Rung 1: coarser tiling (fewer tiles ⇒ less replication ⇒ fewer
        // pages). Rung 2: the in-memory single-partition plan, which
        // touches no disk at all. `partition_relation` deleted its files on
        // the way out, so each rung starts from the freed budget.
        if !checkpointing {
            if res.as_ref().err().is_some_and(is_enospc) && cfg.tiles_per_partition > 1 {
                stats.enospc_fallbacks += 1;
                grid = TileGrid::for_partitions(p, 1);
                stats.grid = grid;
                res = run_both(grid, map, &mut poll);
            }
            if res.as_ref().err().is_some_and(is_enospc) {
                stats.enospc_fallbacks += 1;
                single = true;
                p = 1;
                grid = TileGrid::for_partitions(1, cfg.tiles_per_partition);
                map = PartitionMap::new(1, cfg.tile_scheme, cfg.seed);
                stats.partitions = 1;
                stats.grid = grid;
                res = Ok(((Vec::new(), r.len() as u64), (Vec::new(), s.len() as u64)));
            }
        }
        let ((files_r, copies_r), (files_s, copies_s)) = res?;
        stats.copies_r = copies_r;
        stats.copies_s = copies_s;
        (files_r, files_s)
    };
    stats.io_partition = disk.stats().delta(&io0);
    stats.cpu_partition = t0.elapsed().as_secs_f64();
    ctl.span(
        "partition",
        sim_at(&io0, 0.0),
        sim_at(&disk.stats(), stats.cpu_partition),
    );

    // Publish the `Join` manifest (journal + results files + partition file
    // list) before any partition can commit; a resumed run instead folds the
    // journaled counters in so its totals match an uninterrupted run's.
    if let Some(cp) = cp.as_mut() {
        if resuming {
            for e in cp.committed() {
                stats.candidates += e.candidates;
                stats.results += e.results;
                stats.duplicates += e.duplicates;
            }
        } else {
            let c0 = disk.stats();
            let res = cp.commit_join_phase(p, &files_r, &files_s);
            stats.io_checkpoint = stats.io_checkpoint.plus(&disk.stats().delta(&c0));
            res?;
        }
    }

    // --- Phases 2+3: repartition where needed, join every pair -------------
    // The dedup disk is a scratch fork: own files and meter, but the same
    // fault plan and retry policy, so the sort phase is covered by fault
    // injection too.
    let dedup_disk = matches!(cfg.dedup, Dedup::SortPhase).then(|| disk.scratch_disk());
    let mut candidates = dedup_disk
        .as_ref()
        .map(|d| RecordWriter::<IdPair>::create(d, cfg.io_buffer_pages));
    // First-result probe (the pipelining metric of §3.1/§5) on the
    // *pipelined* clock: join-phase base plus the emitting task's own
    // CPU/I/O up to its first pair, minimized over all emitting tasks.
    // Task-own deltas are scheduling-independent, so threads=1 and
    // threads=N report the same position (satellite fix: the old probe read
    // the coordinator's wall clock and global meters at delivery, which on
    // the parallel path is later than the earliest worker emission).
    let mut first_pos: Option<(f64, IoStats)> = None;
    let fold_first = |slot: &mut Option<(f64, IoStats)>, cand: (f64, IoStats)| {
        let pos = |p: &(f64, IoStats)| model.scaled_cpu(p.0) + model.seconds(&p.1);
        if slot.as_ref().is_none_or(|cur| pos(&cand) < pos(cur)) {
            *slot = Some(cand);
        }
    };
    // This run's I/O at join-phase entry — the base every task-own delta is
    // measured against (relative to `io0`, so a reused disk's earlier
    // charges never leak into the probe).
    let base_io = disk.stats().delta(&io0);
    let threads = parallel::resolve_threads(cfg.threads);
    let mut internal = cfg.internal.create();
    // On-CPU compute clock (wall fallback) so sequential and parallel
    // join-phase measurements share a basis — see `Ctx::clock`.
    let coord_clock = parallel::WorkClock::start();
    let wall_clock = || coord_clock.seconds();
    // Simulated time so far — what the deadline is charged against at every
    // partition boundary.
    let cpu_base = stats.cpu_partition;
    let elapsed_now = || disk.io_seconds() + model.scaled_cpu(cpu_base + coord_clock.seconds());
    // Join-phase work units still to do: a resumed run skips every
    // journal-committed partition (whose pairs the crashed process already
    // emitted after its commit — skipping them is what makes resume
    // exactly-once).
    let todo: Vec<u32> = (0..p)
        .filter(|i| !cp.as_ref().is_some_and(|c| c.is_committed(*i)))
        .collect();
    if single {
        if let Some(e) = ctl.charge("join", elapsed_now()) {
            return Err(e);
        }
        if todo.is_empty() {
            stats.join_counters = internal.counters();
        } else {
            let t = Instant::now();
            let chain = RegionChain::top(grid, map, map.partition_of(0, 0, grid.gx));
            let mut rv = r.to_vec();
            let mut sv = s.to_vec();
            let mut buffered: Vec<(RecordId, RecordId)> = Vec::new();
            let base = (stats.candidates, stats.results, stats.duplicates);
            let cpu0 = coord_clock.seconds();
            let io0s = disk.stats();
            let mut task_first: Option<(f64, IoStats)> = None;
            let mut track = |a: RecordId, b: RecordId| {
                if task_first.is_none() {
                    task_first = Some((
                        cpu_base + (coord_clock.seconds() - cpu0),
                        base_io.plus(&disk.stats().delta(&io0s)),
                    ));
                }
                out(a, b);
            };
            let joined = {
                let mut ctx = Ctx {
                    disk,
                    cfg,
                    internal: &mut *internal,
                    stats: &mut stats,
                    clock: &wall_clock,
                    sources: (r, s),
                };
                if checkpointing {
                    join_loaded(
                        &mut ctx,
                        &mut rv,
                        &mut sv,
                        &chain,
                        &mut |a, b| buffered.push((a, b)),
                        &mut |_| Ok(()),
                    )
                } else {
                    join_loaded(&mut ctx, &mut rv, &mut sv, &chain, &mut track, &mut |pair| {
                        candidates
                            .as_mut()
                            .expect("sort-phase candidate writer (Some iff Dedup::SortPhase)")
                            .try_push(&pair)
                    })
                }
            };
            stats.cpu_join += t.elapsed().as_secs_f64();
            stats.join_counters.merge(&internal.counters());
            joined.map_err(|e| JoinError::new("dedup", e))?;
            let deltas = (
                stats.candidates - base.0,
                stats.results - base.1,
                stats.duplicates - base.2,
            );
            if let Some(cp) = cp.as_mut() {
                commit_and_emit(
                    cp,
                    disk,
                    &mut stats.io_checkpoint,
                    &mut stats.checkpoint_commits,
                    0,
                    &buffered,
                    deltas,
                    &mut track,
                )?;
            }
            if let Some(f) = task_first {
                fold_first(&mut first_pos, f);
            }
            if ctl.observed() {
                let io_own = disk.stats().delta(&io0s);
                ctl.event(
                    "partition-done",
                    elapsed_now(),
                    &[
                        ("partition", 0),
                        ("candidates", deltas.0),
                        ("results", deltas.1),
                        ("duplicates", deltas.2),
                        ("pages_read", io_own.pages_read),
                        ("pages_written", io_own.pages_written),
                        ("committed", checkpointing as u64),
                    ],
                );
            }
        }
    } else if threads <= 1 {
        // Sequential executor: today's exact behaviour (threads = 1). After
        // the first terminal error the remaining pairs are skipped; without
        // a checkpoint all partition files are still deleted, with one they
        // are left in place — an interruption must not destroy the state a
        // resume needs, and `finish`/the recovery scan reclaim them.
        let mut first_err: Option<JoinError> = None;
        for &i in &todo {
            if first_err.is_none() {
                first_err = ctl.charge("join", elapsed_now());
            }
            if first_err.is_none() {
                let chain = RegionChain::top(grid, map, i);
                let mut buffered: Vec<(RecordId, RecordId)> = Vec::new();
                let base = (stats.candidates, stats.results, stats.duplicates);
                let cpu0 = coord_clock.seconds();
                let io0s = disk.stats();
                let mut task_first: Option<(f64, IoStats)> = None;
                let mut track = |a: RecordId, b: RecordId| {
                    if task_first.is_none() {
                        task_first = Some((
                            cpu_base + (coord_clock.seconds() - cpu0),
                            base_io.plus(&disk.stats().delta(&io0s)),
                        ));
                    }
                    out(a, b);
                };
                let res = {
                    let mut ctx = Ctx {
                        disk,
                        cfg,
                        internal: &mut *internal,
                        stats: &mut stats,
                        clock: &wall_clock,
                        sources: (r, s),
                    };
                    if checkpointing {
                        join_pair(
                            &mut ctx,
                            files_r[i as usize],
                            files_s[i as usize],
                            &chain,
                            0,
                            (false, false),
                            i,
                            None,
                            &mut |a, b| buffered.push((a, b)),
                            &mut |_| Ok(()),
                        )
                    } else {
                        join_pair(
                            &mut ctx,
                            files_r[i as usize],
                            files_s[i as usize],
                            &chain,
                            0,
                            (false, false),
                            i,
                            None,
                            &mut track,
                            &mut |pair| {
                                candidates
                                    .as_mut()
                                    .expect(
                                        "sort-phase candidate writer (Some iff Dedup::SortPhase)",
                                    )
                                    .try_push(&pair)
                            },
                        )
                    }
                };
                match res {
                    Ok(()) => {
                        if let Some(cp) = cp.as_mut() {
                            let deltas = (
                                stats.candidates - base.0,
                                stats.results - base.1,
                                stats.duplicates - base.2,
                            );
                            if let Err(e) = commit_and_emit(
                                cp,
                                disk,
                                &mut stats.io_checkpoint,
                                &mut stats.checkpoint_commits,
                                i,
                                &buffered,
                                deltas,
                                &mut track,
                            ) {
                                first_err = Some(e);
                            }
                        }
                    }
                    Err(e) => first_err = Some(e),
                }
                if let Some(f) = task_first {
                    fold_first(&mut first_pos, f);
                }
                if ctl.observed() && first_err.is_none() {
                    let io_own = disk.stats().delta(&io0s);
                    ctl.event(
                        "partition-done",
                        elapsed_now(),
                        &[
                            ("partition", u64::from(i)),
                            ("candidates", stats.candidates - base.0),
                            ("results", stats.results - base.1),
                            ("duplicates", stats.duplicates - base.2),
                            ("pages_read", io_own.pages_read),
                            ("pages_written", io_own.pages_written),
                            ("committed", checkpointing as u64),
                        ],
                    );
                }
            }
            if !checkpointing {
                disk.delete(files_r[i as usize]);
                disk.delete(files_s[i as usize]);
            }
        }
        stats.join_counters.merge(&internal.counters());
        if let Some(e) = first_err {
            return Err(e);
        }
    } else {
        // Parallel executor: each top-level partition pair (including its
        // repartitioning recursion) is one task. Workers run on forked I/O
        // counters; task outputs are re-assembled in partition order, so
        // the emitted stream — and, for the sort phase, the candidate file
        // — is byte-identical to the sequential path. Checkpoint commits
        // happen only here on the coordinator, in that same canonical order.
        struct TaskOut {
            pairs: Vec<(RecordId, RecordId)>,
            cand: Vec<IdPair>,
            /// Forked-meter delta of this task, folded into the
            /// coordinator's deadline estimate as results land (the full
            /// fork meters merge only after the pool drains).
            io: IoStats,
            /// On-CPU seconds this task cost its worker.
            cpu: f64,
            /// This task's own (CPU delta, I/O delta) at its first pair —
            /// the task-local leg of the pipelined first-result probe.
            first: Option<(f64, IoStats)>,
            /// (candidates, results, duplicates) this task produced — the
            /// journal record of its partition.
            deltas: (u64, u64, u64),
        }
        /// Load-stage handoff of the software pipeline: the preload outcome
        /// plus what it cost. The compute stage folds `io`/`cpu` into the
        /// attempt's join-phase buckets, so the phase decomposition is
        /// identical whether the load ran early or inline.
        struct Prefetch {
            outcome: Option<Preloaded>,
            io: IoStats,
            cpu: f64,
        }
        let mut first_err: Option<JoinError> = None;
        let mut est_io = IoStats::default();
        let io_ckpt = &mut stats.io_checkpoint;
        let ckpt_commits = &mut stats.checkpoint_commits;
        let first_pos_ref = &mut first_pos;
        let todo_ref = &todo;
        let (workers, pool) = parallel::run_ordered_prefetch_fallible_with(
            threads,
            todo.len(),
            cfg.max_partition_requeues,
            Some(&ctl.cancel),
            |_w| {
                (
                    disk.fork_counters(),
                    cfg.internal.create(),
                    PbsmStats::new(model),
                    parallel::WorkClock::start(),
                )
            },
            // Load stage: pull the next claimed pair into memory while the
            // previous pair is still computing — the double-buffering the
            // multi-channel clock credits as hidden I/O. It runs on the
            // same worker and forked meter as the compute stage, in claim
            // order, so per-task deltas and the fault-attempt sequence are
            // exactly the sequential path's.
            |(fork, _internal, _partial, work_clock), idx, _round| {
                let i = todo_ref[idx];
                let c0 = work_clock.seconds();
                let io0 = fork.stats();
                let fork_ref: &SimDisk = fork;
                let outcome = (|| {
                    let br = fork_ref.try_len(files_r[i as usize]).ok()?;
                    let bs = fork_ref.try_len(files_s[i as usize]).ok()?;
                    // Only a pair the join phase would load whole is worth
                    // prefetching; empty and over-budget pairs reach
                    // `join_pair` untouched (`try_len` is free and not
                    // fault-injected, so its re-check drifts nothing).
                    if br == 0 || bs == 0 || (br + bs) as usize > cfg.mem_bytes {
                        return None;
                    }
                    Some(
                        match try_read_all::<Kpe>(fork_ref, files_r[i as usize], cfg.io_buffer_pages)
                        {
                            Ok(rv) => match try_read_all::<Kpe>(
                                fork_ref,
                                files_s[i as usize],
                                cfg.io_buffer_pages,
                            ) {
                                Ok(sv) => Preloaded::Loaded(rv, sv),
                                Err(err) => Preloaded::Failed { err, failed_r: false },
                            },
                            Err(err) => Preloaded::Failed { err, failed_r: true },
                        },
                    )
                })();
                Prefetch {
                    outcome,
                    io: fork_ref.stats().delta(&io0),
                    cpu: work_clock.seconds() - c0,
                }
            },
            |(fork, internal, partial, work_clock), idx, round, pre| {
                let i = todo_ref[idx];
                if round > 0 {
                    partial.requeued_partitions += 1;
                }
                // Snapshot the logical counters: a failed attempt's partial
                // work is discarded (the pool requeues the whole task), so
                // its counts must not leak into the merged stats. The forked
                // I/O meter is deliberately *not* rolled back — failed
                // attempts and their retries are real simulated disk time.
                let snapshot = partial.clone();
                // The load stage's work is join-phase work that ran early;
                // folding it here (after the snapshot) keeps the rollback
                // semantics of a failed attempt: its load I/O stays charged,
                // and the requeued round re-loads with a fresh budget.
                partial.io_join = partial.io_join.plus(&pre.io);
                partial.cpu_join += pre.cpu;
                let io_before = fork.stats();
                let cpu_before = work_clock.seconds();
                let chain = RegionChain::top(grid, map, i);
                let mut pairs = Vec::new();
                let mut cand = Vec::new();
                let mut first: Option<(f64, IoStats)> = None;
                let fork_ref: &SimDisk = fork;
                let clock = || work_clock.seconds();
                let mut ctx = Ctx {
                    disk: fork_ref,
                    cfg,
                    internal: &mut **internal,
                    stats: partial,
                    clock: &clock,
                    sources: (r, s),
                };
                let res = join_pair(
                    &mut ctx,
                    files_r[i as usize],
                    files_s[i as usize],
                    &chain,
                    0,
                    (false, false),
                    i,
                    pre.outcome,
                    &mut |a, b| {
                        if first.is_none() {
                            // Task-own position includes the prefetched
                            // load: on the pipelined clock the pair's work
                            // starts at its load, wherever it was scheduled.
                            first = Some((
                                pre.cpu + (work_clock.seconds() - cpu_before),
                                pre.io.plus(&fork_ref.stats().delta(&io_before)),
                            ));
                        }
                        pairs.push((a, b));
                    },
                    &mut |pair| {
                        cand.push(pair);
                        Ok(())
                    },
                );
                match res {
                    Ok(()) => Ok(TaskOut {
                        pairs,
                        cand,
                        io: pre.io.plus(&fork_ref.stats().delta(&io_before)),
                        cpu: pre.cpu + (work_clock.seconds() - cpu_before),
                        first,
                        deltas: (
                            partial.candidates - snapshot.candidates,
                            partial.results - snapshot.results,
                            partial.duplicates - snapshot.duplicates,
                        ),
                    }),
                    Err(e) => {
                        // Roll back the logical counters only (the requeued
                        // attempt recounts them from scratch); keep the I/O
                        // and CPU buckets. Restoring those too dropped the
                        // failed attempt's reads and retries from the join
                        // bucket while the fork's meter kept them, so the
                        // per-phase retry breakdown disagreed with the
                        // disk's total meter.
                        let attempted = partial.clone();
                        *partial = snapshot;
                        partial.io_join = attempted.io_join;
                        partial.io_repart = attempted.io_repart;
                        partial.cpu_join = attempted.cpu_join;
                        partial.cpu_repart = attempted.cpu_repart;
                        // A failure in the last allowed round is terminal —
                        // the pool will not requeue past the cap — so name
                        // the partition, the attempt count and the last I/O
                        // error instead of the bare per-attempt error.
                        Err(if round >= cfg.max_partition_requeues {
                            match e.io() {
                                Some(io) => {
                                    JoinError::requeue_exhausted(e.phase, i, round + 1, *io)
                                }
                                None => e,
                            }
                        } else {
                            e
                        })
                    }
                }
            },
            |idx, result| {
                let i = todo_ref[idx];
                if first_err.is_none() {
                    // Deadline at partition granularity: the coordinator's
                    // own meter plus every forked delta folded in so far.
                    first_err = ctl.charge(
                        "join",
                        model.seconds(&disk.stats().plus(&est_io))
                            + model.scaled_cpu(cpu_base + coord_clock.seconds()),
                    );
                }
                match result {
                    Ok(t) => {
                        est_io = est_io.plus(&t.io);
                        if ctl.observed() && first_err.is_none() {
                            ctl.event(
                                "partition-done",
                                model.seconds(&disk.stats().plus(&est_io))
                                    + model.scaled_cpu(cpu_base + coord_clock.seconds()),
                                &[
                                    ("partition", u64::from(i)),
                                    ("candidates", t.deltas.0),
                                    ("results", t.deltas.1),
                                    ("duplicates", t.deltas.2),
                                    ("pages_read", t.io.pages_read),
                                    ("pages_written", t.io.pages_written),
                                    ("committed", checkpointing as u64),
                                ],
                            );
                        }
                        if first_err.is_none() {
                            if let Some(cp) = cp.as_mut() {
                                // Emission happens after the durable commit,
                                // so the task's pipelined first-pair position
                                // includes its full join work plus the commit
                                // I/O that precedes delivery.
                                let io_c0 = disk.stats();
                                let mut task_first: Option<(f64, IoStats)> = None;
                                let mut track = |a: RecordId, b: RecordId| {
                                    if task_first.is_none() {
                                        task_first = Some((
                                            cpu_base + t.cpu,
                                            base_io
                                                .plus(&t.io)
                                                .plus(&disk.stats().delta(&io_c0)),
                                        ));
                                    }
                                    out(a, b);
                                };
                                let res = commit_and_emit(
                                    cp,
                                    disk,
                                    io_ckpt,
                                    ckpt_commits,
                                    i,
                                    &t.pairs,
                                    t.deltas,
                                    &mut track,
                                );
                                if let Some(f) = task_first {
                                    fold_first(first_pos_ref, f);
                                }
                                if let Err(e) = res {
                                    first_err = Some(e);
                                }
                            } else {
                                if let Some(f) = t.first {
                                    fold_first(
                                        first_pos_ref,
                                        (cpu_base + f.0, base_io.plus(&f.1)),
                                    );
                                }
                                for (a, b) in t.pairs {
                                    out(a, b);
                                }
                                if let Some(w) = candidates.as_mut() {
                                    for pair in t.cand {
                                        if let Err(e) = w.try_push(&pair) {
                                            first_err.get_or_insert(JoinError::new("dedup", e));
                                            break;
                                        }
                                    }
                                }
                            }
                        }
                    }
                    Err(e) => {
                        first_err.get_or_insert(e);
                    }
                }
                if !checkpointing {
                    disk.delete(files_r[i as usize]);
                    disk.delete(files_s[i as usize]);
                } else if first_err.is_some() {
                    // A checkpointed run that hit a terminal error (crash,
                    // commit failure) is dead: stop the workers from
                    // claiming further partitions, like the process exit
                    // they are simulating would. Committed state stays.
                    ctl.cancel.cancel();
                }
            },
        );
        for (fork, internal, mut partial, _clock) in workers {
            partial.join_counters.merge(&internal.counters());
            // Per-worker duplicate accounting, checked before the merge can
            // hide an interleaving bug: under RPM (and the raw diagnostic)
            // every candidate a worker saw was classified exactly once;
            // under the sort phase workers only collect candidates and must
            // not classify anything.
            match cfg.dedup {
                Dedup::ReferencePoint | Dedup::None => debug_assert_eq!(
                    partial.candidates,
                    partial.results + partial.duplicates,
                    "per-worker RPM accounting broken"
                ),
                Dedup::SortPhase => debug_assert_eq!(
                    (partial.results, partial.duplicates),
                    (0, 0),
                    "sort-phase worker classified candidates"
                ),
                Dedup::TwoLayer => debug_assert!(
                    partial.candidates == partial.results && partial.duplicates == 0,
                    "two-layer worker produced a duplicate"
                ),
            }
            stats.merge(&partial);
            // Fold the worker's forked meter back bucket-wise so both
            // `disk.stats()` and the per-channel decomposition report the
            // same totals as a sequential run.
            disk.add_channel_stats(&fork.channel_stats());
        }
        // Cross-check the scheduler's own requeue count against the
        // per-worker accounting (they can only diverge when a cancellation
        // leaves a queued retry unclaimed).
        if first_err.is_none() && !ctl.cancel.is_cancelled() {
            debug_assert_eq!(
                u64::from(stats.requeued_partitions),
                pool.requeues,
                "scheduler requeue count disagrees with per-worker accounting"
            );
        }
        if ctl.observed() {
            ctl.event(
                "pool-drained",
                elapsed_now(),
                &[
                    ("tasks_claimed", pool.tasks_claimed),
                    ("requeues", pool.requeues),
                    ("threads", threads as u64),
                ],
            );
        }
        if let Some(e) = first_err {
            return Err(e);
        }
    }

    ctl.span(
        "join",
        sim_at(&base_io, cpu_base),
        sim_at(
            &disk.stats(),
            stats.cpu_partition + stats.cpu_repart + stats.cpu_join,
        ),
    );

    // --- Phase 4 (SortPhase only): sort candidates, drop duplicates --------
    if let (Some(ddisk), Some(writer)) = (dedup_disk, candidates) {
        let t3 = Instant::now();
        let cpu_pre = stats.cpu_partition + stats.cpu_repart + stats.cpu_join;
        let dd_start = sim_at(&disk.stats().plus(&ddisk.stats()), cpu_pre);
        let cand_file = writer
            .try_finish()
            .map_err(|e| JoinError::new("dedup", e))?;
        let (sorted, sort_stats) = try_external_sort::<IdPair>(&ddisk, cand_file, cfg.mem_bytes)
            .map_err(|e| JoinError::new("dedup", e))?;
        ddisk.delete(cand_file);
        let mut prev: Option<IdPair> = None;
        let mut reader = RecordReader::<IdPair>::new(&ddisk, sorted, cfg.io_buffer_pages);
        loop {
            let pair = match reader.try_next() {
                Ok(Some(pair)) => pair,
                Ok(None) => break,
                Err(e) => {
                    ddisk.delete(sorted);
                    return Err(JoinError::new("dedup", e));
                }
            };
            if prev != Some(pair) {
                stats.results += 1;
                if first_pos.is_none() {
                    // The sort phase pipelines nothing: the first pair can
                    // only appear after every candidate is sorted, so its
                    // position is the cumulative clock at this scan step.
                    first_pos = Some((
                        cpu_pre + t3.elapsed().as_secs_f64(),
                        disk.stats().delta(&io0).plus(&ddisk.stats()),
                    ));
                }
                out(RecordId(pair.r), RecordId(pair.s));
            } else {
                stats.duplicates += 1;
            }
            prev = Some(pair);
        }
        ddisk.delete(sorted);
        stats.sort = Some(sort_stats);
        stats.io_dedup = ddisk.stats();
        stats.cpu_dedup = t3.elapsed().as_secs_f64();
        ctl.span(
            "dedup",
            dd_start,
            sim_at(&disk.stats().plus(&ddisk.stats()), cpu_pre + stats.cpu_dedup),
        );
    }

    // Publish `Done` and drop the partition files; the journal, results and
    // manifest files remain as the run's durable record.
    if let Some(cp) = cp.as_mut() {
        let c0 = disk.stats();
        let res = cp.finish();
        stats.io_checkpoint = stats.io_checkpoint.plus(&disk.stats().delta(&c0));
        res?;
    }
    stats.first_result_cpu = first_pos.as_ref().map(|p| p.0);
    stats.first_result_io = first_pos.map(|p| p.1);
    // Channel decomposition of this run's I/O: run-relative deltas of the
    // disk's per-channel meters (every fork has folded back by now), with
    // the dedup scratch disk's traffic on the shared lane — its files are
    // untagged, so its time serializes like any shared file.
    let ch_end = disk.channel_stats();
    stats.io_shared = ch_end[0].delta(&ch0[0]).plus(&stats.io_dedup);
    stats.io_channels = ch_end[1..]
        .iter()
        .zip(ch0[1..].iter())
        .map(|(e, s)| e.delta(s))
        .collect();
    Ok(stats)
}

/// Commit-protocol steps 2–4 for one finished partition: durably flush its
/// buffered pairs to the results file, append its journal record (the
/// commit point — crash injection fires here), and only then emit the pairs
/// downstream. The checkpoint I/O delta is folded into `io_ckpt`, and each
/// durable journal record bumps `commits`.
#[allow(clippy::too_many_arguments)] // internal commit driver; the args are the commit state
fn commit_and_emit(
    cp: &mut RunCheckpoint,
    disk: &SimDisk,
    io_ckpt: &mut IoStats,
    commits: &mut u64,
    partition: u32,
    pairs: &[(RecordId, RecordId)],
    (candidates, results, duplicates): (u64, u64, u64),
    out: &mut dyn FnMut(RecordId, RecordId),
) -> Result<(), JoinError> {
    let io0 = disk.stats();
    let encoded: Vec<IdPair> = pairs
        .iter()
        .map(|&(a, b)| IdPair { r: a.0, s: b.0 })
        .collect();
    let res = cp
        .append_results(&encoded)
        .and_then(|()| cp.commit_partition(partition, candidates, results, duplicates));
    *io_ckpt = io_ckpt.plus(&disk.stats().delta(&io0));
    // The durable journal record — not the process's last instruction — is
    // the delivery boundary: a resume skips every committed partition, so a
    // committed partition's pairs must reach the consumer even when the
    // injected crash fires between the commit and this loop (otherwise they
    // would be emitted by neither leg). An uncommitted partition's pairs
    // stay unemitted; the resume recomputes and emits them.
    if res.is_ok() || cp.is_committed(partition) {
        *commits += 1;
        for &(a, b) in pairs {
            out(a, b);
        }
    }
    res
}

/// Phase 1 for one relation: replicate each KPE into the partition of every
/// tile it overlaps. Returns the partition files and the number of copies.
/// `poll` is consulted with each input record's ordinal so cancellation and
/// deadline expiry can interrupt the pass; on any error — I/O or
/// interruption — every file this call created is deleted before returning,
/// so an interrupted partition phase leaves no orphan files behind.
/// One relation's partition files plus the KPE copies written into them.
type Partitioned = (Vec<FileId>, u64);

fn partition_relation(
    disk: &SimDisk,
    data: &[Kpe],
    grid: TileGrid,
    map: PartitionMap,
    buffer_pages: usize,
    poll: &mut dyn FnMut(u64) -> Option<JoinError>,
) -> Result<Partitioned, JoinError> {
    let io_err = |e: IoError| JoinError::new("partition", e);
    let p = map.partitions;
    // Partition `pid` rides data channel `pid mod D` (the mod is applied at
    // metering time): with D channels the partition writes — and every later
    // read of the same files — overlap instead of serializing.
    let mut writers: Vec<RecordWriter<Kpe>> = (0..p)
        .map(|pid| RecordWriter::create_on(disk, u64::from(pid), buffer_pages))
        .collect();
    let mut copies = 0u64;
    let mut targets: Vec<u32> = Vec::with_capacity(8);
    for (n, k) in data.iter().enumerate() {
        if let Some(e) = poll(n as u64) {
            for w in &writers {
                disk.delete(w.file());
            }
            return Err(e);
        }
        targets.clear();
        let (xs, ys) = grid.tile_range(&k.rect, 1);
        for iy in ys {
            for ix in xs.clone() {
                let pid = map.partition_of(ix, iy, grid.gx);
                if !targets.contains(&pid) {
                    targets.push(pid);
                }
            }
        }
        for &pid in &targets {
            if let Err(e) = writers[pid as usize].try_push(k) {
                for w in &writers {
                    disk.delete(w.file());
                }
                return Err(io_err(e));
            }
            copies += 1;
        }
    }
    let mut files = Vec::with_capacity(p as usize);
    let mut err: Option<IoError> = None;
    for w in writers {
        let fid = w.file();
        match w.try_finish() {
            Ok(f) if err.is_none() => files.push(f),
            Ok(_) => disk.delete(fid),
            Err(e) => {
                disk.delete(fid);
                err.get_or_insert(e);
            }
        }
    }
    if let Some(e) = err {
        for &f in &files {
            disk.delete(f);
        }
        return Err(io_err(e));
    }
    Ok((files, copies))
}

/// Joins one loaded partition pair with the configured duplicate handling.
/// `cand` receives sort-phase candidate pairs (in emission order); the
/// sequential executor writes them straight to the candidate file, the
/// parallel executor buffers them per task for canonical-order reassembly.
fn join_loaded(
    ctx: &mut Ctx<'_>,
    rv: &mut [Kpe],
    sv: &mut [Kpe],
    chain: &RegionChain,
    out: &mut dyn FnMut(RecordId, RecordId),
    cand: &mut dyn FnMut(IdPair) -> Result<(), IoError>,
) -> Result<(), IoError> {
    if ctx.cfg.dedup == Dedup::TwoLayer {
        two_layer_join(ctx, rv, sv, chain, out);
        return Ok(());
    }
    let Ctx {
        internal,
        stats,
        cfg,
        ..
    } = ctx;
    let mut local_candidates = 0u64;
    // The internal sweep's callback cannot return a Result, so a candidate
    // write failure is latched here and surfaced once the sweep finishes;
    // further candidate writes are skipped (the error is terminal).
    let mut io_err: Option<IoError> = None;
    internal.join(rv, sv, &mut |a, b| {
        local_candidates += 1;
        match cfg.dedup {
            Dedup::ReferencePoint => {
                if chain.contains_point(reference_point(&a.rect, &b.rect)) {
                    stats.results += 1;
                    out(a.id, b.id);
                } else {
                    stats.duplicates += 1;
                }
            }
            Dedup::SortPhase => {
                if io_err.is_none() {
                    if let Err(e) = cand(IdPair { r: a.id.0, s: b.id.0 }) {
                        io_err = Some(e);
                    }
                }
            }
            Dedup::None => {
                stats.results += 1;
                out(a.id, b.id);
            }
            // Handled by `two_layer_join` before the sweep starts.
            Dedup::TwoLayer => unreachable!("two-layer pairs never reach the RPM sweep"),
        }
    });
    ctx.stats.candidates += local_candidates;
    match io_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Class of a record within one tile it overlaps (two-layer space-oriented
/// partitioning): whether the record's lower-left corner starts this tile's
/// column (`x`) and/or row (`y`). Encoded as `(¬x << 1) | ¬y`.
const CLASS_A: usize = 0; // starts both axes here (the corner tile)
const CLASS_B: usize = 1; // starts the column, spans in from a lower row
const CLASS_C: usize = 2; // starts the row, spans in from a lower column
const CLASS_D: usize = 3; // spans in from below in both axes

/// Joins one loaded partition pair with the two-layer class scheme
/// (Tsitsigkos et al.), the structural generalisation of RPM: instead of
/// sweeping the whole partition and testing every candidate's reference
/// point, each record is bucketed into every region tile it overlaps at the
/// chain's finest refinement and classified A–D per tile by where its
/// lower-left corner starts.
///
/// An intersecting pair's reference point `(max xl, max yl)` — the same
/// point RPM tests — falls in exactly one tile, and in that tile at least
/// one side starts each axis (the tile indices are monotone images of the
/// coordinates, so `tile(max(a, b)) = max(tile(a), tile(b))`). Exactly the
/// nine class combinations below have that property, so joining only those
/// produces every pair exactly once with **zero** duplicate tests; the
/// class borders also make some of the four interval comparisons redundant:
///
/// * `A×A` — full test, run as a tile-local plane sweep;
/// * `A×B`/`B×A` — one y comparison is implied by the row border;
/// * `A×C`/`C×A` — one x comparison is implied by the column border;
/// * `A×D`/`D×A`, `B×C`/`C×B` — only two comparisons survive.
///
/// The remaining seven combinations (`B×B`, `C×C`, and any pairing of `D`
/// with `B`, `C` or `D`) cannot contain the reference point and are skipped
/// outright. The same argument holds verbatim at every repartitioning depth
/// (tiles nest under refinement) and in quarantine-recompute, so the mode
/// rides the whole fault/crash/ENOSPC machinery unchanged.
fn two_layer_join(
    ctx: &mut Ctx<'_>,
    rv: &[Kpe],
    sv: &[Kpe],
    chain: &RegionChain,
    out: &mut dyn FnMut(RecordId, RecordId),
) {
    let f = chain.max_f();
    let grid = chain.base;
    // Per-tile class buckets for each side. BTreeMap keeps the tile order
    // deterministic, so the emitted stream is identical for every thread
    // count (tasks are already re-assembled in partition order).
    type Buckets = [Vec<Kpe>; 4];
    let mut tiles: std::collections::BTreeMap<(u32, u32), (Buckets, Buckets)> =
        std::collections::BTreeMap::new();
    let mut scatter = |data: &[Kpe], is_s: bool| {
        for k in data {
            let (xs, ys) = grid.tile_range(&k.rect, f);
            let (x0, y0) = (*xs.start(), *ys.start());
            for iy in ys.clone() {
                for ix in xs.clone() {
                    if !chain.contains_tile(ix, iy, f) {
                        continue;
                    }
                    let class = (((ix != x0) as usize) << 1) | ((iy != y0) as usize);
                    let entry = tiles.entry((iy, ix)).or_default();
                    let side = if is_s { &mut entry.1 } else { &mut entry.0 };
                    side[class].push(*k);
                }
            }
        }
    };
    scatter(rv, false);
    scatter(sv, true);

    // x-interleaved forward-scan sweep over two lists sorted by `xl`; both
    // x comparisons are implied by the scan, `y_test` applies whatever y
    // comparisons the class combination still needs.
    fn sweep_x(
        r: &[Kpe],
        s: &[Kpe],
        tests: &mut u64,
        y_test: &dyn Fn(&Kpe, &Kpe) -> bool,
        emit: &mut dyn FnMut(&Kpe, &Kpe),
    ) {
        let (mut i, mut j) = (0, 0);
        while i < r.len() && j < s.len() {
            if r[i].rect.xl <= s[j].rect.xl {
                let a = &r[i];
                for b in &s[j..] {
                    if b.rect.xl > a.rect.xh {
                        break;
                    }
                    *tests += 1;
                    if y_test(a, b) {
                        emit(a, b);
                    }
                }
                i += 1;
            } else {
                let b = &s[j];
                for a in &r[i..] {
                    if a.rect.xl > b.rect.xh {
                        break;
                    }
                    *tests += 1;
                    if y_test(a, b) {
                        emit(a, b);
                    }
                }
                j += 1;
            }
        }
    }

    // One-sided scan for combinations whose only surviving x comparison is
    // `pivot.xl ≤ span.xh`: `spans` is sorted by `xh` descending, so the
    // first failing span terminates the inner loop. `y_test`/`emit` always
    // take `(r, s)`.
    fn scan_x(
        pivots: &[Kpe],
        spans: &[Kpe],
        pivot_is_r: bool,
        tests: &mut u64,
        y_test: &dyn Fn(&Kpe, &Kpe) -> bool,
        emit: &mut dyn FnMut(&Kpe, &Kpe),
    ) {
        for p in pivots {
            for sp in spans {
                if sp.rect.xh < p.rect.xl {
                    break;
                }
                *tests += 1;
                let (a, b) = if pivot_is_r { (p, sp) } else { (sp, p) };
                if y_test(a, b) {
                    emit(a, b);
                }
            }
        }
    }

    let y_full = |a: &Kpe, b: &Kpe| a.rect.yl <= b.rect.yh && b.rect.yl <= a.rect.yh;
    let y_rlow = |a: &Kpe, b: &Kpe| a.rect.yl <= b.rect.yh; // s spans the row border
    let y_slow = |a: &Kpe, b: &Kpe| b.rect.yl <= a.rect.yh; // r spans the row border

    let mut tests = 0u64;
    let mut pairs = 0u64;
    {
        let mut emit = |a: &Kpe, b: &Kpe| {
            pairs += 1;
            out(a.id, b.id);
        };
        for (r, s) in tiles.values_mut() {
            let by_xl = |v: &mut Vec<Kpe>| {
                v.sort_unstable_by(|a, b| a.rect.xl.total_cmp(&b.rect.xl));
            };
            let by_xh_desc = |v: &mut Vec<Kpe>| {
                v.sort_unstable_by(|a, b| b.rect.xh.total_cmp(&a.rect.xh));
            };
            by_xl(&mut r[CLASS_A]);
            by_xl(&mut r[CLASS_B]);
            by_xl(&mut s[CLASS_A]);
            by_xl(&mut s[CLASS_B]);
            by_xh_desc(&mut r[CLASS_C]);
            by_xh_desc(&mut r[CLASS_D]);
            by_xh_desc(&mut s[CLASS_C]);
            by_xh_desc(&mut s[CLASS_D]);
            // A×A: full test.
            sweep_x(&r[CLASS_A], &s[CLASS_A], &mut tests, &y_full, &mut emit);
            // A×B / B×A: the B side's y-low comparison is implied.
            sweep_x(&r[CLASS_A], &s[CLASS_B], &mut tests, &y_rlow, &mut emit);
            sweep_x(&r[CLASS_B], &s[CLASS_A], &mut tests, &y_slow, &mut emit);
            // A×C / C×A: the C side's x-low comparison is implied.
            scan_x(&r[CLASS_A], &s[CLASS_C], true, &mut tests, &y_full, &mut emit);
            scan_x(&s[CLASS_A], &r[CLASS_C], false, &mut tests, &y_full, &mut emit);
            // A×D / D×A: both of the D side's low comparisons are implied.
            scan_x(&r[CLASS_A], &s[CLASS_D], true, &mut tests, &y_rlow, &mut emit);
            scan_x(&s[CLASS_A], &r[CLASS_D], false, &mut tests, &y_slow, &mut emit);
            // B×C / C×B: each side implies one of the other's comparisons.
            scan_x(&r[CLASS_B], &s[CLASS_C], true, &mut tests, &y_slow, &mut emit);
            scan_x(&s[CLASS_B], &r[CLASS_C], false, &mut tests, &y_rlow, &mut emit);
        }
    }
    let stats = &mut *ctx.stats;
    stats.candidates += pairs;
    stats.results += pairs;
    stats.join_counters.merge(&JoinCounters {
        tests,
        results: pairs,
        node_visits: 0,
    });
}

/// What the prefetch load stage handed a top-level pair's compute stage.
/// The load ran on the same worker (same forked meter) while an earlier
/// pair was computing — the overlap the multi-channel clock credits as
/// [`DiskModel::prefetch_hidden_seconds`].
enum Preloaded {
    /// Both sides are in memory; `join_pair` must not read them again.
    Loaded(Vec<Kpe>, Vec<Kpe>),
    /// The load exhausted the retry budget. `join_pair` degrades straight
    /// to repartitioning *without* re-reading: the failed attempts already
    /// advanced the shared fault counters, and a re-read would advance them
    /// again, diverging from the sequential path's fault behaviour.
    Failed { err: IoError, failed_r: bool },
}

/// Quarantine-recompute for a partition pair lost to persistent media
/// damage: the on-disk copy is abandoned where it lies and both sides'
/// members are rebuilt **from the source relations** — a record belongs to
/// the pair iff it overlaps a tile of the pair's region at the chain's
/// finest refinement, which is by construction exactly the membership test
/// the partition (and every repartition) pass applied when the damaged file
/// was written (`contains_tile` agrees with `contains_point`; see the grid
/// tests). The rebuilt pair is then joined in memory under the same
/// [`RegionChain`], so RPM classifies every candidate identically to an
/// undamaged run and the recompute leg stays exactly-once. Source reads are
/// free per the cost model (§2), so a quarantined run does strictly less
/// page I/O than a cold rerun, which would re-partition everything.
///
/// The in-memory join deliberately ignores `mem_bytes`: honouring the
/// budget would mean repartitioning — i.e. re-reading the damaged file —
/// and an over-budget exact answer beats no answer. This is the accepted
/// degraded-mode concession, surfaced via
/// [`PbsmStats::quarantined_partitions`].
fn quarantine_join(
    ctx: &mut Ctx<'_>,
    chain: &RegionChain,
    top: u32,
    out: &mut dyn FnMut(RecordId, RecordId),
    cand: &mut dyn FnMut(IdPair) -> Result<(), IoError>,
) -> Result<(), JoinError> {
    let c0 = (ctx.clock)();
    let f = chain.max_f();
    let members = |data: &[Kpe]| -> Vec<Kpe> {
        data.iter()
            .filter(|k| {
                let (xs, ys) = chain.base.tile_range(&k.rect, f);
                ys.clone()
                    .any(|iy| xs.clone().any(|ix| chain.contains_tile(ix, iy, f)))
            })
            .copied()
            .collect()
    };
    let (r, s) = ctx.sources;
    let mut rv = members(r);
    let mut sv = members(s);
    ctx.stats.quarantined_partitions += 1;
    let joined = join_loaded(ctx, &mut rv, &mut sv, chain, out, cand);
    ctx.stats.cpu_join += (ctx.clock)() - c0;
    joined.map_err(|e| JoinError::in_partition("dedup", top, e))
}

/// Phases 2+3 for one partition pair: join it if it fits, else repartition
/// the larger side (§3.2.3) and recurse. `top` is the top-level partition
/// index this pair descends from, carried for error attribution.
/// `preloaded` is `Some` only at depth 0 on the parallel path, when the
/// pool's load stage already pulled (or failed to pull) the pair into
/// memory; the recursion always passes `None`.
///
/// Graceful degradation: a pair that *fits* but whose load exhausts the
/// retry budget falls through to the repartitioning branch instead of
/// failing. That is safe because a failed load has emitted nothing yet and
/// the refined sub-regions re-derive the pair's results duplicate-free; it
/// is *effective* because the repartition re-reads the failing file through
/// the same shared attempt counters, which have advanced past the failing
/// attempts, so the re-reads get a fresh retry budget.
#[allow(clippy::too_many_arguments)] // internal recursive helper; the args are the recursion state
fn join_pair(
    ctx: &mut Ctx<'_>,
    fr: FileId,
    fs: FileId,
    chain: &RegionChain,
    depth: u32,
    // Which sides a parent split without shrinking (r, s). Degenerate
    // geometry — e.g. a hot tile of rectangles that all span the whole
    // region — replicates every record into every sub-partition, so
    // splitting makes no progress and the recursion would otherwise burn
    // O(branchingᵈᵉᵖᵗʰ) work before the depth cap. Once *both* sides have
    // stalled, refinement provably cannot help: join over budget now.
    stalled: (bool, bool),
    top: u32,
    preloaded: Option<Preloaded>,
    out: &mut dyn FnMut(RecordId, RecordId),
    cand: &mut dyn FnMut(IdPair) -> Result<(), IoError>,
) -> Result<(), JoinError> {
    let disk = ctx.disk;
    let join_err = |e: IoError| JoinError::in_partition("join", top, e);
    let br = disk.try_len(fr).map_err(join_err)?;
    let bs = disk.try_len(fs).map_err(join_err)?;
    if br == 0 || bs == 0 {
        return Ok(());
    }
    let fits = (br + bs) as usize <= ctx.cfg.mem_bytes;
    let refinement_exhausted = depth >= MAX_REPART_DEPTH || (stalled.0 && stalled.1);
    // On degradation, split the side whose load failed: its fault counters
    // are the warmed-up ones. `None` = the normal size heuristic.
    let mut forced_split: Option<bool> = None;
    if fits || refinement_exhausted {
        // --- Join phase ---
        let c0 = (ctx.clock)();
        let io0 = disk.stats();
        // A prefetched outcome substitutes for the load 1:1 — its I/O (and
        // any failed attempts) was charged when the load stage ran, so this
        // window's delta covers only the join work itself.
        let (loaded, failed_r) = match preloaded {
            Some(Preloaded::Loaded(rv, sv)) => (Ok((rv, sv)), false),
            Some(Preloaded::Failed { err, failed_r }) => (Err(err), failed_r),
            None => match try_read_all::<Kpe>(disk, fr, ctx.cfg.io_buffer_pages) {
                Ok(rv) => match try_read_all::<Kpe>(disk, fs, ctx.cfg.io_buffer_pages) {
                    Ok(sv) => (Ok((rv, sv)), false),
                    Err(e) => (Err(e), false),
                },
                Err(e) => (Err(e), true),
            },
        };
        match loaded {
            Ok((mut rv, mut sv)) => {
                let joined = join_loaded(ctx, &mut rv, &mut sv, chain, out, cand);
                ctx.stats.io_join = ctx.stats.io_join.plus(&disk.stats().delta(&io0));
                ctx.stats.cpu_join += (ctx.clock)() - c0;
                return joined.map_err(|e| JoinError::in_partition("dedup", top, e));
            }
            Err(e) => {
                ctx.stats.io_join = ctx.stats.io_join.plus(&disk.stats().delta(&io0));
                ctx.stats.cpu_join += (ctx.clock)() - c0;
                if e.kind.is_persistent() {
                    // Persistent damage: re-reads fail identically, and the
                    // repartitioning fallback would read the same damaged
                    // file. Quarantine the pair and recompute it from source.
                    return quarantine_join(ctx, chain, top, out, cand);
                }
                if refinement_exhausted {
                    return Err(join_err(e));
                }
                ctx.stats.degraded_partitions += 1;
                forced_split = Some(failed_r);
            }
        }
    }

    // --- Repartitioning phase ---
    let c0 = (ctx.clock)();
    let io0 = disk.stats();
    ctx.stats.repartitioned_pairs += 1;
    ctx.stats.repart_depth = ctx.stats.repart_depth.max(depth + 1);
    // Split-side choice: a degraded load picks the warmed-up side; otherwise
    // prefer a side that has not already stalled, falling back to the
    // larger-side heuristic when both are still viable.
    let split_r = forced_split.unwrap_or(match stalled {
        (true, false) => false,
        (false, true) => true,
        _ => br >= bs,
    });
    let (big, big_bytes) = if split_r { (fr, br) } else { (fs, bs) };
    let f_new = chain.max_f() * 2;
    let n_sub = ((ctx.cfg.safety_factor * 2.0 * big_bytes as f64 / ctx.cfg.mem_bytes as f64)
        .ceil() as u32)
        .max(2);
    let submap = PartitionMap::new(
        n_sub,
        ctx.cfg.tile_scheme,
        ctx.cfg.seed ^ (0xABCD_u64.rotate_left(depth) ^ f_new as u64),
    );
    let io_pages = ctx.cfg.io_buffer_pages;
    let repart_err = |e: IoError| JoinError::in_partition("repartition", top, e);
    // The copy gets a bounded number of whole-pass re-issues: a
    // *size-triggered* repartition reads its input cold — no failed load has
    // warmed the attempt counters — so a fault outlasting one in-call retry
    // budget would otherwise be terminal right here. Re-issuing advances the
    // shared counters exactly like a partition requeue does, granting each
    // round a fresh budget; every round's failed I/O stays charged.
    const COPY_ROUNDS: u32 = 3;
    let mut subfiles: Vec<FileId> = Vec::new();
    let mut copy_err: Option<IoError> = None;
    for _round in 0..COPY_ROUNDS {
        copy_err = None;
        // Sub-files stay on the top-level partition's data channel: the
        // recursion is one task, so spreading it over channels would claim
        // overlap that a single worker cannot realize.
        let mut writers: Vec<RecordWriter<Kpe>> = (0..n_sub)
            .map(|_| RecordWriter::create_on(disk, u64::from(top), ctx.cfg.partition_buffer_pages))
            .collect();
        let copied: Result<u64, IoError> = (|| {
            let mut copies = 0u64;
            let mut targets: Vec<u32> = Vec::with_capacity(8);
            let mut reader = RecordReader::<Kpe>::new(disk, big, io_pages);
            while let Some(k) = reader.try_next()? {
                targets.clear();
                let (xs, ys) = chain.base.tile_range(&k.rect, f_new);
                for iy in ys {
                    for ix in xs.clone() {
                        if !chain.contains_tile(ix, iy, f_new) {
                            continue; // tile outside this pair's region
                        }
                        let pid = submap.partition_of(ix, iy, chain.base.gx * f_new);
                        if !targets.contains(&pid) {
                            targets.push(pid);
                        }
                    }
                }
                for &pid in &targets {
                    writers[pid as usize].try_push(&k)?;
                    copies += 1;
                }
            }
            Ok(copies)
        })();
        match copied {
            Ok(copies) => {
                let mut finished: Vec<FileId> = Vec::with_capacity(writers.len());
                let mut finish_err: Option<IoError> = None;
                for w in writers {
                    let fid = w.file();
                    match w.try_finish() {
                        Ok(f) if finish_err.is_none() => finished.push(f),
                        Ok(_) => disk.delete(fid),
                        Err(e) => {
                            disk.delete(fid);
                            finish_err.get_or_insert(e);
                        }
                    }
                }
                match finish_err {
                    None => {
                        ctx.stats.repart_copies += copies;
                        subfiles = finished;
                        break;
                    }
                    Some(e) => {
                        for &f in &finished {
                            disk.delete(f);
                        }
                        copy_err = Some(e);
                    }
                }
            }
            Err(e) => {
                for w in &writers {
                    disk.delete(w.file());
                }
                copy_err = Some(e);
            }
        }
    }
    ctx.stats.io_repart = ctx.stats.io_repart.plus(&disk.stats().delta(&io0));
    ctx.stats.cpu_repart += (ctx.clock)() - c0;
    if let Some(e) = copy_err {
        if e.kind.is_persistent() {
            // The copy pass hit persistent damage (a bad sector in the file
            // being split, or ENOSPC on the sub-files): no number of
            // re-issues cures it. Quarantine and recompute from source.
            return quarantine_join(ctx, chain, top, out, cand);
        }
        return Err(repart_err(e));
    }

    // Progress check for the stall detector: if the largest sub-partition is
    // no smaller than what we split, every record was replicated into every
    // sub-file and this side is refinement-proof.
    let mut max_sub = 0u64;
    for &sub in &subfiles {
        match disk.try_len(sub) {
            Ok(len) => max_sub = max_sub.max(len),
            Err(e) => {
                for &f in &subfiles {
                    disk.delete(f);
                }
                return Err(repart_err(e));
            }
        }
    }
    // Geometric progress is required (≥ 25% shrink), not just any shrink:
    // degenerate data that sheds one separable record per level would
    // otherwise still drive the recursion to the depth cap with full
    // branching. Honest splits of non-degenerate data shrink by roughly
    // 1/n_sub per level and pass this easily.
    let progressed = max_sub <= big_bytes - big_bytes / 4;
    let child_stalled = if split_r {
        (!progressed, stalled.1)
    } else {
        (stalled.0, !progressed)
    };

    let mut sub_err: Option<JoinError> = None;
    for (k, &sub) in subfiles.iter().enumerate() {
        if sub_err.is_none() {
            let sub_chain = chain.refined(f_new, submap, k as u32);
            let res = if split_r {
                join_pair(ctx, sub, fs, &sub_chain, depth + 1, child_stalled, top, None, out, cand)
            } else {
                join_pair(ctx, fr, sub, &sub_chain, depth + 1, child_stalled, top, None, out, cand)
            };
            if let Err(e) = res {
                sub_err = Some(e);
            }
        }
        disk.delete(sub);
    }
    match sub_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{scale, uniform, LineNetwork};
    use std::collections::HashSet;

    fn brute(r: &[Kpe], s: &[Kpe]) -> Vec<(u64, u64)> {
        let mut v = Vec::new();
        for a in r {
            for b in s {
                if a.rect.intersects(&b.rect) {
                    v.push((a.id.0, b.id.0));
                }
            }
        }
        v.sort_unstable();
        v
    }

    fn run(r: &[Kpe], s: &[Kpe], cfg: &PbsmConfig) -> (Vec<(u64, u64)>, PbsmStats) {
        let disk = SimDisk::with_default_model();
        let mut got = Vec::new();
        let stats = pbsm_join(&disk, r, s, cfg, &mut |a, b| got.push((a.0, b.0)));
        got.sort_unstable();
        (got, stats)
    }

    fn tiger_pair(n: usize) -> (Vec<Kpe>, Vec<Kpe>) {
        let r = LineNetwork {
            count: n,
            coverage: 0.22,
            segments_per_line: 20,
            seed: 101,
        }
        .generate();
        let s = LineNetwork {
            count: n + n / 10,
            coverage: 0.03,
            segments_per_line: 10,
            seed: 202,
        }
        .generate();
        (r, s)
    }

    #[test]
    fn rpm_matches_brute_force_multi_partition() {
        let (r, s) = tiger_pair(3000);
        let cfg = PbsmConfig {
            mem_bytes: 32 * 1024, // forces many partitions
            ..Default::default()
        };
        let (got, stats) = run(&r, &s, &cfg);
        assert!(stats.partitions > 4, "want several partitions");
        assert_eq!(got, brute(&r, &s));
        assert_eq!(stats.results as usize, got.len());
    }

    #[test]
    fn sort_phase_matches_rpm_and_pays_io() {
        let (r, s) = tiger_pair(2000);
        let base = PbsmConfig {
            mem_bytes: 32 * 1024,
            ..Default::default()
        };
        let (rpm, st_rpm) = run(&r, &s, &base);
        let (sorted, st_sort) = run(
            &r,
            &s,
            &PbsmConfig {
                dedup: Dedup::SortPhase,
                ..base
            },
        );
        assert_eq!(rpm, sorted);
        assert_eq!(st_rpm.results, st_sort.results);
        // Identical candidate sets, but only the sort phase does dedup I/O.
        assert_eq!(st_rpm.candidates, st_sort.candidates);
        assert_eq!(st_rpm.io_dedup, IoStats::default());
        assert!(st_sort.io_dedup.pages_written > 0);
        assert!(st_sort.sort.is_some());
    }

    #[test]
    fn duplicates_are_real_and_fully_suppressed() {
        // Scaled-up rects overlap many tiles => replication => duplicates.
        let (r0, s0) = tiger_pair(1500);
        let (r, s) = (scale(&r0, 4.0), scale(&s0, 4.0));
        let cfg = PbsmConfig {
            mem_bytes: 32 * 1024,
            ..Default::default()
        };
        let (got, stats) = run(&r, &s, &cfg);
        assert!(
            stats.duplicates > 0,
            "expected duplicate candidates, got none (replication {})",
            stats.replication_rate(r.len() + s.len())
        );
        assert_eq!(got, brute(&r, &s));
        // Raw candidate mode really does emit duplicates.
        let (raw, raw_stats) = run(
            &r,
            &s,
            &PbsmConfig {
                dedup: Dedup::None,
                ..cfg
            },
        );
        assert_eq!(raw_stats.candidates, stats.candidates);
        assert!(raw.len() > got.len());
        let unique: HashSet<_> = raw.iter().copied().collect();
        assert_eq!(unique.len(), got.len());
    }

    #[test]
    fn all_internal_algorithms_agree() {
        let (r, s) = tiger_pair(2000);
        let mut reference: Option<Vec<(u64, u64)>> = None;
        for internal in InternalAlgo::ALL {
            let cfg = PbsmConfig {
                mem_bytes: 48 * 1024,
                internal,
                ..Default::default()
            };
            let (got, _) = run(&r, &s, &cfg);
            match &reference {
                None => reference = Some(got),
                Some(want) => assert_eq!(&got, want, "{internal} diverges"),
            }
        }
    }

    #[test]
    fn repartitioning_triggers_and_stays_correct() {
        // Clustered data + round-robin tiles => skewed partitions => some
        // pair overflows memory and must repartition.
        let r = datagen::clustered(4000, 2, 0.01, 7);
        let s = datagen::clustered(4000, 2, 0.01, 8);
        let cfg = PbsmConfig {
            mem_bytes: 48 * 1024,
            tile_scheme: TileScheme::RoundRobin,
            tiles_per_partition: 1,
            ..Default::default()
        };
        let (got, stats) = run(&r, &s, &cfg);
        assert!(
            stats.repartitioned_pairs > 0,
            "expected repartitioning; partitions={} copies={}",
            stats.partitions,
            stats.copies_r + stats.copies_s
        );
        assert_eq!(got, brute(&r, &s));
    }

    #[test]
    fn two_layer_matches_brute_force_multi_partition() {
        let (r, s) = tiger_pair(3000);
        let cfg = PbsmConfig {
            mem_bytes: 32 * 1024,
            dedup: Dedup::TwoLayer,
            ..Default::default()
        };
        let (got, stats) = run(&r, &s, &cfg);
        assert!(stats.partitions > 4, "want several partitions");
        assert_eq!(got, brute(&r, &s));
        // The class scheme produces every pair exactly once: nothing to
        // suppress, every candidate is a result.
        assert_eq!(stats.duplicates, 0);
        assert_eq!(stats.candidates, stats.results);
    }

    #[test]
    fn two_layer_matches_rpm_with_fewer_tests() {
        let (r, s) = tiger_pair(2000);
        let base = PbsmConfig {
            mem_bytes: 32 * 1024,
            ..Default::default()
        };
        let (rpm, st_rpm) = run(&r, &s, &base);
        let (two, st_two) = run(
            &r,
            &s,
            &PbsmConfig {
                dedup: Dedup::TwoLayer,
                ..base
            },
        );
        assert_eq!(rpm, two);
        assert_eq!(st_rpm.results, st_two.results);
        assert_eq!(st_two.duplicates, 0);
        // RPM sweeps whole partitions (the hash scheme mixes far-apart
        // tiles) and then pays a containment test per candidate; the
        // tile-local class joins examine strictly less.
        assert!(
            st_two.join_counters.tests < st_rpm.join_counters.tests + st_rpm.candidates,
            "two-layer tests {} vs rpm {} + {} dedup tests",
            st_two.join_counters.tests,
            st_rpm.join_counters.tests,
            st_rpm.candidates
        );
    }

    #[test]
    fn two_layer_survives_repartitioning() {
        let r = datagen::clustered(4000, 2, 0.01, 7);
        let s = datagen::clustered(4000, 2, 0.01, 8);
        let cfg = PbsmConfig {
            mem_bytes: 48 * 1024,
            tile_scheme: TileScheme::RoundRobin,
            tiles_per_partition: 1,
            dedup: Dedup::TwoLayer,
            ..Default::default()
        };
        let (got, stats) = run(&r, &s, &cfg);
        assert!(stats.repartitioned_pairs > 0, "expected repartitioning");
        assert_eq!(got, brute(&r, &s));
        assert_eq!(stats.duplicates, 0);
        assert_eq!(stats.candidates, stats.results);
    }

    #[test]
    fn two_layer_is_thread_invariant() {
        let (r, s) = tiger_pair(1500);
        let base = PbsmConfig {
            mem_bytes: 32 * 1024,
            dedup: Dedup::TwoLayer,
            ..Default::default()
        };
        let disk = SimDisk::with_default_model();
        let mut seq = Vec::new();
        let st1 = pbsm_join(
            &disk,
            &r,
            &s,
            &PbsmConfig { threads: 1, ..base },
            &mut |a, b| seq.push((a.0, b.0)),
        );
        let disk = SimDisk::with_default_model();
        let mut par = Vec::new();
        let st4 = pbsm_join(
            &disk,
            &r,
            &s,
            &PbsmConfig { threads: 4, ..base },
            &mut |a, b| par.push((a.0, b.0)),
        );
        // Emission order (not just the set) and every deterministic counter
        // must be scheduling-independent.
        assert_eq!(seq, par);
        assert_eq!(st1.results, st4.results);
        assert_eq!(st1.candidates, st4.candidates);
        assert_eq!(st1.join_counters.tests, st4.join_counters.tests);
    }

    #[test]
    fn single_partition_when_memory_is_plentiful() {
        let (r, s) = tiger_pair(500);
        let cfg = PbsmConfig {
            mem_bytes: 64 << 20,
            ..Default::default()
        };
        let (got, stats) = run(&r, &s, &cfg);
        assert_eq!(stats.partitions, 1);
        assert_eq!(stats.duplicates, 0, "one partition cannot duplicate");
        assert_eq!(got, brute(&r, &s));
    }

    #[test]
    fn empty_inputs() {
        let (r, _) = tiger_pair(100);
        let cfg = PbsmConfig::default();
        let (got, stats) = run(&r, &[], &cfg);
        assert!(got.is_empty());
        assert_eq!(stats.results, 0);
        let (got, _) = run(&[], &[], &cfg);
        assert!(got.is_empty());
    }

    #[test]
    fn self_join_is_consistent() {
        let r = uniform(1200, 0.01, 33);
        let cfg = PbsmConfig {
            mem_bytes: 24 * 1024,
            ..Default::default()
        };
        let (got, _) = run(&r, &r, &cfg);
        assert_eq!(got, brute(&r, &r));
        // Ordered-pair symmetry: (a,b) present iff (b,a) present.
        let set: HashSet<_> = got.iter().copied().collect();
        for &(a, b) in &got {
            assert!(set.contains(&(b, a)));
        }
    }

    #[test]
    fn stats_phase_decomposition_adds_up() {
        let (r, s) = tiger_pair(1500);
        let cfg = PbsmConfig {
            mem_bytes: 32 * 1024,
            dedup: Dedup::SortPhase,
            ..Default::default()
        };
        let disk = SimDisk::with_default_model();
        let stats = pbsm_join(&disk, &r, &s, &cfg, &mut |_, _| {});
        // Partition + repart + join I/O happens on the main disk...
        let main = stats.io_partition.plus(&stats.io_repart).plus(&stats.io_join);
        assert_eq!(main, disk.stats());
        // ...and totals include the dedup disk.
        assert_eq!(
            stats.io_total().pages_written,
            main.pages_written + stats.io_dedup.pages_written
        );
        assert!(stats.total_seconds() > 0.0);
        assert!(stats.repart_fraction() >= 0.0 && stats.repart_fraction() <= 1.0);
    }

    #[test]
    fn channels_decompose_io_and_buy_simulated_time() {
        let (r, s) = tiger_pair(1500);
        // cpu_slowdown 0 isolates the deterministic I/O clock: wall-clock
        // CPU noise cannot blur the strict-improvement assertion.
        let run_ch = |channels: usize, threads: usize| {
            let disk = SimDisk::new(DiskModel {
                channels,
                cpu_slowdown: 0.0,
                ..Default::default()
            });
            let cfg = PbsmConfig {
                mem_bytes: 32 * 1024,
                threads,
                ..Default::default()
            };
            let mut got = Vec::new();
            let stats = pbsm_join(&disk, &r, &s, &cfg, &mut |a, b| got.push((a.0, b.0)));
            got.sort_unstable();
            (got, stats)
        };
        let (res1, st1) = run_ch(1, 1);
        let (res4, st4) = run_ch(4, 1);
        let (res4t, st4t) = run_ch(4, 4);
        // Results and all deterministic counters are channel- and
        // thread-invariant; only the clock model changes.
        assert_eq!(res1, res4);
        assert_eq!(res4, res4t);
        assert_eq!(st1.io_total(), st4.io_total());
        assert_eq!(st4.io_total(), st4t.io_total());
        assert_eq!(
            (st1.candidates, st1.results, st1.duplicates),
            (st4.candidates, st4.results, st4.duplicates)
        );
        // The channel meters are an exact decomposition of the total.
        assert_eq!(st1.io_channels.len(), 1);
        assert_eq!(st4.io_channels.len(), 4);
        for st in [&st1, &st4, &st4t] {
            let mut sum = st.io_shared;
            for c in &st.io_channels {
                sum = sum.plus(c);
            }
            assert_eq!(sum, st.io_total());
        }
        // One channel reduces bit-exactly to the serial clock...
        assert_eq!(st1.total_seconds(), st1.scaled_cpu_seconds() + st1.io_seconds());
        // ...four channels spread the partition files and strictly beat it.
        assert!(
            st4.io_channels.iter().filter(|c| c.pages_read > 0).count() > 1,
            "partition files should land on several channels"
        );
        assert!(
            st4.total_seconds() < st1.total_seconds(),
            "channels=4 ({}) should strictly beat channels=1 ({})",
            st4.total_seconds(),
            st1.total_seconds()
        );
        assert_eq!(st4.total_seconds(), st4t.total_seconds());
    }

    #[test]
    fn persistent_corruption_quarantines_and_stays_exact() {
        use storage::{FaultPlan, RetryPolicy};
        let (r, s) = tiger_pair(2000);
        let cfg = PbsmConfig {
            mem_bytes: 32 * 1024,
            ..Default::default()
        };
        let clean = run(&r, &s, &cfg).0;
        // Persistent damage is a pure function of (seed, channel, page), so
        // hunt a few seeds until one lands on a partition file; every seed —
        // hit or miss — must still produce the exact result set.
        let mut hit = false;
        for seed in 0..64u64 {
            let disk = SimDisk::with_default_model().with_faults(
                FaultPlan::persistent(seed).with_persistent_rate(0.02),
                RetryPolicy::default(),
            );
            let mut got = Vec::new();
            let stats = try_pbsm_join(&disk, &r, &s, &cfg, &mut |a, b| got.push((a.0, b.0)))
                .expect("persistent damage must quarantine, not kill the join");
            got.sort_unstable();
            assert_eq!(got, clean, "seed {seed} diverged");
            if stats.quarantined_partitions > 0 {
                hit = true;
                break;
            }
        }
        assert!(hit, "no seed damaged a partition file read");
    }

    #[test]
    fn quarantine_is_thread_invariant() {
        use storage::{FaultPlan, RetryPolicy};
        let (r, s) = tiger_pair(2000);
        // Damage keys on (seed, channel, page) — not on who reads — so the
        // sequential and parallel executors quarantine the same pairs and
        // emit the same results.
        let run_t = |threads: usize, seed: u64| {
            let disk = SimDisk::with_default_model().with_faults(
                FaultPlan::persistent(seed).with_persistent_rate(0.05),
                RetryPolicy::default(),
            );
            let cfg = PbsmConfig {
                mem_bytes: 32 * 1024,
                threads,
                ..Default::default()
            };
            let mut got = Vec::new();
            let stats = try_pbsm_join(&disk, &r, &s, &cfg, &mut |a, b| got.push((a.0, b.0)))
                .expect("quarantine covers persistent damage");
            got.sort_unstable();
            (got, stats)
        };
        for seed in [3u64, 11, 29] {
            let (got1, st1) = run_t(1, seed);
            let (got4, st4) = run_t(4, seed);
            assert_eq!(got1, got4, "seed {seed}");
            assert_eq!(
                st1.quarantined_partitions, st4.quarantined_partitions,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn enospc_falls_back_down_the_ladder_and_stays_exact() {
        use storage::{FaultPlan, RetryPolicy};
        let (r, s) = tiger_pair(1500);
        let cfg = PbsmConfig {
            mem_bytes: 32 * 1024,
            ..Default::default()
        };
        let clean = run(&r, &s, &cfg).0;
        // A zero-page volume rejects every tiling: rung one (coarser tiles)
        // and rung two (in-memory single partition) both fire.
        let disk = SimDisk::with_default_model().with_faults(
            FaultPlan::none(7).with_disk_budget(0),
            RetryPolicy::default(),
        );
        let mut got = Vec::new();
        let stats = try_pbsm_join(&disk, &r, &s, &cfg, &mut |a, b| got.push((a.0, b.0)))
            .expect("ENOSPC must degrade to the in-memory plan, not die");
        got.sort_unstable();
        assert_eq!(got, clean);
        assert_eq!(stats.enospc_fallbacks, 2);
        assert_eq!(stats.partitions, 1);
        assert_eq!(stats.duplicates, 0, "one partition cannot duplicate");
        assert_eq!(disk.pages_in_use(), 0, "fallback leaked partition files");
        // A generous budget never trips the ladder.
        let disk = SimDisk::with_default_model().with_faults(
            FaultPlan::none(7).with_disk_budget(1 << 20),
            RetryPolicy::default(),
        );
        let stats = try_pbsm_join(&disk, &r, &s, &cfg, &mut |_, _| {}).unwrap();
        assert_eq!(stats.enospc_fallbacks, 0);
        assert!(stats.partitions > 1);
    }

    #[test]
    fn replication_grows_with_coverage() {
        let (r0, s0) = tiger_pair(1500);
        let cfg = PbsmConfig {
            mem_bytes: 32 * 1024,
            ..Default::default()
        };
        let (_, st1) = run(&r0, &s0, &cfg);
        let (r4, s4) = (scale(&r0, 4.0), scale(&s0, 4.0));
        let (_, st4) = run(&r4, &s4, &cfg);
        let n = r0.len() + s0.len();
        assert!(
            st4.replication_rate(n) > st1.replication_rate(n),
            "p=4 replication {} not above p=1 {}",
            st4.replication_rate(n),
            st1.replication_rate(n)
        );
    }
}

#[cfg(test)]
mod formula_tests {
    use super::*;

    /// Formula (1) with the safety factor: P = ceil(t * input / M).
    #[test]
    fn partition_count_follows_formula() {
        let disk = SimDisk::with_default_model();
        let data = datagen::uniform(1000, 0.001, 1); // 40 KB per relation
        for (mem, t, expect) in [
            (80_000usize, 1.0f64, 1u32),
            (40_000, 1.0, 2),
            (40_000, 1.2, 3),   // the §3.2.3 fix: 2.0 -> 2.4 -> 3
            (10_000, 1.0, 8),
            (10_000, 2.0, 16),
        ] {
            let cfg = PbsmConfig {
                mem_bytes: mem,
                safety_factor: t,
                ..Default::default()
            };
            let st = pbsm_join(&disk, &data, &data, &cfg, &mut |_, _| {});
            assert_eq!(st.partitions, expect, "mem={mem} t={t}");
        }
    }

    /// A borderline partition count without the safety factor triggers
    /// repartitioning; with t = 1.2 it does not (the paper's '1.99' case).
    #[test]
    fn safety_factor_avoids_borderline_repartitioning() {
        let disk = SimDisk::with_default_model();
        let data = datagen::uniform(2000, 0.002, 2); // 80 KB per relation
        let mem = 81_000; // input/M = 1.975 -> P=2 without t
        let run = |t: f64| {
            let cfg = PbsmConfig {
                mem_bytes: mem,
                safety_factor: t,
                ..Default::default()
            };
            pbsm_join(&disk, &data, &data, &cfg, &mut |_, _| {})
        };
        let tight = run(1.0);
        let safe = run(1.2);
        assert_eq!(tight.partitions, 2);
        assert_eq!(safe.partitions, 3);
        assert!(
            tight.repartitioned_pairs >= safe.repartitioned_pairs,
            "safety factor should not repartition more"
        );
    }

    /// With a single partition the join runs straight from memory: no
    /// partition files, no I/O — matching the in-memory shortcut SSSJ takes.
    #[test]
    fn single_partition_skips_all_io() {
        let disk = SimDisk::with_default_model();
        let data = datagen::uniform(500, 0.01, 9);
        let cfg = PbsmConfig {
            mem_bytes: 64 << 20,
            ..Default::default()
        };
        let mut n = 0u64;
        let st = pbsm_join(&disk, &data, &data, &cfg, &mut |_, _| n += 1);
        assert_eq!(st.partitions, 1);
        assert_eq!(disk.stats(), IoStats::default(), "P=1 must not touch disk");
        assert_eq!(st.results, n);
        assert!(n > 0);
        // The sort-phase variant still pays its dedup I/O, but no partition I/O.
        let st = pbsm_join(
            &disk,
            &data,
            &data,
            &PbsmConfig {
                dedup: Dedup::SortPhase,
                ..cfg
            },
            &mut |_, _| {},
        );
        assert_eq!(st.io_partition, IoStats::default());
        assert!(st.io_dedup.pages_written > 0);
        assert_eq!(st.results, n);
    }

    /// The Dedup::None diagnostic emits exactly the raw candidate stream.
    #[test]
    fn dedup_none_emits_raw_candidates() {
        let disk = SimDisk::with_default_model();
        let data = datagen::scale(&datagen::uniform(800, 0.01, 3), 3.0);
        let cfg = PbsmConfig {
            mem_bytes: 8 * 1024,
            dedup: Dedup::None,
            ..Default::default()
        };
        let mut emitted = 0u64;
        let st = pbsm_join(&disk, &data, &data, &cfg, &mut |_, _| emitted += 1);
        assert_eq!(emitted, st.candidates);
        assert_eq!(st.results, st.candidates);
        assert_eq!(st.duplicates, 0);
    }
}
