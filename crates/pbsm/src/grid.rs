use geom::{Point, Rect};

/// The base equidistant grid of the partitioning phase: `gx × gy` tiles over
/// the unit data space. Finer grids used during repartitioning are always
/// power-of-two refinements of this base, so tile indices at any refinement
/// map to coarser levels by exact integer shifts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileGrid {
    pub gx: u32,
    pub gy: u32,
}

impl TileGrid {
    /// Chooses a near-square grid with at least `p * tiles_per_partition`
    /// tiles (`NT ≥ P`, paper §3.1).
    pub fn for_partitions(p: u32, tiles_per_partition: u32) -> TileGrid {
        let nt = (p.max(1) * tiles_per_partition.max(1)) as f64;
        let gx = nt.sqrt().ceil() as u32;
        let gy = (nt / gx as f64).ceil() as u32;
        TileGrid {
            gx: gx.max(1),
            gy: gy.max(1),
        }
    }

    /// Total number of tiles at refinement `f`.
    pub fn tiles(&self, f: u32) -> u64 {
        (self.gx as u64 * f as u64) * (self.gy as u64 * f as u64)
    }

    /// Tile containing `p` at refinement `f` (half-open tiles, clamped into
    /// the data space, boundary-closed at the top, matching the cell convention of the `sfc` crate).
    pub fn tile_of_point(&self, p: Point, f: u32) -> (u32, u32) {
        let nx = self.gx * f;
        let ny = self.gy * f;
        let c = |v: f64, n: u32| -> u32 { ((v.clamp(0.0, 1.0) * n as f64) as u32).min(n - 1) };
        (c(p.x, nx), c(p.y, ny))
    }

    /// Inclusive tile index ranges overlapped by `r` at refinement `f`.
    pub fn tile_range(&self, r: &Rect, f: u32) -> (std::ops::RangeInclusive<u32>, std::ops::RangeInclusive<u32>) {
        let (x0, y0) = self.tile_of_point(Point::new(r.xl, r.yl), f);
        let (x1, y1) = self.tile_of_point(Point::new(r.xh, r.yh), f);
        (x0..=x1, y0..=y1)
    }
}

/// How tiles are assigned to partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TileScheme {
    /// Hash each tile independently ([PD 96]'s suggestion; decorrelates
    /// partition load from spatial skew).
    #[default]
    Hash,
    /// Round-robin by tile index (the ablation baseline: preserves spatial
    /// correlation, so skewed data skews partitions).
    RoundRobin,
}

/// Assignment of the tiles of one grid refinement to `partitions` buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionMap {
    pub partitions: u32,
    pub scheme: TileScheme,
    /// Salt decorrelating the hash across repartitioning levels.
    pub salt: u64,
}

#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl PartitionMap {
    pub fn new(partitions: u32, scheme: TileScheme, salt: u64) -> Self {
        PartitionMap {
            partitions: partitions.max(1),
            scheme,
            salt,
        }
    }

    /// Partition owning tile `(ix, iy)` of a grid `width` tiles wide.
    #[inline]
    pub fn partition_of(&self, ix: u32, iy: u32, width: u32) -> u32 {
        let idx = iy as u64 * width as u64 + ix as u64;
        match self.scheme {
            TileScheme::Hash => (splitmix64(idx ^ self.salt) % self.partitions as u64) as u32,
            TileScheme::RoundRobin => (idx % self.partitions as u64) as u32,
        }
    }
}

/// One refinement level of a partition's region description.
#[derive(Debug, Clone, Copy)]
pub struct RegionLevel {
    /// Refinement factor relative to the base grid (power of two).
    pub f: u32,
    pub map: PartitionMap,
    /// The partition id this region belongs to at this level.
    pub id: u32,
}

/// The region of a (possibly recursively repartitioned) partition pair: the
/// intersection of one tile-set region per refinement level.
///
/// This is what the Reference Point Method tests against: a point belongs to
/// the region iff, at every level, the tile containing it maps to that
/// level's partition id. Levels are appended as repartitioning recurses; the
/// finest level's tile indices shift down exactly to every coarser level, so
/// the whole test costs one float→tile conversion plus one shift-and-hash
/// per level.
#[derive(Debug, Clone)]
pub struct RegionChain {
    pub base: TileGrid,
    pub levels: Vec<RegionLevel>,
}

impl RegionChain {
    /// The region of top-level partition `id`.
    pub fn top(base: TileGrid, map: PartitionMap, id: u32) -> Self {
        RegionChain {
            base,
            levels: vec![RegionLevel { f: 1, map, id }],
        }
    }

    /// Finest refinement factor in the chain.
    pub fn max_f(&self) -> u32 {
        self.levels.last().map(|l| l.f).unwrap_or(1)
    }

    /// Child region: this region intersected with partition `id` of `map`
    /// over the `f`-refined grid. `f` must be a multiple of [`Self::max_f`].
    pub fn refined(&self, f: u32, map: PartitionMap, id: u32) -> Self {
        debug_assert!(f.is_multiple_of(self.max_f()) && f > 0);
        let mut levels = self.levels.clone();
        levels.push(RegionLevel { f, map, id });
        RegionChain {
            base: self.base,
            levels,
        }
    }

    /// Membership test for a point (the RPM test).
    pub fn contains_point(&self, p: Point) -> bool {
        let fmax = self.max_f();
        let (ix, iy) = self.base.tile_of_point(p, fmax);
        self.contains_tile(ix, iy, fmax)
    }

    /// Membership test for a tile given at refinement `f` (a multiple of
    /// every level's factor). Used when distributing KPEs during
    /// repartitioning.
    pub fn contains_tile(&self, ix: u32, iy: u32, f: u32) -> bool {
        for l in &self.levels {
            debug_assert!(f.is_multiple_of(l.f));
            let q = f / l.f;
            let (cx, cy) = (ix / q, iy / q);
            if l.map.partition_of(cx, cy, self.base.gx * l.f) != l.id {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_sizing_honours_minimums() {
        let g = TileGrid::for_partitions(5, 4); // ≥ 20 tiles
        assert!(g.tiles(1) >= 20);
        let g1 = TileGrid::for_partitions(1, 1);
        assert_eq!(g1.tiles(1), 1);
    }

    #[test]
    fn tile_of_point_is_half_open_and_clamped() {
        let g = TileGrid { gx: 4, gy: 4 };
        assert_eq!(g.tile_of_point(Point::new(0.0, 0.0), 1), (0, 0));
        assert_eq!(g.tile_of_point(Point::new(0.25, 0.5), 1), (1, 2));
        assert_eq!(g.tile_of_point(Point::new(1.0, 1.0), 1), (3, 3));
        assert_eq!(g.tile_of_point(Point::new(-3.0, 7.0), 1), (0, 3));
    }

    #[test]
    fn tile_range_covers_rect() {
        let g = TileGrid { gx: 4, gy: 4 };
        let (xs, ys) = g.tile_range(&Rect::new(0.1, 0.3, 0.6, 0.4), 1);
        assert_eq!((xs, ys), (0..=2, 1..=1));
    }

    #[test]
    fn partition_maps_cover_all_partitions() {
        for scheme in [TileScheme::Hash, TileScheme::RoundRobin] {
            let m = PartitionMap::new(7, scheme, 99);
            let mut seen = [false; 7];
            for iy in 0..16 {
                for ix in 0..16 {
                    let p = m.partition_of(ix, iy, 16);
                    assert!(p < 7);
                    seen[p as usize] = true;
                }
            }
            assert!(seen.iter().all(|&b| b), "{scheme:?} misses partitions");
        }
    }

    #[test]
    fn every_point_in_exactly_one_top_region() {
        let base = TileGrid { gx: 5, gy: 3 };
        let map = PartitionMap::new(4, TileScheme::Hash, 1);
        let regions: Vec<RegionChain> = (0..4).map(|i| RegionChain::top(base, map, i)).collect();
        for p in [
            Point::new(0.01, 0.99),
            Point::new(0.5, 0.5),
            Point::new(0.2, 0.7),
            Point::new(1.0, 0.0),
        ] {
            let owners = regions.iter().filter(|r| r.contains_point(p)).count();
            assert_eq!(owners, 1, "point {p:?}");
        }
    }

    #[test]
    fn refined_regions_partition_their_parent() {
        let base = TileGrid { gx: 2, gy: 2 };
        let map = PartitionMap::new(2, TileScheme::Hash, 7);
        let parent = RegionChain::top(base, map, 0);
        let submap = PartitionMap::new(3, TileScheme::Hash, 8);
        let children: Vec<RegionChain> = (0..3).map(|i| parent.refined(2, submap, i)).collect();
        // Sample a grid of points: each point in the parent lies in exactly
        // one child; points outside the parent lie in no child.
        for i in 0..40 {
            for j in 0..40 {
                let p = Point::new(i as f64 / 40.0 + 0.003, j as f64 / 40.0 + 0.007);
                let in_parent = parent.contains_point(p);
                let owners = children.iter().filter(|c| c.contains_point(p)).count();
                assert_eq!(owners, usize::from(in_parent), "point {p:?}");
            }
        }
    }

    #[test]
    fn contains_tile_agrees_with_contains_point() {
        let base = TileGrid { gx: 3, gy: 2 };
        let map = PartitionMap::new(3, TileScheme::Hash, 5);
        let chain = RegionChain::top(base, map, 1).refined(4, PartitionMap::new(2, TileScheme::Hash, 6), 0);
        let f = chain.max_f();
        let (nx, ny) = (base.gx * f, base.gy * f);
        for iy in 0..ny {
            for ix in 0..nx {
                // Centre of the tile.
                let p = Point::new(
                    (ix as f64 + 0.5) / nx as f64,
                    (iy as f64 + 0.5) / ny as f64,
                );
                assert_eq!(
                    chain.contains_tile(ix, iy, f),
                    chain.contains_point(p),
                    "tile ({ix},{iy})"
                );
            }
        }
    }
}
