use geom::Kpe;

use crate::{InternalJoin, JoinCounters};

/// The *Plane-Sweep Intersection-Test* of [BKS 93], PBSM's original internal
/// algorithm.
///
/// Both inputs are sorted by `xl` and swept left to right. The rectangle
/// whose left edge the sweep line meets first performs a *forward scan* over
/// the other relation: every rectangle starting before its right edge is a
/// sweep-line-status neighbour and is tested for y-overlap. The status is
/// thus kept implicitly, "organised as a list".
///
/// The forward scan makes the cost per rectangle proportional to the number
/// of rectangles the sweep line currently stabs — fine for the well-shrunk
/// partitions of PBSM with small memory, but degrading as partitions grow
/// (the paper's observation that PBSM(list) gets *slower* with more memory,
/// Figure 5).
#[derive(Debug, Default)]
pub struct PlaneSweepList {
    counters: JoinCounters,
}

impl PlaneSweepList {
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward scan: `cur` (from one relation) against `other[from..]`,
    /// reporting pairs in `(r, s)` orientation via `emit`.
    #[inline]
    fn forward_scan(
        counters: &mut JoinCounters,
        cur: &Kpe,
        other: &[Kpe],
        from: usize,
        emit: &mut dyn FnMut(&Kpe, &Kpe),
    ) {
        for b in &other[from..] {
            if b.rect.xl > cur.rect.xh {
                break;
            }
            counters.tests += 1;
            // x-overlap is implied: b.xl ∈ [cur.xl, cur.xh]; test y only.
            if cur.rect.yl <= b.rect.yh && b.rect.yl <= cur.rect.yh {
                counters.results += 1;
                emit(cur, b);
            }
        }
    }
}

impl InternalJoin for PlaneSweepList {
    fn join(&mut self, r: &mut [Kpe], s: &mut [Kpe], out: &mut dyn FnMut(&Kpe, &Kpe)) {
        r.sort_unstable_by(|a, b| a.rect.xl.total_cmp(&b.rect.xl));
        s.sort_unstable_by(|a, b| a.rect.xl.total_cmp(&b.rect.xl));
        let (mut i, mut j) = (0usize, 0usize);
        while i < r.len() && j < s.len() {
            if r[i].rect.xl <= s[j].rect.xl {
                let cur = r[i];
                Self::forward_scan(&mut self.counters, &cur, s, j, &mut |a, b| out(a, b));
                i += 1;
            } else {
                let cur = s[j];
                Self::forward_scan(&mut self.counters, &cur, r, i, &mut |a, b| out(b, a));
                j += 1;
            }
        }
    }

    fn counters(&self) -> JoinCounters {
        self.counters
    }

    fn reset(&mut self) {
        self.counters = JoinCounters::default();
    }
}
