use geom::Kpe;

use crate::{InternalJoin, JoinCounters};

/// All-pairs nested-loops join.
///
/// Quadratic, but with zero setup cost: for the tiny partitions produced by
/// S³J it beats both plane-sweep variants (paper §4.4.1, Figure 12).
#[derive(Debug, Default)]
pub struct NestedLoops {
    counters: JoinCounters,
}

impl NestedLoops {
    pub fn new() -> Self {
        Self::default()
    }
}

impl InternalJoin for NestedLoops {
    fn join(&mut self, r: &mut [Kpe], s: &mut [Kpe], out: &mut dyn FnMut(&Kpe, &Kpe)) {
        self.counters.tests += (r.len() * s.len()) as u64;
        for a in r.iter() {
            for b in s.iter() {
                if a.rect.intersects(&b.rect) {
                    self.counters.results += 1;
                    out(a, b);
                }
            }
        }
    }

    fn counters(&self) -> JoinCounters {
        self.counters
    }

    fn reset(&mut self) {
        self.counters = JoinCounters::default();
    }
}
