use geom::Kpe;

use crate::{InternalJoin, JoinCounters};

const NONE: u32 = u32::MAX;
/// Maximum trie depth; cells of depth 24 are far finer than any dataset.
const MAX_DEPTH: u8 = 24;

/// Plane sweep with the sweep-line status organised as an **interval trie**
/// (paper §3.2.2).
///
/// Both relations are sorted by `xl` and swept together. The active
/// rectangles of each relation (those whose x-interval the sweep line stabs)
/// are held in a binary trie over the y-axis: an interval is stored at the
/// lowest trie node whose region contains it, just like the 1-d version of
/// an MX-CIF quadtree. A new rectangle queries the *other* relation's trie —
/// descending only into nodes whose y-region overlaps it — and then inserts
/// itself into its own trie. Stale entries (right edge behind the sweep
/// line) are removed lazily during queries.
///
/// Compared to the list sweep, the trie prunes by y *before* testing, so the
/// cost per rectangle no longer grows with everything the sweep line stabs;
/// compared to the dynamic interval trees of [APR+ 98], trie node boundaries
/// are fixed halves of the data space, so no rebalancing is ever needed.
pub struct PlaneSweepTrie {
    counters: JoinCounters,
}

impl Default for PlaneSweepTrie {
    fn default() -> Self {
        Self::new()
    }
}

impl PlaneSweepTrie {
    pub fn new() -> Self {
        PlaneSweepTrie {
            counters: JoinCounters::default(),
        }
    }
}

struct Node {
    children: [u32; 2],
    entries: Vec<Kpe>,
    /// Live entries in this node and below — lets queries skip subtrees
    /// that hold nothing (lazy deletions leave many such nodes behind).
    subtree: u32,
}

impl Node {
    fn new() -> Self {
        Node {
            children: [NONE, NONE],
            entries: Vec::new(),
            subtree: 0,
        }
    }
}

/// One relation's sweep-line status.
struct Trie {
    nodes: Vec<Node>,
    lo: f64,
    hi: f64,
}

impl Trie {
    fn new(lo: f64, hi: f64) -> Self {
        Trie {
            nodes: vec![Node::new()],
            lo,
            hi,
        }
    }

    fn insert(&mut self, k: Kpe) {
        let (mut lo, mut hi) = (self.lo, self.hi);
        let mut idx = 0usize;
        for _ in 0..MAX_DEPTH {
            self.nodes[idx].subtree += 1;
            let mid = (lo + hi) * 0.5;
            let side = if k.rect.yh < mid {
                hi = mid;
                0
            } else if k.rect.yl > mid {
                lo = mid;
                1
            } else {
                // Spans the midpoint: canonical node found.
                self.nodes[idx].subtree -= 1;
                break;
            };
            let next = self.nodes[idx].children[side];
            idx = if next == NONE {
                let new = self.nodes.len() as u32;
                self.nodes.push(Node::new());
                self.nodes[idx].children[side] = new;
                new as usize
            } else {
                next as usize
            };
        }
        self.nodes[idx].subtree += 1;
        self.nodes[idx].entries.push(k);
    }

    /// Reports all stored entries y-overlapping `q` that are still active at
    /// sweep position `x_cur`; drops stale entries on the way. Returns the
    /// number of stale entries dropped in the subtree (so ancestors can fix
    /// their counts).
    fn query(
        &mut self,
        q: &Kpe,
        x_cur: f64,
        counters: &mut JoinCounters,
        emit: &mut dyn FnMut(&Kpe),
    ) {
        self.query_rec(0, self.lo, self.hi, q, x_cur, counters, emit);
    }

    #[allow(clippy::too_many_arguments)]
    fn query_rec(
        &mut self,
        idx: usize,
        lo: f64,
        hi: f64,
        q: &Kpe,
        x_cur: f64,
        counters: &mut JoinCounters,
        emit: &mut dyn FnMut(&Kpe),
    ) -> u32 {
        // Prune empty subtrees and regions missing the query's y-interval.
        if self.nodes[idx].subtree == 0 || q.rect.yh < lo || q.rect.yl > hi {
            return 0;
        }
        counters.node_visits += 1;
        let node = &mut self.nodes[idx];
        let mut removed = 0u32;
        let mut i = 0;
        while i < node.entries.len() {
            let e = node.entries[i];
            if e.rect.xh < x_cur {
                node.entries.swap_remove(i); // stale: sweep line passed it
                removed += 1;
                continue;
            }
            counters.tests += 1;
            if e.rect.yl <= q.rect.yh && q.rect.yl <= e.rect.yh {
                counters.results += 1;
                emit(&node.entries[i]);
            }
            i += 1;
        }
        let mid = (lo + hi) * 0.5;
        let [l, r] = self.nodes[idx].children;
        if l != NONE {
            removed += self.query_rec(l as usize, lo, mid, q, x_cur, counters, emit);
        }
        if r != NONE {
            removed += self.query_rec(r as usize, mid, hi, q, x_cur, counters, emit);
        }
        self.nodes[idx].subtree -= removed;
        removed
    }
}

impl InternalJoin for PlaneSweepTrie {
    fn join(&mut self, r: &mut [Kpe], s: &mut [Kpe], out: &mut dyn FnMut(&Kpe, &Kpe)) {
        if r.is_empty() || s.is_empty() {
            return;
        }
        r.sort_unstable_by(|a, b| a.rect.xl.total_cmp(&b.rect.xl));
        s.sort_unstable_by(|a, b| a.rect.xl.total_cmp(&b.rect.xl));

        // Root y-range covering both inputs (trie boundaries are data-space
        // halves of this range).
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for k in r.iter().chain(s.iter()) {
            lo = lo.min(k.rect.yl);
            hi = hi.max(k.rect.yh);
        }
        if hi <= lo {
            hi = lo + 1.0; // degenerate: all y equal
        }
        let mut trie_r = Trie::new(lo, hi);
        let mut trie_s = Trie::new(lo, hi);

        let (mut i, mut j) = (0usize, 0usize);
        while i < r.len() || j < s.len() {
            let take_r = j >= s.len() || (i < r.len() && r[i].rect.xl <= s[j].rect.xl);
            if take_r {
                let cur = r[i];
                trie_s.query(&cur, cur.rect.xl, &mut self.counters, &mut |e| {
                    out(&cur, e)
                });
                trie_r.insert(cur);
                i += 1;
            } else {
                let cur = s[j];
                trie_r.query(&cur, cur.rect.xl, &mut self.counters, &mut |e| {
                    out(e, &cur)
                });
                trie_s.insert(cur);
                j += 1;
            }
        }
    }

    fn counters(&self) -> JoinCounters {
        self.counters
    }

    fn reset(&mut self) {
        self.counters = JoinCounters::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{brute_force, random_kpes};
    use proptest::prelude::*;

    #[test]
    fn trie_handles_degenerate_equal_y() {
        // All rects on one horizontal line.
        let mut r: Vec<Kpe> = random_kpes(30, 0.1, 9);
        for k in r.iter_mut() {
            k.rect.yl = 0.5;
            k.rect.yh = 0.5;
        }
        let want = brute_force(&r, &r);
        let mut j = PlaneSweepTrie::new();
        let mut got = Vec::new();
        let (mut a, mut b) = (r.clone(), r.clone());
        j.join(&mut a, &mut b, &mut |x, y| got.push((x.id.0, y.id.0)));
        got.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn lazy_deletion_removes_stale_entries() {
        // Two clusters far apart in x: by the time the second cluster is
        // swept, the first cluster's entries must have been dropped.
        let mut all = Vec::new();
        for i in 0..20u64 {
            let y = i as f64 / 40.0;
            all.push(Kpe::new(
                geom::RecordId(i),
                geom::Rect::new(0.0, y, 0.01, y + 0.2),
            ));
        }
        for i in 20..40u64 {
            let y = (i - 20) as f64 / 40.0;
            all.push(Kpe::new(
                geom::RecordId(i),
                geom::Rect::new(0.9, y, 0.91, y + 0.2),
            ));
        }
        let want = brute_force(&all, &all);
        let mut j = PlaneSweepTrie::new();
        let mut got = Vec::new();
        let (mut a, mut b) = (all.clone(), all.clone());
        j.join(&mut a, &mut b, &mut |x, y| got.push((x.id.0, y.id.0)));
        got.sort_unstable();
        assert_eq!(got, want);
        // No pair across the two clusters.
        assert!(got.iter().all(|&(x, y)| (x < 20) == (y < 20)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_trie_matches_brute_force(seed_r in 0u64..1000, seed_s in 1000u64..2000,
                                         n in 1usize..120, edge in 0.001f64..0.4) {
            let r = random_kpes(n, edge, seed_r);
            let s = random_kpes(n, edge, seed_s);
            let want = brute_force(&r, &s);
            let mut j = PlaneSweepTrie::new();
            let (mut a, mut b) = (r.clone(), s.clone());
            let mut got = Vec::new();
            j.join(&mut a, &mut b, &mut |x, y| got.push((x.id.0, y.id.0)));
            got.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }
}
