//! Internal (in-memory) spatial join algorithms.
//!
//! Both PBSM and S³J reduce the external join to a sequence of in-memory
//! joins on pairs of partitions; the choice of this *internal* algorithm has
//! a first-order effect on total runtime (paper §3.2.2, §4.4.1, Figures 4, 5
//! and 12). Three algorithms are provided behind the [`InternalJoin`] trait:
//!
//! * [`NestedLoops`] — all-pairs testing. Best for the very small partitions
//!   of S³J, where sweep setup costs dominate.
//! * [`PlaneSweepList`] — the *Plane-Sweep Intersection-Test* of [BKS 93]:
//!   sort by `xl`, then forward-scan the other relation. The sweep-line
//!   status is implicit ("organised as a list"); the original internal
//!   algorithm of PBSM.
//! * [`PlaneSweepTrie`] — this paper's contribution: the sweep-line status is
//!   an *interval trie* ([Knu 70]) over the y-axis, avoiding both the long
//!   forward scans of the list method and the rebalancing cost of dynamic
//!   interval trees suggested in [APR+ 98].
//!
//! All algorithms report each intersecting `(r, s)` pair exactly once, as
//! *ordered* pairs (first element from `r`, second from `s`). Callers layer
//! duplicate-elimination (e.g. the Reference Point Method) on top via the
//! output callback.

mod list;
mod nested;
mod trie;

pub use list::PlaneSweepList;
pub use nested::NestedLoops;
pub use trie::PlaneSweepTrie;

use geom::Kpe;

/// CPU-side work counters of an internal join run. These are what the
/// paper's CPU-time plots measure indirectly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinCounters {
    /// Candidate pair tests performed (rectangle/interval comparisons).
    pub tests: u64,
    /// Intersecting pairs reported.
    pub results: u64,
    /// Status-structure node visits (trie only; 0 otherwise).
    pub node_visits: u64,
}

impl JoinCounters {
    pub fn add(&mut self, other: &JoinCounters) {
        self.tests += other.tests;
        self.results += other.results;
        self.node_visits += other.node_visits;
    }

    /// Folds another counter into this one — the deterministic reduction
    /// the parallel join executors apply to per-worker counters (counts are
    /// pure sums, so the merge is independent of worker interleaving).
    pub fn merge(&mut self, other: &JoinCounters) {
        self.add(other);
    }
}

/// An in-memory spatial (intersection) join on two sets of KPEs.
///
/// Implementations may reorder the input slices (all of them sort by `xl`).
/// The same instance can be reused across many partition pairs; counters
/// accumulate until [`InternalJoin::reset`].
pub trait InternalJoin {
    /// Joins `r` and `s`, invoking `out(a, b)` exactly once for every
    /// intersecting pair with `a ∈ r`, `b ∈ s`.
    fn join(&mut self, r: &mut [Kpe], s: &mut [Kpe], out: &mut dyn FnMut(&Kpe, &Kpe));

    /// Work counters accumulated so far.
    fn counters(&self) -> JoinCounters;

    /// Clears the counters.
    fn reset(&mut self);
}

/// Runtime selection of the internal algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InternalAlgo {
    /// Simple all-pairs loop.
    NestedLoops,
    /// List-based plane sweep of [BKS 93] (PBSM's original choice).
    #[default]
    PlaneSweepList,
    /// Interval-trie plane sweep (this paper's proposal).
    PlaneSweepTrie,
}

impl InternalAlgo {
    /// Instantiates the selected algorithm. The trait object is `Send` so
    /// each parallel join worker can own its own instance.
    pub fn create(self) -> Box<dyn InternalJoin + Send> {
        match self {
            InternalAlgo::NestedLoops => Box::new(NestedLoops::new()),
            InternalAlgo::PlaneSweepList => Box::new(PlaneSweepList::new()),
            InternalAlgo::PlaneSweepTrie => Box::new(PlaneSweepTrie::new()),
        }
    }

    /// All variants, for exhaustive cross-validation in tests and benches.
    pub const ALL: [InternalAlgo; 3] = [
        InternalAlgo::NestedLoops,
        InternalAlgo::PlaneSweepList,
        InternalAlgo::PlaneSweepTrie,
    ];
}

impl std::fmt::Display for InternalAlgo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InternalAlgo::NestedLoops => write!(f, "nested-loops"),
            InternalAlgo::PlaneSweepList => write!(f, "sweep-list"),
            InternalAlgo::PlaneSweepTrie => write!(f, "sweep-trie"),
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use geom::{Kpe, Rect, RecordId};
    use rand::prelude::*;

    /// Uniform random rectangles with edges up to `max_edge`.
    pub fn random_kpes(n: usize, max_edge: f64, seed: u64) -> Vec<Kpe> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let x = rng.gen_range(0.0..1.0);
                let y = rng.gen_range(0.0..1.0);
                let w = rng.gen_range(0.0..max_edge);
                let h = rng.gen_range(0.0..max_edge);
                Kpe::new(
                    RecordId(i as u64),
                    Rect::new(x, y, (x + w).min(1.0), (y + h).min(1.0)),
                )
            })
            .collect()
    }

    /// Reference result: ordered id pairs from brute force.
    pub fn brute_force(r: &[Kpe], s: &[Kpe]) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for a in r {
            for b in s {
                if a.rect.intersects(&b.rect) {
                    out.push((a.id.0, b.id.0));
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::*;
    use super::*;

    fn run(algo: InternalAlgo, r: &[Kpe], s: &[Kpe]) -> (Vec<(u64, u64)>, JoinCounters) {
        let mut j = algo.create();
        let mut rv = r.to_vec();
        let mut sv = s.to_vec();
        let mut got = Vec::new();
        j.join(&mut rv, &mut sv, &mut |a, b| got.push((a.id.0, b.id.0)));
        got.sort_unstable();
        (got, j.counters())
    }

    #[test]
    fn all_algorithms_match_brute_force_small() {
        let r = random_kpes(60, 0.1, 11);
        let s = random_kpes(80, 0.1, 22);
        let want = brute_force(&r, &s);
        assert!(!want.is_empty());
        for algo in InternalAlgo::ALL {
            let (got, c) = run(algo, &r, &s);
            assert_eq!(got, want, "{algo} diverges from brute force");
            assert_eq!(c.results, want.len() as u64);
        }
    }

    #[test]
    fn all_algorithms_match_on_large_skewed_input() {
        // Long, thin rects stress the forward scan and the trie descent.
        let mut r = random_kpes(300, 0.01, 33);
        for (i, k) in r.iter_mut().enumerate() {
            if i % 7 == 0 {
                k.rect.xh = (k.rect.xl + 0.5).min(1.0); // make some very wide
            }
        }
        let s = random_kpes(300, 0.02, 44);
        let want = brute_force(&r, &s);
        for algo in InternalAlgo::ALL {
            let (got, _) = run(algo, &r, &s);
            assert_eq!(got.len(), want.len(), "{algo} count mismatch");
            assert_eq!(got, want, "{algo} diverges");
        }
    }

    #[test]
    fn empty_inputs_yield_no_results() {
        let r = random_kpes(10, 0.1, 1);
        for algo in InternalAlgo::ALL {
            let (got, c) = run(algo, &[], &r);
            assert!(got.is_empty());
            assert_eq!(c.results, 0);
            let (got, _) = run(algo, &r, &[]);
            assert!(got.is_empty());
        }
    }

    #[test]
    fn self_join_reports_ordered_pairs_including_identity() {
        let r = random_kpes(40, 0.2, 5);
        let want = brute_force(&r, &r);
        // Identity pairs are present...
        for k in &r {
            assert!(want.binary_search(&(k.id.0, k.id.0)).is_ok());
        }
        // ...and every algorithm reproduces the full ordered-pair set.
        for algo in InternalAlgo::ALL {
            let (got, _) = run(algo, &r, &r);
            assert_eq!(got, want, "{algo} diverges on self join");
        }
    }

    #[test]
    fn sweep_list_does_fewer_tests_than_nested_loops() {
        let r = random_kpes(500, 0.01, 7);
        let s = random_kpes(500, 0.01, 8);
        let (_, nl) = run(InternalAlgo::NestedLoops, &r, &s);
        let (_, sl) = run(InternalAlgo::PlaneSweepList, &r, &s);
        assert_eq!(nl.tests, 500 * 500);
        assert!(
            sl.tests < nl.tests / 10,
            "sweep {0} tests vs nested {1}",
            sl.tests,
            nl.tests
        );
    }

    #[test]
    fn trie_does_fewer_tests_than_list_on_wide_rects() {
        // Wide-x rects make the list's forward scans long; the trie's y-axis
        // filtering should cut the test count (this is the Figure 4 effect).
        let mut r = random_kpes(2000, 0.003, 17);
        let mut s = random_kpes(2000, 0.003, 18);
        for k in r.iter_mut().chain(s.iter_mut()) {
            k.rect.xh = (k.rect.xl + 0.2).min(1.0); // widen x, keep y tiny
        }
        let (res_l, list) = run(InternalAlgo::PlaneSweepList, &r, &s);
        let (res_t, trie) = run(InternalAlgo::PlaneSweepTrie, &r, &s);
        assert_eq!(res_l, res_t);
        assert!(
            trie.tests < list.tests / 4,
            "trie {0} tests vs list {1}",
            trie.tests,
            list.tests
        );
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let r = random_kpes(50, 0.1, 2);
        let mut j = InternalAlgo::PlaneSweepList.create();
        let mut rv = r.clone();
        let mut sv = r.clone();
        j.join(&mut rv, &mut sv, &mut |_, _| {});
        let once = j.counters();
        j.join(&mut rv, &mut sv, &mut |_, _| {});
        let twice = j.counters();
        assert_eq!(twice.results, 2 * once.results);
        j.reset();
        assert_eq!(j.counters(), JoinCounters::default());
    }
}

#[cfg(test)]
mod proptests {
    use super::testutil::brute_force;
    use super::*;
    use geom::{Kpe, Point, Rect, RecordId};
    use proptest::prelude::*;

    fn arb_kpes(max_n: usize) -> impl Strategy<Value = Vec<Kpe>> {
        prop::collection::vec(
            (0.0f64..1.0, 0.0f64..1.0, 0.0f64..0.3, 0.0f64..0.3),
            0..max_n,
        )
        .prop_map(|v| {
            v.into_iter()
                .enumerate()
                .map(|(i, (x, y, w, h))| {
                    Kpe::new(
                        RecordId(i as u64),
                        Rect::from_corners(
                            Point::new(x, y),
                            Point::new((x + w).min(1.0), (y + h).min(1.0)),
                        ),
                    )
                })
                .collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Every internal algorithm returns exactly the brute-force set.
        #[test]
        fn prop_all_algorithms_exact(r in arb_kpes(80), s in arb_kpes(80)) {
            let want = brute_force(&r, &s);
            for algo in InternalAlgo::ALL {
                let mut j = algo.create();
                let (mut rv, mut sv) = (r.clone(), s.clone());
                let mut got = Vec::new();
                j.join(&mut rv, &mut sv, &mut |a, b| got.push((a.id.0, b.id.0)));
                got.sort_unstable();
                prop_assert_eq!(&got, &want, "{} diverges", algo);
                prop_assert_eq!(j.counters().results, want.len() as u64);
            }
        }

        /// The sweeps never do more tests than nested loops.
        #[test]
        fn prop_sweeps_bounded_by_quadratic(r in arb_kpes(60), s in arb_kpes(60)) {
            for algo in [InternalAlgo::PlaneSweepList, InternalAlgo::PlaneSweepTrie] {
                let mut j = algo.create();
                let (mut rv, mut sv) = (r.clone(), s.clone());
                j.join(&mut rv, &mut sv, &mut |_, _| {});
                prop_assert!(j.counters().tests <= (r.len() * s.len()) as u64);
            }
        }
    }
}
