//! Adversarial workloads for the conformance harness.
//!
//! Real generators ([`crate::LineNetwork`], [`crate::uniform`], …) produce
//! geometry that is *generic* with probability one: no two coordinates are
//! equal, nothing lies exactly on a partition boundary, every intersection
//! has positive area. The duplicate-detection machinery this workspace
//! exists to validate — the Reference Point Method and its tie-breaking at
//! partition borders — is only exercised at the opposite end of the
//! spectrum. This module deliberately produces the degenerate geometry the
//! boundary-condition bugs of partition-based joins hide behind:
//!
//! * rectangles whose edges lie (to within half a lattice step) **on grid
//!   lines** of the small tile grids PBSM and the MX-CIF quadtree use;
//! * **zero-width / zero-height / point** MBRs, as TIGER axis-parallel
//!   segments routinely produce;
//! * **shared-edge** and **point-touch** pairs, whose intersection is a
//!   segment or a single point — exactly where a `<` vs `<=` flip in the
//!   reference-point test changes the answer;
//! * exact **coordinate duplicates** across and within relations;
//! * **hot tiles**: clusters concentrated in one grid cell (plus a rect
//!   equal to the cell and one spanning it), the skew that forces
//!   repartitioning recursion.
//!
//! Every coordinate is a multiple of `1 / 2^20` (a *dyadic lattice*). This
//! is load-bearing for the metamorphic oracle: translating by a lattice
//! amount and scaling by a power of two are **exact** in `f64`, so the
//! transformed workload provably has the same intersection relation as the
//! original — result-set differences observed by the oracle are therefore
//! always real bugs, never floating-point artefacts.
//!
//! Generation is fully deterministic in the seed.

use geom::{Kpe, Rect, RecordId};
use rand::prelude::*;

/// Lattice resolution: all generated coordinates are multiples of `1/2^20`.
pub const LATTICE: f64 = (1u64 << 20) as f64;

/// Snaps a value in `[0, 1]` to the nearest lattice point. Exact: the
/// rounded numerator is an integer ≤ 2^20 and the division is by a power of
/// two.
#[inline]
pub fn snap(v: f64) -> f64 {
    (v.clamp(0.0, 1.0) * LATTICE).round() / LATTICE
}

/// Tile-grid granularities whose boundaries the generator aims at. The
/// non-power-of-two entries (3, 5, 6, 12) hit PBSM base grids (`gx × gy`
/// chosen near-square from the partition count); the powers of two also hit
/// MX-CIF quadtree cell boundaries at every level up to 5.
const GRIDS: [u32; 9] = [2, 3, 4, 5, 6, 8, 12, 16, 32];

/// Configuration of an adversarial workload (a pair of relations).
#[derive(Debug, Clone, Copy)]
pub struct Adversarial {
    /// Rectangles per relation.
    pub count: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Adversarial {
    /// Generates the `(r, s)` relation pair. Ids are sequential per
    /// relation (`kpes[i].id.0 == i`), like every generator in this crate.
    pub fn generate_pair(&self) -> (Vec<Kpe>, Vec<Kpe>) {
        assert!(self.count > 0, "empty workload requested");
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xADE5_A71A);
        let mut r: Vec<Rect> = Vec::with_capacity(self.count + 8);
        let mut s: Vec<Rect> = Vec::with_capacity(self.count + 8);
        while r.len() < self.count || s.len() < self.count {
            emit_feature(&mut rng, &mut r, &mut s);
        }
        r.truncate(self.count);
        s.truncate(self.count);
        let id = |v: Vec<Rect>| {
            v.into_iter()
                .enumerate()
                .map(|(i, rect)| Kpe::new(RecordId(i as u64), rect))
                .collect()
        };
        (id(r), id(s))
    }
}

/// A grid-line coordinate: `k/g` for a random granularity `g`, snapped to
/// the lattice (within `2^-21` of the true boundary — adversarially close
/// on a deterministic side).
fn grid_line(rng: &mut StdRng) -> f64 {
    let g = GRIDS[rng.gen_range(0..GRIDS.len())];
    let k = rng.gen_range(0..=g);
    snap(k as f64 / g as f64)
}

/// A general lattice coordinate.
fn coord(rng: &mut StdRng) -> f64 {
    snap(rng.gen_range(0.0..1.0))
}

/// A small lattice-aligned extent in `(0, max]`.
fn extent(rng: &mut StdRng, max: f64) -> f64 {
    let steps = (max * LATTICE) as u64;
    rng.gen_range(1..=steps.max(1)) as f64 / LATTICE
}

/// Builds an ordered rectangle from two corner coordinates per axis.
fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
    Rect::new(x0.min(x1), y0.min(y1), x0.max(x1), y0.max(y1))
}

/// Emits one adversarial feature into the relations (most features place
/// correlated geometry into *both* relations, so cross-relation ties at
/// partition borders actually occur).
fn emit_feature(rng: &mut StdRng, r: &mut Vec<Rect>, s: &mut Vec<Rect>) {
    match rng.gen_range(0u32..9) {
        // Crossing zero-area segments pinned to grid lines: a horizontal
        // segment in one relation, a vertical in the other. Their
        // intersection is a single grid-adjacent point.
        0 => {
            let y = grid_line(rng);
            let (a, b) = (coord(rng), coord(rng));
            r.push(rect(a, y, b, y));
            let x = grid_line(rng);
            let (c, d) = (coord(rng), coord(rng));
            s.push(rect(x, c, x, d));
        }
        // A box with all four edges on grid lines (degenerate when two
        // lines coincide), mirrored into the other relation shrunk by one
        // lattice step so the pair straddles the boundary both ways.
        1 => {
            let b = rect(grid_line(rng), grid_line(rng), grid_line(rng), grid_line(rng));
            r.push(b);
            let q = 1.0 / LATTICE;
            if b.xh - b.xl >= 2.0 * q && b.yh - b.yl >= 2.0 * q {
                s.push(Rect::new(b.xl + q, b.yl + q, b.xh - q, b.yh - q));
            } else {
                s.push(b);
            }
        }
        // Shared edge: the right edge of an `r` rect is exactly the left
        // edge of an `s` rect; the intersection is a vertical segment.
        2 => {
            let x = grid_line(rng);
            let (y0, h) = (coord(rng), extent(rng, 0.1));
            let a = rect((x - extent(rng, 0.1)).max(0.0), y0, x, (y0 + h).min(1.0));
            r.push(a);
            let dy = extent(rng, 0.05);
            s.push(rect(
                x,
                (a.yl + dy).min(1.0),
                (x + extent(rng, 0.1)).min(1.0),
                (a.yh + dy).min(1.0),
            ));
        }
        // Point touch: two rects sharing exactly one corner.
        3 => {
            let (x, y) = (grid_line(rng), grid_line(rng));
            r.push(rect(
                (x - extent(rng, 0.08)).max(0.0),
                (y - extent(rng, 0.08)).max(0.0),
                x,
                y,
            ));
            s.push(rect(
                x,
                y,
                (x + extent(rng, 0.08)).min(1.0),
                (y + extent(rng, 0.08)).min(1.0),
            ));
        }
        // Exact coordinate duplicates: replay an earlier rectangle into
        // both relations (duplicate ids never occur; duplicate geometry
        // must be handled everywhere).
        4 => {
            if let Some(&b) = r.last().or_else(|| s.last()) {
                r.push(b);
                s.push(b);
            } else {
                let b = rect(coord(rng), coord(rng), coord(rng), coord(rng));
                r.push(b);
                s.push(b);
            }
        }
        // Hot tile: a cluster inside one grid cell, the cell itself as a
        // rectangle, and a rect spanning a 2×2 block of cells.
        5 => {
            let g = [4u32, 8][rng.gen_range(0..2usize)];
            let (i, j) = (rng.gen_range(0..g), rng.gen_range(0..g));
            let step = 1.0 / g as f64;
            let (cx, cy) = (i as f64 * step, j as f64 * step);
            r.push(Rect::new(cx, cy, cx + step, cy + step));
            for k in 0..rng.gen_range(4..10usize) {
                let x = snap(cx + rng.gen_range(0.0..step));
                let y = snap(cy + rng.gen_range(0.0..step));
                let b = rect(
                    x,
                    y,
                    (x + extent(rng, step / 4.0)).min(1.0),
                    (y + extent(rng, step / 4.0)).min(1.0),
                );
                if k % 2 == 0 {
                    r.push(b);
                } else {
                    s.push(b);
                }
            }
            s.push(Rect::new(
                (cx - step).max(0.0),
                (cy - step).max(0.0),
                (cx + step).min(1.0),
                (cy + step).min(1.0),
            ));
        }
        // Point rectangle on a grid node, plus a rect whose corner is that
        // exact node.
        6 => {
            let (x, y) = (grid_line(rng), grid_line(rng));
            r.push(Rect::new(x, y, x, y));
            s.push(rect(
                x,
                y,
                (x + extent(rng, 0.1)).min(1.0),
                (y + extent(rng, 0.1)).min(1.0),
            ));
        }
        // Data-space boundary huggers: zero-width at `x = 1`, zero-height
        // at `y = 0`, and partners touching them.
        7 => {
            let (a, b) = (coord(rng), coord(rng));
            r.push(rect(1.0, a, 1.0, b));
            s.push(rect(1.0 - extent(rng, 0.1), a, 1.0, b));
            let (c, d) = (coord(rng), coord(rng));
            r.push(rect(c, 0.0, d, 0.0));
            s.push(rect(c, 0.0, d, extent(rng, 0.1)));
        }
        // Filler: ordinary small lattice rects keeping the workload from
        // being 100% pathological (mixed populations hide bugs best).
        _ => {
            let (x, y) = (coord(rng), coord(rng));
            let b = rect(
                x,
                y,
                (x + extent(rng, 0.08)).min(1.0),
                (y + extent(rng, 0.08)).min(1.0),
            );
            if rng.gen_bool(0.5) {
                r.push(b);
            } else {
                s.push(b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_sized() {
        let cfg = Adversarial { count: 200, seed: 7 };
        let (r1, s1) = cfg.generate_pair();
        let (r2, s2) = cfg.generate_pair();
        assert_eq!(r1, r2);
        assert_eq!(s1, s2);
        assert_eq!(r1.len(), 200);
        assert_eq!(s1.len(), 200);
        let other = Adversarial { seed: 8, ..cfg }.generate_pair();
        assert_ne!(r1, other.0);
    }

    #[test]
    fn coordinates_are_on_the_lattice_and_in_range() {
        let (r, s) = Adversarial { count: 300, seed: 3 }.generate_pair();
        for k in r.iter().chain(s.iter()) {
            for v in [k.rect.xl, k.rect.yl, k.rect.xh, k.rect.yh] {
                assert!((0.0..=1.0).contains(&v));
                let scaled = v * LATTICE;
                assert_eq!(scaled, scaled.round(), "off-lattice coordinate {v}");
            }
            assert!(k.rect.xl <= k.rect.xh && k.rect.yl <= k.rect.yh);
        }
    }

    #[test]
    fn degenerate_and_tied_geometry_is_actually_present() {
        let (r, s) = Adversarial { count: 400, seed: 11 }.generate_pair();
        let all: Vec<&Kpe> = r.iter().chain(s.iter()).collect();
        let zero_w = all.iter().filter(|k| k.rect.width() == 0.0).count();
        let zero_h = all.iter().filter(|k| k.rect.height() == 0.0).count();
        let points = all
            .iter()
            .filter(|k| k.rect.width() == 0.0 && k.rect.height() == 0.0)
            .count();
        assert!(zero_w > 10, "zero-width count {zero_w}");
        assert!(zero_h > 10, "zero-height count {zero_h}");
        assert!(points > 0, "no point rectangles");
        // Exact cross-relation coordinate duplicates exist.
        let dup = r
            .iter()
            .any(|a| s.iter().any(|b| a.rect == b.rect));
        assert!(dup, "no exact duplicate geometry across relations");
        // Shared coordinates across *distinct* rects (ties) are plentiful.
        let mut xs: Vec<u64> = all
            .iter()
            .flat_map(|k| [k.rect.xl.to_bits(), k.rect.xh.to_bits()])
            .collect();
        let total = xs.len();
        xs.sort_unstable();
        xs.dedup();
        assert!(xs.len() < total * 9 / 10, "almost no coordinate ties");
    }
}
