//! Deterministic TIGER-like synthetic spatial datasets.
//!
//! The paper's experiments use MBR sets derived from US Census TIGER line
//! data (Table 1): `LA_RR` (railways/rivers, 128,971 MBRs, coverage 0.22),
//! `LA_ST` (LA streets, 131,461 MBRs, coverage 0.03) and `CAL_ST` (all
//! California streets, 1,888,012 MBRs, coverage 0.12). Those files are not
//! redistributable here, so this crate *simulates* them: line networks are
//! drawn as random-walk polylines inside the unit square and decomposed into
//! per-segment MBRs — exactly how TIGER line records become MBRs. Segment
//! length is derived from the target coverage and then calibrated so the
//! generated file reproduces the paper's cardinality and coverage; polyline
//! clustering reproduces the spatial locality of road networks. All joins in
//! the paper are defined purely on MBR geometry, so matching count, coverage
//! and clustering preserves the behaviour every experiment depends on.
//!
//! Generation is fully deterministic in the seed.

use geom::{dataset_stats, Kpe, Point, Rect, RecordId, Segment};
use rand::prelude::*;

pub mod adversarial;
pub use adversarial::Adversarial;

/// A generated dataset with exact geometry: `segments[i]` is the line
/// segment whose MBR is `kpes[i].rect` (and `kpes[i].id.0 == i`). The
/// filter step consumes the KPEs; the refinement step (`refine` crate)
/// consumes the segments.
#[derive(Debug, Clone, PartialEq)]
pub struct LineDataset {
    pub kpes: Vec<Kpe>,
    pub segments: Vec<Segment>,
}

impl LineDataset {
    pub fn len(&self) -> usize {
        self.kpes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.kpes.is_empty()
    }
}

/// Configuration of a line-network dataset.
#[derive(Debug, Clone, Copy)]
pub struct LineNetwork {
    /// Number of segment MBRs to produce.
    pub count: usize,
    /// Target coverage (sum of areas / area of global MBR).
    pub coverage: f64,
    /// Segments per polyline; larger values give stronger clustering.
    pub segments_per_line: usize,
    /// RNG seed.
    pub seed: u64,
}

impl LineNetwork {
    /// Generates the dataset (MBRs only). Coverage is calibrated to within
    /// a few percent of the target by a post-pass that rescales every
    /// segment around its midpoint.
    pub fn generate(&self) -> Vec<Kpe> {
        self.generate_dataset().kpes
    }

    /// Generates the dataset together with its exact segment geometry.
    pub fn generate_dataset(&self) -> LineDataset {
        assert!(self.count > 0, "empty dataset requested");
        let mut rng = StdRng::seed_from_u64(self.seed);
        // E[|cos·sin|] = 1/π for uniform headings, so a step length of
        // sqrt(π·coverage/count) hits the target in expectation.
        let step = (std::f64::consts::PI * self.coverage / self.count as f64).sqrt();
        let mut data: Vec<Segment> = Vec::with_capacity(self.count);
        'outer: loop {
            // Start a new polyline.
            let mut x = rng.gen_range(0.0..1.0);
            let mut y = rng.gen_range(0.0..1.0);
            let mut heading = rng.gen_range(0.0..std::f64::consts::TAU);
            for _ in 0..self.segments_per_line.max(1) {
                // Perturb the heading: roads bend gently, with occasional
                // sharp turns at junctions.
                heading += if rng.gen_bool(0.15) {
                    rng.gen_range(-1.2..1.2)
                } else {
                    rng.gen_range(-0.25..0.25)
                };
                let len = step * rng.gen_range(0.5..1.5);
                let mut nx = x + len * heading.cos();
                let mut ny = y + len * heading.sin();
                // Reflect at the data-space boundary.
                if !(0.0..=1.0).contains(&nx) {
                    heading = std::f64::consts::PI - heading;
                    nx = nx.clamp(0.0, 1.0);
                }
                if !(0.0..=1.0).contains(&ny) {
                    heading = -heading;
                    ny = ny.clamp(0.0, 1.0);
                }
                data.push(Segment::new(Point::new(x, y), Point::new(nx, ny)));
                if data.len() == self.count {
                    break 'outer;
                }
                x = nx;
                y = ny;
            }
        }
        calibrate_coverage(&mut data, self.coverage);
        let kpes = data
            .iter()
            .enumerate()
            .map(|(i, seg)| Kpe::new(RecordId(i as u64), seg.mbr()))
            .collect();
        LineDataset {
            kpes,
            segments: data,
        }
    }
}

/// Rescales every segment around its midpoint so the dataset's MBR coverage
/// matches `target` (scaling a segment around its midpoint scales its MBR
/// around its centre by the same factor).
fn calibrate_coverage(data: &mut [Segment], target: f64) {
    let kpes: Vec<Kpe> = data
        .iter()
        .map(|s| Kpe::new(RecordId(0), s.mbr()))
        .collect();
    let stats = dataset_stats(&kpes).expect("non-empty");
    if stats.coverage <= 0.0 {
        return;
    }
    let factor = (target / stats.coverage).sqrt();
    for s in data.iter_mut() {
        *s = scale_segment(s, factor);
    }
}

/// Scales a segment around its midpoint.
fn scale_segment(s: &Segment, p: f64) -> Segment {
    let cx = (s.a.x + s.b.x) * 0.5;
    let cy = (s.a.y + s.b.y) * 0.5;
    Segment::new(
        Point::new(cx + (s.a.x - cx) * p, cy + (s.a.y - cy) * p),
        Point::new(cx + (s.b.x - cx) * p, cy + (s.b.y - cy) * p),
    )
}

/// The `(p)` scaling operator applied to a dataset with geometry: segments
/// stretch around their midpoints, MBRs follow.
pub fn scale_dataset(ds: &LineDataset, p: f64) -> LineDataset {
    let segments: Vec<Segment> = ds.segments.iter().map(|s| scale_segment(s, p)).collect();
    let kpes = segments
        .iter()
        .enumerate()
        .map(|(i, seg)| Kpe::new(RecordId(i as u64), seg.mbr()))
        .collect();
    LineDataset { kpes, segments }
}

/// The paper's `LA_RR`: railways and rivers of LA. 128,971 MBRs, coverage
/// 0.22, long meandering lines.
pub fn la_rr(seed: u64) -> Vec<Kpe> {
    la_rr_config(seed).generate()
}

/// The paper's `LA_ST`: streets of LA. 131,461 MBRs, coverage 0.03, short
/// street blocks.
pub fn la_st(seed: u64) -> Vec<Kpe> {
    la_st_config(seed).generate()
}

/// The paper's `CAL_ST`: all street lines of California. 1,888,012 MBRs,
/// coverage 0.12.
pub fn cal_st(seed: u64) -> Vec<Kpe> {
    cal_st_config(seed).generate()
}

/// Proportionally shrunk dataset with the same coverage and clustering —
/// used by unit tests and microbenches where the full cardinality would be
/// wasteful. `fraction` scales the cardinality.
pub fn sized(full: &LineNetwork, fraction: f64) -> LineNetwork {
    LineNetwork {
        count: ((full.count as f64 * fraction) as usize).max(16),
        ..*full
    }
}

/// Generator parameters matching [`la_rr`] / [`la_st`] / [`cal_st`].
pub fn la_rr_config(seed: u64) -> LineNetwork {
    LineNetwork {
        count: 128_971,
        coverage: 0.22,
        segments_per_line: 40,
        seed: seed ^ 0x11AA_22BB,
    }
}

pub fn la_st_config(seed: u64) -> LineNetwork {
    LineNetwork {
        count: 131_461,
        coverage: 0.03,
        segments_per_line: 12,
        seed: seed ^ 0x33CC_44DD,
    }
}

pub fn cal_st_config(seed: u64) -> LineNetwork {
    LineNetwork {
        count: 1_888_012,
        coverage: 0.12,
        segments_per_line: 15,
        seed: seed ^ 0x55EE_66FF,
    }
}

/// The paper's `(p)` scaling operator: grows both edges of every MBR by the
/// factor `p` (coverage grows by `p²`). Used for `LA_RR(p)` / `LA_ST(p)` and
/// joins J2–J4 and Figure 13.
pub fn scale(data: &[Kpe], p: f64) -> Vec<Kpe> {
    data.iter()
        .map(|k| Kpe::new(k.id, k.rect.scaled(p)))
        .collect()
}

/// Uniformly distributed rectangles — the unclustered control workload.
pub fn uniform(count: usize, max_edge: f64, seed: u64) -> Vec<Kpe> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let x = rng.gen_range(0.0..1.0);
            let y = rng.gen_range(0.0..1.0);
            let w = rng.gen_range(0.0..max_edge);
            let h = rng.gen_range(0.0..max_edge);
            Kpe::new(
                RecordId(i as u64),
                Rect::new(x, y, (x + w).min(1.0), (y + h).min(1.0)),
            )
        })
        .collect()
}

/// Manhattan-style street grid: axis-parallel block edges with jitter.
/// Real street data is far more axis-aligned than isotropic random walks —
/// perpendicular crossings dominate, raising join selectivity at equal
/// coverage. Useful as a contrast workload to [`LineNetwork`].
pub fn manhattan(count: usize, blocks: u32, seed: u64) -> Vec<Kpe> {
    let mut rng = StdRng::seed_from_u64(seed);
    let blocks = blocks.max(2);
    let step = 1.0 / blocks as f64;
    (0..count)
        .map(|i| {
            // Alternate horizontal / vertical street segments snapped to the
            // block grid, with a little jitter so nothing is degenerate.
            let horizontal = i % 2 == 0;
            let a = rng.gen_range(0..blocks) as f64 * step;
            let b = rng.gen_range(0..blocks) as f64 * step;
            let mut jitter = || rng.gen_range(-0.1 * step..0.1 * step);
            let (xl, yl, xh, yh) = if horizontal {
                let y = b + jitter();
                (a, y, (a + step).min(1.0), y + 0.02 * step)
            } else {
                let x = b + jitter();
                (x, a, x + 0.02 * step, (a + step).min(1.0))
            };
            Kpe::new(
                RecordId(i as u64),
                Rect::new(
                    xl.clamp(0.0, 1.0),
                    yl.clamp(0.0, 1.0),
                    xh.clamp(0.0, 1.0),
                    yh.clamp(0.0, 1.0),
                ),
            )
        })
        .collect()
}

/// Artificial, highly skewed data: all rectangles hug the main diagonal
/// (within `spread` of it). The classic workload on which sweeping-based
/// joins shine and grid partitioning suffers — the paper's §1 remark that
/// "only for artificial, highly skewed datasets SSSJ is generally
/// superior".
pub fn diagonal(count: usize, spread: f64, max_edge: f64, seed: u64) -> Vec<Kpe> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let t = rng.gen_range(0.0..1.0);
            let dx: f64 = rng.gen_range(-spread..spread);
            let dy: f64 = rng.gen_range(-spread..spread);
            let x = (t + dx).clamp(0.0, 1.0);
            let y = (t + dy).clamp(0.0, 1.0);
            let w = rng.gen_range(0.0..max_edge);
            let h = rng.gen_range(0.0..max_edge);
            Kpe::new(
                RecordId(i as u64),
                Rect::new(x, y, (x + w).min(1.0), (y + h).min(1.0)),
            )
        })
        .collect()
}

/// Heavily skewed rectangles: `clusters` Gaussian-ish hotspots — the
/// adversarial workload for grid partitioning.
pub fn clustered(count: usize, clusters: usize, max_edge: f64, seed: u64) -> Vec<Kpe> {
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<(f64, f64)> = (0..clusters.max(1))
        .map(|_| (rng.gen_range(0.1..0.9), rng.gen_range(0.1..0.9)))
        .collect();
    (0..count)
        .map(|i| {
            let (cx, cy) = centers[i % centers.len()];
            // Sum of uniforms ≈ normal; spread 0.05.
            let dx: f64 = (0..4).map(|_| rng.gen_range(-0.025..0.025)).sum();
            let dy: f64 = (0..4).map(|_| rng.gen_range(-0.025..0.025)).sum();
            let x = (cx + dx).clamp(0.0, 1.0);
            let y = (cy + dy).clamp(0.0, 1.0);
            let w = rng.gen_range(0.0..max_edge);
            let h = rng.gen_range(0.0..max_edge);
            Kpe::new(
                RecordId(i as u64),
                Rect::new(x, y, (x + w).min(1.0), (y + h).min(1.0)),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = LineNetwork {
            count: 500,
            coverage: 0.1,
            segments_per_line: 10,
            seed: 42,
        };
        assert_eq!(cfg.generate(), cfg.generate());
        let other = LineNetwork { seed: 43, ..cfg };
        assert_ne!(cfg.generate(), other.generate());
    }

    #[test]
    fn coverage_is_calibrated() {
        for (count, cov) in [(2_000usize, 0.22), (3_000, 0.03), (5_000, 0.12)] {
            let data = LineNetwork {
                count,
                coverage: cov,
                segments_per_line: 20,
                seed: 7,
            }
            .generate();
            assert_eq!(data.len(), count);
            let stats = dataset_stats(&data).unwrap();
            assert!(
                (stats.coverage - cov).abs() / cov < 0.05,
                "coverage {} vs target {}",
                stats.coverage,
                cov
            );
        }
    }

    #[test]
    fn data_stays_in_unit_square_before_scaling() {
        let data = LineNetwork {
            count: 2_000,
            coverage: 0.05,
            segments_per_line: 30,
            seed: 9,
        }
        .generate();
        let b = dataset_stats(&data).unwrap().bounds;
        // Calibration may nudge edges slightly past the walk bounds.
        assert!(b.xl >= -0.05 && b.yl >= -0.05 && b.xh <= 1.05 && b.yh <= 1.05);
    }

    #[test]
    fn ids_are_sequential_and_unique() {
        let data = LineNetwork {
            count: 1_000,
            coverage: 0.1,
            segments_per_line: 5,
            seed: 3,
        }
        .generate();
        for (i, k) in data.iter().enumerate() {
            assert_eq!(k.id.0, i as u64);
        }
    }

    #[test]
    fn scale_multiplies_coverage_quadratically() {
        let data = LineNetwork {
            count: 2_000,
            coverage: 0.02,
            segments_per_line: 10,
            seed: 5,
        }
        .generate();
        let c1 = dataset_stats(&data).unwrap().coverage;
        let scaled = scale(&data, 3.0);
        let c3 = dataset_stats(&scaled).unwrap().coverage;
        // Bounds grow slightly, so allow tolerance around 9x.
        assert!((c3 / c1 - 9.0).abs() < 1.0, "ratio {}", c3 / c1);
    }

    #[test]
    fn sized_preserves_parameters() {
        let full = la_rr_config(1);
        let small = sized(&full, 0.01);
        assert_eq!(small.count, 1289);
        assert_eq!(small.coverage, full.coverage);
        let data = small.generate();
        let stats = dataset_stats(&data).unwrap();
        assert!((stats.coverage - 0.22).abs() < 0.03);
    }

    #[test]
    fn manhattan_is_axis_aligned_and_crossing_heavy() {
        let m = manhattan(2000, 20, 13);
        assert_eq!(m.len(), 2000);
        // Every segment is thin along exactly one axis.
        for k in &m {
            let thin_x = k.rect.width() < 0.005;
            let thin_y = k.rect.height() < 0.005;
            assert!(thin_x ^ thin_y, "segment must be axis-aligned: {:?}", k.rect);
        }
        // Selectivity beats an isotropic network of equal cardinality and
        // comparable coverage (perpendicular crossings dominate).
        let iso = LineNetwork {
            count: 2000,
            coverage: geom::dataset_stats(&m).unwrap().coverage,
            segments_per_line: 10,
            seed: 14,
        }
        .generate();
        let count_pairs = |data: &[Kpe]| {
            let mut n = 0u64;
            for (i, a) in data.iter().enumerate() {
                for b in &data[i + 1..] {
                    if a.rect.intersects(&b.rect) {
                        n += 1;
                    }
                }
            }
            n
        };
        assert!(count_pairs(&m) > count_pairs(&iso));
    }

    #[test]
    fn clustered_is_actually_clustered() {
        let c = clustered(2_000, 3, 0.01, 11);
        let u = uniform(2_000, 0.01, 11);
        // Compare mean nearest-centre spread via a crude 4x4 histogram: the
        // clustered set must concentrate mass in few cells.
        let occupancy = |data: &[Kpe]| {
            let mut h = [0usize; 16];
            for k in data {
                let cx = ((k.rect.xl * 4.0) as usize).min(3);
                let cy = ((k.rect.yl * 4.0) as usize).min(3);
                h[cy * 4 + cx] += 1;
            }
            let max = *h.iter().max().unwrap();
            max as f64 / data.len() as f64
        };
        assert!(occupancy(&c) > 2.0 * occupancy(&u));
    }
}
