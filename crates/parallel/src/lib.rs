//! A minimal ordered fan-out pool for partition-level join parallelism.
//!
//! Both PBSM and S³J reduce the external join to a sequence of *independent*
//! in-memory joins on pairs of partitions. This crate runs those pairs
//! across worker threads while preserving two properties the rest of the
//! workspace depends on:
//!
//! 1. **Deterministic output order.** Every task is tagged with its index
//!    and the collector re-assembles completions into canonical order
//!    (task 0, 1, 2, …) before handing them to the caller's sink — so the
//!    emitted result stream is byte-identical across thread counts and
//!    scheduling interleavings.
//! 2. **Per-worker state.** Each worker owns private state (forked I/O
//!    counters, its own internal-join instance, a partial stats struct)
//!    created on the worker thread and returned to the caller for a
//!    deterministic merge once all tasks finish.
//!
//! Scheduling is dynamic: workers claim the next unclaimed task index from
//! a shared atomic counter, so a straggler partition does not idle the rest
//! of the pool (the work-stealing effect without per-worker deques — there
//! is a single global queue of indices and stealing is the common case).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Why a [`CancelToken`] tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelCause {
    /// Explicit cooperative cancellation (operator closed the stream, user
    /// hit ^C, …).
    Cancelled,
    /// A simulated-time deadline expired. The join layer owns the clock; it
    /// trips the shared token with this cause when the budget runs out.
    Deadline,
}

const TOKEN_LIVE: u8 = 0;
const TOKEN_CANCELLED: u8 = 1;
const TOKEN_DEADLINE: u8 = 2;

struct TokenInner {
    state: AtomicU8,
    /// Deterministic test hook: trip (with `Cancelled`) on the `n`-th
    /// [`CancelToken::check`]. `0` = disabled.
    trip_after: AtomicU64,
    checks: AtomicU64,
}

/// A shared cooperative-cancellation flag, checked at partition granularity.
///
/// Cloning shares the flag. Workers poll [`CancelToken::check`] between
/// partitions; whoever trips the token first (an explicit
/// [`CancelToken::cancel`], a deadline owner calling
/// [`CancelToken::cancel_deadline`], or the deterministic
/// [`CancelToken::cancel_after_checks`] test hook) wins, and the cause is
/// latched — later trips do not overwrite it.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cause", &self.cause())
            .finish()
    }
}

impl CancelToken {
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Arc::new(TokenInner {
                state: AtomicU8::new(TOKEN_LIVE),
                trip_after: AtomicU64::new(0),
                checks: AtomicU64::new(0),
            }),
        }
    }

    /// Trips the token with [`CancelCause::Cancelled`] (first trip wins).
    pub fn cancel(&self) {
        let _ = self.inner.state.compare_exchange(
            TOKEN_LIVE,
            TOKEN_CANCELLED,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// Trips the token with [`CancelCause::Deadline`] (first trip wins).
    pub fn cancel_deadline(&self) {
        let _ = self.inner.state.compare_exchange(
            TOKEN_LIVE,
            TOKEN_DEADLINE,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// Arms the deterministic test hook: the `n`-th subsequent
    /// [`CancelToken::check`] (1-based) trips the token with
    /// [`CancelCause::Cancelled`]. Lets tests cancel at an exact,
    /// reproducible point of the partition phase.
    pub fn cancel_after_checks(&self, n: u64) {
        self.inner.checks.store(0, Ordering::Release);
        self.inner.trip_after.store(n, Ordering::Release);
    }

    /// Polls the token, counting this call toward
    /// [`CancelToken::cancel_after_checks`]. Returns the latched cause once
    /// tripped.
    pub fn check(&self) -> Option<CancelCause> {
        let armed = self.inner.trip_after.load(Ordering::Acquire);
        if armed > 0 {
            let seen = self.inner.checks.fetch_add(1, Ordering::AcqRel) + 1;
            if seen >= armed {
                self.cancel();
            }
        }
        self.cause()
    }

    /// Non-counting peek at the latched cause.
    pub fn cause(&self) -> Option<CancelCause> {
        match self.inner.state.load(Ordering::Acquire) {
            TOKEN_CANCELLED => Some(CancelCause::Cancelled),
            TOKEN_DEADLINE => Some(CancelCause::Deadline),
            _ => None,
        }
    }

    pub fn is_cancelled(&self) -> bool {
        self.cause().is_some()
    }
}

/// Cumulative on-CPU time of the calling thread, in seconds, where the
/// platform exposes it (Linux: `/proc/thread-self/schedstat`, nanosecond
/// granularity). `None` elsewhere.
pub fn thread_cpu_seconds() -> Option<f64> {
    let s = std::fs::read_to_string("/proc/thread-self/schedstat").ok()?;
    let ns: u64 = s.split_whitespace().next()?.parse().ok()?;
    Some(ns as f64 * 1e-9)
}

/// Per-worker compute clock. Measures on-CPU thread time when the platform
/// exposes it, wall time otherwise.
///
/// The distinction matters for the max-over-workers CPU reduction: a worker
/// descheduled by an oversubscribed host still *consumes* no CPU, so on-CPU
/// time reports what the fan-out costs on dedicated cores — the quantity the
/// cost model wants — while wall time would silently double-count
/// timeslicing. Must be read on the thread that created it.
pub struct WorkClock {
    wall: Instant,
    cpu0: Option<f64>,
}

impl WorkClock {
    pub fn start() -> WorkClock {
        WorkClock {
            wall: Instant::now(),
            cpu0: thread_cpu_seconds(),
        }
    }

    /// Seconds of compute since [`WorkClock::start`].
    pub fn seconds(&self) -> f64 {
        match self.cpu0 {
            Some(c0) => thread_cpu_seconds()
                .map(|c| c - c0)
                .unwrap_or_else(|| self.wall.elapsed().as_secs_f64()),
            None => self.wall.elapsed().as_secs_f64(),
        }
    }
}

/// Number of worker threads the machine supports.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves a `threads` config knob: `0` means "use all available cores".
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        available_threads()
    } else {
        threads
    }
}

/// Runs `n_tasks` independent tasks over `threads` workers, delivering each
/// task's output to `sink` **in canonical task order** on the calling
/// thread, streaming (a completed task is emitted as soon as every earlier
/// task has been emitted — the collector never waits for the whole batch).
///
/// * `init(worker_idx)` builds one worker's private state on its thread.
/// * `task(&mut state, task_idx)` runs one task; tasks are claimed from a
///   shared counter, so assignment to workers is dynamic and non-
///   deterministic — outputs must not depend on which worker ran them.
/// * `sink(task_idx, output)` observes outputs in order 0, 1, 2, ….
///
/// Returns every worker's final state (indexed by worker), for the caller
/// to merge deterministically. Panics in `task` propagate.
pub fn run_ordered<S, T, FInit, FTask, FSink>(
    threads: usize,
    n_tasks: usize,
    init: FInit,
    task: FTask,
    sink: FSink,
) -> Vec<S>
where
    S: Send,
    T: Send,
    FInit: Fn(usize) -> S + Sync,
    FTask: Fn(&mut S, usize) -> T + Sync,
    FSink: FnMut(usize, T),
{
    run_ordered_with(threads, n_tasks, None, init, task, sink)
}

/// [`run_ordered`] with cooperative cancellation: each worker polls `cancel`
/// before claiming its next task and stops claiming once the token trips.
/// Tasks are claimed in index order, so the sink observes exactly the
/// contiguous prefix of tasks claimed before the trip — a cancelled run's
/// partial output is a clean prefix, never a gapped subset.
pub fn run_ordered_with<S, T, FInit, FTask, FSink>(
    threads: usize,
    n_tasks: usize,
    cancel: Option<&CancelToken>,
    init: FInit,
    task: FTask,
    mut sink: FSink,
) -> Vec<S>
where
    S: Send,
    T: Send,
    FInit: Fn(usize) -> S + Sync,
    FTask: Fn(&mut S, usize) -> T + Sync,
    FSink: FnMut(usize, T),
{
    let threads = threads.max(1).min(n_tasks.max(1));
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let tx = tx.clone();
                let next = &next;
                let init = &init;
                let task = &task;
                scope.spawn(move || {
                    let mut state = init(w);
                    loop {
                        if cancel.is_some_and(|c| c.is_cancelled()) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n_tasks {
                            break;
                        }
                        let out = task(&mut state, i);
                        // The receiver outlives the scope; send cannot fail
                        // unless the collector below panicked first.
                        let _ = tx.send((i, out));
                    }
                    state
                })
            })
            .collect();
        drop(tx);

        // Canonical-order reassembly: buffer out-of-order completions,
        // flush the contiguous prefix as it forms.
        let mut pending: BTreeMap<usize, T> = BTreeMap::new();
        let mut emit_next = 0usize;
        for (i, out) in rx {
            pending.insert(i, out);
            while let Some(out) = pending.remove(&emit_next) {
                sink(emit_next, out);
                emit_next += 1;
            }
        }

        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

/// Scheduling state of [`run_ordered_fallible`]: fresh task indices come
/// from `next`, failed tasks wait in `retries` for any worker to pick up.
struct Requeue {
    next: usize,
    retries: Vec<(usize, u32)>, // (task index, round = prior failures)
    in_flight: usize,
    requeues: u64,
}

/// Scheduler-level counters from one [`run_ordered_fallible`] run, counted
/// by the shared queue itself — independent of whatever the per-worker
/// states accumulate, so callers can cross-check their own accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Fresh task indices claimed (≤ `n_tasks` under cancellation).
    pub tasks_claimed: u64,
    /// Failed tasks pushed back onto the queue for another round.
    pub requeues: u64,
}

/// Decrements `in_flight` and wakes waiters even if the task panicked —
/// without this a panicking task would leave idle workers blocked on the
/// condvar forever.
struct InFlightGuard<'a> {
    queue: &'a Mutex<Requeue>,
    cvar: &'a Condvar,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        let mut q = match self.queue.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        q.in_flight -= 1;
        self.cvar.notify_all();
    }
}

/// Claims the next job: a queued retry (preferred — it is oldest work) or a
/// fresh index. With `block`, waits while in-flight tasks might still spawn
/// retries and returns `None` only when nothing can arrive (or the token
/// tripped); without, returns `None` as soon as nothing is immediately
/// claimable — the non-blocking probe a pipelining worker uses while it
/// still holds work of its own (waiting there would deadlock on itself).
fn claim_job(
    queue: &Mutex<Requeue>,
    cvar: &Condvar,
    n_tasks: usize,
    cancel: Option<&CancelToken>,
    block: bool,
) -> Option<(usize, u32)> {
    let mut q = queue.lock().expect("requeue lock");
    loop {
        if cancel.is_some_and(|c| c.is_cancelled()) {
            return None;
        }
        if let Some(job) = q.retries.pop() {
            q.in_flight += 1;
            return Some(job);
        }
        if q.next < n_tasks {
            let i = q.next;
            q.next += 1;
            q.in_flight += 1;
            return Some((i, 0));
        }
        if !block || q.in_flight == 0 {
            return None;
        }
        q = cvar.wait(q).expect("requeue lock");
    }
}

/// [`run_ordered`] for fallible tasks, with bounded requeueing: a task that
/// returns `Err` goes back into the shared queue up to `max_requeues` times
/// before its final `Err` is delivered to the sink. Each retry runs on
/// whichever worker claims it (round-robin recovery: a partition whose
/// worker exhausted its I/O retry budget gets a fresh chance, and the
/// storage layer's shared per-identity fault counters have advanced in the
/// meantime, so deterministic transient faults are eventually consumed).
///
/// `task(&mut state, task_idx, round)` sees `round = 0` on the first run and
/// `round = k` on the `k`-th requeue. The sink observes exactly one final
/// `Result` per task, in canonical order. Worker states are returned as in
/// [`run_ordered`].
pub fn run_ordered_fallible<S, T, E, FInit, FTask, FSink>(
    threads: usize,
    n_tasks: usize,
    max_requeues: u32,
    init: FInit,
    task: FTask,
    sink: FSink,
) -> (Vec<S>, PoolStats)
where
    S: Send,
    T: Send,
    E: Send,
    FInit: Fn(usize) -> S + Sync,
    FTask: Fn(&mut S, usize, u32) -> Result<T, E> + Sync,
    FSink: FnMut(usize, Result<T, E>),
{
    run_ordered_fallible_with(threads, n_tasks, max_requeues, None, init, task, sink)
}

/// [`run_ordered_fallible`] with cooperative cancellation, with the same
/// claim-before-poll contract as [`run_ordered_with`]: workers stop claiming
/// (fresh indices *and* queued retries) once the token trips, in-flight
/// tasks finish, and the sink observes a prefix of final results.
pub fn run_ordered_fallible_with<S, T, E, FInit, FTask, FSink>(
    threads: usize,
    n_tasks: usize,
    max_requeues: u32,
    cancel: Option<&CancelToken>,
    init: FInit,
    task: FTask,
    mut sink: FSink,
) -> (Vec<S>, PoolStats)
where
    S: Send,
    T: Send,
    E: Send,
    FInit: Fn(usize) -> S + Sync,
    FTask: Fn(&mut S, usize, u32) -> Result<T, E> + Sync,
    FSink: FnMut(usize, Result<T, E>),
{
    let threads = threads.max(1).min(n_tasks.max(1));
    let queue = Mutex::new(Requeue {
        next: 0,
        retries: Vec::new(),
        in_flight: 0,
        requeues: 0,
    });
    let cvar = Condvar::new();
    let (tx, rx) = mpsc::channel::<(usize, Result<T, E>)>();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let tx = tx.clone();
                let queue = &queue;
                let cvar = &cvar;
                let init = &init;
                let task = &task;
                scope.spawn(move || {
                    let mut state = init(w);
                    loop {
                        if cancel.is_some_and(|c| c.is_cancelled()) {
                            break;
                        }
                        let claimed = claim_job(queue, cvar, n_tasks, cancel, true);
                        let Some((i, round)) = claimed else { break };
                        let guard = InFlightGuard { queue, cvar };
                        let res = task(&mut state, i, round);
                        match res {
                            Err(e) if round < max_requeues => {
                                let mut q = queue.lock().expect("requeue lock");
                                q.retries.push((i, round + 1));
                                q.requeues += 1;
                                drop(q);
                                drop(e);
                            }
                            final_res => {
                                // Receiver outlives the scope; send only
                                // fails if the collector panicked first.
                                let _ = tx.send((i, final_res));
                            }
                        }
                        drop(guard); // decrement + notify after requeue push
                    }
                    state
                })
            })
            .collect();
        drop(tx);

        // Canonical-order reassembly, as in `run_ordered`.
        let mut pending: BTreeMap<usize, Result<T, E>> = BTreeMap::new();
        let mut emit_next = 0usize;
        for (i, out) in rx {
            pending.insert(i, out);
            while let Some(out) = pending.remove(&emit_next) {
                sink(emit_next, out);
                emit_next += 1;
            }
        }

        let states: Vec<S> = handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect();
        let q = match queue.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let stats = PoolStats {
            tasks_claimed: q.next as u64,
            requeues: q.requeues,
        };
        drop(q);
        (states, stats)
    })
}

/// [`run_ordered_fallible_with`] with a split **load / compute** pipeline:
/// each worker is a two-stage software pipeline that claims and `load`s
/// task `k+1` *before* computing task `k`, so on a multi-channel disk the
/// next partition's pages stream in on their own channel while the current
/// partition's join runs (double-buffered prefetch — the channel model
/// turns the overlap into hidden simulated time).
///
/// * `load(&mut state, task_idx, round)` performs the task's input I/O and
///   returns whatever the compute stage needs. It runs exactly once per
///   (task, round) — a requeued round re-loads, same as the non-pipelined
///   pool re-runs the whole task.
/// * `task(&mut state, task_idx, round, loaded)` consumes the loaded input.
///   Both stages of one task run on the same worker (same forked meter), in
///   order, so per-task I/O deltas stay exact.
///
/// Scheduling, requeueing, cancellation and output order are identical to
/// [`run_ordered_fallible_with`]: a prefetched task was *claimed*, so it is
/// computed even if the token trips before its turn, preserving the
/// clean-prefix property.
#[allow(clippy::too_many_arguments)] // mirrors run_ordered_fallible_with plus the load stage
pub fn run_ordered_prefetch_fallible_with<S, L, T, E, FInit, FLoad, FTask, FSink>(
    threads: usize,
    n_tasks: usize,
    max_requeues: u32,
    cancel: Option<&CancelToken>,
    init: FInit,
    load: FLoad,
    task: FTask,
    mut sink: FSink,
) -> (Vec<S>, PoolStats)
where
    S: Send,
    L: Send,
    T: Send,
    E: Send,
    FInit: Fn(usize) -> S + Sync,
    FLoad: Fn(&mut S, usize, u32) -> L + Sync,
    FTask: Fn(&mut S, usize, u32, L) -> Result<T, E> + Sync,
    FSink: FnMut(usize, Result<T, E>),
{
    let threads = threads.max(1).min(n_tasks.max(1));
    let queue = Mutex::new(Requeue {
        next: 0,
        retries: Vec::new(),
        in_flight: 0,
        requeues: 0,
    });
    let cvar = Condvar::new();
    let (tx, rx) = mpsc::channel::<(usize, Result<T, E>)>();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let tx = tx.clone();
                let queue = &queue;
                let cvar = &cvar;
                let init = &init;
                let load = &load;
                let task = &task;
                scope.spawn(move || {
                    let mut state = init(w);
                    // The prefetched job: claimed, loaded, awaiting compute.
                    // Its guard keeps `in_flight` honest if compute panics.
                    let mut held: Option<(usize, u32, L, InFlightGuard)> = None;
                    loop {
                        let (i, round, loaded, guard) = match held.take() {
                            Some(j) => j,
                            None => {
                                // A held job is computed even after a cancel
                                // trip (it was claimed); claim_job refuses
                                // new claims once tripped.
                                match claim_job(queue, cvar, n_tasks, cancel, true) {
                                    Some((i, round)) => {
                                        let guard = InFlightGuard { queue, cvar };
                                        let l = load(&mut state, i, round);
                                        (i, round, l, guard)
                                    }
                                    None => break,
                                }
                            }
                        };
                        // Double buffering: claim and load the next job
                        // before computing this one. Non-blocking — waiting
                        // here while holding unfinished work would deadlock
                        // the pool on itself.
                        if let Some((j, r)) = claim_job(queue, cvar, n_tasks, cancel, false) {
                            let g = InFlightGuard { queue, cvar };
                            let l = load(&mut state, j, r);
                            held = Some((j, r, l, g));
                        }
                        let res = task(&mut state, i, round, loaded);
                        match res {
                            Err(e) if round < max_requeues => {
                                let mut q = queue.lock().expect("requeue lock");
                                q.retries.push((i, round + 1));
                                q.requeues += 1;
                                drop(q);
                                drop(e);
                            }
                            final_res => {
                                let _ = tx.send((i, final_res));
                            }
                        }
                        drop(guard); // decrement + notify after requeue push
                    }
                    state
                })
            })
            .collect();
        drop(tx);

        // Canonical-order reassembly, as in `run_ordered`.
        let mut pending: BTreeMap<usize, Result<T, E>> = BTreeMap::new();
        let mut emit_next = 0usize;
        for (i, out) in rx {
            pending.insert(i, out);
            while let Some(out) = pending.remove(&emit_next) {
                sink(emit_next, out);
                emit_next += 1;
            }
        }

        let states: Vec<S> = handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect();
        let q = match queue.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let stats = PoolStats {
            tasks_claimed: q.next as u64,
            requeues: q.requeues,
        };
        drop(q);
        (states, stats)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_arrive_in_canonical_order() {
        for threads in [1, 2, 4, 8] {
            let mut seen = Vec::new();
            let states = run_ordered(
                threads,
                100,
                |_w| 0usize,
                |count, i| {
                    *count += 1;
                    // Uneven task costs to force out-of-order completion.
                    if i % 7 == 0 {
                        std::thread::yield_now();
                    }
                    i * 3
                },
                |i, out| seen.push((i, out)),
            );
            assert_eq!(seen, (0..100).map(|i| (i, i * 3)).collect::<Vec<_>>());
            assert_eq!(states.iter().sum::<usize>(), 100, "every task ran once");
        }
    }

    #[test]
    fn zero_tasks_is_fine() {
        let states = run_ordered(4, 0, |_| (), |_, _i: usize| (), |_, _| panic!("no tasks"));
        assert_eq!(states.len(), 1, "pool clamps to one idle worker");
    }

    #[test]
    fn worker_states_are_returned_per_worker() {
        let states = run_ordered(
            3,
            30,
            |w| (w, 0u32),
            |(_, n), _i| {
                *n += 1;
            },
            |_, _| {},
        );
        assert_eq!(states.len(), 3);
        for (w, (id, _)) in states.iter().enumerate() {
            assert_eq!(*id, w);
        }
        assert_eq!(states.iter().map(|(_, n)| n).sum::<u32>(), 30);
    }

    #[test]
    fn thread_knob_resolution() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(0), available_threads());
    }

    #[test]
    fn work_clock_is_monotonic_and_tracks_compute() {
        let clock = WorkClock::start();
        let t0 = clock.seconds();
        // Burn a little CPU so the clock has something to count.
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        assert!(acc != 1); // keep the loop alive
        let t1 = clock.seconds();
        assert!(t0 >= 0.0);
        assert!(t1 >= t0, "clock went backwards: {t0} -> {t1}");
    }

    #[test]
    fn sink_runs_on_the_calling_thread() {
        let caller = std::thread::current().id();
        run_ordered(
            4,
            16,
            |_| (),
            |_, i| i,
            |_, _| assert_eq!(std::thread::current().id(), caller),
        );
    }

    #[test]
    fn fallible_pool_requeues_up_to_cap() {
        use std::collections::HashMap;
        use std::sync::Mutex as StdMutex;
        // Task i fails its first `i % 3` runs; with cap 2 every task
        // eventually succeeds and reports the round it succeeded on.
        let attempts: StdMutex<HashMap<usize, u32>> = StdMutex::new(HashMap::new());
        for threads in [1, 4] {
            attempts.lock().unwrap().clear();
            let mut seen = Vec::new();
            let (_, pool) = run_ordered_fallible(
                threads,
                30,
                2,
                |_| (),
                |_, i, round| {
                    *attempts.lock().unwrap().entry(i).or_insert(0) += 1;
                    if round < (i % 3) as u32 {
                        Err(format!("task {i} round {round}"))
                    } else {
                        Ok((i, round))
                    }
                },
                |i, out| seen.push((i, out)),
            );
            assert_eq!(seen.len(), 30);
            for (idx, (i, out)) in seen.iter().enumerate() {
                assert_eq!(idx, *i, "canonical order");
                let (task, round) = out.as_ref().expect("all tasks recover within cap");
                assert_eq!(*task, idx);
                assert_eq!(*round, (idx % 3) as u32);
            }
            let att = attempts.lock().unwrap();
            for i in 0..30usize {
                assert_eq!(att[&i], (i % 3) as u32 + 1, "task {i} total runs");
            }
            // Scheduler-side counters agree with the task-side bookkeeping:
            // every task was claimed once fresh, and each requeue is one
            // failed round, i.e. sum over i of (i % 3).
            assert_eq!(pool.tasks_claimed, 30);
            assert_eq!(pool.requeues, (0..30).map(|i| (i % 3) as u64).sum::<u64>());
        }
    }

    #[test]
    fn fallible_pool_surfaces_final_error_after_cap() {
        for threads in [1, 3] {
            let mut results = Vec::new();
            let (_, pool) = run_ordered_fallible(
                threads,
                10,
                1,
                |_| 0u32,
                |runs, i, _round| {
                    *runs += 1;
                    if i == 4 {
                        Err("always fails")
                    } else {
                        Ok(i)
                    }
                },
                |i, out| results.push((i, out)),
            );
            assert_eq!(results.len(), 10);
            for (i, out) in &results {
                if *i == 4 {
                    assert_eq!(*out, Err("always fails"));
                } else {
                    assert_eq!(*out, Ok(*i));
                }
            }
            assert_eq!(pool.requeues, 1, "task 4 requeued once before the cap");
        }
    }

    #[test]
    fn fallible_pool_zero_tasks_is_fine() {
        let (states, pool) = run_ordered_fallible(
            4,
            0,
            3,
            |_| (),
            |_, _i, _r| Ok::<(), ()>(()),
            |_, _| panic!("no tasks"),
        );
        assert_eq!(states.len(), 1);
        assert_eq!(pool, PoolStats::default());
    }

    #[test]
    fn prefetch_pool_matches_fallible_pool_results() {
        use std::collections::HashMap;
        use std::sync::Mutex as StdMutex;
        // Same failure pattern as the plain fallible pool test; the
        // pipelined pool must deliver identical final results in identical
        // order, with load running exactly once per (task, round).
        for threads in [1, 2, 4] {
            let loads: StdMutex<HashMap<(usize, u32), u32>> = StdMutex::new(HashMap::new());
            let mut seen = Vec::new();
            let (_, pool) = run_ordered_prefetch_fallible_with(
                threads,
                30,
                2,
                None,
                |_| (),
                |_, i, round| {
                    *loads.lock().unwrap().entry((i, round)).or_insert(0) += 1;
                    i * 10 // the "loaded" payload
                },
                |_, i, round, loaded| {
                    assert_eq!(loaded, i * 10, "compute sees its own load");
                    if round < (i % 3) as u32 {
                        Err(format!("task {i} round {round}"))
                    } else {
                        Ok((i, round))
                    }
                },
                |i, out| seen.push((i, out)),
            );
            assert_eq!(seen.len(), 30);
            for (idx, (i, out)) in seen.iter().enumerate() {
                assert_eq!(idx, *i, "canonical order");
                let (task, round) = out.as_ref().expect("all tasks recover within cap");
                assert_eq!((*task, *round), (idx, (idx % 3) as u32));
            }
            let l = loads.lock().unwrap();
            for i in 0..30usize {
                for round in 0..=(i % 3) as u32 {
                    assert_eq!(l.get(&(i, round)), Some(&1), "task {i} round {round}");
                }
            }
            assert_eq!(pool.tasks_claimed, 30);
            assert_eq!(pool.requeues, (0..30).map(|i| (i % 3) as u64).sum::<u64>());
        }
    }

    #[test]
    fn prefetch_pool_surfaces_final_error_after_cap() {
        let mut results = Vec::new();
        let (_, pool) = run_ordered_prefetch_fallible_with(
            3,
            10,
            1,
            None,
            |_| (),
            |_, i, _r| i,
            |_, i, _round, loaded| {
                if loaded == 4 {
                    Err("always fails")
                } else {
                    Ok(i)
                }
            },
            |i, out| results.push((i, out)),
        );
        assert_eq!(results.len(), 10);
        for (i, out) in &results {
            if *i == 4 {
                assert_eq!(*out, Err("always fails"));
            } else {
                assert_eq!(*out, Ok(*i));
            }
        }
        assert_eq!(pool.requeues, 1);
    }

    #[test]
    fn cancelled_prefetch_pool_emits_a_clean_prefix() {
        for threads in [1, 4] {
            let token = CancelToken::new();
            let mut seen = Vec::new();
            run_ordered_prefetch_fallible_with(
                threads,
                100,
                0,
                Some(&token),
                |_| (),
                |_, i, _r| i,
                |_, i, _round, _loaded| {
                    if i == 10 {
                        token.cancel();
                    }
                    Ok::<usize, ()>(i)
                },
                |i, out| seen.push((i, out)),
            );
            assert!(seen.len() < 100, "pool ran to completion despite cancel");
            for (idx, (i, out)) in seen.iter().enumerate() {
                assert_eq!((idx, Ok(idx)), (*i, *out));
            }
            assert!(seen.len() >= 11, "claimed (and prefetched) tasks complete");
        }
    }

    #[test]
    fn prefetch_pool_zero_tasks_is_fine() {
        let (states, pool) = run_ordered_prefetch_fallible_with(
            4,
            0,
            3,
            None,
            |_| (),
            |_, i, _r| i,
            |_, _s, _i, _r| Ok::<(), ()>(()),
            |_, _| panic!("no tasks"),
        );
        assert_eq!(states.len(), 1);
        assert_eq!(pool, PoolStats::default());
    }

    #[test]
    fn cancel_token_latches_first_cause() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.check(), None);
        t.cancel_deadline();
        t.cancel(); // later trip must not overwrite the cause
        assert_eq!(t.cause(), Some(CancelCause::Deadline));
        assert_eq!(t.check(), Some(CancelCause::Deadline));
        let shared = t.clone();
        assert!(shared.is_cancelled(), "clones share the flag");
    }

    #[test]
    fn cancel_after_checks_trips_on_the_exact_check() {
        let t = CancelToken::new();
        t.cancel_after_checks(3);
        assert_eq!(t.check(), None);
        assert_eq!(t.check(), None);
        assert_eq!(t.check(), Some(CancelCause::Cancelled));
        assert_eq!(t.check(), Some(CancelCause::Cancelled));
    }

    #[test]
    fn cancelled_ordered_pool_emits_a_clean_prefix() {
        for threads in [1, 4] {
            let token = CancelToken::new();
            let mut seen = Vec::new();
            run_ordered_with(
                threads,
                100,
                Some(&token),
                |_| (),
                |_, i| {
                    if i == 10 {
                        token.cancel();
                    }
                    i
                },
                |i, out| seen.push((i, out)),
            );
            // Everything emitted is the contiguous prefix 0..k, and the trip
            // stopped the pool well short of the full run.
            assert!(seen.len() < 100, "pool ran to completion despite cancel");
            for (idx, (i, out)) in seen.iter().enumerate() {
                assert_eq!((idx, idx), (*i, *out));
            }
            assert!(seen.len() >= 11, "tasks claimed before the trip complete");
        }
    }

    #[test]
    fn cancelled_fallible_pool_stops_claiming_retries() {
        let token = CancelToken::new();
        let mut seen = Vec::new();
        let (_, pool) = run_ordered_fallible_with(
            2,
            50,
            3,
            Some(&token),
            |_| (),
            |_, i, round| {
                if i == 5 && round == 0 {
                    token.cancel();
                    return Err("tripped mid-task");
                }
                Ok::<usize, &str>(i)
            },
            |i, out| seen.push((i, out)),
        );
        assert!(seen.len() < 50);
        // Task 5's retry was queued but never claimed: nothing after the
        // first gap is emitted, and everything emitted is ordered.
        for w in seen.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        assert!(!seen.iter().any(|(i, _)| *i == 5));
        assert_eq!(pool.requeues, 1, "the tripped task was queued for retry");
        assert!(pool.tasks_claimed < 50);
    }
}
