//! Page-request retry policy with backoff in **simulated** disk-time units.
//!
//! Retries happen inside the simulation, so their cost must be expressed in
//! the same currency as everything else the cost model charges: page-transfer
//! units. A failed attempt re-pays the full `PT + n` of the request (the arm
//! repositioned and the transfer restarted), and the pause before the retry
//! adds `backoff` further units. Wall-clock time never enters — the suite's
//! results must be reproducible on any host at any load.

/// Retry schedule applied inside [`crate::SimDisk`] at the page-request
/// level: how many attempts a single `try_read`/`try_append` call makes and
/// how long (in simulated transfer units) it backs off between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per request, including the first (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry, in page-transfer units.
    pub base_backoff_units: u64,
    /// Cap on the exponential backoff, in page-transfer units.
    pub max_backoff_units: u64,
    /// Upper bound on deterministic jitter added to each backoff, in
    /// page-transfer units. The jitter value is a pure function of the
    /// request identity and the attempt index (no shared RNG state).
    pub jitter_units: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_units: 2,
            max_backoff_units: 64,
            jitter_units: 2,
        }
    }
}

impl RetryPolicy {
    /// No retries: every failure surfaces immediately.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_units: 0,
            max_backoff_units: 0,
            jitter_units: 0,
        }
    }

    /// A policy with `max_attempts` attempts and the default backoff curve.
    pub fn with_max_attempts(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            ..RetryPolicy::default()
        }
    }

    /// Whether a failure of `kind` is worth retrying at all. Persistent
    /// kinds (damaged sectors, ENOSPC) fail identically on every attempt, so
    /// the policy classifies them as give-up-immediately: no simulated
    /// backoff is charged and the error surfaces after one attempt,
    /// regardless of `max_attempts`.
    pub fn should_retry(&self, kind: crate::IoErrorKind) -> bool {
        self.max_attempts > 1 && kind.is_transient()
    }

    /// Backoff charged before retrying after the `failure_idx`-th failure of
    /// an identity (0-based, the identity's shared attempt counter — using
    /// the global index rather than the caller-local one keeps the total
    /// backoff deterministic when several handles contend for one identity).
    /// `salt` is the request's identity salt; jitter derives from it alone.
    pub fn backoff_units(&self, failure_idx: u32, salt: u64) -> u64 {
        let exp = self
            .base_backoff_units
            .saturating_mul(1u64 << failure_idx.min(20))
            .min(self.max_backoff_units);
        let jitter = if self.jitter_units == 0 {
            0
        } else {
            // SplitMix-style mix of (salt, failure_idx); no shared state.
            let mut z = salt ^ (failure_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) % (self.jitter_units + 1)
        };
        // Saturate: with an extreme policy (`max_backoff_units` near
        // `u64::MAX`) the capped exponential plus jitter would wrap, turning
        // a huge backoff charge into a tiny one (or a debug-build panic).
        exp.saturating_add(jitter)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_up_to_cap() {
        let p = RetryPolicy {
            jitter_units: 0,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_units(0, 99), 2);
        assert_eq!(p.backoff_units(1, 99), 4);
        assert_eq!(p.backoff_units(2, 99), 8);
        assert_eq!(p.backoff_units(10, 99), 64); // capped
        assert_eq!(p.backoff_units(63, 99), 64); // shift clamp, no overflow
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        for idx in 0..8 {
            for salt in [0u64, 1, 0xDEAD_BEEF] {
                let a = p.backoff_units(idx, salt);
                let b = p.backoff_units(idx, salt);
                assert_eq!(a, b);
                let base = RetryPolicy {
                    jitter_units: 0,
                    ..p
                }
                .backoff_units(idx, salt);
                assert!(a >= base && a <= base + p.jitter_units);
            }
        }
    }

    #[test]
    fn none_policy_never_retries() {
        let p = RetryPolicy::none();
        assert_eq!(p.max_attempts, 1);
    }

    #[test]
    fn persistent_kinds_are_never_retried() {
        use crate::IoErrorKind;
        let p = RetryPolicy::default();
        assert!(p.should_retry(IoErrorKind::TransientRead));
        assert!(p.should_retry(IoErrorKind::TornWrite));
        assert!(!p.should_retry(IoErrorKind::PersistentCorruption));
        assert!(!p.should_retry(IoErrorKind::DiskFull));
        assert!(!p.should_retry(IoErrorKind::FileDeleted));
        assert!(!RetryPolicy::none().should_retry(IoErrorKind::TransientRead));
    }

    #[test]
    fn extreme_policy_saturates_instead_of_overflowing() {
        // Regression: with an uncapped `max_backoff_units` the exponential
        // hits the cap exactly (`u64::MAX`) and the jitter add used to wrap
        // around to a near-zero charge (panicking in debug builds). Attempts
        // well past 32 must keep returning the saturated maximum.
        let p = RetryPolicy {
            max_attempts: u32::MAX,
            base_backoff_units: u64::MAX,
            max_backoff_units: u64::MAX,
            jitter_units: u64::MAX - 1,
        };
        for idx in [32u32, 33, 64, 1000, u32::MAX] {
            let units = p.backoff_units(idx, 0xDEAD_BEEF);
            assert!(
                units >= p.max_backoff_units.saturating_sub(p.jitter_units),
                "attempt {idx} wrapped: {units}"
            );
        }
        assert_eq!(p.backoff_units(40, 7), u64::MAX);
    }

    #[test]
    fn total_backoff_accumulation_saturates() {
        // The per-request accumulator in the disk charges
        // `saturating_add(backoff_units(..))`; summing many maxed-out
        // backoffs must pin at u64::MAX rather than wrap.
        let p = RetryPolicy {
            base_backoff_units: u64::MAX / 2,
            max_backoff_units: u64::MAX,
            jitter_units: 0,
            ..RetryPolicy::default()
        };
        let mut total = 0u64;
        for idx in 0..64 {
            total = total.saturating_add(p.backoff_units(idx, 1));
        }
        assert_eq!(total, u64::MAX);
    }
}
