use geom::Kpe;

use crate::{FileReader, FileWriter, FileId, IoError, SimDisk};

/// A fixed-length, byte-serialisable record — the unit of all intermediate
/// files (partitions, level files, runs, candidate sets).
pub trait FixedRecord: Copy {
    /// Encoded size in bytes.
    const SIZE: usize;
    /// Serialises into `buf[..Self::SIZE]`.
    fn encode(&self, buf: &mut [u8]);
    /// Inverse of [`FixedRecord::encode`].
    fn decode(buf: &[u8]) -> Self;
}

impl FixedRecord for Kpe {
    const SIZE: usize = Kpe::ENCODED_SIZE;

    fn encode(&self, buf: &mut [u8]) {
        Kpe::encode(self, buf);
    }

    fn decode(buf: &[u8]) -> Self {
        Kpe::decode(buf)
    }
}

/// A candidate/result tuple of the filter step: a pair of record
/// identifiers. This is what PBSM's original duplicate-removal phase sorts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IdPair {
    pub r: u64,
    pub s: u64,
}

impl FixedRecord for IdPair {
    const SIZE: usize = 16;

    fn encode(&self, buf: &mut [u8]) {
        buf[0..8].copy_from_slice(&self.r.to_le_bytes());
        buf[8..16].copy_from_slice(&self.s.to_le_bytes());
    }

    fn decode(buf: &[u8]) -> Self {
        // Invariant: callers hand `decode` exactly `SIZE` bytes, so the
        // 8-byte sub-slices always convert.
        IdPair {
            r: u64::from_le_bytes(buf[0..8].try_into().expect("8-byte slice")),
            s: u64::from_le_bytes(buf[8..16].try_into().expect("8-byte slice")),
        }
    }
}

/// Typed buffered writer of [`FixedRecord`]s.
pub struct RecordWriter<R: FixedRecord> {
    inner: FileWriter,
    scratch: Vec<u8>,
    count: u64,
    _marker: std::marker::PhantomData<R>,
}

impl<R: FixedRecord> RecordWriter<R> {
    pub fn new(disk: &SimDisk, file: FileId, buffer_pages: usize) -> Self {
        RecordWriter {
            inner: FileWriter::new(disk, file, buffer_pages),
            scratch: vec![0u8; R::SIZE],
            count: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// Creates the backing file too.
    pub fn create(disk: &SimDisk, buffer_pages: usize) -> Self {
        let f = disk.create();
        Self::new(disk, f, buffer_pages)
    }

    /// Creates the backing file pinned to data channel `channel` (see
    /// [`SimDisk::create_on`]); its requests overlap with other channels
    /// under the multi-channel clock instead of serializing.
    pub fn create_on(disk: &SimDisk, channel: u64, buffer_pages: usize) -> Self {
        let f = disk.create_on(channel);
        Self::new(disk, f, buffer_pages)
    }

    /// Buffers one record; an error surfaces only when a flush exhausts the
    /// disk's retry budget.
    pub fn try_push(&mut self, r: &R) -> Result<(), IoError> {
        r.encode(&mut self.scratch);
        self.inner.try_write(&self.scratch)?;
        self.count += 1;
        Ok(())
    }

    /// Infallible wrapper over [`RecordWriter::try_push`].
    pub fn push(&mut self, r: &R) {
        self.try_push(r)
            .unwrap_or_else(|e| panic!("unhandled simulated-disk error: {e}"))
    }

    /// Records pushed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn buffer_bytes(&self) -> usize {
        self.inner.buffer_bytes()
    }

    pub fn file(&self) -> FileId {
        self.inner.file()
    }

    pub fn try_finish(self) -> Result<FileId, IoError> {
        self.inner.try_finish()
    }

    /// Infallible wrapper over [`RecordWriter::try_finish`].
    pub fn finish(self) -> FileId {
        self.inner.finish()
    }
}

/// Typed buffered reader of [`FixedRecord`]s; an `Iterator<Item = R>`.
pub struct RecordReader<R: FixedRecord> {
    inner: FileReader,
    scratch: Vec<u8>,
    _marker: std::marker::PhantomData<R>,
}

impl<R: FixedRecord> RecordReader<R> {
    pub fn new(disk: &SimDisk, file: FileId, buffer_pages: usize) -> Self {
        RecordReader {
            inner: FileReader::new(disk, file, buffer_pages),
            scratch: vec![0u8; R::SIZE],
            _marker: std::marker::PhantomData,
        }
    }

    /// Reads records from the byte range `[start, end)` of `file`.
    pub fn with_range(disk: &SimDisk, file: FileId, start: u64, end: u64, buffer_pages: usize) -> Self {
        RecordReader {
            inner: FileReader::with_range(disk, file, start, end, buffer_pages),
            scratch: vec![0u8; R::SIZE],
            _marker: std::marker::PhantomData,
        }
    }

    /// Records still unread.
    pub fn remaining(&self) -> u64 {
        self.inner.remaining() / R::SIZE as u64
    }

    pub fn buffer_bytes(&self) -> usize {
        self.inner.buffer_bytes()
    }

    /// The next record, `Ok(None)` at end of stream, or a typed error when a
    /// refill exhausts the disk's retry budget (after which the reader
    /// should be discarded — recovery restarts from a fresh one).
    pub fn try_next(&mut self) -> Result<Option<R>, IoError> {
        // Split borrow: temporarily move scratch out to satisfy the borrow
        // checker without copying.
        let mut scratch = std::mem::take(&mut self.scratch);
        let got = self.inner.try_read_exact(&mut scratch);
        let out = match got {
            Ok(true) => Ok(Some(R::decode(&scratch))),
            Ok(false) => Ok(None),
            Err(e) => Err(e),
        };
        self.scratch = scratch;
        out
    }
}

impl<R: FixedRecord> Iterator for RecordReader<R> {
    type Item = R;

    /// Infallible wrapper over [`RecordReader::try_next`]; panics with the
    /// typed error's message if a refill cannot be satisfied.
    fn next(&mut self) -> Option<R> {
        self.try_next()
            .unwrap_or_else(|e| panic!("unhandled simulated-disk error: {e}"))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining() as usize;
        (n, Some(n))
    }
}

/// Convenience: writes all records into a fresh file with a large buffer.
pub fn write_all<R: FixedRecord>(disk: &SimDisk, records: &[R], buffer_pages: usize) -> FileId {
    let mut w = RecordWriter::create(disk, buffer_pages);
    for r in records {
        w.push(r);
    }
    w.finish()
}

/// Fallible [`write_all`].
pub fn try_write_all<R: FixedRecord>(
    disk: &SimDisk,
    records: &[R],
    buffer_pages: usize,
) -> Result<FileId, IoError> {
    let mut w = RecordWriter::create(disk, buffer_pages);
    for r in records {
        w.try_push(r)?;
    }
    w.try_finish()
}

/// Convenience: reads a whole record file into memory.
pub fn read_all<R: FixedRecord>(disk: &SimDisk, file: FileId, buffer_pages: usize) -> Vec<R> {
    RecordReader::new(disk, file, buffer_pages).collect()
}

/// Fallible [`read_all`].
pub fn try_read_all<R: FixedRecord>(
    disk: &SimDisk,
    file: FileId,
    buffer_pages: usize,
) -> Result<Vec<R>, IoError> {
    let mut reader = RecordReader::<R>::new(disk, file, buffer_pages);
    let mut out = Vec::with_capacity(reader.remaining() as usize);
    while let Some(r) = reader.try_next()? {
        out.push(r);
    }
    Ok(out)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::DiskModel;
    use geom::{Rect, RecordId};

    fn disk() -> SimDisk {
        SimDisk::new(DiskModel {
            page_size: 64,
            positioning_ratio: 2.0,
            transfer_secs_per_page: 1.0,
            cpu_slowdown: 1.0,
            channels: 1,
            degraded_channel: None,
        })
    }

    #[test]
    fn kpe_record_roundtrip_through_disk() {
        let d = disk();
        let kpes: Vec<Kpe> = (0..100)
            .map(|i| {
                let v = i as f64 / 200.0;
                Kpe::new(RecordId(i), Rect::new(v, v, v + 0.1, v + 0.2))
            })
            .collect();
        let f = write_all(&d, &kpes, 2);
        assert_eq!(d.len(f), (100 * Kpe::ENCODED_SIZE) as u64);
        let back: Vec<Kpe> = read_all(&d, f, 3);
        assert_eq!(back, kpes);
    }

    #[test]
    fn idpair_roundtrip_and_ordering() {
        let d = disk();
        let pairs = vec![
            IdPair { r: 3, s: 1 },
            IdPair { r: 1, s: 2 },
            IdPair { r: 1, s: 1 },
        ];
        let f = write_all(&d, &pairs, 1);
        let back: Vec<IdPair> = read_all(&d, f, 1);
        assert_eq!(back, pairs);
        let mut sorted = back.clone();
        sorted.sort();
        assert_eq!(
            sorted,
            vec![
                IdPair { r: 1, s: 1 },
                IdPair { r: 1, s: 2 },
                IdPair { r: 3, s: 1 }
            ]
        );
    }

    #[test]
    fn reader_size_hint_is_exact() {
        let d = disk();
        let pairs: Vec<IdPair> = (0..17).map(|i| IdPair { r: i, s: i }).collect();
        let f = write_all(&d, &pairs, 1);
        let mut r = RecordReader::<IdPair>::new(&d, f, 1);
        assert_eq!(r.size_hint(), (17, Some(17)));
        r.next();
        assert_eq!(r.size_hint(), (16, Some(16)));
        assert_eq!(r.count(), 16);
    }

    #[test]
    fn range_reader_reads_record_slice() {
        let d = disk();
        let pairs: Vec<IdPair> = (0..10).map(|i| IdPair { r: i, s: 0 }).collect();
        let f = write_all(&d, &pairs, 1);
        let sz = IdPair::SIZE as u64;
        let slice: Vec<IdPair> =
            RecordReader::<IdPair>::with_range(&d, f, 3 * sz, 7 * sz, 1).collect();
        assert_eq!(slice.iter().map(|p| p.r).collect::<Vec<_>>(), vec![3, 4, 5, 6]);
    }
}
