//! Out-of-core storage substrate with an explicit I/O cost model.
//!
//! The paper's I/O model (§2): data moves between main memory and secondary
//! storage in fixed-size pages; a request for `n` contiguous pages costs
//! `PT + n` *page-transfer units*, where `PT` is the ratio of disk-arm
//! positioning time to page-transfer time. The original experiments ran on a
//! 1999 SPARCstation with direct I/O so that the OS buffer cache could not
//! hide this cost. On modern hardware raw I/O would be essentially free and
//! the I/O-bound shapes of Figures 3a/5/11/14 would vanish, so this crate
//! *simulates* the disk: it stores file contents in memory, runs the real
//! out-of-core algorithms against real (simulated) files, counts every
//! request, and converts the counts into seconds with configurable 1999-era
//! disk constants.
//!
//! Components:
//!
//! * [`DiskModel`] — page size, `PT`, per-page transfer time,
//! * [`SimDisk`] — the disk: create/delete/append/read files, [`IoStats`],
//! * [`FileWriter`] / [`FileReader`] — buffered sequential byte streams with
//!   multi-page requests (larger buffers ⇒ fewer positioning penalties),
//! * [`RecordWriter`] / [`RecordReader`] — typed fixed-length record streams
//!   ([`FixedRecord`]),
//! * [`external_sort`] — memory-budgeted run formation + multiway merge,
//!   the building block of PBSM's original duplicate-removal phase and of
//!   S³J's level-file sorting phase.

//!
//! Failure model (PR 2): [`SimDisk::with_faults`] attaches a seeded
//! [`FaultPlan`] — transient read/write errors, torn writes, bit-rot caught
//! by per-page checksums — and a [`RetryPolicy`] that retries failed page
//! requests with exponential backoff *in simulated disk-time units*, every
//! attempt charged to the cost model. Fallible `try_*` twins of every I/O
//! entry point return the typed [`IoError`]; the historic infallible names
//! remain as thin wrappers (they still succeed under recoverable plans,
//! because retries happen at the page-request level underneath them).
//!
//! Durability model (PR 4): the [`mod@manifest`] layer adds checkpointed
//! runs — an atomic-publish [`Manifest`], an append-only per-partition
//! completion journal with checksummed records, and a recovery scan
//! ([`recover`]) that truncates torn tails and sweeps orphan files — plus
//! [`RunControl`] for cooperative cancellation, simulated-time deadlines and
//! crash-point injection ([`CrashPoint`]).

mod arbiter;
mod disk;
mod fault;
mod file;
mod manifest;
pub mod metrics;
mod pool;
mod record;
mod sort;
mod retry;

pub use arbiter::{AdmissionError, ArbiterSnapshot, MemoryArbiter, MemoryLease};
pub use disk::{DiskModel, FileId, IoStats, SimDisk};
// Re-exported so downstream crates can build a `RunControl` without a direct
// `parallel` dependency.
pub use parallel::{CancelCause, CancelToken};
pub use fault::{CrashPoint, FaultPlan, IoError, IoErrorKind, IoOp, JoinError, JoinErrorKind};
pub use manifest::{
    recover, JournalEntry, Manifest, Recovered, RunCheckpoint, RunControl, RunPhase,
};
pub use metrics::{
    MetricsReport, PhaseMetric, ReconcileError, Recorder, RunCounters, TraceEvent, TraceSpan,
    METRICS_SCHEMA_VERSION,
};
pub use file::{FileReader, FileWriter};
pub use pool::BufferPool;
pub use record::{
    read_all, try_read_all, try_write_all, write_all, FixedRecord, IdPair, RecordReader,
    RecordWriter,
};
pub use retry::RetryPolicy;
pub use sort::{
    external_sort, external_sort_by, external_sort_slice, try_external_sort,
    try_external_sort_by, try_external_sort_slice, SortStats,
};
