use std::sync::Arc;

use parking_lot::Mutex;

/// Disk parameters of the cost model.
///
/// A request for `n` contiguous pages costs `positioning_ratio + n`
/// page-transfer units (the paper's `PT + n`), and one unit corresponds to
/// `transfer_secs_per_page` seconds of simulated disk time.
///
/// The defaults emulate the paper's testbed (1999 2 GB Seagate behind direct
/// I/O): 8 KiB pages, ~1.6 ms transfer per page (≈5 MB/s sustained) and an
/// average positioning time of ~10 ms, i.e. `PT ≈ 6`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskModel {
    /// Page size in bytes.
    pub page_size: usize,
    /// `PT`: positioning time expressed in page-transfer units.
    pub positioning_ratio: f64,
    /// Seconds of simulated time per page-transfer unit.
    pub transfer_secs_per_page: f64,
    /// Factor by which measured CPU seconds are stretched when combined with
    /// the simulated disk time. The paper's testbed is a ~75 MHz
    /// SuperSPARC-II; a modern core is two to three orders of magnitude
    /// faster, and without this factor every CPU-side effect the paper
    /// reports (trie vs list sweeps, replication CPU savings) would vanish
    /// behind 1999-era disk time. Set to 1.0 to disable.
    pub cpu_slowdown: f64,
}

impl Default for DiskModel {
    fn default() -> Self {
        DiskModel {
            page_size: 8 * 1024,
            positioning_ratio: 6.0,
            transfer_secs_per_page: 0.0016,
            cpu_slowdown: 250.0,
        }
    }
}

impl DiskModel {
    /// Total cost of the recorded requests in page-transfer units.
    pub fn units(&self, s: &IoStats) -> f64 {
        self.positioning_ratio * (s.read_requests + s.write_requests) as f64
            + (s.pages_read + s.pages_written) as f64
    }

    /// Total simulated disk time in seconds.
    pub fn seconds(&self, s: &IoStats) -> f64 {
        self.units(s) * self.transfer_secs_per_page
    }

    /// Measured CPU seconds stretched to the emulated machine.
    pub fn scaled_cpu(&self, raw_secs: f64) -> f64 {
        raw_secs * self.cpu_slowdown
    }
}

/// Cumulative I/O counters of a [`SimDisk`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    pub read_requests: u64,
    pub write_requests: u64,
    pub pages_read: u64,
    pub pages_written: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
}

impl IoStats {
    /// Counters accumulated since the snapshot `since`.
    pub fn delta(&self, since: &IoStats) -> IoStats {
        IoStats {
            read_requests: self.read_requests - since.read_requests,
            write_requests: self.write_requests - since.write_requests,
            pages_read: self.pages_read - since.pages_read,
            pages_written: self.pages_written - since.pages_written,
            bytes_read: self.bytes_read - since.bytes_read,
            bytes_written: self.bytes_written - since.bytes_written,
        }
    }

    /// Element-wise sum.
    pub fn plus(&self, other: &IoStats) -> IoStats {
        IoStats {
            read_requests: self.read_requests + other.read_requests,
            write_requests: self.write_requests + other.write_requests,
            pages_read: self.pages_read + other.pages_read,
            pages_written: self.pages_written + other.pages_written,
            bytes_read: self.bytes_read + other.bytes_read,
            bytes_written: self.bytes_written + other.bytes_written,
        }
    }

    /// In-place element-wise sum: folds another counter (e.g. a worker's
    /// forked meter, see [`SimDisk::fork_counters`]) into this one.
    pub fn merge(&mut self, other: &IoStats) {
        *self = self.plus(other);
    }
}

/// Handle to a file on a [`SimDisk`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FileId(u32);

/// The simulated disk. Cheap to clone (shared handle): clones share both the
/// file store and the I/O meter. [`SimDisk::fork_counters`] instead shares
/// only the file store and gives the fork a fresh meter — parallel join
/// workers each run on a fork, so their per-worker counters can be merged
/// back deterministically (via [`SimDisk::add_stats`]) regardless of how the
/// scheduler interleaved their requests. Lock contention is irrelevant —
/// the simulation itself is not a benchmark target, the *counters* are.
#[derive(Clone)]
pub struct SimDisk {
    files: Arc<Mutex<Vec<Option<Vec<u8>>>>>,
    stats: Arc<Mutex<IoStats>>,
    model: DiskModel,
}

impl SimDisk {
    pub fn new(model: DiskModel) -> Self {
        SimDisk {
            files: Arc::new(Mutex::new(Vec::new())),
            stats: Arc::new(Mutex::new(IoStats::default())),
            model,
        }
    }

    /// A handle onto the **same** file store with a **fresh, private** I/O
    /// meter. Work done through the fork is invisible to this handle's
    /// counters until the caller folds the fork's [`SimDisk::stats`] back in
    /// with [`SimDisk::add_stats`] — the per-worker counter protocol of the
    /// parallel join executors.
    pub fn fork_counters(&self) -> SimDisk {
        SimDisk {
            files: Arc::clone(&self.files),
            stats: Arc::new(Mutex::new(IoStats::default())),
            model: self.model,
        }
    }

    /// Folds externally accumulated counters (a fork's meter) into this
    /// handle's meter.
    pub fn add_stats(&self, s: &IoStats) {
        self.stats.lock().merge(s);
    }

    pub fn with_default_model() -> Self {
        Self::new(DiskModel::default())
    }

    pub fn model(&self) -> DiskModel {
        self.model
    }

    /// Creates an empty file.
    pub fn create(&self) -> FileId {
        let mut g = self.files.lock();
        g.push(Some(Vec::new()));
        FileId((g.len() - 1) as u32)
    }

    /// Deletes a file, releasing its space. Idempotent.
    pub fn delete(&self, f: FileId) {
        let mut g = self.files.lock();
        if let Some(slot) = g.get_mut(f.0 as usize) {
            *slot = None;
        }
    }

    /// Length of a file in bytes.
    pub fn len(&self, f: FileId) -> u64 {
        let g = self.files.lock();
        g[f.0 as usize].as_ref().expect("file was deleted").len() as u64
    }

    /// `true` iff the file holds no bytes.
    pub fn is_empty(&self, f: FileId) -> bool {
        self.len(f) == 0
    }

    /// Appends `data` as **one** request: cost `PT + ceil(len / page_size)`.
    ///
    /// Writers should batch bytes into multi-page buffers before calling this
    /// — that is exactly the contiguous-write optimisation the cost model
    /// rewards.
    pub fn append(&self, f: FileId, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        let pages = data.len().div_ceil(self.model.page_size) as u64;
        {
            let mut s = self.stats.lock();
            s.write_requests += 1;
            s.pages_written += pages;
            s.bytes_written += data.len() as u64;
        }
        self.files.lock()[f.0 as usize]
            .as_mut()
            .expect("file was deleted")
            .extend_from_slice(data);
    }

    /// Reads `out.len()` bytes starting at byte `offset` as **one** request:
    /// cost `PT + (number of pages the byte range touches)`. Panics if the
    /// range extends past the end of the file.
    pub fn read(&self, f: FileId, offset: u64, out: &mut [u8]) {
        if out.is_empty() {
            return;
        }
        let ps = self.model.page_size as u64;
        let first_page = offset / ps;
        let last_page = (offset + out.len() as u64 - 1) / ps;
        let pages = last_page - first_page + 1;
        {
            let mut s = self.stats.lock();
            s.read_requests += 1;
            s.pages_read += pages;
            s.bytes_read += out.len() as u64;
        }
        let g = self.files.lock();
        let data = g[f.0 as usize].as_ref().expect("file was deleted");
        let start = offset as usize;
        out.copy_from_slice(&data[start..start + out.len()]);
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> IoStats {
        *self.stats.lock()
    }

    /// Resets all counters to zero (file contents are kept).
    pub fn reset_stats(&self) {
        *self.stats.lock() = IoStats::default();
    }

    /// Simulated disk seconds for counters accumulated so far.
    pub fn io_seconds(&self) -> f64 {
        self.model.seconds(&self.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_disk() -> SimDisk {
        SimDisk::new(DiskModel {
            page_size: 16,
            positioning_ratio: 10.0,
            transfer_secs_per_page: 1.0,
            cpu_slowdown: 1.0,
        })
    }

    #[test]
    fn append_and_read_roundtrip() {
        let d = small_disk();
        let f = d.create();
        d.append(f, b"hello world, this spans pages!");
        assert_eq!(d.len(f), 30);
        let mut buf = vec![0u8; 11];
        d.read(f, 6, &mut buf);
        assert_eq!(&buf, b"world, this");
    }

    #[test]
    fn cost_model_pt_plus_n() {
        let d = small_disk();
        let f = d.create();
        d.append(f, &[0u8; 40]); // 3 pages, 1 request
        let s = d.stats();
        assert_eq!(s.write_requests, 1);
        assert_eq!(s.pages_written, 3);
        // units = PT*1 + 3 = 13
        assert!((d.model().units(&s) - 13.0).abs() < 1e-12);
        assert!((d.io_seconds() - 13.0).abs() < 1e-12);
    }

    #[test]
    fn read_counts_pages_touched_not_bytes() {
        let d = small_disk();
        let f = d.create();
        d.append(f, &[7u8; 64]);
        d.reset_stats();
        // 2 bytes straddling a page boundary touch 2 pages.
        let mut b = [0u8; 2];
        d.read(f, 15, &mut b);
        let s = d.stats();
        assert_eq!(s.read_requests, 1);
        assert_eq!(s.pages_read, 2);
        // Within one page: 1 page.
        d.read(f, 0, &mut b);
        assert_eq!(d.stats().pages_read, 3);
    }

    #[test]
    fn one_big_request_cheaper_than_many_small() {
        let d = small_disk();
        let f1 = d.create();
        d.append(f1, &[0u8; 160]); // 10 pages in one request: PT + 10 = 20
        let one = d.model().units(&d.stats());
        d.reset_stats();
        let f2 = d.create();
        for _ in 0..10 {
            d.append(f2, &[0u8; 16]); // 10 requests: 10*(PT + 1) = 110
        }
        let many = d.model().units(&d.stats());
        assert!(one < many);
        assert!((many - 110.0).abs() < 1e-12);
    }

    #[test]
    fn delete_then_recreate_is_independent() {
        let d = small_disk();
        let f = d.create();
        d.append(f, b"abc");
        d.delete(f);
        let g = d.create();
        assert_ne!(f, g);
        assert_eq!(d.len(g), 0);
    }

    #[test]
    fn stats_delta_and_plus() {
        let d = small_disk();
        let f = d.create();
        d.append(f, &[0u8; 16]);
        let snap = d.stats();
        d.append(f, &[0u8; 32]);
        let delta = d.stats().delta(&snap);
        assert_eq!(delta.write_requests, 1);
        assert_eq!(delta.pages_written, 2);
        let sum = snap.plus(&delta);
        assert_eq!(sum, d.stats());
    }

    #[test]
    fn fork_shares_files_but_not_counters() {
        let d = small_disk();
        let f = d.create();
        d.append(f, &[0u8; 16]);
        let fork = d.fork_counters();
        // Fork starts with a clean meter but sees the shared file.
        assert_eq!(fork.stats(), IoStats::default());
        assert_eq!(fork.len(f), 16);
        // Work through the fork is metered on the fork only...
        fork.append(f, &[0u8; 32]);
        assert_eq!(fork.stats().pages_written, 2);
        assert_eq!(d.stats().pages_written, 1);
        // ...but the bytes land in the shared store.
        assert_eq!(d.len(f), 48);
        // Merging the fork back restores the single-meter view.
        d.add_stats(&fork.stats());
        assert_eq!(d.stats().pages_written, 3);
        assert_eq!(d.stats().write_requests, 2);
        // Deletion through either handle is visible to both.
        let g = fork.create();
        d.delete(g);
        assert_eq!(fork.stats().read_requests, 0);
    }

    #[test]
    fn empty_operations_are_free() {
        let d = small_disk();
        let f = d.create();
        d.append(f, &[]);
        let mut empty: [u8; 0] = [];
        d.read(f, 0, &mut empty);
        assert_eq!(d.stats(), IoStats::default());
    }
}

#[cfg(test)]
mod failure_tests {
    use super::*;

    fn disk() -> SimDisk {
        SimDisk::new(DiskModel {
            page_size: 16,
            positioning_ratio: 1.0,
            transfer_secs_per_page: 1.0,
            cpu_slowdown: 1.0,
        })
    }

    #[test]
    #[should_panic]
    fn read_past_end_of_file_panics() {
        let d = disk();
        let f = d.create();
        d.append(f, &[1u8; 8]);
        let mut out = [0u8; 16];
        d.read(f, 0, &mut out); // only 8 bytes exist
    }

    #[test]
    #[should_panic(expected = "file was deleted")]
    fn read_from_deleted_file_panics() {
        let d = disk();
        let f = d.create();
        d.append(f, &[1u8; 16]);
        d.delete(f);
        let mut out = [0u8; 4];
        d.read(f, 0, &mut out);
    }

    #[test]
    #[should_panic(expected = "file was deleted")]
    fn append_to_deleted_file_panics() {
        let d = disk();
        let f = d.create();
        d.delete(f);
        d.append(f, &[0u8; 4]);
    }

    #[test]
    fn double_delete_is_idempotent() {
        let d = disk();
        let f = d.create();
        d.delete(f);
        d.delete(f); // no panic
    }
}
