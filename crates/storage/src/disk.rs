use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::fault::{FaultPlan, IoError, IoErrorKind, IoOp, PERMANENT};
use crate::retry::RetryPolicy;

/// Disk parameters of the cost model.
///
/// A request for `n` contiguous pages costs `positioning_ratio + n`
/// page-transfer units (the paper's `PT + n`), and one unit corresponds to
/// `transfer_secs_per_page` seconds of simulated disk time.
///
/// The defaults emulate the paper's testbed (1999 2 GB Seagate behind direct
/// I/O): 8 KiB pages, ~1.6 ms transfer per page (≈5 MB/s sustained) and an
/// average positioning time of ~10 ms, i.e. `PT ≈ 6`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskModel {
    /// Page size in bytes.
    pub page_size: usize,
    /// `PT`: positioning time expressed in page-transfer units.
    pub positioning_ratio: f64,
    /// Seconds of simulated time per page-transfer unit.
    pub transfer_secs_per_page: f64,
    /// Factor by which measured CPU seconds are stretched when combined with
    /// the simulated disk time. The paper's testbed is a ~75 MHz
    /// SuperSPARC-II; a modern core is two to three orders of magnitude
    /// faster, and without this factor every CPU-side effect the paper
    /// reports (trie vs list sweeps, replication CPU savings) would vanish
    /// behind 1999-era disk time. Set to 1.0 to disable.
    pub cpu_slowdown: f64,
    /// Number of independent I/O channels (`D`). Files carry an optional
    /// channel tag set at creation; a tagged file's requests are metered on
    /// data channel `tag mod D`, untagged files (manifest, journal, results)
    /// on the serial *shared* lane. Channels advance the simulated clock
    /// independently, so a run's I/O time is the max over the data channels
    /// plus the shared lane — with `channels = 1` this degenerates to the
    /// historic single-meter model, bit for bit.
    pub channels: usize,
    /// Degraded data channel `(index, factor)`: every page-transfer unit on
    /// that channel takes `factor` (≥ 1) times as long, stressing deadlines
    /// without changing a single counter. Stamped from
    /// [`FaultPlan::degraded_channel`] by [`SimDisk::with_faults`]; `None`
    /// (the default) keeps the clock bit-identical to the healthy model.
    pub degraded_channel: Option<(usize, f64)>,
}

impl Default for DiskModel {
    fn default() -> Self {
        DiskModel {
            page_size: 8 * 1024,
            positioning_ratio: 6.0,
            transfer_secs_per_page: 0.0016,
            cpu_slowdown: 250.0,
            channels: 1,
            degraded_channel: None,
        }
    }
}

impl DiskModel {
    /// Total cost of the recorded requests in page-transfer units. Every
    /// attempt of a retried request pays the full `PT + n` (the arm
    /// repositions and the transfer restarts), and backoff pauses are
    /// charged on top in the same units.
    pub fn units(&self, s: &IoStats) -> f64 {
        self.positioning_ratio * (s.read_requests + s.write_requests) as f64
            + (s.pages_read + s.pages_written) as f64
            + s.backoff_units as f64
    }

    /// Total simulated disk time in seconds.
    pub fn seconds(&self, s: &IoStats) -> f64 {
        self.units(s) * self.transfer_secs_per_page
    }

    /// Measured CPU seconds stretched to the emulated machine.
    pub fn scaled_cpu(&self, raw_secs: f64) -> f64 {
        raw_secs * self.cpu_slowdown
    }

    /// The number of data channels, clamped to at least one.
    pub fn data_channels(&self) -> usize {
        self.channels.max(1)
    }

    /// Simulated I/O time with channel parallelism: the shared lane
    /// serializes, the data channels overlap, so the wall clock is
    /// `shared + max over channels`.
    ///
    /// Computed in page-transfer *units* first and converted to seconds with
    /// a single multiply: every counter is an exact integer-valued `f64`, so
    /// `units` sums are exact and a one-channel decomposition reproduces the
    /// serial [`DiskModel::seconds`] of the summed counters bit for bit
    /// (per-bucket `seconds` would not — float distributivity fails).
    pub fn parallel_io_seconds(&self, shared: &IoStats, data: &[IoStats]) -> f64 {
        (self.units(shared) + self.max_channel_units(data)) * self.transfer_secs_per_page
    }

    /// Simulated seconds hidden by double-buffered prefetch: with more than
    /// one channel, loading partition `k+1` overlaps the join computation on
    /// partition `k`, so up to `min(scaled CPU, busiest data channel)` of
    /// I/O time disappears behind the CPU. A single channel has no idle lane
    /// to prefetch on, and hides nothing.
    pub fn prefetch_hidden_seconds(&self, scaled_cpu_secs: f64, data: &[IoStats]) -> f64 {
        if self.data_channels() <= 1 {
            return 0.0;
        }
        let busiest = self.max_channel_units(data) * self.transfer_secs_per_page;
        scaled_cpu_secs.min(busiest)
    }

    /// Wall-clock simulated seconds of a run under the channel model:
    /// `scaled_cpu + parallel_io − prefetch_hidden`. With `channels = 1`
    /// this is exactly the historic `scaled_cpu + seconds(io_total)`.
    pub fn total_seconds(&self, scaled_cpu_secs: f64, shared: &IoStats, data: &[IoStats]) -> f64 {
        scaled_cpu_secs + self.parallel_io_seconds(shared, data)
            - self.prefetch_hidden_seconds(scaled_cpu_secs, data)
    }

    /// Transfer-time multiplier of data channel `c`: 1.0 for healthy
    /// channels, the degradation factor for the one the plan degraded.
    /// Multiplying by the literal 1.0 is exact, so a `None` spec keeps every
    /// derived time bit-identical to the healthy model.
    pub fn channel_factor(&self, c: usize) -> f64 {
        match self.degraded_channel {
            Some((dc, f)) if dc == c => f.max(1.0),
            _ => 1.0,
        }
    }

    fn max_channel_units(&self, data: &[IoStats]) -> f64 {
        data.iter()
            .enumerate()
            .map(|(i, c)| self.units(c) * self.channel_factor(i))
            .fold(0.0, f64::max)
    }
}

/// Cumulative I/O counters of a [`SimDisk`].
///
/// Retry accounting: `read_requests`/`write_requests` (and the page/byte
/// counters) include **every** attempt, failed ones too. `faults_injected`
/// counts injected failures, `read_retries`/`write_retries` count the
/// re-issued attempts those failures triggered, and `backoff_units` is the
/// total simulated backoff charged between attempts. A fault-free run keeps
/// all four at zero, so equality comparisons against historical counters
/// still hold.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    pub read_requests: u64,
    pub write_requests: u64,
    pub pages_read: u64,
    pub pages_written: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    /// Injected failures observed (reads and writes).
    pub faults_injected: u64,
    /// Read attempts re-issued after a failure.
    pub read_retries: u64,
    /// Write attempts re-issued after a failure.
    pub write_retries: u64,
    /// Simulated backoff charged between attempts, in page-transfer units.
    pub backoff_units: u64,
}

impl IoStats {
    /// Counters accumulated since the snapshot `since`.
    pub fn delta(&self, since: &IoStats) -> IoStats {
        IoStats {
            read_requests: self.read_requests - since.read_requests,
            write_requests: self.write_requests - since.write_requests,
            pages_read: self.pages_read - since.pages_read,
            pages_written: self.pages_written - since.pages_written,
            bytes_read: self.bytes_read - since.bytes_read,
            bytes_written: self.bytes_written - since.bytes_written,
            faults_injected: self.faults_injected - since.faults_injected,
            read_retries: self.read_retries - since.read_retries,
            write_retries: self.write_retries - since.write_retries,
            backoff_units: self.backoff_units - since.backoff_units,
        }
    }

    /// Element-wise sum.
    pub fn plus(&self, other: &IoStats) -> IoStats {
        IoStats {
            read_requests: self.read_requests + other.read_requests,
            write_requests: self.write_requests + other.write_requests,
            pages_read: self.pages_read + other.pages_read,
            pages_written: self.pages_written + other.pages_written,
            bytes_read: self.bytes_read + other.bytes_read,
            bytes_written: self.bytes_written + other.bytes_written,
            faults_injected: self.faults_injected + other.faults_injected,
            read_retries: self.read_retries + other.read_retries,
            write_retries: self.write_retries + other.write_retries,
            backoff_units: self.backoff_units + other.backoff_units,
        }
    }

    /// In-place element-wise sum: folds another counter (e.g. a worker's
    /// forked meter, see [`SimDisk::fork_counters`]) into this one.
    pub fn merge(&mut self, other: &IoStats) {
        *self = self.plus(other);
    }
}

/// Handle to a file on a [`SimDisk`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FileId(u32);

impl FileId {
    /// Placeholder id for errors that do not refer to a concrete file
    /// (see [`crate::IoError::unsupported`]).
    pub(crate) fn sentinel() -> FileId {
        FileId(u32::MAX)
    }

    /// The raw slot index, for serializing a file reference into a durable
    /// manifest. Ids are stable for the lifetime of the disk (deletion
    /// leaves a hole; slots are never reused).
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Reconstructs a handle from a serialized [`FileId::raw`] value. The
    /// id is *not* validated here — a stale id surfaces as a typed
    /// [`IoErrorKind::FileDeleted`] on first use, exactly like a deleted
    /// file would.
    pub fn from_raw(raw: u32) -> FileId {
        FileId(raw)
    }
}

/// FNV-1a 64-bit: the per-page checksum of the simulated page format, and
/// the record checksum of the manifest/journal layer (`crate::manifest`).
#[inline]
pub(crate) fn page_checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A file's bytes plus the per-page checksums the simulated page format
/// carries. Checksums are recomputed for the pages an append touches and
/// verified for the pages a read touches — injected bit-rot is *detected* by
/// this machinery, not merely reported.
struct StoredFile {
    data: Vec<u8>,
    sums: Vec<u64>,
    /// I/O channel tag: `None` routes requests to the serial shared lane,
    /// `Some(t)` to data channel `t mod D`. Set at creation, immutable — a
    /// property of the file's placement, independent of the channel count,
    /// so changing `D` merely rebins the same requests.
    channel: Option<u64>,
    /// Spare-sector file: exempt from the plan's persistent bad-page map,
    /// the simulated analogue of a drive remapping a damaged sector onto a
    /// spare. Quarantine-recompute paths write rebuilt data through spares
    /// so the replacement cannot land on the same bad sector.
    spare: bool,
}

impl StoredFile {
    fn new(channel: Option<u64>) -> Self {
        StoredFile {
            data: Vec::new(),
            sums: Vec::new(),
            channel,
            spare: false,
        }
    }

    fn append(&mut self, bytes: &[u8], page_size: usize) {
        let first_touched = self.data.len() / page_size;
        self.data.extend_from_slice(bytes);
        let n_pages = self.data.len().div_ceil(page_size);
        self.sums.resize(n_pages, 0);
        for p in first_touched..n_pages {
            let start = p * page_size;
            let end = ((p + 1) * page_size).min(self.data.len());
            self.sums[p] = page_checksum(&self.data[start..end]);
        }
    }

    /// Verifies the checksums of pages `[first, last]`. `corrupt_page`
    /// simulates bit-rot on that page: its on-the-wire checksum is perturbed
    /// before the compare, so detection flows through the same path a real
    /// mismatch would.
    fn verify(&self, first: u64, last: u64, page_size: usize, corrupt_page: Option<u64>) -> Result<(), u64> {
        for p in first..=last {
            let start = p as usize * page_size;
            let end = ((p as usize + 1) * page_size).min(self.data.len());
            let mut sum = page_checksum(&self.data[start..end]);
            if corrupt_page == Some(p) {
                sum ^= 0x1; // a single flipped bit on the wire
            }
            if sum != self.sums[p as usize] {
                return Err(p);
            }
        }
        Ok(())
    }
}

/// Shared fault configuration + per-identity attempt counters. One instance
/// is shared by a disk, all its [`SimDisk::fork_counters`] forks and
/// [`SimDisk::scratch_disk`] siblings, so concurrent handles draw failures
/// from a single deterministic pool (see `fault.rs` module docs).
struct FaultState {
    plan: Option<FaultPlan>,
    policy: RetryPolicy,
    attempts: Mutex<HashMap<(u8, u64, u64), u32>>,
}

impl FaultState {
    fn clean() -> Self {
        FaultState {
            plan: None,
            policy: RetryPolicy::default(),
            attempts: Mutex::new(HashMap::new()),
        }
    }

    /// Consumes one attempt of `(op, offset, len)`. Returns the injected
    /// failure, if this attempt is fated to fail: `(kind, global_attempt
    /// index, identity salt)`.
    fn next_fault(&self, op: IoOp, offset: u64, len: u64) -> Option<(IoErrorKind, u32, u64)> {
        let plan = self.plan.as_ref()?;
        let (fail_count, kind) = plan.fate(op, offset, len)?;
        let tag = match op {
            IoOp::Read => 0u8,
            IoOp::Write => 1u8,
        };
        let mut g = self.attempts.lock();
        let e = g.entry((tag, offset, len)).or_insert(0);
        let idx = *e;
        if fail_count != PERMANENT {
            // Permanent identities fail forever; no need to advance (and
            // saturating keeps the counter meaningful either way).
            *e = e.saturating_add(1);
        }
        drop(g);
        if idx < fail_count {
            Some((kind, idx, plan.identity_salt(op, offset, len)))
        } else {
            None
        }
    }
}

/// The simulated disk. Cheap to clone (shared handle): clones share both the
/// file store and the I/O meter. [`SimDisk::fork_counters`] instead shares
/// only the file store and gives the fork a fresh meter — parallel join
/// workers each run on a fork, so their per-worker counters can be merged
/// back deterministically (via [`SimDisk::add_stats`]) regardless of how the
/// scheduler interleaved their requests. Lock contention is irrelevant —
/// the simulation itself is not a benchmark target, the *counters* are.
///
/// Fault injection: [`SimDisk::with_faults`] attaches a seeded [`FaultPlan`]
/// and a [`RetryPolicy`]. The fallible entry points ([`SimDisk::try_read`],
/// [`SimDisk::try_append`], [`SimDisk::try_len`]) retry injected failures
/// per the policy, charging every attempt plus backoff to the meter, and
/// surface a typed [`IoError`] only once the budget is exhausted. The
/// infallible `read`/`append`/`len` wrappers keep their historic signatures:
/// they still succeed under recoverable plans (retries happen inside) and
/// panic with the typed error's message otherwise — legacy callers that
/// never attach a plan are unaffected.
#[derive(Clone)]
pub struct SimDisk {
    files: Arc<Mutex<Vec<Option<StoredFile>>>>,
    /// Per-bucket meter: index 0 is the serial shared lane, indexes
    /// `1..=D` the data channels. [`SimDisk::stats`] sums the buckets, so
    /// single-meter callers observe the historic counters unchanged.
    stats: Arc<Mutex<Vec<IoStats>>>,
    model: DiskModel,
    faults: Arc<FaultState>,
}

impl SimDisk {
    pub fn new(model: DiskModel) -> Self {
        SimDisk {
            files: Arc::new(Mutex::new(Vec::new())),
            stats: Arc::new(Mutex::new(vec![
                IoStats::default();
                1 + model.data_channels()
            ])),
            model,
            faults: Arc::new(FaultState::clean()),
        }
    }

    /// Attaches a fault plan and retry policy. Call before handing out forks
    /// or siblings — fault state is shared through them. A plan with a
    /// degraded channel stamps the slowdown into this handle's
    /// [`DiskModel`], so every clock derived from [`SimDisk::model`]
    /// (deadline charging, per-phase stats) feels it automatically.
    pub fn with_faults(mut self, plan: FaultPlan, policy: RetryPolicy) -> Self {
        if let Some((c, factor)) = plan.degraded_channel {
            self.model.degraded_channel = Some((c, factor.max(1.0)));
        }
        self.faults = Arc::new(FaultState {
            plan: Some(plan),
            policy,
            attempts: Mutex::new(HashMap::new()),
        });
        self
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.faults.plan
    }

    /// The retry policy in effect (default when no faults attached).
    pub fn retry_policy(&self) -> RetryPolicy {
        self.faults.policy
    }

    /// A handle onto the **same** file store with a **fresh, private** I/O
    /// meter. Work done through the fork is invisible to this handle's
    /// counters until the caller folds the fork's [`SimDisk::stats`] back in
    /// with [`SimDisk::add_stats`] — the per-worker counter protocol of the
    /// parallel join executors. The fault state (plan, policy, attempt
    /// counters) is shared, so forks draw failures from one pool.
    pub fn fork_counters(&self) -> SimDisk {
        SimDisk {
            files: Arc::clone(&self.files),
            stats: Arc::new(Mutex::new(vec![
                IoStats::default();
                1 + self.model.data_channels()
            ])),
            model: self.model,
            faults: Arc::clone(&self.faults),
        }
    }

    /// A fresh disk (empty file store, zeroed meter) inheriting this disk's
    /// model, fault plan and retry policy, with **independent** attempt
    /// counters. Used by phases that stage intermediate data on a separate
    /// volume (PBSM's sort-phase dedup) so that fault injection covers them
    /// too.
    pub fn scratch_disk(&self) -> SimDisk {
        SimDisk {
            files: Arc::new(Mutex::new(Vec::new())),
            stats: Arc::new(Mutex::new(vec![
                IoStats::default();
                1 + self.model.data_channels()
            ])),
            model: self.model,
            faults: Arc::new(FaultState {
                plan: self.faults.plan,
                policy: self.faults.policy,
                attempts: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// Folds externally accumulated counters (a fork's meter) into this
    /// handle's meter. Counters folded this way land on the shared lane —
    /// use [`SimDisk::add_channel_stats`] to preserve a fork's per-channel
    /// decomposition.
    pub fn add_stats(&self, s: &IoStats) {
        self.stats.lock()[0].merge(s);
    }

    /// Folds a fork's full per-bucket meter (from
    /// [`SimDisk::channel_stats`]) into this handle's, bucket by bucket, so
    /// the channel decomposition survives the merge. Buckets past this
    /// disk's own (a fork built under a different model) fold into the
    /// shared lane rather than vanish.
    pub fn add_channel_stats(&self, buckets: &[IoStats]) {
        let mut g = self.stats.lock();
        for (i, b) in buckets.iter().enumerate() {
            if i < g.len() {
                g[i].merge(b);
            } else {
                g[0].merge(b);
            }
        }
    }

    pub fn with_default_model() -> Self {
        Self::new(DiskModel::default())
    }

    pub fn model(&self) -> DiskModel {
        self.model
    }

    /// Creates an empty file on the serial shared lane.
    pub fn create(&self) -> FileId {
        let mut g = self.files.lock();
        g.push(Some(StoredFile::new(None)));
        FileId((g.len() - 1) as u32)
    }

    /// Creates an empty file whose requests are metered on data channel
    /// `tag mod D`. The tag is a stable placement key (partition id, level
    /// index) — *not* a channel index — so the same file lands on the same
    /// channel however many channels the model has.
    pub fn create_on(&self, tag: u64) -> FileId {
        let mut g = self.files.lock();
        g.push(Some(StoredFile::new(Some(tag))));
        FileId((g.len() - 1) as u32)
    }

    /// The channel tag a file was created with (`None` for shared-lane
    /// files, deleted files and stale ids). Derived files (sort runs, merge
    /// outputs) inherit their input's tag through this.
    pub fn file_channel(&self, f: FileId) -> Option<u64> {
        let g = self.files.lock();
        g.get(f.0 as usize).and_then(|s| s.as_ref()).and_then(|file| file.channel)
    }

    /// Creates an empty file on the same channel as `other` (shared lane if
    /// `other` is untagged or gone) — how derived files stay on their
    /// input's channel.
    pub fn create_like(&self, other: FileId) -> FileId {
        match self.file_channel(other) {
            Some(t) => self.create_on(t),
            None => self.create(),
        }
    }

    /// Creates an empty file on data channel `tag mod D` whose pages are
    /// **exempt** from the plan's persistent bad-sector map — the simulated
    /// analogue of remapping a damaged sector onto a spare. The
    /// quarantine-recompute paths write rebuilt partition data through
    /// spares so a rebuilt file cannot land on the very sectors that
    /// poisoned the original.
    pub fn create_spare_on(&self, tag: u64) -> FileId {
        let mut g = self.files.lock();
        let mut file = StoredFile::new(Some(tag));
        file.spare = true;
        g.push(Some(file));
        FileId((g.len() - 1) as u32)
    }

    /// Creates a spare file on the same channel as `other` (a plain
    /// shared-lane file if `other` is untagged or gone — untagged files are
    /// never damaged, so the spare property is moot there).
    pub fn create_spare_like(&self, other: FileId) -> FileId {
        match self.file_channel(other) {
            Some(t) => self.create_spare_on(t),
            None => self.create(),
        }
    }

    /// `true` iff the file was created through a spare-sector constructor.
    pub fn is_spare(&self, f: FileId) -> bool {
        let g = self.files.lock();
        g.get(f.0 as usize)
            .and_then(|s| s.as_ref())
            .is_some_and(|file| file.spare)
    }

    /// Pages occupied by live files on this handle's store — the quantity
    /// [`FaultPlan::disk_budget_pages`] caps. Scratch disks are separate
    /// volumes with their own (identical) budget.
    pub fn pages_in_use(&self) -> u64 {
        let ps = self.model.page_size;
        let g = self.files.lock();
        g.iter()
            .flatten()
            .map(|file| file.data.len().div_ceil(ps) as u64)
            .sum()
    }

    /// Deletes a file, releasing its space. Idempotent.
    pub fn delete(&self, f: FileId) {
        let mut g = self.files.lock();
        if let Some(slot) = g.get_mut(f.0 as usize) {
            *slot = None;
        }
    }

    /// `true` iff the file exists (was created and not deleted).
    pub fn exists(&self, f: FileId) -> bool {
        let g = self.files.lock();
        matches!(g.get(f.0 as usize), Some(Some(_)))
    }

    /// Ids of all live (non-deleted) files, in creation order. Used by the
    /// recovery scan to find orphans — files a crashed run created that no
    /// committed manifest references.
    pub fn file_ids(&self) -> Vec<FileId> {
        let g = self.files.lock();
        g.iter()
            .enumerate()
            .filter(|(_, slot)| slot.is_some())
            .map(|(i, _)| FileId(i as u32))
            .collect()
    }

    /// Shrinks a file to `len` bytes (a no-op if it is already shorter).
    /// A metadata operation — free and fault-exempt, like [`SimDisk::try_len`].
    /// Recovery uses this to drop a torn journal tail and to roll the
    /// results file back to the last committed watermark.
    pub fn try_truncate(&self, f: FileId, len: u64) -> Result<(), IoError> {
        let mut g = self.files.lock();
        let Some(file) = g.get_mut(f.0 as usize).and_then(|s| s.as_mut()) else {
            return Err(IoError {
                kind: IoErrorKind::FileDeleted,
                file: f,
                offset: len,
                len: 0,
                attempts: 1,
            });
        };
        let len = len as usize;
        if len >= file.data.len() {
            return Ok(());
        }
        let ps = self.model.page_size;
        file.data.truncate(len);
        let n_pages = file.data.len().div_ceil(ps);
        file.sums.truncate(n_pages);
        if n_pages > 0 {
            // The last page may now be partial: recompute its checksum.
            let start = (n_pages - 1) * ps;
            file.sums[n_pages - 1] = page_checksum(&file.data[start..]);
        }
        Ok(())
    }

    /// Serializes the entire file table (contents and deleted-slot holes) so
    /// a host process can persist it across a real process boundary and
    /// [`SimDisk::restore_files`] it on `--resume`. This models the host
    /// filesystem surviving the crash; it is not a disk request and charges
    /// nothing to the meter.
    pub fn export_files(&self) -> Vec<u8> {
        let g = self.files.lock();
        let mut out = Vec::new();
        out.extend_from_slice(b"SJDK");
        // Version 2 added the per-file channel tag so a resumed run bins its
        // re-reads onto the same channels the crashed run wrote on; version
        // 3 adds the spare-sector flag so quarantine state survives resume.
        out.extend_from_slice(&3u32.to_le_bytes());
        out.extend_from_slice(&(g.len() as u32).to_le_bytes());
        for slot in g.iter() {
            match slot {
                None => out.push(0),
                Some(file) => {
                    out.push(1);
                    match file.channel {
                        None => out.push(0),
                        Some(t) => {
                            out.push(1);
                            out.extend_from_slice(&t.to_le_bytes());
                        }
                    }
                    out.push(u8::from(file.spare));
                    out.extend_from_slice(&(file.data.len() as u64).to_le_bytes());
                    out.extend_from_slice(&file.data);
                }
            }
        }
        out
    }

    /// Replaces this disk's file table with a snapshot produced by
    /// [`SimDisk::export_files`]. Per-page checksums are recomputed on
    /// import. A malformed snapshot surfaces as a typed
    /// [`IoErrorKind::Unsupported`] error.
    pub fn restore_files(&self, snapshot: &[u8]) -> Result<(), IoError> {
        let bad = || IoError::unsupported();
        let rest = snapshot.strip_prefix(b"SJDK").ok_or_else(bad)?;
        let take = |buf: &[u8], n: usize| -> Result<(Vec<u8>, usize), IoError> {
            if buf.len() < n {
                Err(bad())
            } else {
                Ok((buf[..n].to_vec(), n))
            }
        };
        let (ver, mut pos) = take(rest, 4)?;
        let version = if ver == 1u32.to_le_bytes() {
            1
        } else if ver == 2u32.to_le_bytes() {
            2
        } else if ver == 3u32.to_le_bytes() {
            3
        } else {
            return Err(bad());
        };
        let (cnt, used) = take(&rest[pos..], 4)?;
        pos += used;
        let count = u32::from_le_bytes([cnt[0], cnt[1], cnt[2], cnt[3]]) as usize;
        let ps = self.model.page_size;
        let mut table: Vec<Option<StoredFile>> = Vec::with_capacity(count);
        for _ in 0..count {
            let (tag, used) = take(&rest[pos..], 1)?;
            pos += used;
            match tag[0] {
                0 => table.push(None),
                1 => {
                    // Version-1 snapshots predate channel tags: their files
                    // restore onto the shared lane.
                    let channel = if version >= 2 {
                        let (has, used) = take(&rest[pos..], 1)?;
                        pos += used;
                        match has[0] {
                            0 => None,
                            1 => {
                                let (t_bytes, used) = take(&rest[pos..], 8)?;
                                pos += used;
                                let mut t8 = [0u8; 8];
                                t8.copy_from_slice(&t_bytes);
                                Some(u64::from_le_bytes(t8))
                            }
                            _ => return Err(bad()),
                        }
                    } else {
                        None
                    };
                    // Pre-version-3 snapshots predate spare-sector files:
                    // everything restores as a regular file.
                    let spare = if version >= 3 {
                        let (s, used) = take(&rest[pos..], 1)?;
                        pos += used;
                        match s[0] {
                            0 => false,
                            1 => true,
                            _ => return Err(bad()),
                        }
                    } else {
                        false
                    };
                    let (len_bytes, used) = take(&rest[pos..], 8)?;
                    pos += used;
                    let mut len8 = [0u8; 8];
                    len8.copy_from_slice(&len_bytes);
                    let len = u64::from_le_bytes(len8) as usize;
                    let (data, used) = take(&rest[pos..], len)?;
                    pos += used;
                    let mut file = StoredFile::new(channel);
                    file.spare = spare;
                    file.append(&data, ps);
                    table.push(Some(file));
                }
                _ => return Err(bad()),
            }
        }
        if pos != rest.len() {
            return Err(bad());
        }
        *self.files.lock() = table;
        Ok(())
    }

    /// Meter bucket for a file's channel tag: untagged files serialize on
    /// bucket 0, tagged ones bin onto data channel `tag mod D` (buckets
    /// `1..=D`). Binning happens here, at metering time, so the file layout
    /// is identical whatever `D` is.
    fn bucket_of(&self, channel: Option<u64>) -> usize {
        match channel {
            None => 0,
            Some(t) => 1 + (t % self.model.data_channels() as u64) as usize,
        }
    }

    /// Length of a file in bytes. A metadata lookup — free and fault-exempt.
    pub fn try_len(&self, f: FileId) -> Result<u64, IoError> {
        let g = self.files.lock();
        match g.get(f.0 as usize).and_then(|s| s.as_ref()) {
            Some(file) => Ok(file.data.len() as u64),
            None => Err(IoError {
                kind: IoErrorKind::FileDeleted,
                file: f,
                offset: 0,
                len: 0,
                attempts: 1,
            }),
        }
    }

    /// Length of a file in bytes. Panics if the file was deleted — use
    /// [`SimDisk::try_len`] to handle that as a typed error.
    pub fn len(&self, f: FileId) -> u64 {
        self.try_len(f)
            .unwrap_or_else(|e| panic!("unhandled simulated-disk error: {e}"))
    }

    /// `true` iff the file holds no bytes.
    pub fn is_empty(&self, f: FileId) -> bool {
        self.len(f) == 0
    }

    /// Appends `data` as **one** request: cost `PT + ceil(len / page_size)`
    /// per attempt. Injected write faults (transient, torn) persist nothing
    /// — the write is atomic — and are retried per the [`RetryPolicy`],
    /// each attempt re-charged in full plus backoff.
    ///
    /// Writers should batch bytes into multi-page buffers before calling this
    /// — that is exactly the contiguous-write optimisation the cost model
    /// rewards.
    pub fn try_append(&self, f: FileId, data: &[u8]) -> Result<(), IoError> {
        if data.is_empty() {
            return Ok(());
        }
        let ps = self.model.page_size;
        let pages = data.len().div_ceil(ps) as u64;
        let max_attempts = self.faults.policy.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let mut files = self.files.lock();
            // ENOSPC: the allocator rejects the append before any transfer
            // when the store's live pages would exceed the plan's capacity.
            // Retrying cannot free space, so the error surfaces immediately
            // (the policy classifies DiskFull as not-retryable) and nothing
            // is charged beyond the fault counter.
            if let Some(budget) = self.faults.plan.as_ref().and_then(|p| p.disk_budget_pages) {
                if let Some(file) = files.get(f.0 as usize).and_then(|s| s.as_ref()) {
                    let len_now = file.data.len();
                    let new_pages =
                        ((len_now + data.len()).div_ceil(ps) - len_now.div_ceil(ps)) as u64;
                    if new_pages > 0 {
                        let used: u64 = files
                            .iter()
                            .flatten()
                            .map(|sf| sf.data.len().div_ceil(ps) as u64)
                            .sum();
                        if used + new_pages > budget {
                            let kind = IoErrorKind::DiskFull;
                            debug_assert!(!self.faults.policy.should_retry(kind));
                            let offset = len_now as u64;
                            let bucket = self.bucket_of(file.channel);
                            drop(files);
                            self.stats.lock()[bucket].faults_injected += 1;
                            return Err(IoError {
                                kind,
                                file: f,
                                offset,
                                len: data.len() as u64,
                                attempts: attempt,
                            });
                        }
                    }
                }
            }
            let Some(file) = files.get_mut(f.0 as usize).and_then(|s| s.as_mut()) else {
                return Err(IoError {
                    kind: IoErrorKind::FileDeleted,
                    file: f,
                    offset: 0,
                    len: data.len() as u64,
                    attempts: attempt,
                });
            };
            let offset = file.data.len() as u64;
            let bucket = self.bucket_of(file.channel);
            {
                let s = &mut self.stats.lock()[bucket];
                s.write_requests += 1;
                s.pages_written += pages;
                s.bytes_written += data.len() as u64;
            }
            match self.faults.next_fault(IoOp::Write, offset, data.len() as u64) {
                None => {
                    file.append(data, ps);
                    return Ok(());
                }
                Some((kind, global_idx, salt)) => {
                    drop(files); // nothing persisted: atomic rollback
                    let s = &mut self.stats.lock()[bucket];
                    s.faults_injected += 1;
                    if attempt < max_attempts {
                        s.write_retries += 1;
                        s.backoff_units = s
                            .backoff_units
                            .saturating_add(self.faults.policy.backoff_units(global_idx, salt));
                    } else {
                        return Err(IoError {
                            kind,
                            file: f,
                            offset,
                            len: data.len() as u64,
                            attempts: attempt,
                        });
                    }
                }
            }
        }
    }

    /// Infallible wrapper over [`SimDisk::try_append`]; panics with the
    /// typed error's message if the request cannot be satisfied.
    pub fn append(&self, f: FileId, data: &[u8]) {
        self.try_append(f, data)
            .unwrap_or_else(|e| panic!("unhandled simulated-disk error: {e}"))
    }

    /// Reads `out.len()` bytes starting at byte `offset` as **one** request:
    /// cost `PT + (number of pages the byte range touches)` per attempt.
    /// Every touched page's checksum is verified; injected bit-rot fails the
    /// verification and transient read faults fail in transit — both are
    /// retried per the [`RetryPolicy`], each attempt re-charged in full plus
    /// backoff. Out-of-range requests and deleted files surface immediately.
    pub fn try_read(&self, f: FileId, offset: u64, out: &mut [u8]) -> Result<(), IoError> {
        if out.is_empty() {
            return Ok(());
        }
        let ps = self.model.page_size as u64;
        let first_page = offset / ps;
        let last_page = (offset + out.len() as u64 - 1) / ps;
        let pages = last_page - first_page + 1;
        let max_attempts = self.faults.policy.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let files = self.files.lock();
            let Some(file) = files.get(f.0 as usize).and_then(|s| s.as_ref()) else {
                return Err(IoError {
                    kind: IoErrorKind::FileDeleted,
                    file: f,
                    offset,
                    len: out.len() as u64,
                    attempts: attempt,
                });
            };
            if offset + out.len() as u64 > file.data.len() as u64 {
                return Err(IoError {
                    kind: IoErrorKind::OutOfBounds,
                    file: f,
                    offset,
                    len: out.len() as u64,
                    attempts: attempt,
                });
            }
            let bucket = self.bucket_of(file.channel);
            {
                let s = &mut self.stats.lock()[bucket];
                s.read_requests += 1;
                s.pages_read += pages;
                s.bytes_read += out.len() as u64;
            }
            // Persistent bad sectors: damage is a property of the platter
            // location (channel tag × page index), not of the request, so
            // any read overlapping a damaged page fails identically at
            // every buffer size and on every attempt. The policy classifies
            // the kind as not-retryable — one charged attempt, no backoff.
            // Untagged files model a protected system volume (manifest,
            // journal, results); spare files model remapped sectors.
            if let (Some(plan), Some(t)) = (self.faults.plan.as_ref(), file.channel) {
                if !file.spare && (first_page..=last_page).any(|p| plan.bad_page(t, p)) {
                    let kind = IoErrorKind::PersistentCorruption;
                    debug_assert!(!self.faults.policy.should_retry(kind));
                    drop(files);
                    self.stats.lock()[bucket].faults_injected += 1;
                    return Err(IoError {
                        kind,
                        file: f,
                        offset,
                        len: out.len() as u64,
                        attempts: attempt,
                    });
                }
            }
            let fault = self.faults.next_fault(IoOp::Read, offset, out.len() as u64);
            // Bit-rot corrupts a page on the wire; the per-page checksum
            // machinery is what detects it. Other read faults fail in
            // transit before verification.
            let (failed, salt_and_idx) = match fault {
                None => {
                    // Genuine verification: a mismatch here (without
                    // injection) would expose real bookkeeping corruption.
                    match file.verify(first_page, last_page, ps as usize, None) {
                        Ok(()) => {
                            let start = offset as usize;
                            out.copy_from_slice(&file.data[start..start + out.len()]);
                            return Ok(());
                        }
                        Err(_page) => (IoErrorKind::ChecksumMismatch, None),
                    }
                }
                Some((IoErrorKind::ChecksumMismatch, idx, salt)) => {
                    let v = file.verify(first_page, last_page, ps as usize, Some(first_page));
                    debug_assert!(v.is_err(), "injected bit-rot must fail verification");
                    (IoErrorKind::ChecksumMismatch, Some((idx, salt)))
                }
                Some((kind, idx, salt)) => (kind, Some((idx, salt))),
            };
            drop(files);
            let s = &mut self.stats.lock()[bucket];
            match salt_and_idx {
                Some((global_idx, salt)) => {
                    s.faults_injected += 1;
                    if attempt < max_attempts {
                        s.read_retries += 1;
                        s.backoff_units = s
                            .backoff_units
                            .saturating_add(self.faults.policy.backoff_units(global_idx, salt));
                    } else {
                        return Err(IoError {
                            kind: failed,
                            file: f,
                            offset,
                            len: out.len() as u64,
                            attempts: attempt,
                        });
                    }
                }
                // Real (non-injected) checksum corruption: retrying cannot
                // help, the stored state itself is inconsistent.
                None => {
                    return Err(IoError {
                        kind: failed,
                        file: f,
                        offset,
                        len: out.len() as u64,
                        attempts: attempt,
                    })
                }
            }
        }
    }

    /// Infallible wrapper over [`SimDisk::try_read`]; panics with the typed
    /// error's message if the request cannot be satisfied.
    pub fn read(&self, f: FileId, offset: u64, out: &mut [u8]) {
        self.try_read(f, offset, out)
            .unwrap_or_else(|e| panic!("unhandled simulated-disk error: {e}"))
    }

    /// Snapshot of the cumulative counters: the sum over every meter
    /// bucket, i.e. the historic single-meter view.
    pub fn stats(&self) -> IoStats {
        let g = self.stats.lock();
        let mut total = IoStats::default();
        for b in g.iter() {
            total.merge(b);
        }
        total
    }

    /// Snapshot of the per-bucket counters: index 0 is the serial shared
    /// lane, indexes `1..=D` the data channels. The buckets sum to
    /// [`SimDisk::stats`] by construction.
    pub fn channel_stats(&self) -> Vec<IoStats> {
        self.stats.lock().clone()
    }

    /// Resets all counters to zero (file contents are kept).
    pub fn reset_stats(&self) {
        let mut g = self.stats.lock();
        for b in g.iter_mut() {
            *b = IoStats::default();
        }
    }

    /// Simulated disk seconds for counters accumulated so far. With a
    /// degraded channel the slow channel's units are stretched by its
    /// factor — this is the clock deadline charging reads, so a degraded
    /// channel genuinely eats into a run's deadline budget.
    pub fn io_seconds(&self) -> f64 {
        if self.model.degraded_channel.is_none() {
            return self.model.seconds(&self.stats());
        }
        let buckets = self.channel_stats();
        let mut units = self.model.units(&buckets[0]);
        for (i, b) in buckets[1..].iter().enumerate() {
            units += self.model.units(b) * self.model.channel_factor(i);
        }
        units * self.model.transfer_secs_per_page
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn small_disk() -> SimDisk {
        SimDisk::new(DiskModel {
            page_size: 16,
            positioning_ratio: 10.0,
            transfer_secs_per_page: 1.0,
            cpu_slowdown: 1.0,
            channels: 1,
            degraded_channel: None,
        })
    }

    #[test]
    fn append_and_read_roundtrip() {
        let d = small_disk();
        let f = d.create();
        d.append(f, b"hello world, this spans pages!");
        assert_eq!(d.len(f), 30);
        let mut buf = vec![0u8; 11];
        d.read(f, 6, &mut buf);
        assert_eq!(&buf, b"world, this");
    }

    #[test]
    fn cost_model_pt_plus_n() {
        let d = small_disk();
        let f = d.create();
        d.append(f, &[0u8; 40]); // 3 pages, 1 request
        let s = d.stats();
        assert_eq!(s.write_requests, 1);
        assert_eq!(s.pages_written, 3);
        // units = PT*1 + 3 = 13
        assert!((d.model().units(&s) - 13.0).abs() < 1e-12);
        assert!((d.io_seconds() - 13.0).abs() < 1e-12);
    }

    #[test]
    fn read_counts_pages_touched_not_bytes() {
        let d = small_disk();
        let f = d.create();
        d.append(f, &[7u8; 64]);
        d.reset_stats();
        // 2 bytes straddling a page boundary touch 2 pages.
        let mut b = [0u8; 2];
        d.read(f, 15, &mut b);
        let s = d.stats();
        assert_eq!(s.read_requests, 1);
        assert_eq!(s.pages_read, 2);
        // Within one page: 1 page.
        d.read(f, 0, &mut b);
        assert_eq!(d.stats().pages_read, 3);
    }

    #[test]
    fn one_big_request_cheaper_than_many_small() {
        let d = small_disk();
        let f1 = d.create();
        d.append(f1, &[0u8; 160]); // 10 pages in one request: PT + 10 = 20
        let one = d.model().units(&d.stats());
        d.reset_stats();
        let f2 = d.create();
        for _ in 0..10 {
            d.append(f2, &[0u8; 16]); // 10 requests: 10*(PT + 1) = 110
        }
        let many = d.model().units(&d.stats());
        assert!(one < many);
        assert!((many - 110.0).abs() < 1e-12);
    }

    #[test]
    fn delete_then_recreate_is_independent() {
        let d = small_disk();
        let f = d.create();
        d.append(f, b"abc");
        d.delete(f);
        let g = d.create();
        assert_ne!(f, g);
        assert_eq!(d.len(g), 0);
    }

    #[test]
    fn stats_delta_and_plus() {
        let d = small_disk();
        let f = d.create();
        d.append(f, &[0u8; 16]);
        let snap = d.stats();
        d.append(f, &[0u8; 32]);
        let delta = d.stats().delta(&snap);
        assert_eq!(delta.write_requests, 1);
        assert_eq!(delta.pages_written, 2);
        let sum = snap.plus(&delta);
        assert_eq!(sum, d.stats());
    }

    #[test]
    fn fork_shares_files_but_not_counters() {
        let d = small_disk();
        let f = d.create();
        d.append(f, &[0u8; 16]);
        let fork = d.fork_counters();
        // Fork starts with a clean meter but sees the shared file.
        assert_eq!(fork.stats(), IoStats::default());
        assert_eq!(fork.len(f), 16);
        // Work through the fork is metered on the fork only...
        fork.append(f, &[0u8; 32]);
        assert_eq!(fork.stats().pages_written, 2);
        assert_eq!(d.stats().pages_written, 1);
        // ...but the bytes land in the shared store.
        assert_eq!(d.len(f), 48);
        // Merging the fork back restores the single-meter view.
        d.add_stats(&fork.stats());
        assert_eq!(d.stats().pages_written, 3);
        assert_eq!(d.stats().write_requests, 2);
        // Deletion through either handle is visible to both.
        let g = fork.create();
        d.delete(g);
        assert_eq!(fork.stats().read_requests, 0);
    }

    #[test]
    fn empty_operations_are_free() {
        let d = small_disk();
        let f = d.create();
        d.append(f, &[]);
        let mut empty: [u8; 0] = [];
        d.read(f, 0, &mut empty);
        assert_eq!(d.stats(), IoStats::default());
    }

    #[test]
    fn truncate_shrinks_and_keeps_checksums_consistent() {
        let d = small_disk();
        let f = d.create();
        d.append(f, &(0..40u8).collect::<Vec<u8>>()); // 2.5 pages
        d.try_truncate(f, 20).unwrap();
        assert_eq!(d.len(f), 20);
        // The now-partial last page must still verify on read.
        let mut out = vec![0u8; 20];
        d.try_read(f, 0, &mut out).unwrap();
        assert_eq!(out, (0..20u8).collect::<Vec<u8>>());
        // Growing truncate is a no-op; appending after truncate works.
        d.try_truncate(f, 100).unwrap();
        assert_eq!(d.len(f), 20);
        d.append(f, &[99u8; 4]);
        let mut tail = [0u8; 4];
        d.read(f, 20, &mut tail);
        assert_eq!(tail, [99u8; 4]);
        d.delete(f);
        assert_eq!(
            d.try_truncate(f, 0).unwrap_err().kind,
            IoErrorKind::FileDeleted
        );
    }

    #[test]
    fn file_ids_lists_live_files_and_raw_round_trips() {
        let d = small_disk();
        let a = d.create();
        let b = d.create();
        let c = d.create();
        d.delete(b);
        assert_eq!(d.file_ids(), vec![a, c]);
        assert!(d.exists(a) && !d.exists(b));
        assert_eq!(FileId::from_raw(a.raw()), a);
    }

    #[test]
    fn export_restore_round_trips_contents_and_holes() {
        let d = small_disk();
        let a = d.create();
        let b = d.create();
        let c = d.create();
        d.append(a, b"alpha");
        d.append(c, &[3u8; 40]);
        d.delete(b);
        let snap = d.export_files();

        let e = SimDisk::new(d.model());
        e.restore_files(&snap).unwrap();
        assert_eq!(e.file_ids(), vec![a, c]);
        let mut out = vec![0u8; 5];
        e.try_read(a, 0, &mut out).unwrap();
        assert_eq!(&out, b"alpha");
        let mut out = vec![0u8; 40];
        e.try_read(c, 0, &mut out).unwrap();
        assert_eq!(out, [3u8; 40]);
        // Ids allocated after restore continue past the snapshot's slots.
        assert_eq!(e.create().raw(), 3);
        // Malformed snapshots surface typed errors.
        assert!(e.restore_files(b"JUNK").is_err());
        assert!(e.restore_files(&snap[..snap.len() - 1]).is_err());
    }

    fn channelled_disk(channels: usize) -> SimDisk {
        SimDisk::new(DiskModel {
            page_size: 16,
            positioning_ratio: 10.0,
            transfer_secs_per_page: 1.0,
            cpu_slowdown: 1.0,
            channels,
            degraded_channel: None,
        })
    }

    #[test]
    fn tagged_files_bin_onto_data_channels() {
        let d = channelled_disk(2);
        let shared = d.create();
        let a = d.create_on(0); // channel 0 → bucket 1
        let b = d.create_on(5); // 5 mod 2 = 1 → bucket 2
        assert_eq!(d.file_channel(shared), None);
        assert_eq!(d.file_channel(a), Some(0));
        assert_eq!(d.file_channel(b), Some(5));
        d.append(shared, &[0u8; 16]);
        d.append(a, &[0u8; 32]);
        d.append(b, &[0u8; 48]);
        let buckets = d.channel_stats();
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0].pages_written, 1);
        assert_eq!(buckets[1].pages_written, 2);
        assert_eq!(buckets[2].pages_written, 3);
        // The buckets sum to the historic single-meter view.
        let sum = buckets.iter().fold(IoStats::default(), |acc, b| acc.plus(b));
        assert_eq!(sum, d.stats());
        assert_eq!(d.stats().pages_written, 6);
    }

    #[test]
    fn channel_count_rebins_without_changing_totals() {
        // The same workload on 1 vs 4 channels: identical files, identical
        // summed counters — only the decomposition differs.
        let run = |channels: usize| -> (IoStats, Vec<IoStats>) {
            let d = channelled_disk(channels);
            for pid in 0..6u64 {
                let f = d.create_on(pid);
                d.append(f, &[pid as u8; 40]);
                let mut out = [0u8; 40];
                d.read(f, 0, &mut out);
            }
            (d.stats(), d.channel_stats())
        };
        let (one, one_buckets) = run(1);
        let (four, four_buckets) = run(4);
        assert_eq!(one, four);
        assert_eq!(one_buckets.len(), 2);
        assert_eq!(four_buckets.len(), 5);
        // With one channel everything tagged lands in the single data bucket.
        assert_eq!(one_buckets[1], one);
        // With four, at least two data buckets carry load.
        assert!(four_buckets[1..].iter().filter(|b| b.pages_written > 0).count() >= 2);
    }

    #[test]
    fn parallel_io_seconds_is_shared_plus_busiest_channel() {
        let d = channelled_disk(2);
        let shared = d.create();
        let a = d.create_on(0);
        let b = d.create_on(1);
        d.append(shared, &[0u8; 16]); // PT + 1 = 11 units
        d.append(a, &[0u8; 32]); // 12 units
        d.append(b, &[0u8; 64]); // 14 units (busiest)
        let m = d.model();
        let buckets = d.channel_stats();
        let par = m.parallel_io_seconds(&buckets[0], &buckets[1..]);
        assert!((par - (11.0 + 14.0)).abs() < 1e-12);
        // Serial time counts every unit.
        assert!((m.seconds(&d.stats()) - (11.0 + 12.0 + 14.0)).abs() < 1e-12);
    }

    #[test]
    fn one_channel_parallel_time_is_bitwise_serial_time() {
        // Default-model counters: the decomposition must reproduce the
        // serial seconds bit for bit, not within an epsilon.
        let d = SimDisk::with_default_model();
        let f = d.create_on(3);
        let g = d.create();
        d.append(f, &[1u8; 100_000]);
        d.append(g, &[2u8; 30_000]);
        let mut out = vec![0u8; 50_000];
        d.read(f, 0, &mut out);
        let m = d.model();
        let buckets = d.channel_stats();
        let par = m.parallel_io_seconds(&buckets[0], &buckets[1..]);
        assert_eq!(par, m.seconds(&d.stats()));
    }

    #[test]
    fn prefetch_hides_io_only_with_spare_channels() {
        let data = [IoStats {
            read_requests: 1,
            pages_read: 4,
            ..IoStats::default()
        }];
        let single = DiskModel {
            channels: 1,
            degraded_channel: None,
            ..channelled_disk(1).model()
        };
        let multi = DiskModel {
            channels: 2,
            ..single
        };
        // Busiest channel: 10 + 4 = 14 simulated seconds.
        assert_eq!(single.prefetch_hidden_seconds(5.0, &data), 0.0);
        assert_eq!(multi.prefetch_hidden_seconds(5.0, &data), 5.0); // CPU-bound
        assert_eq!(multi.prefetch_hidden_seconds(99.0, &data), 14.0); // IO-bound
        let shared = IoStats::default();
        // total = scaled_cpu + (shared + max) − hidden
        assert_eq!(multi.total_seconds(5.0, &shared, &data), 14.0);
        assert_eq!(multi.total_seconds(99.0, &shared, &data), 99.0);
        assert_eq!(single.total_seconds(5.0, &shared, &data), 19.0);
    }

    #[test]
    fn export_restore_round_trips_channel_tags() {
        let d = channelled_disk(4);
        let a = d.create_on(7);
        let b = d.create();
        d.append(a, b"tagged");
        d.append(b, b"shared");
        let snap = d.export_files();
        let e = channelled_disk(4);
        e.restore_files(&snap).unwrap();
        assert_eq!(e.file_channel(a), Some(7));
        assert_eq!(e.file_channel(b), None);
        // Reads through the restored disk bin like the original's.
        let mut out = vec![0u8; 6];
        e.try_read(a, 0, &mut out).unwrap();
        assert_eq!(&out, b"tagged");
        let buckets = e.channel_stats();
        assert_eq!(buckets[1 + (7 % 4)].read_requests, 1);
        assert_eq!(buckets[0].read_requests, 0);
    }

    #[test]
    fn version_one_snapshots_restore_onto_the_shared_lane() {
        // A hand-built v1 snapshot (no channel tags): one live 3-byte file.
        let mut snap = Vec::new();
        snap.extend_from_slice(b"SJDK");
        snap.extend_from_slice(&1u32.to_le_bytes());
        snap.extend_from_slice(&1u32.to_le_bytes());
        snap.push(1);
        snap.extend_from_slice(&3u64.to_le_bytes());
        snap.extend_from_slice(b"abc");
        let d = channelled_disk(2);
        d.restore_files(&snap).unwrap();
        let f = FileId::from_raw(0);
        assert_eq!(d.len(f), 3);
        assert_eq!(d.file_channel(f), None);
    }

    #[test]
    fn add_channel_stats_preserves_the_decomposition() {
        let d = channelled_disk(2);
        let fork = d.fork_counters();
        let f = fork.create_on(1);
        fork.append(f, &[0u8; 32]);
        let g = fork.create();
        fork.append(g, &[0u8; 16]);
        d.add_channel_stats(&fork.channel_stats());
        let buckets = d.channel_stats();
        assert_eq!(buckets[0].pages_written, 1);
        assert_eq!(buckets[2].pages_written, 2);
        assert_eq!(d.stats().pages_written, 3);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod failure_tests {
    use super::*;

    fn disk() -> SimDisk {
        SimDisk::new(DiskModel {
            page_size: 16,
            positioning_ratio: 1.0,
            transfer_secs_per_page: 1.0,
            cpu_slowdown: 1.0,
            channels: 1,
            degraded_channel: None,
        })
    }

    #[test]
    #[should_panic(expected = "past end of file")]
    fn read_past_end_of_file_panics() {
        let d = disk();
        let f = d.create();
        d.append(f, &[1u8; 8]);
        let mut out = [0u8; 16];
        d.read(f, 0, &mut out); // only 8 bytes exist
    }

    #[test]
    #[should_panic(expected = "file was deleted")]
    fn read_from_deleted_file_panics() {
        let d = disk();
        let f = d.create();
        d.append(f, &[1u8; 16]);
        d.delete(f);
        let mut out = [0u8; 4];
        d.read(f, 0, &mut out);
    }

    #[test]
    #[should_panic(expected = "file was deleted")]
    fn append_to_deleted_file_panics() {
        let d = disk();
        let f = d.create();
        d.delete(f);
        d.append(f, &[0u8; 4]);
    }

    #[test]
    fn double_delete_is_idempotent() {
        let d = disk();
        let f = d.create();
        d.delete(f);
        d.delete(f); // no panic
    }

    #[test]
    fn typed_errors_from_try_apis() {
        let d = disk();
        let f = d.create();
        d.append(f, &[1u8; 8]);
        let mut out = [0u8; 16];
        let e = d.try_read(f, 0, &mut out).unwrap_err();
        assert_eq!(e.kind, IoErrorKind::OutOfBounds);
        d.delete(f);
        assert_eq!(d.try_len(f).unwrap_err().kind, IoErrorKind::FileDeleted);
        assert_eq!(d.try_append(f, &[0u8; 4]).unwrap_err().kind, IoErrorKind::FileDeleted);
        let e = d.try_read(f, 0, &mut out[..4]).unwrap_err();
        assert_eq!(e.kind, IoErrorKind::FileDeleted);
        assert!(!e.kind.is_transient());
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod fault_tests {
    use super::*;

    fn disk_with(plan: FaultPlan, policy: RetryPolicy) -> SimDisk {
        SimDisk::new(DiskModel {
            page_size: 16,
            positioning_ratio: 4.0,
            transfer_secs_per_page: 1.0,
            cpu_slowdown: 1.0,
            channels: 1,
            degraded_channel: None,
        })
        .with_faults(plan, policy)
    }

    /// A plan that faults every identity exactly once (fate() draws the
    /// fail count uniformly in `1..=max_consecutive`, so 1 pins it).
    fn always_fail_once() -> FaultPlan {
        FaultPlan {
            fault_rate: 1.0,
            max_consecutive: 1,
            ..FaultPlan::none(1)
        }
    }

    #[test]
    fn recoverable_fault_retries_and_succeeds_with_visible_cost() {
        let plan = always_fail_once();
        let d = disk_with(plan, RetryPolicy::default());
        let f = d.create();
        d.try_append(f, &[42u8; 32]).expect("retry must succeed");
        let s = d.stats();
        assert!(s.faults_injected >= 1, "{s:?}");
        assert_eq!(s.write_retries, s.faults_injected);
        assert!(s.backoff_units > 0);
        // Every attempt is charged: requests > 1 for a single logical write.
        assert_eq!(s.write_requests, 1 + s.write_retries);
        let mut out = [0u8; 32];
        d.try_read(f, 0, &mut out).expect("read retries too");
        assert_eq!(out, [42u8; 32]);
        let s = d.stats();
        assert_eq!(s.read_requests, 1 + s.read_retries);
    }

    #[test]
    fn exhausted_retries_surface_typed_error() {
        let plan = FaultPlan::unrecoverable(9);
        let d = disk_with(plan, RetryPolicy::with_max_attempts(3));
        let f = d.create();
        let e = d.try_append(f, &[0u8; 8]).unwrap_err();
        assert_eq!(e.attempts, 3);
        assert!(e.kind.is_transient());
        // All three attempts were charged.
        assert_eq!(d.stats().write_requests, 3);
        assert_eq!(d.stats().faults_injected, 3);
        assert_eq!(d.stats().write_retries, 2); // last failure is not retried
    }

    #[test]
    fn bit_rot_is_detected_by_page_checksums_and_cured_by_retry() {
        // Find a seed whose fate for this identity is a checksum fault.
        let mut chosen = None;
        for seed in 0..5000u64 {
            let p = FaultPlan {
                fault_rate: 1.0,
                max_consecutive: 1,
                ..FaultPlan::none(seed)
            };
            if let Some((1, IoErrorKind::ChecksumMismatch)) = p.fate(IoOp::Read, 0, 32) {
                chosen = Some(p);
                break;
            }
        }
        let plan = chosen.expect("some seed yields bit-rot for this identity");
        let d = SimDisk::new(DiskModel {
            page_size: 16,
            positioning_ratio: 4.0,
            transfer_secs_per_page: 1.0,
            cpu_slowdown: 1.0,
            channels: 1,
            degraded_channel: None,
        });
        let f = d.create();
        d.append(f, &[7u8; 32]);
        let d = d.with_faults(plan, RetryPolicy::default());
        let mut out = [0u8; 32];
        d.try_read(f, 0, &mut out).expect("re-read is clean");
        assert_eq!(out, [7u8; 32]);
        assert!(d.stats().read_retries >= 1);
    }

    #[test]
    fn fault_totals_are_deterministic_across_interleavings() {
        // Two forks hammer the same identities concurrently; the merged
        // totals must match a single-handle run of the same multiset.
        let plan = FaultPlan::recoverable(1234);
        let run = |threads: usize| -> IoStats {
            let d = disk_with(plan, RetryPolicy::default());
            let files: Vec<FileId> = (0..threads).map(|_| d.create()).collect();
            let handles: Vec<std::thread::JoinHandle<IoStats>> = files
                .iter()
                .map(|&f| {
                    let fork = d.fork_counters();
                    std::thread::spawn(move || {
                        for i in 0..50u64 {
                            fork.try_append(f, &[i as u8; 24]).unwrap();
                        }
                        let mut out = vec![0u8; 24];
                        for i in 0..50u64 {
                            fork.try_read(f, i * 24, &mut out).unwrap();
                        }
                        fork.stats()
                    })
                })
                .collect();
            for h in handles {
                d.add_stats(&h.join().unwrap());
            }
            d.stats()
        };
        // Same multiset of identities issued once per file: totals scale
        // linearly with the file count and are identical across runs.
        let a = run(4);
        let b = run(4);
        assert_eq!(a, b);
        assert!(a.faults_injected > 0, "plan should inject something: {a:?}");
    }

    #[test]
    fn backoff_units_flow_into_simulated_seconds() {
        let plan = always_fail_once();
        let d = disk_with(plan, RetryPolicy::default());
        let f = d.create();
        d.try_append(f, &[0u8; 16]).unwrap();
        let s = d.stats();
        let m = d.model();
        let expected = m.positioning_ratio * s.write_requests as f64
            + s.pages_written as f64
            + s.backoff_units as f64;
        assert!((m.units(&s) - expected).abs() < 1e-12);
        assert!(s.backoff_units > 0);
    }

    #[test]
    fn scratch_disk_inherits_plan_with_fresh_state() {
        let plan = always_fail_once();
        let d = disk_with(plan, RetryPolicy::default());
        let scratch = d.scratch_disk();
        assert_eq!(scratch.fault_plan(), Some(plan));
        let f = scratch.create();
        scratch.try_append(f, &[1u8; 16]).unwrap();
        assert!(scratch.stats().faults_injected > 0);
        assert_eq!(d.stats(), IoStats::default(), "scratch meter is private");
    }

    #[test]
    fn persistent_corruption_surfaces_immediately_without_backoff() {
        // Every (tag, page) sector is bad: the first read of a tagged file
        // must fail PersistentCorruption after exactly one charged attempt —
        // no retries, no simulated backoff wasted on an incurable fault.
        let plan = FaultPlan::none(3).with_persistent_rate(1.0);
        let d = disk_with(plan, RetryPolicy::default());
        let f = d.create_on(0);
        d.try_append(f, &[9u8; 48]).expect("writes are unaffected");
        let mut out = [0u8; 48];
        let e = d.try_read(f, 0, &mut out).unwrap_err();
        assert_eq!(e.kind, IoErrorKind::PersistentCorruption);
        assert!(e.kind.is_persistent() && !e.kind.is_transient());
        assert_eq!(e.attempts, 1);
        let s = d.stats();
        assert_eq!(s.read_requests, 1, "one charged attempt");
        assert_eq!(s.read_retries, 0);
        assert_eq!(s.backoff_units, 0);
        assert_eq!(s.faults_injected, 1);
        // Re-reads fail identically: the damage never goes away.
        let e2 = d.try_read(f, 0, &mut out).unwrap_err();
        assert_eq!(e2.kind, IoErrorKind::PersistentCorruption);
    }

    #[test]
    fn untagged_and_spare_files_are_exempt_from_bad_sectors() {
        let plan = FaultPlan::none(3).with_persistent_rate(1.0);
        let d = disk_with(plan, RetryPolicy::default());
        // Untagged: the protected system volume.
        let sys = d.create();
        d.try_append(sys, &[1u8; 32]).unwrap();
        let mut out = [0u8; 32];
        d.try_read(sys, 0, &mut out).expect("untagged files never rot");
        // Spare: a remapped replacement sector on the same channel.
        let spare = d.create_spare_on(5);
        assert!(d.is_spare(spare));
        assert_eq!(d.file_channel(spare), Some(5));
        d.try_append(spare, &[2u8; 32]).unwrap();
        d.try_read(spare, 0, &mut out).expect("spares never rot");
        // create_spare_like inherits channel and spare-ness.
        let like = d.create_spare_like(spare);
        assert!(d.is_spare(like));
        assert_eq!(d.file_channel(like), Some(5));
        // A spare derived from an untagged file is just a shared-lane file.
        let from_sys = d.create_spare_like(sys);
        assert_eq!(d.file_channel(from_sys), None);
    }

    #[test]
    fn disk_full_surfaces_enospc_and_delete_frees_space() {
        // page_size 16, budget 4 pages.
        let plan = FaultPlan::none(7).with_disk_budget(4);
        let d = disk_with(plan, RetryPolicy::default());
        let f = d.create_on(0);
        d.try_append(f, &[1u8; 64]).expect("fits exactly");
        assert_eq!(d.pages_in_use(), 4);
        let before = d.stats();
        let e = d.try_append(f, &[2u8; 1]).unwrap_err();
        assert_eq!(e.kind, IoErrorKind::DiskFull);
        assert_eq!(e.attempts, 1);
        let s = d.stats();
        // Nothing was transferred: only the fault counter moved.
        assert_eq!(s.write_requests, before.write_requests);
        assert_eq!(s.pages_written, before.pages_written);
        assert_eq!(s.backoff_units, before.backoff_units);
        assert_eq!(s.faults_injected, before.faults_injected + 1);
        assert_eq!(d.len(f), 64, "failed append persisted nothing");
        // Freeing space makes writes succeed again.
        d.delete(f);
        assert_eq!(d.pages_in_use(), 0);
        let g = d.create_on(1);
        d.try_append(g, &[3u8; 16]).expect("space was freed");
        // Filling a partial page costs no new pages and is always allowed.
        let h = d.create_on(2);
        d.try_append(h, &[4u8; 40]).unwrap(); // 3 pages, 4 total in use
        d.try_append(h, &[5u8; 8]).expect("stays within the last page");
    }

    #[test]
    fn degraded_channel_stretches_clock_without_touching_counters() {
        let run = |plan: Option<FaultPlan>| -> (IoStats, f64, f64) {
            let mut d = SimDisk::new(DiskModel {
                page_size: 16,
                positioning_ratio: 4.0,
                transfer_secs_per_page: 1.0,
                cpu_slowdown: 1.0,
                channels: 2,
                degraded_channel: None,
            });
            if let Some(p) = plan {
                d = d.with_faults(p, RetryPolicy::default());
            }
            let a = d.create_on(0);
            let b = d.create_on(1);
            d.append(a, &[0u8; 32]);
            d.append(b, &[0u8; 32]);
            let m = d.model();
            let buckets = d.channel_stats();
            let par = m.parallel_io_seconds(&buckets[0], &buckets[1..]);
            (d.stats(), d.io_seconds(), par)
        };
        let (clean, clean_serial, clean_par) = run(None);
        let plan = FaultPlan::none(1).with_degraded_channel(0, 4.0);
        let (slow, slow_serial, slow_par) = run(Some(plan));
        // Counters are bit-identical; only the clock changed.
        assert_eq!(clean, slow);
        assert!(slow_serial > clean_serial, "{slow_serial} vs {clean_serial}");
        assert!(slow_par > clean_par);
        // Channel 0: one request of 2 pages = PT + 2 = 6 units, ×4 = 24.
        // Channel 1 healthy: 6 units. Serial = 24 + 6 = 30; clean = 12.
        assert!((slow_serial - 30.0).abs() < 1e-12, "{slow_serial}");
        assert!((clean_serial - 12.0).abs() < 1e-12, "{clean_serial}");
        // The degraded channel dominates the parallel clock.
        assert!((slow_par - 24.0).abs() < 1e-12, "{slow_par}");
        // A factor on a channel nothing touches changes nothing.
        let idle = FaultPlan::none(1).with_degraded_channel(1, 100.0);
        let m = DiskModel {
            channels: 2,
            degraded_channel: idle.degraded_channel,
            ..DiskModel::default()
        };
        assert_eq!(m.channel_factor(0), 1.0);
        assert_eq!(m.channel_factor(1), 100.0);
    }

    #[test]
    fn export_restore_round_trips_spare_flags() {
        let d = SimDisk::with_default_model();
        let a = d.create_spare_on(2);
        let b = d.create_on(2);
        d.append(a, b"spare");
        d.append(b, b"plain");
        let snap = d.export_files();
        let e = SimDisk::with_default_model();
        e.restore_files(&snap).unwrap();
        assert!(e.is_spare(a));
        assert!(!e.is_spare(b));
        assert_eq!(e.file_channel(a), Some(2));
        let mut out = vec![0u8; 5];
        e.try_read(a, 0, &mut out).unwrap();
        assert_eq!(&out, b"spare");
    }

    #[test]
    fn fault_free_disk_keeps_retry_counters_zero() {
        let d = SimDisk::with_default_model();
        let f = d.create();
        d.append(f, &[0u8; 1024]);
        let mut out = [0u8; 1024];
        d.read(f, 0, &mut out);
        let s = d.stats();
        assert_eq!(s.faults_injected, 0);
        assert_eq!(s.read_retries, 0);
        assert_eq!(s.write_retries, 0);
        assert_eq!(s.backoff_units, 0);
    }
}
