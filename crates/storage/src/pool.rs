use std::collections::HashMap;

use crate::{FileId, SimDisk};

/// A page-granular LRU buffer pool over a [`SimDisk`].
///
/// The paper's algorithms deliberately bypass caching (direct I/O), but the
/// *indexed* join baselines need one: an R-tree traversal re-reads upper
/// nodes constantly, and charging `PT + 1` for every revisit would be
/// nonsense. The pool holds `capacity` pages, evicts least-recently-used,
/// and counts hits/misses — misses hit the underlying simulated disk and
/// therefore the cost model.
pub struct BufferPool {
    disk: SimDisk,
    capacity: usize,
    map: HashMap<(FileId, u64), usize>,
    slots: Vec<Slot>,
    clock: u64,
    /// Page requests served from the pool.
    pub hits: u64,
    /// Page requests that had to read the disk.
    pub misses: u64,
}

struct Slot {
    key: (FileId, u64),
    data: Vec<u8>,
    last_used: u64,
}

impl BufferPool {
    /// A pool of `capacity` pages (≥ 1).
    pub fn new(disk: &SimDisk, capacity: usize) -> BufferPool {
        BufferPool {
            disk: disk.clone(),
            capacity: capacity.max(1),
            map: HashMap::new(),
            slots: Vec::new(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Memory held by the pool, for budget accounting.
    pub fn buffer_bytes(&self) -> usize {
        self.capacity * self.disk.model().page_size
    }

    /// Returns page `page_no` of `file`, reading it on a miss. The returned
    /// slice is valid until the next `get` (which may evict it).
    pub fn get(&mut self, file: FileId, page_no: u64) -> &[u8] {
        self.clock += 1;
        let key = (file, page_no);
        if let Some(&slot) = self.map.get(&key) {
            self.hits += 1;
            self.slots[slot].last_used = self.clock;
            return &self.slots[slot].data;
        }
        self.misses += 1;
        let ps = self.disk.model().page_size as u64;
        let offset = page_no * ps;
        let len = (self.disk.len(file).saturating_sub(offset)).min(ps) as usize;
        let mut data = vec![0u8; len];
        self.disk.read(file, offset, &mut data);
        let slot = if self.slots.len() < self.capacity {
            self.slots.push(Slot {
                key,
                data,
                last_used: self.clock,
            });
            self.slots.len() - 1
        } else {
            // Evict the least recently used page. Invariant: this branch is
            // only reached with `slots.len() == capacity >= 1` (clamped in
            // `new`), so a minimum always exists.
            let victim = self
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(i, _)| i)
                .expect("capacity >= 1 slots are non-empty");
            self.map.remove(&self.slots[victim].key);
            self.slots[victim] = Slot {
                key,
                data,
                last_used: self.clock,
            };
            victim
        };
        self.map.insert(key, slot);
        &self.slots[slot].data
    }

    /// Hit fraction so far (0 when nothing was requested).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::DiskModel;

    fn disk() -> SimDisk {
        SimDisk::new(DiskModel {
            page_size: 16,
            positioning_ratio: 4.0,
            transfer_secs_per_page: 1.0,
            cpu_slowdown: 1.0,
            channels: 1,
            degraded_channel: None,
        })
    }

    fn file_with_pages(d: &SimDisk, pages: usize) -> FileId {
        let f = d.create();
        for p in 0..pages {
            d.append(f, &[p as u8; 16]);
        }
        f
    }

    #[test]
    fn hit_avoids_disk_read() {
        let d = disk();
        let f = file_with_pages(&d, 4);
        d.reset_stats();
        let mut pool = BufferPool::new(&d, 2);
        assert_eq!(pool.get(f, 1)[0], 1);
        assert_eq!(pool.get(f, 1)[0], 1);
        assert_eq!(pool.hits, 1);
        assert_eq!(pool.misses, 1);
        assert_eq!(d.stats().read_requests, 1, "second get must not touch disk");
    }

    #[test]
    fn lru_evicts_the_coldest_page() {
        let d = disk();
        let f = file_with_pages(&d, 4);
        let mut pool = BufferPool::new(&d, 2);
        pool.get(f, 0);
        pool.get(f, 1);
        pool.get(f, 0); // page 1 is now coldest
        pool.get(f, 2); // evicts 1
        d.reset_stats();
        pool.get(f, 0); // hit
        assert_eq!(d.stats().read_requests, 0);
        pool.get(f, 1); // miss: was evicted
        assert_eq!(d.stats().read_requests, 1);
    }

    #[test]
    fn larger_pool_means_fewer_misses() {
        let d = disk();
        let f = file_with_pages(&d, 8);
        let walk: Vec<u64> = (0..100).map(|i| (i * 3) % 8).collect();
        let run = |cap: usize| {
            let mut pool = BufferPool::new(&d, cap);
            for &p in &walk {
                pool.get(f, p);
            }
            pool.misses
        };
        let small = run(2);
        let big = run(8);
        assert!(big < small, "big pool {big} misses vs small {small}");
        assert_eq!(big, 8, "full residency misses each page exactly once");
    }

    #[test]
    fn partial_last_page() {
        let d = disk();
        let f = d.create();
        d.append(f, &[7u8; 20]); // 1.25 pages
        let mut pool = BufferPool::new(&d, 2);
        assert_eq!(pool.get(f, 0).len(), 16);
        assert_eq!(pool.get(f, 1).len(), 4);
    }
}
