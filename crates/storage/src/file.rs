use crate::{FileId, IoError, SimDisk};

/// Buffered append-only byte sink over a [`SimDisk`] file.
///
/// Bytes accumulate in a buffer of `buffer_pages` pages and are flushed as a
/// single contiguous request (`PT + buffer_pages` units). A larger buffer
/// amortises the positioning penalty — the memory/IO trade-off every
/// algorithm in this workspace has to budget for.
pub struct FileWriter {
    disk: SimDisk,
    file: FileId,
    buf: Vec<u8>,
    cap: usize,
    bytes_written: u64,
}

impl FileWriter {
    pub fn new(disk: &SimDisk, file: FileId, buffer_pages: usize) -> Self {
        let cap = disk.model().page_size * buffer_pages.max(1);
        FileWriter {
            disk: disk.clone(),
            file,
            buf: Vec::with_capacity(cap),
            cap,
            bytes_written: 0,
        }
    }

    /// Memory held by this writer's buffer, for memory-budget accounting.
    pub fn buffer_bytes(&self) -> usize {
        self.cap
    }

    pub fn file(&self) -> FileId {
        self.file
    }

    /// Total bytes pushed (flushed or not).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Buffers `data`, flushing full buffers as single requests. An error
    /// surfaces only when a flush exhausts the disk's retry budget; the
    /// failed buffer is kept, so a later flush retries the same bytes.
    pub fn try_write(&mut self, mut data: &[u8]) -> Result<(), IoError> {
        self.bytes_written += data.len() as u64;
        while !data.is_empty() {
            let room = self.cap - self.buf.len();
            let take = room.min(data.len());
            self.buf.extend_from_slice(&data[..take]);
            data = &data[take..];
            if self.buf.len() == self.cap {
                self.disk.try_append(self.file, &self.buf)?;
                self.buf.clear();
            }
        }
        Ok(())
    }

    /// Infallible wrapper over [`FileWriter::try_write`]; panics with the
    /// typed error's message if the flush cannot be satisfied.
    pub fn write(&mut self, data: &[u8]) {
        self.try_write(data)
            .unwrap_or_else(|e| panic!("unhandled simulated-disk error: {e}"))
    }

    /// Flushes any buffered bytes and returns the file handle.
    pub fn try_finish(mut self) -> Result<FileId, IoError> {
        if !self.buf.is_empty() {
            self.disk.try_append(self.file, &self.buf)?;
            self.buf.clear();
        }
        Ok(self.file)
    }

    /// Infallible wrapper over [`FileWriter::try_finish`].
    pub fn finish(self) -> FileId {
        self.try_finish()
            .unwrap_or_else(|e| panic!("unhandled simulated-disk error: {e}"))
    }
}

/// Buffered sequential byte source over a byte range of a [`SimDisk`] file.
///
/// Refills read `buffer_pages` pages per request; the range form
/// ([`FileReader::with_range`]) lets the multiway merge read several runs of
/// one file concurrently.
pub struct FileReader {
    disk: SimDisk,
    file: FileId,
    buf: Vec<u8>,
    buf_pos: usize,
    offset: u64,
    end: u64,
    cap: usize,
}

impl FileReader {
    /// Reads the whole file.
    pub fn new(disk: &SimDisk, file: FileId, buffer_pages: usize) -> Self {
        let end = disk.len(file);
        Self::with_range(disk, file, 0, end, buffer_pages)
    }

    /// Reads bytes `[start, end)` of the file.
    pub fn with_range(disk: &SimDisk, file: FileId, start: u64, end: u64, buffer_pages: usize) -> Self {
        let cap = disk.model().page_size * buffer_pages.max(1);
        FileReader {
            disk: disk.clone(),
            file,
            buf: Vec::new(),
            buf_pos: 0,
            offset: start,
            end,
            cap,
        }
    }

    /// Memory held by this reader's buffer, for memory-budget accounting.
    pub fn buffer_bytes(&self) -> usize {
        self.cap
    }

    /// Bytes still unread (buffered + on disk).
    pub fn remaining(&self) -> u64 {
        (self.buf.len() - self.buf_pos) as u64 + (self.end - self.offset)
    }

    fn try_refill(&mut self) -> Result<(), IoError> {
        debug_assert_eq!(self.buf_pos, self.buf.len());
        let want = (self.cap as u64).min(self.end - self.offset) as usize;
        self.buf.resize(want, 0);
        self.buf_pos = 0;
        if want > 0 {
            self.disk.try_read(self.file, self.offset, &mut self.buf)?;
            self.offset += want as u64;
        }
        Ok(())
    }

    /// Fills `out` completely; `Ok(false)` (leaving `out` unspecified) if
    /// fewer than `out.len()` bytes remain. An error surfaces only when a
    /// buffer refill exhausts the disk's retry budget; the stream should be
    /// considered broken afterwards — recovery restarts from a fresh reader
    /// (that is what the join-level degradation paths do).
    pub fn try_read_exact(&mut self, out: &mut [u8]) -> Result<bool, IoError> {
        if (self.remaining() as usize) < out.len() {
            return Ok(false);
        }
        let mut done = 0;
        while done < out.len() {
            if self.buf_pos == self.buf.len() {
                self.try_refill()?;
            }
            let avail = self.buf.len() - self.buf_pos;
            let take = avail.min(out.len() - done);
            out[done..done + take].copy_from_slice(&self.buf[self.buf_pos..self.buf_pos + take]);
            self.buf_pos += take;
            done += take;
        }
        Ok(true)
    }

    /// Infallible wrapper over [`FileReader::try_read_exact`]; panics with
    /// the typed error's message if a refill cannot be satisfied.
    pub fn read_exact(&mut self, out: &mut [u8]) -> bool {
        self.try_read_exact(out)
            .unwrap_or_else(|e| panic!("unhandled simulated-disk error: {e}"))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::DiskModel;

    fn disk() -> SimDisk {
        SimDisk::new(DiskModel {
            page_size: 8,
            positioning_ratio: 4.0,
            transfer_secs_per_page: 1.0,
            cpu_slowdown: 1.0,
            channels: 1,
            degraded_channel: None,
        })
    }

    #[test]
    fn writer_reader_roundtrip_across_buffers() {
        let d = disk();
        let f = d.create();
        let mut w = FileWriter::new(&d, f, 2); // 16-byte buffer
        let payload: Vec<u8> = (0..100u8).collect();
        w.write(&payload[..37]);
        w.write(&payload[37..]);
        let f = w.finish();
        assert_eq!(d.len(f), 100);

        let mut r = FileReader::new(&d, f, 3);
        let mut out = vec![0u8; 100];
        assert!(r.read_exact(&mut out));
        assert_eq!(out, payload);
        assert!(!r.read_exact(&mut [0u8; 1]));
    }

    #[test]
    fn writer_flushes_full_buffers_as_single_requests() {
        let d = disk();
        let f = d.create();
        let mut w = FileWriter::new(&d, f, 4); // 32-byte buffer
        w.write(&[1u8; 64]);
        w.finish();
        let s = d.stats();
        assert_eq!(s.write_requests, 2); // two full 4-page flushes
        assert_eq!(s.pages_written, 8);
    }

    #[test]
    fn reader_range_reads_only_its_slice() {
        let d = disk();
        let f = d.create();
        let mut w = FileWriter::new(&d, f, 1);
        w.write(&(0..64u8).collect::<Vec<_>>());
        w.finish();
        let mut r = FileReader::with_range(&d, f, 16, 32, 1);
        assert_eq!(r.remaining(), 16);
        let mut out = [0u8; 16];
        assert!(r.read_exact(&mut out));
        assert_eq!(out.to_vec(), (16..32u8).collect::<Vec<_>>());
        assert!(!r.read_exact(&mut out));
    }

    #[test]
    fn larger_read_buffers_cost_fewer_units() {
        let d = disk();
        let f = d.create();
        let mut w = FileWriter::new(&d, f, 8);
        w.write(&[0u8; 256]); // 32 pages
        w.finish();
        d.reset_stats();
        let mut out = vec![0u8; 256];
        FileReader::new(&d, f, 1).read_exact(&mut out);
        let small = d.model().units(&d.stats());
        d.reset_stats();
        FileReader::new(&d, f, 16).read_exact(&mut out);
        let big = d.model().units(&d.stats());
        assert!(big < small, "big-buffer read {big} not cheaper than {small}");
    }
}
