//! Deterministic fault injection and typed I/O errors for the simulated disk.
//!
//! The paper's cost model (§5) treats the disk as perfectly reliable; a
//! production-scale system cannot. This module adds a *failure model* that is
//! as deterministic as the cost model itself: whether a given page request
//! fails, how many times it fails before succeeding, and what kind of failure
//! it is are all pure functions of a seed and the request's identity — never
//! of wall-clock time, scheduling, or a shared mutable RNG.
//!
//! ## Request identity
//!
//! A fault decision is keyed on `(direction, byte offset, byte length)` of a
//! request — deliberately **excluding** the [`crate::FileId`]. File ids are
//! allocated in racy order when parallel workers repartition through forked
//! disk handles, so any scheme keyed on the file id would inject different
//! faults at `threads = 1` and `threads = 4`. The identity triple, by
//! contrast, is determined by *what* the algorithm reads and writes, which is
//! itself deterministic; the multiset of request identities issued by a join
//! is the same for every thread count, so the injected failures (and the
//! retries, backoff, and extra page-transfer units they cost) are too.
//!
//! Requests sharing an identity share a per-identity *attempt counter* (kept
//! on the disk's shared [fault state](crate::SimDisk::with_faults) so that
//! forked handles draw from one pool): the first `fail_count` attempts fail,
//! all later attempts succeed. Each failure is consumed by whichever handle
//! performs it, so totals stay deterministic under any interleaving.

use crate::FileId;

/// Direction of a simulated disk request, for fault-identity purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoOp {
    Read,
    Write,
}

impl IoOp {
    fn tag(self) -> u64 {
        match self {
            IoOp::Read => 0x52,  // 'R'
            IoOp::Write => 0x57, // 'W'
        }
    }
}

/// Classification of a simulated I/O failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoErrorKind {
    /// A read that failed in transit; retrying re-issues the request.
    TransientRead,
    /// A write that failed before any byte reached the platter.
    TransientWrite,
    /// A write that was interrupted mid-page. The simulated disk detects the
    /// tear at write time and persists nothing (atomic rollback), so a retry
    /// starts from clean state.
    TornWrite,
    /// Bit-rot: the page content read off the platter does not match the
    /// stored per-page checksum. A retry re-reads the page clean.
    ChecksumMismatch,
    /// The file was deleted; the request can never succeed.
    FileDeleted,
    /// The byte range extends past the end of the file.
    OutOfBounds,
    /// The operation does not support the requested fault configuration
    /// (e.g. fault injection requested for an algorithm that runs fully
    /// in memory).
    Unsupported,
    /// A damaged sector: every re-read of the page fails the checksum, no
    /// matter how many retries are spent. The data is only recoverable by
    /// rebuilding the file from its source (quarantine + recompute).
    PersistentCorruption,
    /// The simulated volume is out of capacity (ENOSPC): the write can never
    /// succeed until space is freed or the plan is changed.
    DiskFull,
}

impl IoErrorKind {
    /// `true` for kinds that a retry can plausibly cure.
    pub fn is_transient(self) -> bool {
        matches!(
            self,
            IoErrorKind::TransientRead
                | IoErrorKind::TransientWrite
                | IoErrorKind::TornWrite
                | IoErrorKind::ChecksumMismatch
        )
    }

    /// `true` for kinds that *no* retry can cure: the same request will fail
    /// the same way forever. The disk surfaces these after a single attempt
    /// (no simulated backoff is charged) and the join layers respond by
    /// quarantining the damaged file and recomputing from source.
    pub fn is_persistent(self) -> bool {
        matches!(
            self,
            IoErrorKind::PersistentCorruption | IoErrorKind::DiskFull
        )
    }

    /// Human-readable description, used by `Display` and the CLI taxonomy.
    pub fn describe(self) -> &'static str {
        match self {
            IoErrorKind::TransientRead => "transient read error",
            IoErrorKind::TransientWrite => "transient write error",
            IoErrorKind::TornWrite => "torn write",
            IoErrorKind::ChecksumMismatch => "page checksum mismatch",
            IoErrorKind::FileDeleted => "file was deleted",
            IoErrorKind::OutOfBounds => "request extends past end of file",
            IoErrorKind::Unsupported => "operation unsupported under fault injection",
            IoErrorKind::PersistentCorruption => {
                "persistent media corruption (re-reads cannot cure a damaged sector)"
            }
            IoErrorKind::DiskFull => "simulated disk full (ENOSPC)",
        }
    }
}

/// A typed error from the simulated disk: what failed, where, and after how
/// many attempts the request was given up on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoError {
    pub kind: IoErrorKind,
    pub file: FileId,
    pub offset: u64,
    pub len: u64,
    /// Attempts performed (including the failing one) before surfacing.
    pub attempts: u32,
}

impl IoError {
    /// An error that refers to no specific request: the *configuration*
    /// itself is unsupported — e.g. fault injection requested for a baseline
    /// algorithm that has no fallible code path.
    pub fn unsupported() -> Self {
        IoError {
            kind: IoErrorKind::Unsupported,
            file: FileId::sentinel(),
            offset: 0,
            len: 0,
            attempts: 0,
        }
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({:?}, offset {}, len {}, {} attempt{})",
            self.kind.describe(),
            self.file,
            self.offset,
            self.len,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
        )
    }
}

impl std::error::Error for IoError {}

/// A deterministic crash point: where in the run the process "dies".
///
/// Crash injection simulates a kill -9 at a named durability boundary of the
/// checkpoint protocol, so recovery is testable at exactly the states a real
/// crash can leave behind:
///
/// * [`AfterCommit`](CrashPoint::AfterCommit)`(n)` — the process dies
///   immediately *after* the `n`-th journal commit record is durable. The
///   journal and results file are consistent; the committed prefix must be
///   preserved and never re-emitted on resume.
/// * [`MidPartition`](CrashPoint::MidPartition)`(n)` — the process dies
///   *while appending* the `n+1`-th journal record: a torn half-record is
///   left at the journal tail. Recovery must truncate the tear and roll the
///   results file back to the last committed watermark.
/// * [`MidRename`](CrashPoint::MidRename) — the process dies during the
///   final manifest publish: the new `Done` manifest bytes are written but
///   the superblock pointer making them current is not. Resume must keep
///   using the previous manifest (whose journal is fully committed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// Die right after the `n`-th (1-based) journal commit becomes durable.
    AfterCommit(u32),
    /// Die while writing the `n+1`-th journal record, leaving a torn tail
    /// (`n` is the number of commits that completed before the tear).
    MidPartition(u32),
    /// Die between writing the final manifest and publishing its pointer.
    MidRename,
}

impl CrashPoint {
    /// Parses the CLI / repro-file spelling: `after-commit:N`,
    /// `mid-partition:N`, or `mid-rename`.
    pub fn from_spec(spec: &str) -> Option<CrashPoint> {
        if spec == "mid-rename" {
            return Some(CrashPoint::MidRename);
        }
        let (name, n) = spec.split_once(':')?;
        let n: u32 = n.parse().ok()?;
        match name {
            "after-commit" => Some(CrashPoint::AfterCommit(n)),
            "mid-partition" => Some(CrashPoint::MidPartition(n)),
            _ => None,
        }
    }

    /// The inverse of [`from_spec`](CrashPoint::from_spec).
    pub fn spec(&self) -> String {
        match self {
            CrashPoint::AfterCommit(n) => format!("after-commit:{n}"),
            CrashPoint::MidPartition(n) => format!("mid-partition:{n}"),
            CrashPoint::MidRename => "mid-rename".to_string(),
        }
    }
}

impl std::fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.spec())
    }
}

/// What went wrong at the join level. [`Io`](JoinErrorKind::Io) is the
/// classic case (a request exhausted its retry budget); the other variants
/// carry the interruption machinery of the checkpoint layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JoinErrorKind {
    /// A disk request exhausted its retry budget and every degradation path.
    Io(IoError),
    /// The ordered pool's requeue cap was exhausted for one partition:
    /// `attempts` full retry budgets were spent, `last` is the error the
    /// final attempt died with.
    RequeueExhausted { attempts: u32, last: IoError },
    /// The simulated-time deadline expired; partial results were emitted and
    /// the manifest (if checkpointing) is left resumable.
    DeadlineExceeded { elapsed: f64, deadline: f64 },
    /// The run was cooperatively cancelled via a `CancelToken`.
    Cancelled,
    /// An injected [`CrashPoint`] fired: the process "died" and left its run
    /// directory behind exactly as a kill would.
    Crashed(CrashPoint),
}

/// A join-level error: what happened plus where in the pipeline it escaped.
///
/// This is the error type the fallible join entry points
/// (`try_pbsm_join`, `try_s3j_join`, `SpatialJoin::try_run`) surface once a
/// request has exhausted its retry budget and every degradation path — or
/// once the run is interrupted by cancellation, deadline expiry, or an
/// injected crash.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinError {
    /// Pipeline phase the error escaped from (`"partition"`, `"join"`,
    /// `"repartition"`, `"dedup"`, `"build"`, `"sort"`, `"scan"`, …).
    pub phase: &'static str,
    /// Partition (task) index for per-partition phases, if known.
    pub partition: Option<u32>,
    pub kind: JoinErrorKind,
}

impl JoinError {
    pub fn new(phase: &'static str, io: IoError) -> Self {
        JoinError {
            phase,
            partition: None,
            kind: JoinErrorKind::Io(io),
        }
    }

    pub fn in_partition(phase: &'static str, partition: u32, io: IoError) -> Self {
        JoinError {
            phase,
            partition: Some(partition),
            kind: JoinErrorKind::Io(io),
        }
    }

    /// Terminal requeue-cap error, naming the partition that kept failing.
    pub fn requeue_exhausted(
        phase: &'static str,
        partition: u32,
        attempts: u32,
        last: IoError,
    ) -> Self {
        JoinError {
            phase,
            partition: Some(partition),
            kind: JoinErrorKind::RequeueExhausted { attempts, last },
        }
    }

    pub fn deadline_exceeded(phase: &'static str, elapsed: f64, deadline: f64) -> Self {
        JoinError {
            phase,
            partition: None,
            kind: JoinErrorKind::DeadlineExceeded { elapsed, deadline },
        }
    }

    pub fn cancelled(phase: &'static str) -> Self {
        JoinError {
            phase,
            partition: None,
            kind: JoinErrorKind::Cancelled,
        }
    }

    pub fn crashed(phase: &'static str, point: CrashPoint) -> Self {
        JoinError {
            phase,
            partition: None,
            kind: JoinErrorKind::Crashed(point),
        }
    }

    /// The underlying [`IoError`], when the failure was I/O-shaped.
    pub fn io(&self) -> Option<&IoError> {
        match &self.kind {
            JoinErrorKind::Io(io) => Some(io),
            JoinErrorKind::RequeueExhausted { last, .. } => Some(last),
            _ => None,
        }
    }

    /// `true` when the run directory is left in a state `--resume` can
    /// complete from (crash, cancellation, or deadline expiry under
    /// checkpointing).
    pub fn is_resumable(&self) -> bool {
        matches!(
            self.kind,
            JoinErrorKind::Crashed(_)
                | JoinErrorKind::Cancelled
                | JoinErrorKind::DeadlineExceeded { .. }
        )
    }
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (&self.kind, self.partition) {
            (JoinErrorKind::Io(io), Some(p)) => {
                write!(f, "join failed in phase `{}` (partition {}): {}", self.phase, p, io)
            }
            (JoinErrorKind::Io(io), None) => {
                write!(f, "join failed in phase `{}`: {}", self.phase, io)
            }
            (JoinErrorKind::RequeueExhausted { attempts, last }, p) => write!(
                f,
                "join failed in phase `{}`: partition {} exhausted its requeue cap \
                 ({} attempt{}); last error: {}",
                self.phase,
                p.map_or_else(|| "?".to_string(), |p| p.to_string()),
                attempts,
                if *attempts == 1 { "" } else { "s" },
                last,
            ),
            (JoinErrorKind::DeadlineExceeded { elapsed, deadline }, _) => write!(
                f,
                "join deadline exceeded in phase `{}`: {:.4}s simulated of a {:.4}s budget",
                self.phase, elapsed, deadline,
            ),
            (JoinErrorKind::Cancelled, _) => {
                write!(f, "join cancelled in phase `{}`", self.phase)
            }
            (JoinErrorKind::Crashed(point), _) => {
                write!(f, "simulated crash ({point}) in phase `{}`", self.phase)
            }
        }
    }
}

impl std::error::Error for JoinError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.kind {
            JoinErrorKind::Io(io) => Some(io),
            JoinErrorKind::RequeueExhausted { last, .. } => Some(last),
            _ => None,
        }
    }
}

/// SplitMix64 finalizer — the same mixer the vendored `rand` uses for
/// seeding. Statistically strong enough for Bernoulli draws and cheap enough
/// to run on every request.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a hash to a uniform draw in `[0, 1)`.
#[inline]
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Sentinel `fail_count`: the identity never succeeds.
pub const PERMANENT: u32 = u32::MAX;

/// A seeded, deterministic plan of disk faults.
///
/// The plan is a *pure function* from request identity to fate: for each
/// `(op, offset, len)` it decides whether the identity is faulty at all, how
/// many leading attempts fail (`fail_count`), whether the fault is permanent,
/// and what [`IoErrorKind`] the failures report. See the module docs for why
/// the identity excludes the file id.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed all per-identity draws derive from.
    pub seed: u64,
    /// Fraction of request identities that fail at least once, in `[0, 1]`.
    pub fault_rate: f64,
    /// Upper bound on consecutive failures of a non-permanent faulty
    /// identity (the actual count is a seeded draw in `1..=max_consecutive`).
    pub max_consecutive: u32,
    /// Fraction of *faulty* identities that never succeed, in `[0, 1]`.
    pub permanent_rate: f64,
    /// Restrict injection to read requests. Used by the degraded regime:
    /// a read that outlasts one retry budget is cured by the join layer
    /// (repartition fallback, partition requeue), but a write that outlasts
    /// its budget has no second chance — the bytes were never persisted.
    pub reads_only: bool,
    /// Kill the run at a named durability boundary of the checkpoint
    /// protocol (no effect on runs that don't checkpoint). Orthogonal to
    /// the per-request fault machinery: a crash-only plan keeps
    /// `fault_rate` at zero.
    pub crash: Option<CrashPoint>,
    /// Fraction of *(channel tag, page)* locations on tagged data files that
    /// are damaged sectors, in `[0, 1]`. A read touching a damaged page of a
    /// tagged, non-spare file fails with
    /// [`IoErrorKind::PersistentCorruption`] on every attempt — the damage is
    /// keyed on the file's channel tag and page index (not the request
    /// identity), so re-reading through any buffer size hits the same bad
    /// sector. Untagged files (manifest, journal, results) model a protected
    /// system volume and are never damaged; spare files
    /// ([`crate::SimDisk::create_spare_on`]) model remapped replacement
    /// sectors and are exempt too.
    pub persistent_rate: f64,
    /// Simulated volume capacity in pages. When the live pages across all
    /// files of a disk handle's store would exceed this budget, the append
    /// fails with [`IoErrorKind::DiskFull`] — immediately, since retrying
    /// cannot free space. `None` means unbounded (the historic behaviour).
    pub disk_budget_pages: Option<u64>,
    /// Degrade one data channel: `(channel, factor)` multiplies the
    /// simulated transfer time of every unit on that channel by `factor`
    /// (≥ 1), stressing deadlines without changing a single counter.
    /// Channel indices are data-channel indices, i.e. `0..D`.
    pub degraded_channel: Option<(usize, f64)>,
}

impl FaultPlan {
    /// The identity plan: no faults of any taxon. Base for the named
    /// constructors and for struct-update spelling at call sites that want
    /// to set only a few fields.
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            fault_rate: 0.0,
            max_consecutive: 0,
            permanent_rate: 0.0,
            reads_only: false,
            crash: None,
            persistent_rate: 0.0,
            disk_budget_pages: None,
            degraded_channel: None,
        }
    }

    /// A plan whose every fault is cured within the default
    /// [`crate::RetryPolicy`] budget: any join must produce output identical
    /// to the fault-free run, just at a higher simulated-time cost.
    pub fn recoverable(seed: u64) -> Self {
        FaultPlan {
            fault_rate: 0.05,
            max_consecutive: 2,
            ..FaultPlan::none(seed)
        }
    }

    /// A plan whose faulty identities outlast one retry budget (with the
    /// default policy of 4 attempts) but succeed on a later re-issue —
    /// exercising the partition-requeue and degradation paths.
    pub fn degraded(seed: u64) -> Self {
        FaultPlan {
            fault_rate: 0.02,
            max_consecutive: 6,
            reads_only: true,
            ..FaultPlan::none(seed)
        }
    }

    /// A plan under which **every** request fails forever: joins that touch
    /// the disk must surface a typed error (never panic or hang).
    pub fn unrecoverable(seed: u64) -> Self {
        FaultPlan {
            fault_rate: 1.0,
            max_consecutive: 1,
            permanent_rate: 1.0,
            ..FaultPlan::none(seed)
        }
    }

    /// A plan that injects **no** per-request faults but kills the run at
    /// `point` — the crash-recovery sweep's workhorse.
    pub fn crash_only(seed: u64, point: CrashPoint) -> Self {
        FaultPlan {
            crash: Some(point),
            ..FaultPlan::none(seed)
        }
    }

    /// A plan with **persistent media damage only**: a seeded fraction of
    /// (channel, page) sectors on tagged data files fail every read. Joins
    /// must either quarantine-recompute to the exact clean result or surface
    /// a typed error — a retry alone can never cure these.
    pub fn persistent(seed: u64) -> Self {
        FaultPlan {
            persistent_rate: 0.05,
            ..FaultPlan::none(seed)
        }
    }

    /// Adds a crash point to an existing plan (faults *and* a crash).
    pub fn with_crash(mut self, point: CrashPoint) -> Self {
        self.crash = Some(point);
        self
    }

    /// Sets the persistent bad-sector rate on an existing plan.
    pub fn with_persistent_rate(mut self, rate: f64) -> Self {
        self.persistent_rate = rate;
        self
    }

    /// Caps the simulated volume at `pages` pages (ENOSPC past it).
    pub fn with_disk_budget(mut self, pages: u64) -> Self {
        self.disk_budget_pages = Some(pages);
        self
    }

    /// Multiplies the transfer time of data channel `channel` by `factor`.
    pub fn with_degraded_channel(mut self, channel: usize, factor: f64) -> Self {
        self.degraded_channel = Some((channel, factor.max(1.0)));
        self
    }

    /// `true` when any taxon of this plan requires graceful-degradation
    /// machinery (as opposed to plain retries).
    pub fn has_persistent_taxa(&self) -> bool {
        self.persistent_rate > 0.0 || self.disk_budget_pages.is_some()
    }

    /// Whether the page at index `page` of a file tagged with channel
    /// `channel_tag` is a damaged sector. A pure function of
    /// `(seed, channel_tag, page)` — independent of the request identity, so
    /// any read overlapping the page fails identically at every buffer size
    /// and thread count.
    #[inline]
    pub fn bad_page(&self, channel_tag: u64, page: u64) -> bool {
        if self.persistent_rate <= 0.0 {
            return false;
        }
        let h = mix(mix(mix(self.seed ^ 0xBAD_5EC7) ^ channel_tag.rotate_left(17)) ^ page);
        unit(h) < self.persistent_rate
    }

    /// Salt identifying a request, stable across processes and thread
    /// counts. Also used to derive deterministic backoff jitter.
    #[inline]
    pub fn identity_salt(&self, op: IoOp, offset: u64, len: u64) -> u64 {
        let mut h = mix(self.seed ^ op.tag());
        h = mix(h ^ offset);
        mix(h ^ len.rotate_left(32))
    }

    /// The fate of an identity: `None` if it never fails, otherwise
    /// `(fail_count, kind)` where the first `fail_count` attempts fail
    /// ([`PERMANENT`] means all of them do).
    pub fn fate(&self, op: IoOp, offset: u64, len: u64) -> Option<(u32, IoErrorKind)> {
        if self.fault_rate <= 0.0 || (self.reads_only && op == IoOp::Write) {
            return None;
        }
        let salt = self.identity_salt(op, offset, len);
        if unit(salt) >= self.fault_rate {
            return None;
        }
        let h2 = mix(salt);
        let kind = match (op, h2 & 1 == 0) {
            (IoOp::Read, true) => IoErrorKind::TransientRead,
            (IoOp::Read, false) => IoErrorKind::ChecksumMismatch,
            (IoOp::Write, true) => IoErrorKind::TransientWrite,
            (IoOp::Write, false) => IoErrorKind::TornWrite,
        };
        let h3 = mix(h2);
        if unit(h3) < self.permanent_rate {
            return Some((PERMANENT, kind));
        }
        let span = self.max_consecutive.max(1) as u64;
        let count = 1 + (mix(h3 ^ 0x5EED) % span) as u32;
        Some((count, kind))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn fate_is_a_pure_function_of_identity() {
        let p = FaultPlan::recoverable(42);
        for off in [0u64, 8192, 123_456] {
            for len in [1u64, 4096, 65_536] {
                assert_eq!(p.fate(IoOp::Read, off, len), p.fate(IoOp::Read, off, len));
                assert_eq!(p.fate(IoOp::Write, off, len), p.fate(IoOp::Write, off, len));
            }
        }
    }

    #[test]
    fn recoverable_plan_hits_roughly_its_rate() {
        let p = FaultPlan::recoverable(7);
        let n = 10_000u64;
        let faulty = (0..n)
            .filter(|&i| p.fate(IoOp::Read, i * 4096, 4096).is_some())
            .count();
        // 5% ± generous slack.
        assert!((200..=800).contains(&faulty), "faulty = {faulty}");
        for i in 0..n {
            if let Some((count, kind)) = p.fate(IoOp::Write, i * 512, 512) {
                assert!((1..=2).contains(&count));
                assert!(kind.is_transient());
            }
        }
    }

    #[test]
    fn unrecoverable_plan_fails_everything_forever() {
        let p = FaultPlan::unrecoverable(3);
        for i in 0..100u64 {
            let (count, _) = p.fate(IoOp::Read, i * 64, 64).expect("must be faulty");
            assert_eq!(count, PERMANENT);
        }
    }

    #[test]
    fn different_seeds_give_different_plans() {
        let a = FaultPlan::recoverable(1);
        let b = FaultPlan::recoverable(2);
        let differs = (0..1000u64)
            .any(|i| a.fate(IoOp::Read, i * 4096, 4096) != b.fate(IoOp::Read, i * 4096, 4096));
        assert!(differs);
    }

    #[test]
    fn error_display_mentions_kind_and_location() {
        let d = crate::SimDisk::with_default_model();
        let f = d.create();
        let e = IoError {
            kind: IoErrorKind::FileDeleted,
            file: f,
            offset: 0,
            len: 16,
            attempts: 1,
        };
        let s = e.to_string();
        assert!(s.contains("file was deleted"), "{s}");
        let j = JoinError::in_partition("join", 3, e);
        let s = j.to_string();
        assert!(s.contains("phase `join`") && s.contains("partition 3"), "{s}");
    }

    #[test]
    fn crash_point_spec_round_trips() {
        for p in [
            CrashPoint::AfterCommit(1),
            CrashPoint::AfterCommit(17),
            CrashPoint::MidPartition(2),
            CrashPoint::MidRename,
        ] {
            assert_eq!(CrashPoint::from_spec(&p.spec()), Some(p));
        }
        assert_eq!(CrashPoint::from_spec("mid-rename:3"), None);
        assert_eq!(CrashPoint::from_spec("after-commit"), None);
        assert_eq!(CrashPoint::from_spec("after-commit:x"), None);
        assert_eq!(CrashPoint::from_spec("bogus:1"), None);
    }

    #[test]
    fn requeue_exhausted_names_the_partition_and_last_error() {
        let d = crate::SimDisk::with_default_model();
        let f = d.create();
        let last = IoError {
            kind: IoErrorKind::TransientRead,
            file: f,
            offset: 8192,
            len: 4096,
            attempts: 4,
        };
        let j = JoinError::requeue_exhausted("join", 7, 2, last);
        assert_eq!(j.partition, Some(7));
        let s = j.to_string();
        assert!(
            s.contains("partition 7") && s.contains("2 attempts") && s.contains("transient read"),
            "{s}"
        );
        assert_eq!(j.io(), Some(&last));
    }

    #[test]
    fn interruption_kinds_are_resumable_and_io_kinds_are_not() {
        let io = IoError::unsupported();
        assert!(!JoinError::new("join", io).is_resumable());
        assert!(!JoinError::requeue_exhausted("join", 0, 1, io).is_resumable());
        assert!(JoinError::cancelled("join").is_resumable());
        assert!(JoinError::deadline_exceeded("join", 2.0, 1.0).is_resumable());
        assert!(JoinError::crashed("join", CrashPoint::MidRename).is_resumable());
        assert!(JoinError::cancelled("join").io().is_none());
    }

    #[test]
    fn persistent_kinds_are_neither_transient_nor_retryable() {
        for k in [IoErrorKind::PersistentCorruption, IoErrorKind::DiskFull] {
            assert!(k.is_persistent());
            assert!(!k.is_transient());
            assert!(!k.describe().is_empty());
        }
        for k in [
            IoErrorKind::TransientRead,
            IoErrorKind::TransientWrite,
            IoErrorKind::TornWrite,
            IoErrorKind::ChecksumMismatch,
            IoErrorKind::FileDeleted,
            IoErrorKind::OutOfBounds,
            IoErrorKind::Unsupported,
        ] {
            assert!(!k.is_persistent());
        }
    }

    #[test]
    fn bad_page_is_pure_and_hits_roughly_its_rate() {
        let p = FaultPlan::persistent(11);
        let n = 10_000u64;
        let bad = (0..n).filter(|&pg| p.bad_page(3, pg)).count();
        // 5% ± generous slack.
        assert!((200..=800).contains(&bad), "bad = {bad}");
        for pg in 0..64u64 {
            assert_eq!(p.bad_page(3, pg), p.bad_page(3, pg));
        }
        // Different tags damage different sectors.
        let differs = (0..1000u64).any(|pg| p.bad_page(0, pg) != p.bad_page(1, pg));
        assert!(differs);
        // The base plans keep the disk's platters pristine.
        assert!((0..1000u64).all(|pg| !FaultPlan::recoverable(11).bad_page(0, pg)));
    }

    #[test]
    fn persistent_plan_injects_no_identity_faults() {
        let p = FaultPlan::persistent(5);
        for i in 0..1000u64 {
            assert_eq!(p.fate(IoOp::Read, i * 4096, 4096), None);
            assert_eq!(p.fate(IoOp::Write, i * 4096, 4096), None);
        }
        assert!(p.has_persistent_taxa());
        assert!(!FaultPlan::recoverable(5).has_persistent_taxa());
        assert!(FaultPlan::none(5).with_disk_budget(16).has_persistent_taxa());
    }

    #[test]
    fn plan_builders_compose() {
        let p = FaultPlan::none(9)
            .with_persistent_rate(0.25)
            .with_disk_budget(128)
            .with_degraded_channel(2, 4.0);
        assert_eq!(p.persistent_rate, 0.25);
        assert_eq!(p.disk_budget_pages, Some(128));
        assert_eq!(p.degraded_channel, Some((2, 4.0)));
        // Sub-1.0 slowdown factors clamp to the identity.
        assert_eq!(
            FaultPlan::none(9).with_degraded_channel(0, 0.5).degraded_channel,
            Some((0, 1.0))
        );
    }

    #[test]
    fn crash_only_plan_injects_no_request_faults() {
        let p = FaultPlan::crash_only(9, CrashPoint::AfterCommit(3));
        for i in 0..1000u64 {
            assert_eq!(p.fate(IoOp::Read, i * 4096, 4096), None);
            assert_eq!(p.fate(IoOp::Write, i * 4096, 4096), None);
        }
        assert_eq!(p.crash, Some(CrashPoint::AfterCommit(3)));
    }
}
