use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::{FileId, FixedRecord, IoError, RecordReader, RecordWriter, SimDisk};

/// Outcome counters of an [`external_sort_by`] invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SortStats {
    /// Initial sorted runs formed.
    pub runs: usize,
    /// Merge passes over the data (0 if a single run sufficed).
    pub merge_passes: usize,
}

/// Buffer sizing for a given memory budget: buffers must scale *down* with
/// tiny budgets or they would swallow the whole run-formation memory (with
/// 8 KiB pages and a 64 KiB budget, fixed 4-page buffers would leave room
/// for one-record runs and an explosion of merge passes).
#[derive(Clone, Copy)]
struct BufferPlan {
    /// Reader buffer while scanning unsorted input.
    in_pages: usize,
    /// Writer buffer for runs and merge output.
    out_pages: usize,
    /// Reader buffer per run during merging.
    run_pages: usize,
}

impl BufferPlan {
    fn for_budget(mem_bytes: usize, page_size: usize) -> BufferPlan {
        let budget_pages = (mem_bytes / page_size).max(2);
        BufferPlan {
            in_pages: (budget_pages / 8).clamp(1, 4),
            out_pages: (budget_pages / 8).clamp(1, 4),
            run_pages: (budget_pages / 16).clamp(1, 2),
        }
    }

    /// Records per sorted run after reserving the scan/output buffers; at
    /// least half the budget always goes to run formation.
    fn run_records(&self, mem_bytes: usize, page_size: usize, record: usize) -> usize {
        let reserved = (self.in_pages + self.out_pages) * page_size;
        (mem_bytes.saturating_sub(reserved).max(mem_bytes / 2).max(record)) / record
    }

    /// Merge fan-in under the budget.
    fn fan_in(&self, mem_bytes: usize, page_size: usize) -> usize {
        ((mem_bytes / page_size).saturating_sub(self.out_pages) / self.run_pages).max(2)
    }
}

/// Sorts a record file with at most `mem_bytes` of working memory:
/// memory-bounded run formation followed by multiway merging with a
/// memory-bounded fan-in (classic external merge sort, [Knu 70] / [Gra 93]).
///
/// The input file is left untouched; the sorted output is a fresh file.
/// `key` must be cheap — it is evaluated once per comparison-heap insertion.
///
/// An error surfaces when a page request exhausts the disk's retry budget;
/// intermediate run files are deleted before returning it.
pub fn try_external_sort_by<R, K, F>(
    disk: &SimDisk,
    input: FileId,
    mem_bytes: usize,
    key: F,
) -> Result<(FileId, SortStats), IoError>
where
    R: FixedRecord,
    K: Ord,
    F: Fn(&R) -> K + Copy,
{
    let ps = disk.model().page_size;
    let plan = BufferPlan::for_budget(mem_bytes, ps);
    let run_records = plan.run_records(mem_bytes, ps, R::SIZE);

    // --- Run formation -----------------------------------------------------
    let mut stats = SortStats::default();
    let mut reader = RecordReader::<R>::new(disk, input, plan.in_pages);
    // Runs (and, below, merge outputs) stay on the input's I/O channel: the
    // sort of a partition's data contends with that partition's channel,
    // not with every other channel's.
    let runs_file = disk.create_like(input);
    let mut runs: Vec<(u64, u64)> = Vec::new(); // byte ranges
    let mut offset = 0u64;
    let mut chunk: Vec<R> = Vec::with_capacity(run_records.min(1 << 20));
    let formed = (|| -> Result<(), IoError> {
        loop {
            chunk.clear();
            while chunk.len() < run_records {
                match reader.try_next()? {
                    Some(r) => chunk.push(r),
                    None => break,
                }
            }
            if chunk.is_empty() {
                return Ok(());
            }
            chunk.sort_by_key(|a| key(a));
            let mut w = RecordWriter::<R>::new(disk, runs_file, plan.out_pages);
            for r in &chunk {
                w.try_push(r)?;
            }
            let bytes = (chunk.len() * R::SIZE) as u64;
            w.try_finish()?;
            runs.push((offset, offset + bytes));
            offset += bytes;
            stats.runs += 1;
        }
    })();
    drop(reader);
    if let Err(e) = formed {
        disk.delete(runs_file);
        return Err(e);
    }

    let out = try_merge_runs::<R, K, F>(disk, runs_file, runs, mem_bytes, key, &mut stats)?;
    Ok((out, stats))
}

/// Infallible wrapper over [`try_external_sort_by`]; panics with the typed
/// error's message if a request cannot be satisfied.
pub fn external_sort_by<R, K, F>(
    disk: &SimDisk,
    input: FileId,
    mem_bytes: usize,
    key: F,
) -> (FileId, SortStats)
where
    R: FixedRecord,
    K: Ord,
    F: Fn(&R) -> K + Copy,
{
    try_external_sort_by(disk, input, mem_bytes, key)
        .unwrap_or_else(|e| panic!("unhandled simulated-disk error: {e}"))
}

/// Sorts an in-memory slice into a record file with at most `mem_bytes` of
/// working memory. Unlike [`external_sort_by`] the *input* is read for free
/// (it is already in memory / comes from an upstream operator, which the
/// paper's cost model does not charge); only runs and merge passes hit the
/// disk.
pub fn try_external_sort_slice<R, K, F>(
    disk: &SimDisk,
    data: &[R],
    mem_bytes: usize,
    key: F,
) -> Result<(FileId, SortStats), IoError>
where
    R: FixedRecord,
    K: Ord,
    F: Fn(&R) -> K + Copy,
{
    let ps = disk.model().page_size;
    let plan = BufferPlan::for_budget(mem_bytes, ps);
    let run_records = plan.run_records(mem_bytes, ps, R::SIZE);

    let mut stats = SortStats::default();
    let runs_file = disk.create();
    let mut runs: Vec<(u64, u64)> = Vec::new();
    let mut offset = 0u64;
    for chunk in data.chunks(run_records) {
        let mut sorted: Vec<R> = chunk.to_vec();
        sorted.sort_by_key(|a| key(a));
        let mut w = RecordWriter::<R>::new(disk, runs_file, plan.out_pages);
        let written = (|| -> Result<(), IoError> {
            for r in &sorted {
                w.try_push(r)?;
            }
            w.try_finish()?;
            Ok(())
        })();
        if let Err(e) = written {
            disk.delete(runs_file);
            return Err(e);
        }
        let bytes = (sorted.len() * R::SIZE) as u64;
        runs.push((offset, offset + bytes));
        offset += bytes;
        stats.runs += 1;
    }
    let out = try_merge_runs::<R, K, F>(disk, runs_file, runs, mem_bytes, key, &mut stats)?;
    Ok((out, stats))
}

/// Infallible wrapper over [`try_external_sort_slice`].
pub fn external_sort_slice<R, K, F>(
    disk: &SimDisk,
    data: &[R],
    mem_bytes: usize,
    key: F,
) -> (FileId, SortStats)
where
    R: FixedRecord,
    K: Ord,
    F: Fn(&R) -> K + Copy,
{
    try_external_sort_slice(disk, data, mem_bytes, key)
        .unwrap_or_else(|e| panic!("unhandled simulated-disk error: {e}"))
}

/// Repeated multiway merging until one run remains; returns the final file.
/// On error both the current and the half-written next file are deleted.
fn try_merge_runs<R, K, F>(
    disk: &SimDisk,
    runs_file: FileId,
    runs: Vec<(u64, u64)>,
    mem_bytes: usize,
    key: F,
    stats: &mut SortStats,
) -> Result<FileId, IoError>
where
    R: FixedRecord,
    K: Ord,
    F: Fn(&R) -> K + Copy,
{
    let ps = disk.model().page_size;
    if runs.len() <= 1 {
        return Ok(runs_file);
    }
    let plan = BufferPlan::for_budget(mem_bytes, ps);
    let fan_in = plan.fan_in(mem_bytes, ps);
    let mut current_file = runs_file;
    let mut current_runs = runs;
    while current_runs.len() > 1 {
        stats.merge_passes += 1;
        let next_file = disk.create_like(current_file);
        let mut next_runs: Vec<(u64, u64)> = Vec::new();
        let mut out_offset = 0u64;
        for group in current_runs.chunks(fan_in) {
            let bytes: u64 = group.iter().map(|(s, e)| e - s).sum();
            if let Err(e) = try_merge_group::<R, K, F>(disk, current_file, group, next_file, key, plan) {
                disk.delete(current_file);
                disk.delete(next_file);
                return Err(e);
            }
            next_runs.push((out_offset, out_offset + bytes));
            out_offset += bytes;
        }
        disk.delete(current_file);
        current_file = next_file;
        current_runs = next_runs;
    }
    Ok(current_file)
}

/// Merges the given runs of `src` and appends the merged output to `dst`.
fn try_merge_group<R, K, F>(
    disk: &SimDisk,
    src: FileId,
    runs: &[(u64, u64)],
    dst: FileId,
    key: F,
    plan: BufferPlan,
) -> Result<(), IoError>
where
    R: FixedRecord,
    K: Ord,
    F: Fn(&R) -> K + Copy,
{
    struct Entry<K> {
        key: K,
        run: usize,
        seq: u64,
    }
    impl<K: Ord> PartialEq for Entry<K> {
        fn eq(&self, o: &Self) -> bool {
            self.cmp(o) == std::cmp::Ordering::Equal
        }
    }
    impl<K: Ord> Eq for Entry<K> {}
    impl<K: Ord> PartialOrd for Entry<K> {
        fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(o))
        }
    }
    impl<K: Ord> Ord for Entry<K> {
        fn cmp(&self, o: &Self) -> std::cmp::Ordering {
            // Tie-break on (run, seq) to make the merge stable.
            self.key
                .cmp(&o.key)
                .then(self.run.cmp(&o.run))
                .then(self.seq.cmp(&o.seq))
        }
    }

    let mut readers: Vec<RecordReader<R>> = runs
        .iter()
        .map(|&(s, e)| RecordReader::with_range(disk, src, s, e, plan.run_pages))
        .collect();
    let mut pending: Vec<Option<R>> = Vec::with_capacity(readers.len());
    let mut heap: BinaryHeap<Reverse<Entry<K>>> = BinaryHeap::with_capacity(readers.len());
    let mut seq = 0u64;
    for (i, r) in readers.iter_mut().enumerate() {
        let first = r.try_next()?;
        if let Some(ref rec) = first {
            heap.push(Reverse(Entry {
                key: key(rec),
                run: i,
                seq,
            }));
            seq += 1;
        }
        pending.push(first);
    }
    let mut w = RecordWriter::<R>::new(disk, dst, plan.out_pages);
    while let Some(Reverse(top)) = heap.pop() {
        // Invariant: every heap entry was inserted together with its record
        // in `pending[run]`, and entries per run alternate push/pop.
        let rec = pending[top.run].take().expect("heap/pending out of sync");
        w.try_push(&rec)?;
        if let Some(next) = readers[top.run].try_next()? {
            heap.push(Reverse(Entry {
                key: key(&next),
                run: top.run,
                seq,
            }));
            seq += 1;
            pending[top.run] = Some(next);
        }
    }
    w.try_finish()?;
    Ok(())
}

/// [`try_external_sort_by`] for records that are themselves `Ord`.
pub fn try_external_sort<R>(
    disk: &SimDisk,
    input: FileId,
    mem_bytes: usize,
) -> Result<(FileId, SortStats), IoError>
where
    R: FixedRecord + Ord,
{
    try_external_sort_by(disk, input, mem_bytes, |r: &R| *r)
}

/// [`external_sort_by`] for records that are themselves `Ord`.
pub fn external_sort<R>(disk: &SimDisk, input: FileId, mem_bytes: usize) -> (FileId, SortStats)
where
    R: FixedRecord + Ord,
{
    external_sort_by(disk, input, mem_bytes, |r: &R| *r)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::record::{read_all, write_all};
    use crate::{DiskModel, IdPair};
    use rand::prelude::*;

    fn disk() -> SimDisk {
        SimDisk::new(DiskModel {
            page_size: 64,
            positioning_ratio: 5.0,
            transfer_secs_per_page: 1.0,
            cpu_slowdown: 1.0,
            channels: 1,
            degraded_channel: None,
        })
    }

    fn shuffled_pairs(n: u64, seed: u64) -> Vec<IdPair> {
        let mut v: Vec<IdPair> = (0..n).map(|i| IdPair { r: i, s: n - i }).collect();
        v.shuffle(&mut StdRng::seed_from_u64(seed));
        v
    }

    #[test]
    fn sorts_empty_input() {
        let d = disk();
        let f = write_all::<IdPair>(&d, &[], 1);
        let (out, stats) = external_sort::<IdPair>(&d, f, 1024);
        assert!(read_all::<IdPair>(&d, out, 1).is_empty());
        assert_eq!(stats.runs, 0);
    }

    #[test]
    fn sorts_in_memory_single_run() {
        let d = disk();
        let v = shuffled_pairs(50, 1);
        let f = write_all(&d, &v, 2);
        let (out, stats) = external_sort::<IdPair>(&d, f, 1 << 20);
        assert_eq!(stats.runs, 1);
        assert_eq!(stats.merge_passes, 0);
        let got = read_all::<IdPair>(&d, out, 2);
        let mut want = v;
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn sorts_with_multiple_runs_and_merge() {
        let d = disk();
        let v = shuffled_pairs(1000, 2);
        let f = write_all(&d, &v, 4);
        // Tiny memory: forces many runs and (with fan-in limits) maybe
        // multiple merge passes.
        let (out, stats) = external_sort::<IdPair>(&d, f, 1024);
        assert!(stats.runs > 1, "expected multiple runs, got {stats:?}");
        assert!(stats.merge_passes >= 1);
        let got = read_all::<IdPair>(&d, out, 4);
        let mut want = v;
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn sort_by_custom_key_descending() {
        let d = disk();
        let v = shuffled_pairs(200, 3);
        let f = write_all(&d, &v, 2);
        let (out, _) = external_sort_by::<IdPair, _, _>(&d, f, 2048, |p| std::cmp::Reverse(p.r));
        let got = read_all::<IdPair>(&d, out, 2);
        let mut want = v;
        want.sort_by_key(|p| std::cmp::Reverse(p.r));
        assert_eq!(got, want);
    }

    #[test]
    fn sort_is_stable_under_equal_keys() {
        let d = disk();
        // All records share one key; stability means input order survives.
        let v: Vec<IdPair> = (0..300).map(|i| IdPair { r: 7, s: i }).collect();
        let f = write_all(&d, &v, 2);
        let (out, stats) = external_sort_by::<IdPair, _, _>(&d, f, 1024, |p| p.r);
        assert!(stats.runs > 1);
        let got = read_all::<IdPair>(&d, out, 2);
        assert_eq!(got, v);
    }

    #[test]
    fn smaller_memory_means_more_io() {
        let d = disk();
        let v = shuffled_pairs(2000, 4);
        let f = write_all(&d, &v, 8);
        d.reset_stats();
        let (out1, _) = external_sort::<IdPair>(&d, f, 1 << 20);
        let big_mem_units = d.model().units(&d.stats());
        d.delete(out1);
        d.reset_stats();
        let (_, _) = external_sort::<IdPair>(&d, f, 1024);
        let small_mem_units = d.model().units(&d.stats());
        assert!(
            small_mem_units > big_mem_units,
            "small {small_mem_units} vs big {big_mem_units}"
        );
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod proptests {
    use super::*;
    use crate::record::{read_all, write_all};
    use crate::{DiskModel, IdPair};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// External sort equals std sort for arbitrary inputs, memory
        /// budgets and page sizes.
        #[test]
        fn prop_external_sort_matches_std(
            values in prop::collection::vec((0u64..1000, 0u64..1000), 0..400),
            mem in 256usize..8192,
            page in 32usize..512,
        ) {
            let disk = SimDisk::new(DiskModel {
                page_size: page,
                positioning_ratio: 3.0,
                transfer_secs_per_page: 1.0,
                cpu_slowdown: 1.0,
                channels: 1,
                degraded_channel: None,
            });
            let records: Vec<IdPair> = values.iter().map(|&(r, s)| IdPair { r, s }).collect();
            let f = write_all(&disk, &records, 2);
            let (out, _) = external_sort::<IdPair>(&disk, f, mem);
            let got = read_all::<IdPair>(&disk, out, 2);
            let mut want = records.clone();
            want.sort();
            prop_assert_eq!(got, want);
        }

        /// The slice front-end agrees with the file front-end.
        #[test]
        fn prop_sort_slice_matches_sort_file(
            values in prop::collection::vec(0u64..100_000, 0..300),
            mem in 256usize..4096,
        ) {
            let disk = SimDisk::new(DiskModel {
                page_size: 64,
                positioning_ratio: 1.0,
                transfer_secs_per_page: 1.0,
                cpu_slowdown: 1.0,
                channels: 1,
                degraded_channel: None,
            });
            let records: Vec<IdPair> = values.iter().map(|&v| IdPair { r: v, s: !v }).collect();
            let f = write_all(&disk, &records, 2);
            let (a, _) = external_sort_by::<IdPair, _, _>(&disk, f, mem, |p| p.r);
            let (b, _) = external_sort_slice::<IdPair, _, _>(&disk, &records, mem, |p| p.r);
            prop_assert_eq!(
                read_all::<IdPair>(&disk, a, 2),
                read_all::<IdPair>(&disk, b, 2)
            );
        }
    }
}
