//! Structured observability on **simulated** time.
//!
//! The recorder captures phase spans and per-partition events whose
//! timestamps are positions on the cost-model clock (DiskModel seconds for
//! I/O plus scaled CPU seconds), *not* wall time. Because every simulated
//! quantity in this workspace is deterministic for a fixed seed and
//! thread-count-invariant by construction (fault identity excludes workers,
//! CPU phases merge max-over-workers), a trace taken at `--threads 4` tells
//! the same story as one taken at `--threads 1` — which is what makes traces
//! diffable in CI.
//!
//! The second half of this module is the reconciled metrics report: a
//! versioned, machine-readable summary whose exporter *refuses to emit*
//! numbers that do not sum back to the run's own totals. This is a standing
//! guard against the accounting bug class found in PR 4 (per-phase I/O
//! buckets double-counting the checkpoint writes).

use std::sync::Arc;

use parking_lot::Mutex;

use crate::disk::{DiskModel, IoStats};

/// Version stamped into every exported trace and metrics document. Bump on
/// any backwards-incompatible change to the JSON shape.
///
/// Version 2: multi-channel I/O model — reports carry `channels`, the
/// shared-lane/per-channel I/O decomposition, and the channel-parallel time
/// identities (`io_parallel_seconds`, `prefetch_hidden_seconds`).
pub const METRICS_SCHEMA_VERSION: u32 = 2;

/// Default cap on buffered trace events; beyond it events are counted but
/// dropped (the drop count is exported, so truncation is never silent).
pub const DEFAULT_MAX_EVENTS: usize = 65_536;

/// A named interval on the simulated clock (e.g. one algorithm phase).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    pub name: &'static str,
    /// Simulated seconds at phase entry.
    pub start_s: f64,
    /// Simulated seconds at phase exit.
    pub end_s: f64,
}

/// A point event on the simulated clock with integer counter attributes
/// (partition index, candidates, pages read, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    pub name: &'static str,
    /// Simulated seconds at which the event was recorded.
    pub t_s: f64,
    pub attrs: Vec<(&'static str, u64)>,
}

#[derive(Debug, Default)]
struct RecorderInner {
    spans: Vec<TraceSpan>,
    events: Vec<TraceEvent>,
    dropped_events: u64,
}

/// Thread-safe span/event sink. Cheap enough to leave attached in release
/// runs: one short mutex hold per phase or per partition, no allocation on
/// the drop path.
#[derive(Debug)]
pub struct Recorder {
    inner: Mutex<RecorderInner>,
    max_events: usize,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    pub fn new() -> Self {
        Self::with_max_events(DEFAULT_MAX_EVENTS)
    }

    pub fn with_max_events(max_events: usize) -> Self {
        Recorder {
            inner: Mutex::new(RecorderInner::default()),
            max_events,
        }
    }

    /// Convenience for the common `Arc<Recorder>` handoff into `RunControl`.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Record a completed phase interval `[start_s, end_s]` in simulated
    /// seconds. Spans are few (one per phase) and never dropped.
    pub fn span(&self, name: &'static str, start_s: f64, end_s: f64) {
        self.inner.lock().spans.push(TraceSpan {
            name,
            start_s,
            end_s,
        });
    }

    /// Record a point event with counter attributes at simulated time `t_s`.
    pub fn event(&self, name: &'static str, t_s: f64, attrs: &[(&'static str, u64)]) {
        let mut g = self.inner.lock();
        if g.events.len() >= self.max_events {
            g.dropped_events += 1;
            return;
        }
        g.events.push(TraceEvent {
            name,
            t_s,
            attrs: attrs.to_vec(),
        });
    }

    pub fn spans(&self) -> Vec<TraceSpan> {
        self.inner.lock().spans.clone()
    }

    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.lock().events.clone()
    }

    pub fn dropped_events(&self) -> u64 {
        self.inner.lock().dropped_events
    }

    /// Serialize the whole trace as a single JSON document (hand-rolled; the
    /// workspace carries no serde). Events keep their recording order, which
    /// for coordinator-side emission is the canonical partition order.
    pub fn to_json(&self) -> String {
        let g = self.inner.lock();
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"schema_version\": {METRICS_SCHEMA_VERSION},\n  \"kind\": \"sjoin-trace\",\n  \"clock\": \"simulated-seconds\",\n"
        ));
        out.push_str("  \"spans\": [\n");
        for (i, s) in g.spans.iter().enumerate() {
            let sep = if i + 1 == g.spans.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"start_s\": {}, \"end_s\": {}}}{sep}\n",
                json_escape(s.name),
                json_f64(s.start_s),
                json_f64(s.end_s)
            ));
        }
        out.push_str("  ],\n  \"events\": [\n");
        for (i, e) in g.events.iter().enumerate() {
            let sep = if i + 1 == g.events.len() { "" } else { "," };
            let mut attrs = String::new();
            for (k, v) in &e.attrs {
                attrs.push_str(&format!(", \"{}\": {v}", json_escape(k)));
            }
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"t_s\": {}{attrs}}}{sep}\n",
                json_escape(e.name),
                json_f64(e.t_s)
            ));
        }
        out.push_str(&format!(
            "  ],\n  \"dropped_events\": {}\n}}\n",
            g.dropped_events
        ));
        out
    }
}

/// One phase row of a [`MetricsReport`]: disjoint I/O bucket + raw (unscaled)
/// CPU seconds attributed to the phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseMetric {
    pub name: &'static str,
    pub io: IoStats,
    pub cpu_seconds: f64,
}

/// Extra whole-run counters carried by a [`MetricsReport`]. All optional in
/// the sense that algorithms without the concept report zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunCounters {
    /// Candidate pairs tested by the refinement-free filter step, when the
    /// algorithm tracks them (`results + duplicates` must equal this).
    pub candidates: Option<u64>,
    pub results: u64,
    pub duplicates: u64,
    pub partitions: u64,
    pub requeued_partitions: u64,
    pub degraded_partitions: u64,
    pub checkpoint_commits: u64,
    /// Partition phases skipped because the service reused cached partition
    /// files for the same config+input fingerprint (PR 7). Zero for one-shot
    /// runs. Additive to schema v2: absent readers ignore it.
    pub partition_cache_hits: u64,
}

/// Reconciled, versioned summary of one join run.
///
/// Build it with the per-phase buckets and the *independently computed*
/// totals from the run's stats struct; [`MetricsReport::reconcile`] then
/// proves the two agree before anything is exported.
#[derive(Debug, Clone)]
pub struct MetricsReport {
    pub schema_version: u32,
    pub algo: String,
    pub threads: usize,
    pub model: DiskModel,
    pub phases: Vec<PhaseMetric>,
    pub counters: RunCounters,
    /// Total I/O as reported by the stats struct (`io_total()`).
    pub io_total: IoStats,
    /// Data channels of the run's disk (`model.data_channels()`).
    pub channels: usize,
    /// I/O on the serial shared lane (manifest, journal, results, dedup
    /// scratch). Together with `io_channels` this must sum field-for-field
    /// to `io_total`.
    pub io_shared: IoStats,
    /// Per-data-channel I/O, one bucket per channel.
    pub io_channels: Vec<IoStats>,
    /// Total raw CPU seconds as reported by the stats struct.
    pub cpu_seconds: f64,
    pub scaled_cpu_seconds: f64,
    /// Serial-equivalent disk time: `model.seconds(io_total)`, i.e. every
    /// unit on one spindle. Kept for cross-version comparability.
    pub io_seconds: f64,
    /// Channel-parallel disk time: shared lane + busiest data channel.
    pub io_parallel_seconds: f64,
    /// Disk time hidden behind computation by double-buffered prefetch
    /// (zero with one channel).
    pub prefetch_hidden_seconds: f64,
    pub total_seconds: f64,
    /// Pipelined first-result position (§3.1/§5). Its CPU leg is measured
    /// on the host's compute clock, so the combined value is reproducible
    /// only in aggregate; the deterministic part is
    /// [`first_result_io_seconds`](Self::first_result_io_seconds).
    pub first_result_seconds: Option<f64>,
    /// The I/O-only leg of the first-result position — pure simulated
    /// time, never past `io_seconds`. Under `cpu_slowdown = 0` the whole
    /// position is I/O-derived and bit-identical at every thread count;
    /// with live CPU costing the minimizing task can shift with the host
    /// measurement, moving this leg slightly.
    pub first_result_io_seconds: Option<f64>,
}

/// A reconciliation failure: which invariant broke and the two sides.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconcileError {
    pub what: String,
}

impl std::fmt::Display for ReconcileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "metrics reconciliation failed: {}", self.what)
    }
}

impl std::error::Error for ReconcileError {}

impl MetricsReport {
    /// Check every exported number against the run totals. The phase I/O
    /// buckets must sum **field-for-field exactly** to `io_total`; CPU and
    /// seconds identities are checked bit-exactly too, because both sides
    /// are computed by summing the same f64s in the same order.
    pub fn reconcile(&self) -> Result<(), ReconcileError> {
        let mut io_sum = IoStats::default();
        let mut cpu_sum = 0.0f64;
        for p in &self.phases {
            io_sum = io_sum.plus(&p.io);
            cpu_sum += p.cpu_seconds;
        }
        if io_sum != self.io_total {
            return Err(ReconcileError {
                what: format!(
                    "phase IoStats sum != io_total (sum {:?}, total {:?})",
                    io_sum, self.io_total
                ),
            });
        }
        // The channel decomposition is a second, independent partition of
        // the same total: shared lane + every data channel must also sum
        // field-for-field to io_total.
        if self.channels != self.model.data_channels() {
            return Err(ReconcileError {
                what: format!(
                    "channels {} != model.data_channels() {}",
                    self.channels,
                    self.model.data_channels()
                ),
            });
        }
        if self.io_channels.len() != self.channels {
            return Err(ReconcileError {
                what: format!(
                    "io_channels has {} buckets, expected {}",
                    self.io_channels.len(),
                    self.channels
                ),
            });
        }
        let mut chan_sum = self.io_shared;
        for c in &self.io_channels {
            chan_sum = chan_sum.plus(c);
        }
        if chan_sum != self.io_total {
            return Err(ReconcileError {
                what: format!(
                    "io_shared + channel IoStats sum != io_total (sum {:?}, total {:?})",
                    chan_sum, self.io_total
                ),
            });
        }
        if cpu_sum != self.cpu_seconds {
            return Err(ReconcileError {
                what: format!(
                    "phase cpu sum {} != cpu_seconds {}",
                    json_f64(cpu_sum),
                    json_f64(self.cpu_seconds)
                ),
            });
        }
        let scaled = self.model.scaled_cpu(self.cpu_seconds);
        if scaled != self.scaled_cpu_seconds {
            return Err(ReconcileError {
                what: format!(
                    "scaled_cpu_seconds {} != model.scaled_cpu(cpu) {}",
                    json_f64(self.scaled_cpu_seconds),
                    json_f64(scaled)
                ),
            });
        }
        let io_secs = self.model.seconds(&self.io_total);
        if io_secs != self.io_seconds {
            return Err(ReconcileError {
                what: format!(
                    "io_seconds {} != model.seconds(io_total) {}",
                    json_f64(self.io_seconds),
                    json_f64(io_secs)
                ),
            });
        }
        let io_par = self
            .model
            .parallel_io_seconds(&self.io_shared, &self.io_channels);
        if io_par != self.io_parallel_seconds {
            return Err(ReconcileError {
                what: format!(
                    "io_parallel_seconds {} != shared + busiest channel {}",
                    json_f64(self.io_parallel_seconds),
                    json_f64(io_par)
                ),
            });
        }
        let hidden = self
            .model
            .prefetch_hidden_seconds(self.scaled_cpu_seconds, &self.io_channels);
        if hidden != self.prefetch_hidden_seconds {
            return Err(ReconcileError {
                what: format!(
                    "prefetch_hidden_seconds {} != min(scaled_cpu, busiest channel) {}",
                    json_f64(self.prefetch_hidden_seconds),
                    json_f64(hidden)
                ),
            });
        }
        let total = self.scaled_cpu_seconds + self.io_parallel_seconds - self.prefetch_hidden_seconds;
        if total != self.total_seconds {
            return Err(ReconcileError {
                what: format!(
                    "total_seconds {} != scaled_cpu + parallel io - hidden {}",
                    json_f64(self.total_seconds),
                    json_f64(total)
                ),
            });
        }
        if let Some(c) = self.counters.candidates {
            let rd = self.counters.results + self.counters.duplicates;
            if c != rd {
                return Err(ReconcileError {
                    what: format!("candidates {c} != results + duplicates {rd}"),
                });
            }
        }
        // The combined first-result position mixes in a wall-derived CPU
        // leg whose measurement windows differ from the phase timers, so it
        // cannot be soundly bounded against `total_seconds` on a loaded
        // host. The I/O leg is pure simulated time and *is* bounded: the
        // first pair cannot land after the run's last I/O.
        if let Some(fio) = self.first_result_io_seconds {
            let slack = 1e-9 * self.io_seconds.abs().max(1.0);
            if fio > self.io_seconds + slack {
                return Err(ReconcileError {
                    what: format!(
                        "first_result_io_seconds {} > io_seconds {}",
                        json_f64(fio),
                        json_f64(self.io_seconds)
                    ),
                });
            }
            if let Some(first) = self.first_result_seconds {
                if first < fio - slack {
                    return Err(ReconcileError {
                        what: format!(
                            "first_result_seconds {} < its own io leg {}",
                            json_f64(first),
                            json_f64(fio)
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// Serialize as JSON. Call [`reconcile`](Self::reconcile) first; the
    /// exporters in this workspace refuse to write an unreconciled report.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"schema_version\": {},\n  \"kind\": \"sjoin-metrics\",\n  \"algo\": \"{}\",\n  \"threads\": {},\n",
            self.schema_version,
            json_escape(&self.algo),
            self.threads
        ));
        out.push_str(&format!(
            "  \"model\": {{\"page_size\": {}, \"positioning_ratio\": {}, \"transfer_secs_per_page\": {}, \"cpu_slowdown\": {}, \"channels\": {}}},\n",
            self.model.page_size,
            json_f64(self.model.positioning_ratio),
            json_f64(self.model.transfer_secs_per_page),
            json_f64(self.model.cpu_slowdown),
            self.model.channels
        ));
        out.push_str("  \"phases\": [\n");
        for (i, p) in self.phases.iter().enumerate() {
            let sep = if i + 1 == self.phases.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"cpu_seconds\": {}, \"io\": {}}}{sep}\n",
                json_escape(p.name),
                json_f64(p.cpu_seconds),
                io_stats_json(&p.io)
            ));
        }
        out.push_str("  ],\n");
        let c = &self.counters;
        match c.candidates {
            Some(v) => out.push_str(&format!("  \"candidates\": {v},\n")),
            None => out.push_str("  \"candidates\": null,\n"),
        }
        out.push_str(&format!(
            "  \"results\": {},\n  \"duplicates\": {},\n  \"partitions\": {},\n  \"requeued_partitions\": {},\n  \"degraded_partitions\": {},\n  \"checkpoint_commits\": {},\n  \"partition_cache_hits\": {},\n",
            c.results, c.duplicates, c.partitions, c.requeued_partitions, c.degraded_partitions, c.checkpoint_commits, c.partition_cache_hits
        ));
        out.push_str(&format!("  \"io_total\": {},\n", io_stats_json(&self.io_total)));
        out.push_str(&format!("  \"channels\": {},\n", self.channels));
        out.push_str(&format!("  \"io_shared\": {},\n", io_stats_json(&self.io_shared)));
        out.push_str("  \"io_channels\": [\n");
        for (i, c) in self.io_channels.iter().enumerate() {
            let sep = if i + 1 == self.io_channels.len() { "" } else { "," };
            out.push_str(&format!("    {}{sep}\n", io_stats_json(c)));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"cpu_seconds\": {},\n  \"scaled_cpu_seconds\": {},\n  \"io_seconds\": {},\n  \"io_parallel_seconds\": {},\n  \"prefetch_hidden_seconds\": {},\n  \"total_seconds\": {},\n",
            json_f64(self.cpu_seconds),
            json_f64(self.scaled_cpu_seconds),
            json_f64(self.io_seconds),
            json_f64(self.io_parallel_seconds),
            json_f64(self.prefetch_hidden_seconds),
            json_f64(self.total_seconds)
        ));
        match self.first_result_seconds {
            Some(v) => out.push_str(&format!("  \"first_result_seconds\": {},\n", json_f64(v))),
            None => out.push_str("  \"first_result_seconds\": null,\n"),
        }
        match self.first_result_io_seconds {
            Some(v) => out.push_str(&format!("  \"first_result_io_seconds\": {}\n", json_f64(v))),
            None => out.push_str("  \"first_result_io_seconds\": null\n"),
        }
        out.push_str("}\n");
        out
    }
}

/// Render an [`IoStats`] as a JSON object (single line).
pub fn io_stats_json(s: &IoStats) -> String {
    format!(
        "{{\"read_requests\": {}, \"write_requests\": {}, \"pages_read\": {}, \"pages_written\": {}, \"bytes_read\": {}, \"bytes_written\": {}, \"faults_injected\": {}, \"read_retries\": {}, \"write_retries\": {}, \"backoff_units\": {}}}",
        s.read_requests,
        s.write_requests,
        s.pages_read,
        s.pages_written,
        s.bytes_read,
        s.bytes_written,
        s.faults_injected,
        s.read_retries,
        s.write_retries,
        s.backoff_units
    )
}

/// Escape a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an f64 as a JSON number. Rust's `Display` prints the shortest
/// decimal that round-trips, so re-parsing recovers the exact bits; the
/// non-finite values JSON cannot express become `null`.
pub fn json_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> MetricsReport {
        let model = DiskModel::default();
        let io_a = IoStats {
            read_requests: 2,
            pages_read: 10,
            bytes_read: 10 * model.page_size as u64,
            ..IoStats::default()
        };
        let io_b = IoStats {
            write_requests: 1,
            pages_written: 4,
            bytes_written: 4 * model.page_size as u64,
            ..IoStats::default()
        };
        let phases = vec![
            PhaseMetric {
                name: "partition",
                io: io_a,
                cpu_seconds: 0.25,
            },
            PhaseMetric {
                name: "join",
                io: io_b,
                cpu_seconds: 0.5,
            },
        ];
        let io_total = io_a.plus(&io_b);
        let cpu = 0.25 + 0.5;
        // Channel decomposition: reads on the single data channel, writes
        // on the shared lane.
        let io_shared = io_b;
        let io_channels = vec![io_a];
        let scaled = model.scaled_cpu(cpu);
        let io_par = model.parallel_io_seconds(&io_shared, &io_channels);
        let hidden = model.prefetch_hidden_seconds(scaled, &io_channels);
        MetricsReport {
            schema_version: METRICS_SCHEMA_VERSION,
            algo: "pbsm".to_string(),
            threads: 1,
            model,
            phases,
            counters: RunCounters {
                candidates: Some(12),
                results: 10,
                duplicates: 2,
                ..RunCounters::default()
            },
            io_total,
            channels: model.data_channels(),
            io_shared,
            io_channels,
            cpu_seconds: cpu,
            scaled_cpu_seconds: scaled,
            io_seconds: model.seconds(&io_total),
            io_parallel_seconds: io_par,
            prefetch_hidden_seconds: hidden,
            total_seconds: scaled + io_par - hidden,
            first_result_seconds: None,
            first_result_io_seconds: None,
        }
    }

    #[test]
    fn reconcile_accepts_consistent_report() {
        report().reconcile().expect("consistent report reconciles");
    }

    #[test]
    fn reconcile_rejects_io_drift() {
        let mut r = report();
        r.io_total.pages_read += 1;
        let err = r.reconcile().expect_err("drifted io must fail");
        assert!(err.what.contains("io_total"), "{err}");
    }

    #[test]
    fn reconcile_rejects_first_result_io_past_the_run() {
        let mut r = report();
        r.first_result_seconds = Some(r.total_seconds);
        r.first_result_io_seconds = Some(r.io_seconds * 2.0);
        let err = r.reconcile().expect_err("io leg past io_seconds must fail");
        assert!(err.what.contains("first_result_io_seconds"), "{err}");
        r.first_result_io_seconds = Some(r.io_seconds);
        r.reconcile().expect("io leg at the boundary reconciles");
    }

    #[test]
    fn reconcile_rejects_corrupted_channel_bucket() {
        // A channel bucket that drifts from the decomposition must be
        // refused even though io_total and the phase sum still agree.
        let mut r = report();
        r.io_channels[0].pages_read += 1;
        let err = r.reconcile().expect_err("corrupted channel bucket must fail");
        assert!(err.what.contains("io_shared + channel"), "{err}");
    }

    fn two_channel_report() -> MetricsReport {
        let mut r = report();
        r.model.channels = 2;
        r.channels = 2;
        r.io_channels.push(IoStats::default());
        r.io_parallel_seconds = r.model.parallel_io_seconds(&r.io_shared, &r.io_channels);
        r.prefetch_hidden_seconds = r
            .model
            .prefetch_hidden_seconds(r.scaled_cpu_seconds, &r.io_channels);
        r.total_seconds = r.scaled_cpu_seconds + r.io_parallel_seconds - r.prefetch_hidden_seconds;
        r
    }

    #[test]
    fn two_channel_report_checks_parallel_time_identities() {
        let r = two_channel_report();
        assert!(r.prefetch_hidden_seconds > 0.0, "two channels hide io");
        assert!(r.io_parallel_seconds < r.io_seconds + 1e-12);
        r.reconcile().expect("two-channel report reconciles");
        // Shifting load between buckets keeps the field-for-field sum but
        // breaks the shared + busiest-channel time — also refused.
        let mut r = two_channel_report();
        r.io_shared.pages_written -= 2;
        r.io_channels[1].pages_written += 2;
        let err = r.reconcile().expect_err("shifted decomposition must fail");
        assert!(err.what.contains("io_parallel_seconds"), "{err}");
    }

    #[test]
    fn reconcile_rejects_channel_count_mismatch() {
        let mut r = report();
        r.io_channels.push(IoStats::default());
        let err = r.reconcile().expect_err("extra bucket must fail");
        assert!(err.what.contains("io_channels"), "{err}");
    }

    #[test]
    fn reconcile_rejects_candidate_mismatch() {
        let mut r = report();
        r.counters.candidates = Some(11);
        let err = r.reconcile().expect_err("candidate identity must fail");
        assert!(err.what.contains("candidates"), "{err}");
    }

    #[test]
    fn recorder_caps_events_and_counts_drops() {
        let rec = Recorder::with_max_events(2);
        for i in 0..5 {
            rec.event("partition-commit", i as f64, &[("partition", i)]);
        }
        assert_eq!(rec.events().len(), 2);
        assert_eq!(rec.dropped_events(), 3);
        let json = rec.to_json();
        assert!(json.contains("\"dropped_events\": 3"), "{json}");
    }

    #[test]
    fn trace_json_is_well_formed_enough() {
        let rec = Recorder::new();
        rec.span("partition", 0.0, 1.5);
        rec.event("partition-commit", 1.5, &[("partition", 0), ("results", 7)]);
        let json = rec.to_json();
        assert!(json.contains("\"schema_version\": 2"));
        assert!(json.contains("\"name\": \"partition\""));
        assert!(json.contains("\"results\": 7"));
    }
}
