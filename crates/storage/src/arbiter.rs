//! Global memory arbitration for concurrent joins.
//!
//! Every join in this workspace sizes itself from a memory budget `M`
//! (PBSM's partition count, SHJ's bucket count, the sort algorithms' run
//! length all follow from it). A one-shot process owns the whole machine, so
//! `M` is a config knob; a *join service* runs many joins at once and must
//! divide one physical budget between them without over-committing and
//! without thrashing. The [`MemoryArbiter`] is that division: in-flight
//! joins hold byte-denominated [`MemoryLease`]s carved out of a single
//! budget, joins whose grant does not fit yet wait in a bounded FIFO queue,
//! and joins that would overflow the queue are *shed* with a typed
//! [`AdmissionError::Overloaded`] carrying a retry hint — never an unbounded
//! queue, never an over-commit.
//!
//! Design rules:
//!
//! * **Grants are all-or-nothing.** A lease is for exactly the bytes asked
//!   for; the arbiter never hands back a smaller grant. Shrinking a join's
//!   memory mid-admission would change its partition count and therefore its
//!   duplicate accounting, and the service's headline invariant is that a
//!   co-tenant run is bit-identical to a solo run of the same request.
//! * **FIFO, head-of-line.** Waiters are granted strictly in arrival order.
//!   A large request at the head blocks smaller ones behind it — deliberate:
//!   skipping ahead would starve large joins forever on a busy server.
//! * **The ledger is asserted, not trusted.** Every mutation of the lease
//!   ledger re-checks `leased <= budget` (and release underflow) with a real
//!   `assert!`, in release builds too. An over-commit here means joins
//!   sharing buffer memory they each believe they own exclusively — the one
//!   bug class a memory arbiter exists to rule out, so it fails loudly.
//! * **Leases release themselves.** [`MemoryLease`] returns its bytes on
//!   `Drop`, so a panicking or crashing join cannot leak budget: whichever
//!   thread owns the lease unwinds, the lease drops, the waiters wake.
//!
//! Wall-clock time appears only in the *advisory* retry hint (an EWMA of
//! observed lease hold times); admission order and grant decisions are pure
//! functions of the request sequence, so a single-threaded caller sees fully
//! deterministic behaviour.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Instant;

use parallel::CancelToken;

/// Why a lease request was refused. All variants are *typed shedding*: the
/// caller is expected to surface them to its client rather than retry
/// blindly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionError {
    /// The admission queue is full: the server is overloaded and this
    /// request was shed. `retry_after` is an advisory wait in (real)
    /// seconds, estimated from the observed lease hold times and the demand
    /// ahead of this request.
    Overloaded { retry_after: f64 },
    /// The request can *never* be admitted: it wants more bytes than the
    /// whole budget. Queueing it would block the queue head forever.
    TooLarge { requested: u64, budget: u64 },
    /// The caller's cancel token tripped while the request was queued.
    Cancelled,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::Overloaded { retry_after } => write!(
                f,
                "admission queue full (overloaded); retry after {retry_after:.3}s"
            ),
            AdmissionError::TooLarge { requested, budget } => write!(
                f,
                "request of {requested} bytes exceeds the whole memory budget ({budget} bytes)"
            ),
            AdmissionError::Cancelled => write!(f, "admission wait cancelled"),
        }
    }
}

impl std::error::Error for AdmissionError {}

#[derive(Debug)]
struct Waiter {
    ticket: u64,
    bytes: u64,
}

#[derive(Debug)]
struct ArbState {
    /// Bytes currently leased out. Invariant: `leased <= budget`, asserted
    /// on every mutation.
    leased: u64,
    /// Live leases (for observability and drain checks).
    active: u64,
    /// FIFO admission queue; `queue[0]` is the only candidate for the next
    /// grant.
    queue: VecDeque<Waiter>,
    next_ticket: u64,
    /// EWMA of lease hold times in seconds, for the `retry_after` hint.
    avg_hold_secs: f64,
    // Cumulative counters for the service's metrics endpoint.
    admitted: u64,
    rejected_overloaded: u64,
    rejected_too_large: u64,
    peak_leased: u64,
}

#[derive(Debug)]
struct ArbInner {
    budget: u64,
    max_queue: usize,
    state: Mutex<ArbState>,
    cv: Condvar,
}

impl ArbInner {
    /// The one place the ledger invariant lives. Called after every
    /// mutation; panics (release builds included) on over-commit.
    fn check(&self, s: &ArbState) {
        assert!(
            s.leased <= self.budget,
            "memory arbiter over-committed: {} bytes leased of a {} byte budget",
            s.leased,
            self.budget
        );
    }

    fn release(&self, bytes: u64, held_secs: f64) {
        let mut s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        assert!(
            s.leased >= bytes && s.active >= 1,
            "memory arbiter release underflow: releasing {} of {} leased bytes ({} active)",
            bytes,
            s.leased,
            s.active
        );
        s.leased -= bytes;
        s.active -= 1;
        // EWMA with a 1/4 step: responsive to load shifts, stable enough to
        // make the retry hint meaningful.
        s.avg_hold_secs = if s.avg_hold_secs == 0.0 {
            held_secs
        } else {
            0.75 * s.avg_hold_secs + 0.25 * held_secs
        };
        self.check(&s);
        drop(s);
        self.cv.notify_all();
    }
}

/// A byte-denominated grant out of a [`MemoryArbiter`]'s budget. Returned to
/// the budget on drop — including panic unwinds, which is what makes a
/// crashing join unable to leak memory.
#[derive(Debug)]
pub struct MemoryLease {
    inner: Arc<ArbInner>,
    bytes: u64,
    granted_at: Instant,
}

impl MemoryLease {
    /// The granted size (always exactly what was requested).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for MemoryLease {
    fn drop(&mut self) {
        self.inner
            .release(self.bytes, self.granted_at.elapsed().as_secs_f64());
    }
}

/// Point-in-time view of the arbiter's ledger, for metrics endpoints and
/// drain checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArbiterSnapshot {
    pub budget_bytes: u64,
    pub leased_bytes: u64,
    pub active_leases: u64,
    pub queued: u64,
    pub admitted: u64,
    pub rejected_overloaded: u64,
    pub rejected_too_large: u64,
    pub peak_leased_bytes: u64,
}

/// The global memory arbiter: one budget, many concurrent joins. Cloning
/// shares the budget (the clone is a handle, not a second budget).
#[derive(Debug, Clone)]
pub struct MemoryArbiter {
    inner: Arc<ArbInner>,
}

impl MemoryArbiter {
    /// An arbiter over `budget` bytes with a bounded admission queue of
    /// `max_queue` waiting requests (0 = shed immediately when the budget
    /// does not fit the request right now).
    pub fn new(budget: u64, max_queue: usize) -> MemoryArbiter {
        MemoryArbiter {
            inner: Arc::new(ArbInner {
                budget: budget.max(1),
                max_queue,
                state: Mutex::new(ArbState {
                    leased: 0,
                    active: 0,
                    queue: VecDeque::new(),
                    next_ticket: 0,
                    avg_hold_secs: 0.0,
                    admitted: 0,
                    rejected_overloaded: 0,
                    rejected_too_large: 0,
                    peak_leased: 0,
                }),
                cv: Condvar::new(),
            }),
        }
    }

    pub fn budget_bytes(&self) -> u64 {
        self.inner.budget
    }

    /// Advisory retry hint for a shed request: the demand ahead of it,
    /// expressed in "budget drains" and scaled by the observed average hold
    /// time. Never zero, so a client honouring it always backs off.
    fn retry_after(&self, s: &ArbState, requested: u64) -> f64 {
        let queued_demand: u64 = s.queue.iter().map(|w| w.bytes).sum();
        let demand = s.leased + queued_demand + requested;
        let drains = (demand as f64 / self.inner.budget as f64).ceil();
        let hold = if s.avg_hold_secs > 0.0 {
            s.avg_hold_secs
        } else {
            0.05
        };
        (drains * hold).max(0.001)
    }

    /// Non-blocking admission: a lease if the request fits *right now* (and
    /// no earlier request is queued — FIFO order is never violated), `None`
    /// if it would have to wait, an error if it must be shed.
    pub fn try_lease(&self, bytes: u64) -> Result<Option<MemoryLease>, AdmissionError> {
        let bytes = bytes.max(1);
        let mut s = self
            .inner
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if bytes > self.inner.budget {
            s.rejected_too_large += 1;
            return Err(AdmissionError::TooLarge {
                requested: bytes,
                budget: self.inner.budget,
            });
        }
        if s.queue.is_empty() && s.leased + bytes <= self.inner.budget {
            return Ok(Some(self.grant(&mut s, bytes)));
        }
        Ok(None)
    }

    /// Blocking admission with shedding: joins the FIFO queue (bounded by
    /// `max_queue`) and waits until the grant fits. A full queue sheds the
    /// request with [`AdmissionError::Overloaded`] instead of queueing it;
    /// tripping `cancel` while queued abandons the wait.
    pub fn lease(
        &self,
        bytes: u64,
        cancel: Option<&CancelToken>,
    ) -> Result<MemoryLease, AdmissionError> {
        let bytes = bytes.max(1);
        let mut s = self
            .inner
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if bytes > self.inner.budget {
            s.rejected_too_large += 1;
            return Err(AdmissionError::TooLarge {
                requested: bytes,
                budget: self.inner.budget,
            });
        }
        // Fast path: nothing ahead of us and the bytes are free.
        if s.queue.is_empty() && s.leased + bytes <= self.inner.budget {
            return Ok(self.grant(&mut s, bytes));
        }
        // Admission control: bounded queue depth, typed shedding beyond it.
        if s.queue.len() >= self.inner.max_queue {
            s.rejected_overloaded += 1;
            let retry_after = self.retry_after(&s, bytes);
            return Err(AdmissionError::Overloaded { retry_after });
        }
        let ticket = s.next_ticket;
        s.next_ticket += 1;
        s.queue.push_back(Waiter { ticket, bytes });
        loop {
            // Granted strictly in FIFO order: only the queue head may take
            // bytes, so a release can never leapfrog a waiter.
            let is_head = s.queue.front().is_some_and(|w| w.ticket == ticket);
            if is_head && s.leased + bytes <= self.inner.budget {
                s.queue.pop_front();
                let lease = self.grant(&mut s, bytes);
                drop(s);
                // A grant may have unblocked the new head too (we were in
                // front of it); wake the pack so it re-checks.
                self.inner.cv.notify_all();
                return Ok(lease);
            }
            if cancel.is_some_and(|t| t.is_cancelled()) {
                s.queue.retain(|w| w.ticket != ticket);
                drop(s);
                self.inner.cv.notify_all();
                return Err(AdmissionError::Cancelled);
            }
            // Short timed waits so a tripped cancel token is noticed even
            // when no lease is released for a while.
            let (guard, _timeout) = self
                .inner
                .cv
                .wait_timeout(s, std::time::Duration::from_millis(10))
                .unwrap_or_else(PoisonError::into_inner);
            s = guard;
        }
    }

    fn grant(&self, s: &mut ArbState, bytes: u64) -> MemoryLease {
        s.leased += bytes;
        s.active += 1;
        s.admitted += 1;
        s.peak_leased = s.peak_leased.max(s.leased);
        self.inner.check(s);
        MemoryLease {
            inner: Arc::clone(&self.inner),
            bytes,
            granted_at: Instant::now(),
        }
    }

    /// Current ledger state (consistent snapshot under the arbiter lock).
    pub fn snapshot(&self) -> ArbiterSnapshot {
        let s = self
            .inner
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        ArbiterSnapshot {
            budget_bytes: self.inner.budget,
            leased_bytes: s.leased,
            active_leases: s.active,
            queued: s.queue.len() as u64,
            admitted: s.admitted,
            rejected_overloaded: s.rejected_overloaded,
            rejected_too_large: s.rejected_too_large,
            peak_leased_bytes: s.peak_leased,
        }
    }

    /// `true` once every lease has been returned and the queue is empty —
    /// the drain condition a graceful shutdown waits for.
    pub fn is_idle(&self) -> bool {
        let snap = self.snapshot();
        snap.leased_bytes == 0 && snap.active_leases == 0 && snap.queued == 0
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn grants_within_budget_and_releases_on_drop() {
        let arb = MemoryArbiter::new(100, 4);
        let a = arb.lease(40, None).unwrap();
        let b = arb.lease(60, None).unwrap();
        assert_eq!(arb.snapshot().leased_bytes, 100);
        assert_eq!(arb.snapshot().active_leases, 2);
        drop(a);
        assert_eq!(arb.snapshot().leased_bytes, 60);
        drop(b);
        assert!(arb.is_idle());
        assert_eq!(arb.snapshot().peak_leased_bytes, 100);
    }

    #[test]
    fn too_large_is_refused_up_front() {
        let arb = MemoryArbiter::new(100, 4);
        let err = arb.lease(101, None).unwrap_err();
        assert_eq!(
            err,
            AdmissionError::TooLarge {
                requested: 101,
                budget: 100
            }
        );
        assert_eq!(arb.snapshot().rejected_too_large, 1);
    }

    #[test]
    fn full_queue_sheds_with_overloaded() {
        let arb = MemoryArbiter::new(100, 0);
        let _hold = arb.lease(80, None).unwrap();
        // 40 does not fit and the queue depth is zero: shed immediately.
        match arb.lease(40, None) {
            Err(AdmissionError::Overloaded { retry_after }) => assert!(retry_after > 0.0),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(arb.snapshot().rejected_overloaded, 1);
    }

    #[test]
    fn try_lease_never_blocks_and_respects_fifo() {
        let arb = MemoryArbiter::new(100, 4);
        let hold = arb.lease(90, None).unwrap();
        assert!(arb.try_lease(20).unwrap().is_none(), "must not fit yet");
        // Queue a blocking waiter on another thread, then release: the
        // waiter (FIFO head) must win over a later try_lease.
        let arb2 = arb.clone();
        let waiter = std::thread::spawn(move || arb2.lease(50, None).unwrap());
        while arb.snapshot().queued == 0 {
            std::thread::yield_now();
        }
        drop(hold);
        let lease = waiter.join().unwrap();
        assert_eq!(lease.bytes(), 50);
        drop(lease);
        assert!(arb.is_idle());
    }

    #[test]
    fn queued_request_is_granted_after_release() {
        let arb = MemoryArbiter::new(100, 4);
        let hold = arb.lease(100, None).unwrap();
        let arb2 = arb.clone();
        let t = std::thread::spawn(move || {
            let lease = arb2.lease(100, None).unwrap();
            lease.bytes()
        });
        while arb.snapshot().queued == 0 {
            std::thread::yield_now();
        }
        drop(hold);
        assert_eq!(t.join().unwrap(), 100);
        assert!(arb.is_idle());
    }

    #[test]
    fn cancel_token_abandons_a_queued_wait() {
        let arb = MemoryArbiter::new(100, 4);
        let _hold = arb.lease(100, None).unwrap();
        let token = CancelToken::new();
        let arb2 = arb.clone();
        let t2 = token.clone();
        let t = std::thread::spawn(move || arb2.lease(50, Some(&t2)));
        while arb.snapshot().queued == 0 {
            std::thread::yield_now();
        }
        token.cancel();
        assert_eq!(t.join().unwrap().unwrap_err(), AdmissionError::Cancelled);
        assert_eq!(arb.snapshot().queued, 0, "cancelled waiter must dequeue");
    }

    #[test]
    fn panicking_holder_still_releases_its_lease() {
        let arb = MemoryArbiter::new(100, 4);
        let arb2 = arb.clone();
        let t = std::thread::spawn(move || {
            let _lease = arb2.lease(70, None).unwrap();
            panic!("join worker died");
        });
        assert!(t.join().is_err());
        assert!(arb.is_idle(), "unwind must return the lease");
    }

    #[test]
    fn concurrent_storm_never_overcommits() {
        // The ledger assert runs on every mutation; this hammers it from
        // many threads and additionally tracks an external high-water mark.
        let arb = MemoryArbiter::new(1000, 64);
        let peak = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for i in 0..8u64 {
            let arb = arb.clone();
            let peak = Arc::clone(&peak);
            handles.push(std::thread::spawn(move || {
                for j in 0..50u64 {
                    let bytes = 1 + (i * 131 + j * 17) % 400;
                    let lease = arb.lease(bytes, None).unwrap();
                    let snap = arb.snapshot();
                    assert!(snap.leased_bytes <= snap.budget_bytes);
                    peak.fetch_max(snap.leased_bytes, Ordering::Relaxed);
                    drop(lease);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(arb.is_idle());
        assert!(peak.load(Ordering::Relaxed) <= 1000);
        assert_eq!(arb.snapshot().admitted, 8 * 50);
    }

    #[test]
    fn retry_after_survives_zero_length_holds() {
        // Pathological hold pattern: a burst of leases dropped the instant
        // they are granted drives the hold EWMA toward zero. The hint must
        // keep its floors — `hold` falls back to 0.05 s while the average
        // is exactly zero, and the product is clamped to >= 1 ms — so a
        // client honouring the hint always backs off a nonzero amount.
        let arb = MemoryArbiter::new(100, 0);
        for _ in 0..64 {
            drop(arb.lease(10, None).unwrap());
        }
        let _hold = arb.lease(100, None).unwrap();
        for _ in 0..8 {
            match arb.lease(50, None) {
                Err(AdmissionError::Overloaded { retry_after }) => {
                    assert!(
                        retry_after >= 0.001,
                        "hint collapsed to {retry_after}s after zero-length holds"
                    );
                    assert!(retry_after.is_finite());
                }
                other => panic!("expected Overloaded, got {other:?}"),
            }
        }
    }

    #[test]
    fn retry_after_stays_bounded_after_one_pathological_outlier() {
        // Many near-instant holds, then one outlier orders of magnitude
        // longer. The 1/4-step EWMA folds the outlier in instead of
        // replacing the average wholesale, so the advisory hint stays a
        // small multiple of the *blended* hold time and never explodes to
        // the raw outlier scaled by queued demand.
        let arb = MemoryArbiter::new(100, 0);
        for _ in 0..16 {
            drop(arb.lease(10, None).unwrap());
        }
        let outlier = arb.lease(10, None).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(80));
        drop(outlier);
        let _hold = arb.lease(100, None).unwrap();
        let retry = match arb.lease(60, None) {
            Err(AdmissionError::Overloaded { retry_after }) => retry_after,
            other => panic!("expected Overloaded, got {other:?}"),
        };
        // demand = 100 held + 60 requested = 2 budget drains; the blended
        // hold is ~0.25 x the outlier, so even with generous host-timing
        // slack the hint stays far below an unblended outlier estimate.
        assert!(retry >= 0.001, "floor lost: {retry}");
        assert!(retry < 2.0, "hint exploded after one outlier: {retry}s");
    }

    #[test]
    fn fifo_order_is_strict_even_when_later_requests_fit() {
        // A small request behind a large queued one must wait its turn:
        // granting it early would starve the large request forever.
        let arb = MemoryArbiter::new(100, 4);
        let hold = arb.lease(60, None).unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let big = {
            let (arb, order) = (arb.clone(), Arc::clone(&order));
            std::thread::spawn(move || {
                let l = arb.lease(100, None).unwrap();
                order.lock().unwrap().push("big");
                l
            })
        };
        while arb.snapshot().queued < 1 {
            std::thread::yield_now();
        }
        let small = {
            let (arb, order) = (arb.clone(), Arc::clone(&order));
            std::thread::spawn(move || {
                // 30 bytes *would* fit beside the 60 held, but "big" is
                // ahead in the queue.
                let l = arb.lease(30, None).unwrap();
                order.lock().unwrap().push("small");
                l
            })
        };
        while arb.snapshot().queued < 2 {
            std::thread::yield_now();
        }
        assert!(order.lock().unwrap().is_empty());
        drop(hold);
        let big = big.join().unwrap();
        drop(big);
        let small = small.join().unwrap();
        drop(small);
        assert_eq!(*order.lock().unwrap(), vec!["big", "small"]);
        assert!(arb.is_idle());
    }
}
