//! Durable run manifests, a per-partition completion journal, and crash /
//! cancellation plumbing — the exactly-once resume layer.
//!
//! PBSM and S³J materialize intermediate state (partition files, level
//! files) before the join phase, so a crash mid-run would otherwise lose all
//! completed work, and a naive restart would re-emit every result already
//! produced — the paper's duplicate-generation problem (§4) reappearing at
//! the *run* level instead of the tile level. This module applies the same
//! medicine at run granularity: a result pair is attributed to exactly one
//! journal commit, so a resumed run emits each pair exactly once.
//!
//! ## Durability protocol
//!
//! Three on-disk structures, all carrying FNV-1a-64 record checksums:
//!
//! * **Superblock** — an append-only file of fixed-size pointer records,
//!   each naming a manifest file. The *last valid* record wins; a torn or
//!   corrupt tail is ignored. Appending a pointer after the manifest bytes
//!   are durable is this simulation's equivalent of an atomic
//!   write-to-temp-then-rename publish: readers either see the old manifest
//!   or the new one, never a half-written one.
//! * **Manifest** — one immutable file per published run state: run id,
//!   config fingerprint, phase ([`RunPhase`]), the partition files of both
//!   relations, and the journal/results file ids.
//! * **Journal** — an append-only file of fixed-size completion records,
//!   one per finished partition: `(partition, results_end, candidates,
//!   results, duplicates)`. A record is appended only *after* the
//!   partition's result pairs are durably flushed to the results file, so
//!   `results_end` is a watermark the recovery scan can roll back to.
//!
//! ## Commit protocol (per partition)
//!
//! 1. join the partition pair into an in-memory buffer,
//! 2. append the buffered pairs to the results file (durable flush),
//! 3. append the journal record (the *commit point*),
//! 4. emit the buffered pairs downstream.
//!
//! A crash before step 3 loses the partition's work but emits nothing; a
//! crash after step 3 but before step 4 is the interesting case — the
//! partition is committed but its pairs never reached the consumer of
//! *this* process. They are in the results file, so a host that lost its
//! output can re-read the committed prefix; an in-process consumer that
//! kept the crash leg's emissions gets only the *uncommitted* partitions
//! from the resume leg. Either way no pair is emitted twice.
//!
//! ## Recovery scan
//!
//! [`recover`] reads the superblock, decodes the current manifest, verifies
//! the config fingerprint, truncates a torn journal tail, rolls the results
//! file back to the last committed watermark, and deletes every file the
//! current manifest does not reference (orphans of the crashed run:
//! partially-written partitions, an unpublished manifest, …).
//!
//! ## Why partition-granular resume is duplicate-free
//!
//! Both joins use the Reference Point Method: a pair found in several
//! tiles/cells is *emitted* only in the one tile containing its reference
//! point, which lives in exactly one top-level partition. Emissions are
//! therefore already partitioned — no pair is produced by two different
//! journal units — so skipping committed partitions skips exactly their
//! pairs and nothing else. The original sort-phase dedup has no such
//! property (a pair may sit in many partitions' candidate files until the
//! global sort), which is why checkpointing requires RPM.

use std::collections::BTreeMap;
use std::sync::Arc;

use parallel::{CancelCause, CancelToken};
use parking_lot::Mutex;

use crate::disk::page_checksum as fnv1a;
use crate::fault::{CrashPoint, JoinError};
use crate::metrics::Recorder;
use crate::record::{FixedRecord, IdPair};
use crate::{FileId, IoError, SimDisk};

/// How far a durable run has progressed (recorded in its manifest).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunPhase {
    /// Input partitioned / level files built; the join phase has not
    /// committed yet. `files_r`/`files_s` are valid, no journal exists.
    Partition,
    /// The join phase is underway: journal + results files exist, committed
    /// partitions are listed in the journal.
    Join,
    /// The run completed; the results file holds the full output.
    Done,
}

impl RunPhase {
    fn tag(self) -> u8 {
        match self {
            RunPhase::Partition => 0,
            RunPhase::Join => 1,
            RunPhase::Done => 2,
        }
    }

    fn from_tag(t: u8) -> Option<RunPhase> {
        match t {
            0 => Some(RunPhase::Partition),
            1 => Some(RunPhase::Join),
            2 => Some(RunPhase::Done),
            _ => None,
        }
    }
}

/// A decoded manifest: one published state of a durable run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    pub run_id: u64,
    /// FNV-1a over the run's configuration and inputs; resume refuses a
    /// manifest whose fingerprint does not match the caller's.
    pub fingerprint: u64,
    pub phase: RunPhase,
    /// Algorithm tag (opaque to this layer; the caller validates it via the
    /// fingerprint, this field just aids debugging).
    pub algo: u8,
    /// Number of join-phase work units (partitions / discovered pairs).
    pub partitions: u32,
    pub journal: Option<FileId>,
    pub results: Option<FileId>,
    pub files_r: Vec<FileId>,
    pub files_s: Vec<FileId>,
}

const MANIFEST_MAGIC: &[u8; 4] = b"SJRM";
const NO_FILE: u32 = u32::MAX;

fn put_file(out: &mut Vec<u8>, f: Option<FileId>) {
    out.extend_from_slice(&f.map_or(NO_FILE, FileId::raw).to_le_bytes());
}

fn get_u32(buf: &[u8], pos: &mut usize) -> Option<u32> {
    let b = buf.get(*pos..*pos + 4)?;
    *pos += 4;
    Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

fn get_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let b = buf.get(*pos..*pos + 8)?;
    *pos += 8;
    let mut a = [0u8; 8];
    a.copy_from_slice(b);
    Some(u64::from_le_bytes(a))
}

impl Manifest {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MANIFEST_MAGIC);
        out.extend_from_slice(&1u32.to_le_bytes());
        out.extend_from_slice(&self.run_id.to_le_bytes());
        out.extend_from_slice(&self.fingerprint.to_le_bytes());
        out.push(self.phase.tag());
        out.push(self.algo);
        out.extend_from_slice(&[0u8; 2]);
        out.extend_from_slice(&self.partitions.to_le_bytes());
        put_file(&mut out, self.journal);
        put_file(&mut out, self.results);
        out.extend_from_slice(&(self.files_r.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.files_s.len() as u32).to_le_bytes());
        for f in self.files_r.iter().chain(self.files_s.iter()) {
            out.extend_from_slice(&f.raw().to_le_bytes());
        }
        let sum = fnv1a(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    fn decode(buf: &[u8]) -> Option<Manifest> {
        if buf.len() < 8 || !buf.starts_with(MANIFEST_MAGIC) {
            return None;
        }
        let body = &buf[..buf.len() - 8];
        let mut pos = body.len();
        let stored = get_u64(buf, &mut pos)?;
        if fnv1a(body) != stored {
            return None;
        }
        let mut pos = 4usize;
        if get_u32(body, &mut pos)? != 1 {
            return None;
        }
        let run_id = get_u64(body, &mut pos)?;
        let fingerprint = get_u64(body, &mut pos)?;
        let tags = body.get(pos..pos + 4)?;
        let phase = RunPhase::from_tag(tags[0])?;
        let algo = tags[1];
        pos += 4;
        let partitions = get_u32(body, &mut pos)?;
        let file = |raw: u32| (raw != NO_FILE).then(|| FileId::from_raw(raw));
        let journal = file(get_u32(body, &mut pos)?);
        let results = file(get_u32(body, &mut pos)?);
        let nr = get_u32(body, &mut pos)? as usize;
        let ns = get_u32(body, &mut pos)? as usize;
        let mut files_r = Vec::with_capacity(nr);
        for _ in 0..nr {
            files_r.push(FileId::from_raw(get_u32(body, &mut pos)?));
        }
        let mut files_s = Vec::with_capacity(ns);
        for _ in 0..ns {
            files_s.push(FileId::from_raw(get_u32(body, &mut pos)?));
        }
        if pos != body.len() {
            return None;
        }
        Some(Manifest {
            run_id,
            fingerprint,
            phase,
            algo,
            partitions,
            journal,
            results,
            files_r,
            files_s,
        })
    }
}

/// One committed join-phase work unit, as recorded in the journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalEntry {
    pub partition: u32,
    /// Results-file length (bytes) after this partition's pairs were
    /// flushed — the rollback watermark.
    pub results_end: u64,
    pub candidates: u64,
    pub results: u64,
    pub duplicates: u64,
}

/// Journal record: 40 payload bytes + 8 checksum bytes.
const JOURNAL_RECORD: usize = 48;

impl JournalEntry {
    fn encode(&self) -> [u8; JOURNAL_RECORD] {
        let mut out = [0u8; JOURNAL_RECORD];
        out[0..4].copy_from_slice(&self.partition.to_le_bytes());
        out[8..16].copy_from_slice(&self.results_end.to_le_bytes());
        out[16..24].copy_from_slice(&self.candidates.to_le_bytes());
        out[24..32].copy_from_slice(&self.results.to_le_bytes());
        out[32..40].copy_from_slice(&self.duplicates.to_le_bytes());
        let sum = fnv1a(&out[..40]);
        out[40..48].copy_from_slice(&sum.to_le_bytes());
        out
    }

    fn decode(buf: &[u8]) -> Option<JournalEntry> {
        if buf.len() < JOURNAL_RECORD {
            return None;
        }
        let mut pos = 40usize;
        let stored = get_u64(buf, &mut pos)?;
        if fnv1a(&buf[..40]) != stored {
            return None;
        }
        let mut pos = 0usize;
        let partition = get_u32(buf, &mut pos)?;
        pos += 4;
        let results_end = get_u64(buf, &mut pos)?;
        let candidates = get_u64(buf, &mut pos)?;
        let results = get_u64(buf, &mut pos)?;
        let duplicates = get_u64(buf, &mut pos)?;
        Some(JournalEntry {
            partition,
            results_end,
            candidates,
            results,
            duplicates,
        })
    }
}

/// Superblock pointer record: manifest file id + checksum, 16 bytes.
const POINTER_RECORD: usize = 16;

fn encode_pointer(manifest_file: FileId) -> [u8; POINTER_RECORD] {
    let mut out = [0u8; POINTER_RECORD];
    out[0..4].copy_from_slice(&manifest_file.raw().to_le_bytes());
    let sum = fnv1a(&out[..8]);
    out[8..16].copy_from_slice(&sum.to_le_bytes());
    out
}

/// Reads the superblock and returns the manifest file the *last valid*
/// pointer record names; `None` when no valid pointer was ever published.
/// Torn or corrupt trailing records are skipped, not errors — they are the
/// expected residue of a crash during publish.
fn current_manifest_file(disk: &SimDisk, superblock: FileId) -> Result<Option<FileId>, IoError> {
    let len = disk.try_len(superblock)?;
    if len < POINTER_RECORD as u64 {
        return Ok(None);
    }
    let mut buf = vec![0u8; len as usize];
    disk.try_read(superblock, 0, &mut buf)?;
    let mut current = None;
    for rec in buf.chunks(POINTER_RECORD) {
        if rec.len() < POINTER_RECORD {
            break; // torn tail
        }
        let mut pos = 8usize;
        let stored = match get_u64(rec, &mut pos) {
            Some(s) => s,
            None => break,
        };
        if fnv1a(&rec[..8]) != stored {
            break; // corrupt record: ignore it and everything after
        }
        let mut pos = 0usize;
        if let Some(raw) = get_u32(rec, &mut pos) {
            current = Some(FileId::from_raw(raw));
        }
    }
    Ok(current)
}

fn resume_error(phase: &'static str) -> JoinError {
    JoinError::new(phase, IoError::unsupported())
}

/// Counts journal commits and fires the plan's [`CrashPoint`] at the right
/// boundary. Disabled (`point = None`) on resumed runs, so a resume
/// completes even when the original plan still names a crash.
struct CrashInjector {
    point: Option<CrashPoint>,
    commits: u32,
}

impl CrashInjector {
    /// Fires `MidPartition(n)` when the `n+1`-th record is about to be
    /// appended (i.e. after `n` completed commits).
    fn before_commit(&mut self) -> Option<CrashPoint> {
        match self.point {
            Some(p @ CrashPoint::MidPartition(n)) if self.commits == n => Some(p),
            _ => None,
        }
    }

    /// Fires `AfterCommit(n)` right after the `n`-th commit is durable.
    fn after_commit(&mut self) -> Option<CrashPoint> {
        self.commits += 1;
        match self.point {
            Some(p @ CrashPoint::AfterCommit(n)) if self.commits == n => Some(p),
            _ => None,
        }
    }

    /// Fires `MidRename` during the final manifest publish.
    fn at_rename(&mut self) -> Option<CrashPoint> {
        match self.point {
            Some(p @ CrashPoint::MidRename) => Some(p),
            _ => None,
        }
    }
}

/// Driver of one durable run: owns the superblock, manifest, journal and
/// results files, enforces the commit protocol, and injects crashes.
///
/// A `JoinError` with [`crate::JoinErrorKind::Crashed`] returned from any
/// method means the simulated process died: the caller must propagate it
/// *without cleanup*, leaving the run directory exactly as the crash did.
pub struct RunCheckpoint {
    disk: SimDisk,
    superblock: FileId,
    manifest: Manifest,
    /// The currently-published manifest file, if any.
    manifest_file: Option<FileId>,
    committed: BTreeMap<u32, JournalEntry>,
    results_end: u64,
    injector: CrashInjector,
}

impl RunCheckpoint {
    /// Begins a fresh durable run. The superblock must already exist
    /// (callers create it as the disk's *first* file, so its id is a fixed
    /// convention a resuming process can reconstruct).
    pub fn start(
        disk: &SimDisk,
        superblock: FileId,
        run_id: u64,
        fingerprint: u64,
        algo: u8,
    ) -> RunCheckpoint {
        let crash = disk.fault_plan().and_then(|p| p.crash);
        RunCheckpoint {
            disk: disk.clone(),
            superblock,
            manifest: Manifest {
                run_id,
                fingerprint,
                phase: RunPhase::Partition,
                algo,
                partitions: 0,
                journal: None,
                results: None,
                files_r: Vec::new(),
                files_s: Vec::new(),
            },
            manifest_file: None,
            committed: BTreeMap::new(),
            results_end: 0,
            injector: CrashInjector {
                point: crash,
                commits: 0,
            },
        }
    }

    pub fn run_id(&self) -> u64 {
        self.manifest.run_id
    }

    pub fn phase(&self) -> RunPhase {
        self.manifest.phase
    }

    pub fn partitions(&self) -> u32 {
        self.manifest.partitions
    }

    /// Partition files recorded in the manifest (what a resumed join phase
    /// reads instead of re-partitioning).
    pub fn files(&self) -> (&[FileId], &[FileId]) {
        (&self.manifest.files_r, &self.manifest.files_s)
    }

    /// `true` iff `partition`'s journal record is durable — resume skips it.
    pub fn is_committed(&self, partition: u32) -> bool {
        self.committed.contains_key(&partition)
    }

    /// Committed entries in partition order.
    pub fn committed(&self) -> impl Iterator<Item = &JournalEntry> {
        self.committed.values()
    }

    pub fn committed_count(&self) -> u32 {
        self.committed.len() as u32
    }

    /// Writes `manifest` to a fresh file and publishes it via the
    /// superblock. The pointer append is the atomic publish point.
    fn publish(&mut self) -> Result<(), JoinError> {
        let file = self.disk.create();
        let to_err = |io: IoError| JoinError::new("checkpoint", io);
        self.disk.try_append(file, &self.manifest.encode()).map_err(to_err)?;
        if self.manifest.phase == RunPhase::Done {
            if let Some(p) = self.injector.at_rename() {
                // Manifest bytes are durable but the pointer is not: the
                // previous manifest stays current. The unpublished file is
                // an orphan the recovery scan removes.
                return Err(JoinError::crashed("checkpoint", p));
            }
        }
        self.disk
            .try_append(self.superblock, &encode_pointer(file))
            .map_err(to_err)?;
        // The superseded manifest file is garbage once the new pointer is
        // durable; a crash landing between the append and this delete just
        // leaves an orphan for the recovery scan.
        if let Some(old) = self.manifest_file.replace(file) {
            self.disk.delete(old);
        }
        Ok(())
    }

    /// Publishes a [`RunPhase::Partition`] manifest listing the materialized
    /// input files — after this, a crash resumes without redoing the
    /// build/partition work (used by S³J between build and sort).
    pub fn commit_partition_phase(
        &mut self,
        files_r: &[FileId],
        files_s: &[FileId],
    ) -> Result<(), JoinError> {
        self.manifest.phase = RunPhase::Partition;
        self.manifest.files_r = files_r.to_vec();
        self.manifest.files_s = files_s.to_vec();
        self.publish()
    }

    /// Creates the journal and results files and publishes a
    /// [`RunPhase::Join`] manifest: from here on, per-partition commits are
    /// durable and resume skips them.
    pub fn commit_join_phase(
        &mut self,
        partitions: u32,
        files_r: &[FileId],
        files_s: &[FileId],
    ) -> Result<(), JoinError> {
        if self.manifest.journal.is_none() {
            self.manifest.journal = Some(self.disk.create());
            self.manifest.results = Some(self.disk.create());
        }
        self.manifest.phase = RunPhase::Join;
        self.manifest.partitions = partitions;
        self.manifest.files_r = files_r.to_vec();
        self.manifest.files_s = files_s.to_vec();
        self.publish()
    }

    fn journal_file(&self) -> Result<FileId, JoinError> {
        self.manifest.journal.ok_or_else(|| resume_error("checkpoint"))
    }

    fn results_file(&self) -> Result<FileId, JoinError> {
        self.manifest.results.ok_or_else(|| resume_error("checkpoint"))
    }

    /// Durably flushes one partition's result pairs (commit-protocol step 2).
    pub fn append_results(&mut self, pairs: &[IdPair]) -> Result<(), JoinError> {
        if pairs.is_empty() {
            return Ok(());
        }
        let file = self.results_file()?;
        let mut buf = vec![0u8; pairs.len() * IdPair::SIZE];
        for (p, chunk) in pairs.iter().zip(buf.chunks_mut(IdPair::SIZE)) {
            p.encode(chunk);
        }
        self.disk
            .try_append(file, &buf)
            .map_err(|io| JoinError::new("checkpoint", io))?;
        self.results_end += buf.len() as u64;
        Ok(())
    }

    /// Appends the journal record for `partition` (commit-protocol step 3)
    /// and fires `MidPartition` / `AfterCommit` crash points.
    pub fn commit_partition(
        &mut self,
        partition: u32,
        candidates: u64,
        results: u64,
        duplicates: u64,
    ) -> Result<(), JoinError> {
        let journal = self.journal_file()?;
        let entry = JournalEntry {
            partition,
            results_end: self.results_end,
            candidates,
            results,
            duplicates,
        };
        let record = entry.encode();
        let to_err = |io: IoError| JoinError::in_partition("checkpoint", partition, io);
        if let Some(p) = self.injector.before_commit() {
            // Torn journal append: half the record reaches the platter.
            self.disk
                .try_append(journal, &record[..JOURNAL_RECORD / 2])
                .map_err(to_err)?;
            return Err(JoinError::crashed("checkpoint", p));
        }
        self.disk.try_append(journal, &record).map_err(to_err)?;
        self.committed.insert(partition, entry);
        if let Some(p) = self.injector.after_commit() {
            return Err(JoinError::crashed("checkpoint", p));
        }
        Ok(())
    }

    /// Publishes the [`RunPhase::Done`] manifest and deletes the partition
    /// files (the journal, results and manifest files are kept — they *are*
    /// the run's durable record).
    pub fn finish(&mut self) -> Result<(), JoinError> {
        let keep_r = std::mem::take(&mut self.manifest.files_r);
        let keep_s = std::mem::take(&mut self.manifest.files_s);
        self.manifest.phase = RunPhase::Done;
        if let Err(e) = self.publish() {
            // Crash (or I/O failure) during publish: restore the file lists
            // so the in-memory state still matches the current manifest.
            self.manifest.files_r = keep_r;
            self.manifest.files_s = keep_s;
            self.manifest.phase = RunPhase::Join;
            return Err(e);
        }
        for f in keep_r.iter().chain(keep_s.iter()) {
            self.disk.delete(*f);
        }
        Ok(())
    }

    /// Reads the committed result pairs back from the results file (the
    /// bytes up to the recovered watermark). Charged like any other read.
    pub fn read_results(&self) -> Result<Vec<IdPair>, JoinError> {
        let file = self.results_file()?;
        let mut buf = vec![0u8; self.results_end as usize];
        self.disk
            .try_read(file, 0, &mut buf)
            .map_err(|io| JoinError::new("checkpoint", io))?;
        Ok(buf.chunks(IdPair::SIZE).map(IdPair::decode).collect())
    }
}

/// Outcome of [`recover`].
// One short-lived value per recovery, destructured immediately — the size
// gap vs `Fresh` (the checkpoint grew per-channel meters) never amortizes.
#[allow(clippy::large_enum_variant)]
pub enum Recovered {
    /// No manifest was ever published: the recovery scan removed every
    /// orphan file; the caller starts a fresh run (same superblock).
    Fresh,
    /// A manifest was recovered; its [`RunCheckpoint::phase`] says how much
    /// work survives. Crash injection is disabled on the resumed run.
    Resumed(RunCheckpoint),
}

/// Recovery scan: loads the current manifest, verifies `fingerprint`,
/// truncates a torn journal tail, rolls the results file back to the last
/// committed watermark, and deletes all unreferenced files.
pub fn recover(
    disk: &SimDisk,
    superblock: FileId,
    fingerprint: u64,
) -> Result<Recovered, JoinError> {
    let to_err = |io: IoError| JoinError::new("resume", io);
    let manifest_file = current_manifest_file(disk, superblock).map_err(to_err)?;

    let Some(manifest_file) = manifest_file else {
        // Nothing was ever published: every file except the superblock is
        // an orphan of the dead run.
        for f in disk.file_ids() {
            if f != superblock {
                disk.delete(f);
            }
        }
        return Ok(Recovered::Fresh);
    };

    let len = disk.try_len(manifest_file).map_err(to_err)?;
    let mut buf = vec![0u8; len as usize];
    disk.try_read(manifest_file, 0, &mut buf).map_err(to_err)?;
    let manifest = Manifest::decode(&buf).ok_or_else(|| resume_error("resume"))?;
    if manifest.fingerprint != fingerprint {
        return Err(resume_error("resume"));
    }

    // Orphan scan: drop everything the current manifest does not reference.
    let mut keep = vec![superblock, manifest_file];
    keep.extend(manifest.journal);
    keep.extend(manifest.results);
    keep.extend_from_slice(&manifest.files_r);
    keep.extend_from_slice(&manifest.files_s);
    for f in disk.file_ids() {
        if !keep.contains(&f) {
            disk.delete(f);
        }
    }

    // Journal recovery: valid prefix wins, torn/corrupt tail is truncated.
    let mut committed = BTreeMap::new();
    let mut results_end = 0u64;
    if let Some(journal) = manifest.journal {
        let len = disk.try_len(journal).map_err(to_err)?;
        let mut buf = vec![0u8; len as usize];
        disk.try_read(journal, 0, &mut buf).map_err(to_err)?;
        let mut valid = 0usize;
        for rec in buf.chunks(JOURNAL_RECORD) {
            match JournalEntry::decode(rec) {
                Some(e) => {
                    results_end = results_end.max(e.results_end);
                    committed.insert(e.partition, e);
                    valid += JOURNAL_RECORD;
                }
                None => break,
            }
        }
        if (valid as u64) < len {
            disk.try_truncate(journal, valid as u64).map_err(to_err)?;
        }
    }
    if let Some(results) = manifest.results {
        // Roll back pairs flushed by partitions that never committed.
        disk.try_truncate(results, results_end).map_err(to_err)?;
    }

    Ok(Recovered::Resumed(RunCheckpoint {
        disk: disk.clone(),
        superblock,
        manifest,
        manifest_file: Some(manifest_file),
        committed,
        results_end,
        injector: CrashInjector {
            point: None, // a resumed run must complete
            commits: 0,
        },
    }))
}

/// Per-run control plumbing threaded through the join entry points:
/// cooperative cancellation, a simulated-time deadline, and the optional
/// checkpoint. [`RunControl::none`] is the default and changes nothing about
/// a join's behaviour.
#[derive(Default)]
pub struct RunControl {
    pub cancel: CancelToken,
    /// Simulated-seconds budget; `None` = unbounded.
    pub deadline: Option<f64>,
    /// When present, the join commits per-partition progress through it.
    pub checkpoint: Option<Mutex<RunCheckpoint>>,
    /// When present, the join records phase spans and per-partition events
    /// on the simulated clock (see [`crate::metrics`]).
    pub recorder: Option<Arc<Recorder>>,
}

impl RunControl {
    /// No cancellation, no deadline, no checkpointing.
    pub fn none() -> RunControl {
        RunControl::default()
    }

    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    pub fn with_deadline(mut self, seconds: f64) -> Self {
        self.deadline = Some(seconds);
        self
    }

    pub fn with_checkpoint(mut self, cp: RunCheckpoint) -> Self {
        self.checkpoint = Some(Mutex::new(cp));
        self
    }

    pub fn with_recorder(mut self, recorder: Arc<Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Record a completed phase span, if a recorder is attached.
    pub fn span(&self, name: &'static str, start_s: f64, end_s: f64) {
        if let Some(r) = &self.recorder {
            r.span(name, start_s, end_s);
        }
    }

    /// Record a point event, if a recorder is attached. `attrs` are integer
    /// counters; build them only when a recorder is present to keep the
    /// unobserved path free — use [`RunControl::observed`] to guard.
    pub fn event(&self, name: &'static str, t_s: f64, attrs: &[(&'static str, u64)]) {
        if let Some(r) = &self.recorder {
            r.event(name, t_s, attrs);
        }
    }

    pub fn observed(&self) -> bool {
        self.recorder.is_some()
    }

    pub fn is_checkpointing(&self) -> bool {
        self.checkpoint.is_some()
    }

    /// Charges `elapsed` simulated seconds against the deadline and polls
    /// the cancel token (counting toward the deterministic
    /// `cancel_after_checks` hook). Returns the typed interruption error if
    /// the run should stop. Called at partition granularity.
    pub fn charge(&self, phase: &'static str, elapsed: f64) -> Option<JoinError> {
        if let Some(d) = self.deadline {
            if elapsed >= d {
                self.cancel.cancel_deadline();
            }
        }
        match self.cancel.check()? {
            CancelCause::Cancelled => Some(JoinError::cancelled(phase)),
            CancelCause::Deadline => Some(JoinError::deadline_exceeded(
                phase,
                elapsed,
                self.deadline.unwrap_or(0.0),
            )),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::{DiskModel, FaultPlan, RetryPolicy};

    fn disk() -> SimDisk {
        SimDisk::new(DiskModel {
            page_size: 64,
            positioning_ratio: 2.0,
            transfer_secs_per_page: 1.0,
            cpu_slowdown: 1.0,
            channels: 1,
            degraded_channel: None,
        })
    }

    fn pairs(range: std::ops::Range<u64>) -> Vec<IdPair> {
        range.map(|i| IdPair { r: i, s: i * 10 }).collect()
    }

    /// Runs a 3-partition join to completion under the commit protocol.
    fn run_to_done(d: &SimDisk) -> (FileId, RunCheckpoint) {
        let sb = d.create();
        let mut cp = RunCheckpoint::start(d, sb, 7, 0xF00D, 1);
        let fr: Vec<FileId> = (0..3).map(|_| d.create()).collect();
        let fs: Vec<FileId> = (0..3).map(|_| d.create()).collect();
        for f in fr.iter().chain(fs.iter()) {
            d.append(*f, &[1u8; 32]);
        }
        cp.commit_join_phase(3, &fr, &fs).unwrap();
        for p in 0..3u32 {
            let out = pairs(p as u64 * 5..p as u64 * 5 + 5);
            cp.append_results(&out).unwrap();
            cp.commit_partition(p, 8, 5, 3).unwrap();
        }
        cp.finish().unwrap();
        (sb, cp)
    }

    #[test]
    fn manifest_encode_decode_round_trip() {
        let m = Manifest {
            run_id: 42,
            fingerprint: 0xDEAD_BEEF,
            phase: RunPhase::Join,
            algo: 2,
            partitions: 9,
            journal: Some(FileId::from_raw(3)),
            results: None,
            files_r: vec![FileId::from_raw(4), FileId::from_raw(5)],
            files_s: vec![FileId::from_raw(6)],
        };
        let bytes = m.encode();
        assert_eq!(Manifest::decode(&bytes), Some(m));
        // Any corrupted byte fails the checksum.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert_eq!(Manifest::decode(&bad), None, "byte {i}");
        }
        assert_eq!(Manifest::decode(&bytes[..bytes.len() - 1]), None);
    }

    #[test]
    fn journal_entry_round_trip_rejects_corruption() {
        let e = JournalEntry {
            partition: 3,
            results_end: 480,
            candidates: 100,
            results: 60,
            duplicates: 40,
        };
        let rec = e.encode();
        assert_eq!(JournalEntry::decode(&rec), Some(e));
        let mut bad = rec;
        bad[16] ^= 1;
        assert_eq!(JournalEntry::decode(&bad), None);
        assert_eq!(JournalEntry::decode(&rec[..24]), None);
    }

    #[test]
    fn completed_run_recovers_as_done_with_full_results() {
        let d = disk();
        let (sb, _) = run_to_done(&d);
        let got = recover(&d, sb, 0xF00D).unwrap();
        let Recovered::Resumed(cp) = got else {
            panic!("expected a resumed checkpoint")
        };
        assert_eq!(cp.phase(), RunPhase::Done);
        assert_eq!(cp.committed_count(), 3);
        assert_eq!(cp.read_results().unwrap(), pairs(0..15));
        // Partition files were deleted at finish; journal/results remain.
        let total: u64 = cp.committed().map(|e| e.results).sum();
        assert_eq!(total, 15);
    }

    #[test]
    fn fingerprint_mismatch_refuses_resume() {
        let d = disk();
        let (sb, _) = run_to_done(&d);
        assert!(recover(&d, sb, 0xBAD).is_err());
    }

    #[test]
    fn unpublished_run_recovers_fresh_and_removes_orphans() {
        let d = disk();
        let sb = d.create();
        let _cp = RunCheckpoint::start(&d, sb, 1, 9, 0);
        // Simulate a crash during the partition phase: files exist, nothing
        // was published.
        for _ in 0..4 {
            let f = d.create();
            d.append(f, &[0u8; 100]);
        }
        let got = recover(&d, sb, 9).unwrap();
        assert!(matches!(got, Recovered::Fresh));
        assert_eq!(d.file_ids(), vec![sb], "orphans must be gone");
    }

    #[test]
    fn torn_journal_tail_is_truncated_and_results_rolled_back() {
        let d = disk();
        let sb = d.create();
        let mut cp = RunCheckpoint::start(&d, sb, 1, 77, 1);
        let fr = vec![d.create()];
        let fs = vec![d.create()];
        cp.commit_join_phase(2, &fr, &fs).unwrap();
        cp.append_results(&pairs(0..4)).unwrap();
        cp.commit_partition(0, 4, 4, 0).unwrap();
        // Partition 1 flushed pairs and tore its journal record: simulate
        // by appending results then garbage where the record would go.
        cp.append_results(&pairs(4..9)).unwrap();
        let journal = cp.manifest.journal.unwrap();
        d.append(journal, &[0xABu8; JOURNAL_RECORD / 2]);

        let got = recover(&d, sb, 77).unwrap();
        let Recovered::Resumed(rcp) = got else {
            panic!("expected resume")
        };
        assert_eq!(rcp.phase(), RunPhase::Join);
        assert_eq!(rcp.committed_count(), 1);
        assert!(rcp.is_committed(0) && !rcp.is_committed(1));
        // The torn tail is gone and the journal re-parses cleanly.
        assert_eq!(d.len(journal) as usize, JOURNAL_RECORD);
        // Partition 1's uncommitted pairs were rolled back.
        assert_eq!(rcp.read_results().unwrap(), pairs(0..4));
        assert_eq!(d.len(rcp.manifest.results.unwrap()), 4 * 16);
    }

    #[test]
    fn crash_after_commit_fires_at_the_exact_commit() {
        let d = disk().with_faults(
            FaultPlan::crash_only(1, CrashPoint::AfterCommit(2)),
            RetryPolicy::default(),
        );
        let sb = d.create();
        let mut cp = RunCheckpoint::start(&d, sb, 1, 5, 1);
        cp.commit_join_phase(3, &[], &[]).unwrap();
        cp.append_results(&pairs(0..2)).unwrap();
        cp.commit_partition(0, 2, 2, 0).unwrap();
        cp.append_results(&pairs(2..4)).unwrap();
        let err = cp.commit_partition(1, 2, 2, 0).unwrap_err();
        assert!(
            matches!(
                err.kind,
                crate::JoinErrorKind::Crashed(CrashPoint::AfterCommit(2))
            ),
            "{err}"
        );
        // Both commits are durable — the crash struck after the append.
        let got = recover(&d, sb, 5).unwrap();
        let Recovered::Resumed(rcp) = got else {
            panic!("expected resume")
        };
        assert_eq!(rcp.committed_count(), 2);
        assert_eq!(rcp.read_results().unwrap(), pairs(0..4));
    }

    #[test]
    fn crash_mid_partition_leaves_a_torn_record_recovery_truncates() {
        let d = disk().with_faults(
            FaultPlan::crash_only(1, CrashPoint::MidPartition(1)),
            RetryPolicy::default(),
        );
        let sb = d.create();
        let mut cp = RunCheckpoint::start(&d, sb, 1, 5, 1);
        cp.commit_join_phase(3, &[], &[]).unwrap();
        cp.append_results(&pairs(0..2)).unwrap();
        cp.commit_partition(0, 2, 2, 0).unwrap();
        cp.append_results(&pairs(2..4)).unwrap();
        let err = cp.commit_partition(1, 2, 2, 0).unwrap_err();
        assert!(matches!(
            err.kind,
            crate::JoinErrorKind::Crashed(CrashPoint::MidPartition(1))
        ));
        let journal = cp.manifest.journal.unwrap();
        assert_eq!(d.len(journal) as usize, JOURNAL_RECORD + JOURNAL_RECORD / 2);

        let got = recover(&d, sb, 5).unwrap();
        let Recovered::Resumed(rcp) = got else {
            panic!("expected resume")
        };
        assert_eq!(rcp.committed_count(), 1);
        assert_eq!(d.len(journal) as usize, JOURNAL_RECORD);
        // Partition 1's flushed-but-uncommitted pairs rolled back.
        assert_eq!(rcp.read_results().unwrap(), pairs(0..2));
    }

    #[test]
    fn crash_mid_rename_keeps_previous_manifest_current() {
        let d = disk().with_faults(
            FaultPlan::crash_only(1, CrashPoint::MidRename),
            RetryPolicy::default(),
        );
        let sb = d.create();
        let mut cp = RunCheckpoint::start(&d, sb, 1, 5, 1);
        let fr = vec![d.create()];
        let fs = vec![d.create()];
        cp.commit_join_phase(1, &fr, &fs).unwrap();
        cp.append_results(&pairs(0..3)).unwrap();
        cp.commit_partition(0, 3, 3, 0).unwrap();
        let err = cp.finish().unwrap_err();
        assert!(matches!(
            err.kind,
            crate::JoinErrorKind::Crashed(CrashPoint::MidRename)
        ));
        // Partition files must NOT have been deleted (the publish failed).
        assert!(d.exists(fr[0]) && d.exists(fs[0]));

        let files_before = d.file_ids().len();
        let got = recover(&d, sb, 5).unwrap();
        let Recovered::Resumed(mut rcp) = got else {
            panic!("expected resume")
        };
        // The unpublished Done manifest was an orphan; the Join manifest
        // with its fully-committed journal is current.
        assert_eq!(rcp.phase(), RunPhase::Join);
        assert_eq!(rcp.committed_count(), 1);
        assert!(d.file_ids().len() < files_before);
        // Resume completes: crash injection is disabled on recovery.
        rcp.finish().unwrap();
        assert!(!d.exists(fr[0]) && !d.exists(fs[0]));
        let Recovered::Resumed(done) = recover(&d, sb, 5).unwrap() else {
            panic!("expected resume")
        };
        assert_eq!(done.phase(), RunPhase::Done);
        assert_eq!(done.read_results().unwrap(), pairs(0..3));
    }

    #[test]
    fn run_control_charges_deadline_and_latches_cause() {
        let ctl = RunControl::none().with_deadline(10.0);
        assert!(ctl.charge("join", 9.9).is_none());
        let err = ctl.charge("join", 10.5).unwrap();
        assert!(matches!(
            err.kind,
            crate::JoinErrorKind::DeadlineExceeded { .. }
        ));
        // Once tripped, even an under-budget charge reports the expiry.
        assert!(ctl.charge("join", 0.0).is_some());

        let ctl = RunControl::none();
        assert!(ctl.charge("partition", 1e9).is_none(), "no deadline set");
        ctl.cancel.cancel();
        let err = ctl.charge("partition", 0.0).unwrap();
        assert!(matches!(err.kind, crate::JoinErrorKind::Cancelled));
    }

    #[test]
    fn partition_phase_manifest_survives_for_resume() {
        let d = disk();
        let sb = d.create();
        let mut cp = RunCheckpoint::start(&d, sb, 3, 11, 2);
        let fr = vec![d.create(), d.create()];
        let fs = vec![d.create()];
        cp.commit_partition_phase(&fr, &fs).unwrap();
        // Orphan from a later, never-published stage.
        let orphan = d.create();
        d.append(orphan, &[9u8; 16]);

        let Recovered::Resumed(rcp) = recover(&d, sb, 11).unwrap() else {
            panic!("expected resume")
        };
        assert_eq!(rcp.phase(), RunPhase::Partition);
        let (r, s) = rcp.files();
        assert_eq!((r, s), (&fr[..], &fs[..]));
        assert!(!d.exists(orphan), "orphan swept");
        assert!(d.exists(fr[0]) && d.exists(fr[1]) && d.exists(fs[0]));
    }
}
