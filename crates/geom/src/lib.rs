//! Geometric primitives for spatial join processing.
//!
//! This crate provides the building blocks shared by every join algorithm in
//! the workspace:
//!
//! * [`Rect`] — a rectilinear minimum bounding rectangle (MBR) given by its
//!   lower-left corner `(xl, yl)` and upper-right corner `(xh, yh)`,
//! * [`Point`] — a 2-d point,
//! * [`Kpe`] — a *key-pointer element*: the identifier of a spatial object
//!   together with its MBR. The filter step of a spatial join operates
//!   exclusively on KPEs,
//! * [`reference_point`] — the Reference Point Method (RPM) primitive used by
//!   the duplicate-elimination logic of both PBSM and S³J: for an intersecting
//!   pair `(r, s)` the unique point
//!   `x = (max(r.xl, s.xl), min(r.yh, s.yh))`.
//!
//! All coordinates are `f64`. Datasets in this workspace are normalised to the
//! unit square `[0, 1] × [0, 1]`, but nothing in this crate assumes that.

mod kpe;
mod rect;
mod refpoint;
mod segment;

pub use kpe::{Kpe, RecordId};
pub use rect::{Point, Rect};
pub use refpoint::reference_point;
pub use segment::Segment;

/// Statistics over a set of rectangles, as reported in Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetStats {
    /// Number of MBRs in the dataset.
    pub count: usize,
    /// Sum of rectangle areas divided by the area of the global MBR
    /// (the paper's *coverage* measure; may exceed 1 for overlapping data).
    pub coverage: f64,
    /// MBR of the whole dataset.
    pub bounds: Rect,
}

/// Computes count, coverage and bounds of a dataset.
///
/// Returns `None` for an empty input (coverage is undefined then).
pub fn dataset_stats(data: &[Kpe]) -> Option<DatasetStats> {
    let first = data.first()?;
    let mut bounds = first.rect;
    let mut area_sum = 0.0;
    for k in data {
        bounds = bounds.union(&k.rect);
        area_sum += k.rect.area();
    }
    let total = bounds.area();
    let coverage = if total > 0.0 { area_sum / total } else { 0.0 };
    Some(DatasetStats {
        count: data.len(),
        coverage,
        bounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kpe(id: u64, xl: f64, yl: f64, xh: f64, yh: f64) -> Kpe {
        Kpe::new(RecordId(id), Rect::new(xl, yl, xh, yh))
    }

    #[test]
    fn stats_of_empty_dataset_is_none() {
        assert!(dataset_stats(&[]).is_none());
    }

    #[test]
    fn stats_single_rect_coverage_one() {
        let s = dataset_stats(&[kpe(0, 0.1, 0.1, 0.3, 0.4)]).unwrap();
        assert_eq!(s.count, 1);
        assert!((s.coverage - 1.0).abs() < 1e-12);
        assert_eq!(s.bounds, Rect::new(0.1, 0.1, 0.3, 0.4));
    }

    #[test]
    fn stats_two_disjoint_quadrants() {
        // Two quarter-size rects inside the unit square: coverage = 0.5.
        let s = dataset_stats(&[
            kpe(0, 0.0, 0.0, 0.5, 0.5),
            kpe(1, 0.5, 0.5, 1.0, 1.0),
        ])
        .unwrap();
        assert!((s.coverage - 0.5).abs() < 1e-12);
        assert_eq!(s.bounds, Rect::new(0.0, 0.0, 1.0, 1.0));
    }

    #[test]
    fn stats_coverage_can_exceed_one_for_overlapping_data() {
        let s = dataset_stats(&[
            kpe(0, 0.0, 0.0, 1.0, 1.0),
            kpe(1, 0.0, 0.0, 1.0, 1.0),
            kpe(2, 0.0, 0.0, 1.0, 1.0),
        ])
        .unwrap();
        assert!((s.coverage - 3.0).abs() < 1e-12);
    }

    #[test]
    fn stats_degenerate_zero_area_bounds() {
        // All rects are the same point: bounds area 0, coverage defined as 0.
        let s = dataset_stats(&[kpe(0, 0.5, 0.5, 0.5, 0.5)]).unwrap();
        assert_eq!(s.coverage, 0.0);
    }
}
