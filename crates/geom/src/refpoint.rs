use crate::{Point, Rect};

/// The Reference Point Method primitive (paper §3.2.1).
///
/// For a pair of intersecting rectangles `(r, s)` the *reference point* is
///
/// ```text
/// x = ( max(r.xl, s.xl), min(r.yh, s.yh) )
/// ```
///
/// i.e. the upper-left corner of the intersection `r ∩ s`. Because the
/// intersection of two rectangles is itself a rectangle, this point is unique
/// and lies inside both `r` and `s`. When the data space is divided into
/// *disjoint* partitions, the reference point lies in exactly one partition
/// region — so a result pair is reported only by the partition containing it,
/// eliminating duplicates online at the cost of at most six comparisons.
///
/// The function is symmetric: `reference_point(r, s) == reference_point(s, r)`.
///
/// Callers must only invoke this for pairs that actually intersect; the value
/// is meaningless otherwise (debug builds assert intersection).
///
/// ```
/// use geom::{reference_point, Rect};
/// let r = Rect::new(0.0, 0.0, 0.6, 0.8);
/// let s = Rect::new(0.4, 0.2, 1.0, 0.5);
/// let x = reference_point(&r, &s);
/// assert_eq!((x.x, x.y), (0.4, 0.5)); // upper-left corner of r ∩ s
/// ```
#[inline]
pub fn reference_point(r: &Rect, s: &Rect) -> Point {
    debug_assert!(r.intersects(s), "reference point of non-intersecting pair");
    Point::new(r.xl.max(s.xl), r.yh.min(s.yh))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matches_paper_definition() {
        let r = Rect::new(0.0, 0.0, 0.6, 0.8);
        let s = Rect::new(0.4, 0.2, 1.0, 0.5);
        let x = reference_point(&r, &s);
        assert_eq!(x, Point::new(0.4, 0.5));
    }

    #[test]
    fn is_upper_left_corner_of_intersection() {
        let r = Rect::new(0.1, 0.1, 0.9, 0.9);
        let s = Rect::new(0.3, 0.0, 0.7, 0.6);
        let i = r.intersection(&s).unwrap();
        let x = reference_point(&r, &s);
        assert_eq!(x, Point::new(i.xl, i.yh));
    }

    fn arb_rect() -> impl Strategy<Value = Rect> {
        (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0).prop_map(|(a, b, c, d)| {
            Rect::from_corners(Point::new(a, b), Point::new(c, d))
        })
    }

    proptest! {
        #[test]
        fn prop_symmetric_and_inside_both(a in arb_rect(), b in arb_rect()) {
            prop_assume!(a.intersects(&b));
            let x = reference_point(&a, &b);
            prop_assert_eq!(x, reference_point(&b, &a));
            prop_assert!(a.contains_point(x));
            prop_assert!(b.contains_point(x));
        }

        /// The core RPM guarantee: over any grid partitioning of the data
        /// space into disjoint half-open cells, the reference point falls in
        /// exactly one cell.
        #[test]
        fn prop_unique_cell(a in arb_rect(), b in arb_rect(), n in 1usize..16) {
            prop_assume!(a.intersects(&b));
            let x = reference_point(&a, &b);
            let step = 1.0 / n as f64;
            let mut owners = 0;
            for i in 0..n {
                for j in 0..n {
                    let (xl, yl) = (i as f64 * step, j as f64 * step);
                    // Half-open cells, closed at the data-space boundary.
                    let in_x = x.x >= xl && (x.x < xl + step || (i == n - 1 && x.x <= 1.0));
                    let in_y = x.y >= yl && (x.y < yl + step || (j == n - 1 && x.y <= 1.0));
                    if in_x && in_y { owners += 1; }
                }
            }
            prop_assert_eq!(owners, 1);
        }
    }
}
