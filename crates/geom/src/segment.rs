use crate::{Point, Rect};

/// An exact line segment — the geometry behind a TIGER-style line MBR.
///
/// The filter step of a spatial join only sees [`crate::Kpe`]s; the
/// *refinement* step ([BKSS 94]) re-tests candidate pairs against exact
/// geometry like this.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    pub a: Point,
    pub b: Point,
}

impl Segment {
    #[inline]
    pub fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Minimum bounding rectangle of the segment.
    #[inline]
    pub fn mbr(&self) -> Rect {
        Rect::from_corners(self.a, self.b)
    }

    /// Exact segment/segment intersection test (shared endpoints and
    /// collinear overlap count as intersecting), via orientation tests.
    pub fn intersects(&self, other: &Segment) -> bool {
        let d1 = orient(other.a, other.b, self.a);
        let d2 = orient(other.a, other.b, self.b);
        let d3 = orient(self.a, self.b, other.a);
        let d4 = orient(self.a, self.b, other.b);
        if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
            && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
        {
            return true;
        }
        (d1 == 0.0 && on_segment(other.a, other.b, self.a))
            || (d2 == 0.0 && on_segment(other.a, other.b, self.b))
            || (d3 == 0.0 && on_segment(self.a, self.b, other.a))
            || (d4 == 0.0 && on_segment(self.a, self.b, other.b))
    }

    /// Squared euclidean distance between the two segments (0 when they
    /// intersect). Used by the ε-distance join's refinement step.
    pub fn distance_sq(&self, other: &Segment) -> f64 {
        if self.intersects(other) {
            return 0.0;
        }
        let d1 = point_segment_distance_sq(self.a, other);
        let d2 = point_segment_distance_sq(self.b, other);
        let d3 = point_segment_distance_sq(other.a, self);
        let d4 = point_segment_distance_sq(other.b, self);
        d1.min(d2).min(d3).min(d4)
    }
}

/// Twice the signed area of triangle `(a, b, c)`; sign gives orientation.
#[inline]
fn orient(a: Point, b: Point, c: Point) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// Given collinear `a, b, p`: is `p` within the closed box of `(a, b)`?
#[inline]
fn on_segment(a: Point, b: Point, p: Point) -> bool {
    p.x >= a.x.min(b.x) && p.x <= a.x.max(b.x) && p.y >= a.y.min(b.y) && p.y <= a.y.max(b.y)
}

/// Squared distance from point `p` to segment `s`.
fn point_segment_distance_sq(p: Point, s: &Segment) -> f64 {
    let (dx, dy) = (s.b.x - s.a.x, s.b.y - s.a.y);
    let len_sq = dx * dx + dy * dy;
    let t = if len_sq <= 0.0 {
        0.0
    } else {
        (((p.x - s.a.x) * dx + (p.y - s.a.y) * dy) / len_sq).clamp(0.0, 1.0)
    };
    let (cx, cy) = (s.a.x + t * dx, s.a.y + t * dy);
    let (ex, ey) = (p.x - cx, p.y - cy);
    ex * ex + ey * ey
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn crossing_segments_intersect() {
        let h = seg(0.0, 0.5, 1.0, 0.5);
        let v = seg(0.5, 0.0, 0.5, 1.0);
        assert!(h.intersects(&v));
        assert!(v.intersects(&h));
        assert_eq!(h.distance_sq(&v), 0.0);
    }

    #[test]
    fn parallel_segments_do_not_intersect() {
        let a = seg(0.0, 0.0, 1.0, 0.0);
        let b = seg(0.0, 0.1, 1.0, 0.1);
        assert!(!a.intersects(&b));
        assert!((a.distance_sq(&b) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn touching_endpoints_intersect() {
        let a = seg(0.0, 0.0, 0.5, 0.5);
        let b = seg(0.5, 0.5, 1.0, 0.2);
        assert!(a.intersects(&b));
    }

    #[test]
    fn collinear_overlap_intersects_disjoint_does_not() {
        let a = seg(0.0, 0.0, 0.5, 0.0);
        let b = seg(0.25, 0.0, 0.75, 0.0);
        assert!(a.intersects(&b));
        let c = seg(0.6, 0.0, 0.9, 0.0);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn mbr_overlap_without_exact_intersection() {
        // The classic filter-step false positive: diagonal segments whose
        // MBRs overlap but which never touch.
        let a = seg(0.0, 0.0, 1.0, 1.0);
        let b = seg(0.0, 0.9, 0.05, 1.0);
        assert!(a.mbr().intersects(&b.mbr()));
        assert!(!a.intersects(&b));
        assert!(a.distance_sq(&b) > 0.0);
    }

    #[test]
    fn t_junction_intersects() {
        let a = seg(0.0, 0.0, 1.0, 0.0);
        let b = seg(0.5, 0.0, 0.5, 1.0); // endpoint on a's interior
        assert!(a.intersects(&b));
    }

    #[test]
    fn degenerate_point_segments() {
        let p = seg(0.5, 0.5, 0.5, 0.5);
        let q = seg(0.5, 0.5, 0.5, 0.5);
        assert!(p.intersects(&q));
        let far = seg(0.0, 0.0, 0.1, 0.1);
        assert!(!p.intersects(&far));
        assert!(p.distance_sq(&far) > 0.0);
    }

    #[test]
    fn distance_between_skew_segments() {
        let a = seg(0.0, 0.0, 1.0, 0.0);
        let b = seg(0.2, 0.3, 0.8, 0.3);
        assert!((a.distance_sq(&b) - 0.09).abs() < 1e-12);
    }
}
