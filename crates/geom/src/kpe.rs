use crate::Rect;

/// Identifier of a spatial object — the "key pointer" of a key-pointer
/// element. In a real system this would be a RID into the base relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordId(pub u64);

/// A *key-pointer element* (KPE): the unit of work of the filter step.
///
/// The filter step of a spatial join never touches exact geometry; it joins
/// sets of KPEs and emits candidate `(RecordId, RecordId)` pairs. `Kpe` is
/// deliberately `Copy` and 40 bytes on the wire (see [`Kpe::ENCODED_SIZE`]):
/// partition sizing (PBSM formula (1)) and memory budgeting are all expressed
/// in units of `sizeof(KPE)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Kpe {
    pub id: RecordId,
    pub rect: Rect,
}

impl Kpe {
    /// Size of the fixed-length on-disk encoding in bytes.
    pub const ENCODED_SIZE: usize = 8 + 4 * 8;

    #[inline]
    pub fn new(id: RecordId, rect: Rect) -> Self {
        Kpe { id, rect }
    }

    /// Serialises into exactly [`Kpe::ENCODED_SIZE`] bytes (little endian).
    #[inline]
    pub fn encode(&self, buf: &mut [u8]) {
        buf[0..8].copy_from_slice(&self.id.0.to_le_bytes());
        buf[8..16].copy_from_slice(&self.rect.xl.to_le_bytes());
        buf[16..24].copy_from_slice(&self.rect.yl.to_le_bytes());
        buf[24..32].copy_from_slice(&self.rect.xh.to_le_bytes());
        buf[32..40].copy_from_slice(&self.rect.yh.to_le_bytes());
    }

    /// Inverse of [`Kpe::encode`].
    #[inline]
    pub fn decode(buf: &[u8]) -> Self {
        let le = |r: core::ops::Range<usize>| f64::from_le_bytes(buf[r].try_into().unwrap());
        Kpe {
            id: RecordId(u64::from_le_bytes(buf[0..8].try_into().unwrap())),
            rect: Rect {
                xl: le(8..16),
                yl: le(16..24),
                xh: le(24..32),
                yh: le(32..40),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let k = Kpe::new(RecordId(0xDEAD_BEEF_0BAD_F00D), Rect::new(0.125, 0.25, 0.5, 0.75));
        let mut buf = [0u8; Kpe::ENCODED_SIZE];
        k.encode(&mut buf);
        assert_eq!(Kpe::decode(&buf), k);
    }

    #[test]
    fn encoded_size_is_forty_bytes() {
        assert_eq!(Kpe::ENCODED_SIZE, 40);
    }

    #[test]
    fn decode_ignores_trailing_bytes() {
        let k = Kpe::new(RecordId(7), Rect::new(0.0, 0.0, 1.0, 1.0));
        let mut buf = [0xAAu8; Kpe::ENCODED_SIZE + 16];
        k.encode(&mut buf[..Kpe::ENCODED_SIZE]);
        assert_eq!(Kpe::decode(&buf), k);
    }
}
