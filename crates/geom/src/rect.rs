/// A 2-d point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }
}

/// A rectilinear minimum bounding rectangle represented by its lower-left
/// corner `(xl, yl)` and upper-right corner `(xh, yh)`.
///
/// Rectangles are closed: two rectangles sharing only an edge or a corner
/// *do* intersect, exactly as in the plane-sweep literature the paper builds
/// on. Degenerate rectangles (zero width and/or height) are legal — TIGER
/// line data routinely produces them for axis-parallel segments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    pub xl: f64,
    pub yl: f64,
    pub xh: f64,
    pub yh: f64,
}

impl Rect {
    /// Creates a rectangle. Debug-asserts that the corners are ordered.
    #[inline]
    pub fn new(xl: f64, yl: f64, xh: f64, yh: f64) -> Self {
        debug_assert!(xl <= xh && yl <= yh, "malformed rect {xl},{yl},{xh},{yh}");
        Rect { xl, yl, xh, yh }
    }

    /// The rectangle spanning the whole unit square, the normalised data
    /// space used throughout this workspace.
    #[inline]
    pub const fn unit() -> Self {
        Rect {
            xl: 0.0,
            yl: 0.0,
            xh: 1.0,
            yh: 1.0,
        }
    }

    /// Smallest rectangle containing both corners, regardless of order.
    #[inline]
    pub fn from_corners(a: Point, b: Point) -> Self {
        Rect {
            xl: a.x.min(b.x),
            yl: a.y.min(b.y),
            xh: a.x.max(b.x),
            yh: a.y.max(b.y),
        }
    }

    #[inline]
    pub fn width(&self) -> f64 {
        self.xh - self.xl
    }

    #[inline]
    pub fn height(&self) -> f64 {
        self.yh - self.yl
    }

    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    #[inline]
    pub fn center(&self) -> Point {
        Point::new((self.xl + self.xh) * 0.5, (self.yl + self.yh) * 0.5)
    }

    /// Closed-interval intersection test — the join predicate of the filter
    /// step.
    ///
    /// ```
    /// use geom::Rect;
    /// let a = Rect::new(0.0, 0.0, 0.5, 0.5);
    /// assert!(a.intersects(&Rect::new(0.5, 0.5, 1.0, 1.0))); // touching counts
    /// assert!(!a.intersects(&Rect::new(0.6, 0.6, 1.0, 1.0)));
    /// ```
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.xl <= other.xh && other.xl <= self.xh && self.yl <= other.yh && other.yl <= self.yh
    }

    /// Closed-interval containment test for a point.
    #[inline]
    pub fn contains_point(&self, p: Point) -> bool {
        self.xl <= p.x && p.x <= self.xh && self.yl <= p.y && p.y <= self.yh
    }

    /// `true` iff `other` lies entirely inside `self` (closed intervals).
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.xl <= other.xl && other.xh <= self.xh && self.yl <= other.yl && other.yh <= self.yh
    }

    /// Smallest rectangle containing both inputs.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            xl: self.xl.min(other.xl),
            yl: self.yl.min(other.yl),
            xh: self.xh.max(other.xh),
            yh: self.yh.max(other.yh),
        }
    }

    /// Intersection of both inputs, or `None` if they do not intersect.
    #[inline]
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect {
            xl: self.xl.max(other.xl),
            yl: self.yl.max(other.yl),
            xh: self.xh.min(other.xh),
            yh: self.yh.min(other.yh),
        })
    }

    /// Minkowski expansion: grows the rectangle by `d` on every side.
    /// Two rectangles are within (L∞-ish) gap `2d` of each other iff their
    /// `d`-expanded versions intersect — the filter-step transform of the
    /// ε-distance join.
    #[inline]
    pub fn expanded(&self, d: f64) -> Rect {
        debug_assert!(d >= 0.0);
        Rect {
            xl: self.xl - d,
            yl: self.yl - d,
            xh: self.xh + d,
            yh: self.yh + d,
        }
    }

    /// Grows both edge lengths by the factor `p` around the centre — the
    /// paper's `LA_RR(p)` / `LA_ST(p)` scaling operator (coverage then grows
    /// by `p²`).
    #[inline]
    pub fn scaled(&self, p: f64) -> Rect {
        let c = self.center();
        let hw = self.width() * 0.5 * p;
        let hh = self.height() * 0.5 * p;
        Rect {
            xl: c.x - hw,
            yl: c.y - hh,
            xh: c.x + hw,
            yh: c.y + hh,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_accessors() {
        let r = Rect::new(0.1, 0.2, 0.5, 0.8);
        assert!((r.width() - 0.4).abs() < 1e-12);
        assert!((r.height() - 0.6).abs() < 1e-12);
        assert!((r.area() - 0.24).abs() < 1e-12);
        let c = r.center();
        assert!((c.x - 0.3).abs() < 1e-12 && (c.y - 0.5).abs() < 1e-12);
    }

    #[test]
    fn intersects_is_symmetric_and_touching_counts() {
        let a = Rect::new(0.0, 0.0, 0.5, 0.5);
        let b = Rect::new(0.5, 0.5, 1.0, 1.0); // shares a corner
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        let c = Rect::new(0.5001, 0.0, 1.0, 0.4);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn degenerate_rects_intersect() {
        // Two crossing line segments as MBRs.
        let h = Rect::new(0.0, 0.5, 1.0, 0.5);
        let v = Rect::new(0.5, 0.0, 0.5, 1.0);
        assert!(h.intersects(&v));
        assert!(h.contains_point(Point::new(0.5, 0.5)));
    }

    #[test]
    fn intersection_matches_predicate() {
        let a = Rect::new(0.0, 0.0, 0.6, 0.6);
        let b = Rect::new(0.4, 0.2, 1.0, 0.5);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, Rect::new(0.4, 0.2, 0.6, 0.5));
        let far = Rect::new(0.9, 0.9, 1.0, 1.0);
        assert!(a.intersection(&far).is_none());
    }

    #[test]
    fn union_covers_both() {
        let a = Rect::new(0.0, 0.3, 0.2, 0.4);
        let b = Rect::new(0.5, 0.0, 0.9, 0.1);
        let u = a.union(&b);
        assert!(u.contains_rect(&a) && u.contains_rect(&b));
        assert_eq!(u, Rect::new(0.0, 0.0, 0.9, 0.4));
    }

    #[test]
    fn scaled_grows_area_quadratically() {
        let r = Rect::new(0.4, 0.4, 0.6, 0.6);
        let s = r.scaled(3.0);
        assert!((s.area() - 9.0 * r.area()).abs() < 1e-12);
        assert_eq!(s.center(), r.center());
    }

    #[test]
    fn from_corners_normalises_order() {
        let r = Rect::from_corners(Point::new(0.9, 0.1), Point::new(0.2, 0.7));
        assert_eq!(r, Rect::new(0.2, 0.1, 0.9, 0.7));
    }

    fn arb_rect() -> impl Strategy<Value = Rect> {
        (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0).prop_map(|(a, b, c, d)| {
            Rect::from_corners(Point::new(a, b), Point::new(c, d))
        })
    }

    proptest! {
        #[test]
        fn prop_intersection_iff_intersects(a in arb_rect(), b in arb_rect()) {
            prop_assert_eq!(a.intersection(&b).is_some(), a.intersects(&b));
        }

        #[test]
        fn prop_intersection_contained_in_both(a in arb_rect(), b in arb_rect()) {
            if let Some(i) = a.intersection(&b) {
                prop_assert!(a.contains_rect(&i));
                prop_assert!(b.contains_rect(&i));
            }
        }

        #[test]
        fn prop_union_commutative_and_covering(a in arb_rect(), b in arb_rect()) {
            let u = a.union(&b);
            prop_assert_eq!(u, b.union(&a));
            prop_assert!(u.contains_rect(&a) && u.contains_rect(&b));
        }

        #[test]
        fn prop_self_intersection(a in arb_rect()) {
            prop_assert!(a.intersects(&a));
            prop_assert_eq!(a.intersection(&a), Some(a));
        }
    }
}
