//! Operator-tree substrate: open-next-close iterators ([Gra 93]).
//!
//! The paper argues repeatedly (§1, §3.1, §6) that a spatial join must live
//! inside an operator tree and support *pipelined* processing: downstream
//! operators should start consuming results before the join has finished.
//! PBSM's original sort-based duplicate removal blocks the pipeline — the
//! first tuple appears only after the complete candidate set is sorted —
//! whereas the Reference Point Method streams results out of the join phase.
//!
//! This crate provides a small Volcano-style framework to make that
//! difference observable:
//!
//! * [`Operator`] — the open-next-close interface,
//! * [`KpeScan`] / [`WindowFilter`] — leaf and unary operators over KPEs,
//! * [`SpatialJoinOp`] — a *genuinely streaming* join operator: the join
//!   runs on a worker thread and results flow through a bounded channel, so
//!   `next()` returns as soon as the algorithm emits its first tuple,
//! * [`Collected`] — a sink that drains an operator and records the
//!   time-to-first-tuple and time-to-completion.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

use geom::{Kpe, Rect, RecordId};
use pbsm::{try_pbsm_join_ctl, PbsmConfig, PbsmStats};
use s3j::{try_s3j_join_ctl, S3jConfig, S3jStats};
use storage::{
    AdmissionError, CancelToken, JoinError, MemoryArbiter, Recorder, RunControl, SimDisk,
};

/// Why a [`SpatialJoinOp`] stream terminated abnormally. Delivered as the
/// final item of the stream — the operator never panics the consumer thread
/// and never leaves it blocked on the channel.
#[derive(Debug)]
pub enum JoinOpError {
    /// The join surfaced a typed I/O failure (retry budget exhausted on a
    /// permanent fault, say).
    Join(JoinError),
    /// The worker thread panicked; the payload message is preserved.
    WorkerPanicked(String),
    /// Admission was refused by the shared [`MemoryArbiter`]: the join never
    /// started and performed no I/O. `Overloaded` carries the retry hint a
    /// service should surface to its client.
    Admission(AdmissionError),
}

impl std::fmt::Display for JoinOpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinOpError::Join(e) => write!(f, "{e}"),
            JoinOpError::WorkerPanicked(msg) => write!(f, "join worker panicked: {msg}"),
            JoinOpError::Admission(e) => write!(f, "join not admitted: {e}"),
        }
    }
}

impl std::error::Error for JoinOpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JoinOpError::Join(e) => Some(e),
            JoinOpError::WorkerPanicked(_) => None,
            JoinOpError::Admission(e) => Some(e),
        }
    }
}

/// The open-next-close iterator contract of [Gra 93]. `open` may do
/// blocking preparatory work; `next` yields one tuple; `close` releases
/// resources (and must be callable before exhaustion).
pub trait Operator {
    type Item;
    fn open(&mut self);
    fn next(&mut self) -> Option<Self::Item>;
    fn close(&mut self);
}

/// Leaf operator: scans an in-memory relation of KPEs (per the paper's cost
/// model, reading base relations is free).
pub struct KpeScan {
    data: Vec<Kpe>,
    pos: usize,
    opened: bool,
}

impl KpeScan {
    pub fn new(data: Vec<Kpe>) -> Self {
        KpeScan {
            data,
            pos: 0,
            opened: false,
        }
    }
}

impl Operator for KpeScan {
    type Item = Kpe;

    fn open(&mut self) {
        self.pos = 0;
        self.opened = true;
    }

    fn next(&mut self) -> Option<Kpe> {
        debug_assert!(self.opened, "next() before open()");
        let k = self.data.get(self.pos).copied();
        self.pos += 1;
        k
    }

    fn close(&mut self) {
        self.opened = false;
    }
}

/// Unary operator: keeps only KPEs intersecting a window — the typical
/// selection an optimizer pushes below a spatial join.
pub struct WindowFilter<I> {
    input: I,
    window: Rect,
}

impl<I: Operator<Item = Kpe>> WindowFilter<I> {
    pub fn new(input: I, window: Rect) -> Self {
        WindowFilter { input, window }
    }
}

impl<I: Operator<Item = Kpe>> Operator for WindowFilter<I> {
    type Item = Kpe;

    fn open(&mut self) {
        self.input.open();
    }

    fn next(&mut self) -> Option<Kpe> {
        loop {
            let k = self.input.next()?;
            if k.rect.intersects(&self.window) {
                return Some(k);
            }
        }
    }

    fn close(&mut self) {
        self.input.close();
    }
}

/// Which join algorithm a [`SpatialJoinOp`] runs.
#[derive(Debug, Clone)]
pub enum JoinAlgorithm {
    Pbsm(PbsmConfig),
    S3j(S3jConfig),
}

/// Statistics of a completed [`SpatialJoinOp`] run, kept instead of being
/// discarded at the operator boundary — the operator tree is where
/// per-phase accounting is otherwise easiest to lose.
#[derive(Debug, Clone)]
pub enum OpStats {
    Pbsm(PbsmStats),
    S3j(S3jStats),
}

impl OpStats {
    /// The run's total simulated runtime under the multi-channel clock:
    /// emulated CPU plus channel-parallel disk time, minus prefetch-hidden
    /// time. The channel count comes from the [`SimDisk`] the operator was
    /// built with; the tuple stream is identical for every value — only this
    /// clock changes.
    pub fn total_seconds(&self) -> f64 {
        match self {
            OpStats::Pbsm(s) => s.total_seconds(),
            OpStats::S3j(s) => s.total_seconds(),
        }
    }

    /// Channel-parallel disk time: shared lane plus the busiest data channel.
    pub fn io_parallel_seconds(&self) -> f64 {
        match self {
            OpStats::Pbsm(s) => s.io_parallel_seconds(),
            OpStats::S3j(s) => s.io_parallel_seconds(),
        }
    }

    /// Disk time hidden behind computation by double-buffered prefetch.
    pub fn prefetch_hidden_seconds(&self) -> f64 {
        match self {
            OpStats::Pbsm(s) => s.prefetch_hidden_seconds(),
            OpStats::S3j(s) => s.prefetch_hidden_seconds(),
        }
    }
}

impl JoinAlgorithm {
    /// Materialises a planner-selected [`estimate::PlanChoice`] as a
    /// streaming-operator configuration. Returns `None` for choices the
    /// operator cannot stream (the SSSJ/SHJ baselines and the in-memory
    /// quadtree) — callers that plan
    /// for this operator should use
    /// [`estimate::PlanSpace::Streamable`] so this never comes up.
    pub fn from_choice(choice: &estimate::PlanChoice) -> Option<JoinAlgorithm> {
        use estimate::PlanAlgo;
        Some(match choice.algo {
            PlanAlgo::PbsmRpm => JoinAlgorithm::Pbsm(PbsmConfig {
                mem_bytes: choice.mem_bytes,
                internal: choice.internal,
                tiles_per_partition: choice.tiles_per_partition,
                partition_buffer_pages: choice.buffer_pages,
                ..Default::default()
            }),
            PlanAlgo::PbsmSort => JoinAlgorithm::Pbsm(PbsmConfig {
                mem_bytes: choice.mem_bytes,
                internal: choice.internal,
                tiles_per_partition: choice.tiles_per_partition,
                partition_buffer_pages: choice.buffer_pages,
                dedup: pbsm::Dedup::SortPhase,
                ..Default::default()
            }),
            PlanAlgo::S3jReplicated | PlanAlgo::S3jOriginal => JoinAlgorithm::S3j(S3jConfig {
                mem_bytes: choice.mem_bytes,
                internal: choice.internal,
                level_buffer_pages: choice.buffer_pages,
                replicate: choice.algo == PlanAlgo::S3jReplicated,
                ..Default::default()
            }),
            PlanAlgo::TwoLayer => JoinAlgorithm::Pbsm(PbsmConfig {
                mem_bytes: choice.mem_bytes,
                internal: choice.internal,
                tiles_per_partition: choice.tiles_per_partition,
                partition_buffer_pages: choice.buffer_pages,
                dedup: pbsm::Dedup::TwoLayer,
                ..Default::default()
            }),
            PlanAlgo::Sssj | PlanAlgo::Shj | PlanAlgo::Quadtree => return None,
        })
    }

    /// Sets the partition-join worker-thread knob of the wrapped config
    /// (`0` = all cores, `1` = sequential). The operator's output stream is
    /// identical for every value; only wall-clock changes.
    pub fn with_threads(mut self, threads: usize) -> Self {
        match &mut self {
            JoinAlgorithm::Pbsm(c) => c.threads = threads,
            JoinAlgorithm::S3j(c) => c.threads = threads,
        }
        self
    }

    /// The memory budget the wrapped config sizes itself from — the bytes a
    /// budget-shared operator leases from the [`MemoryArbiter`] before it is
    /// allowed to start.
    pub fn mem_bytes(&self) -> u64 {
        match self {
            JoinAlgorithm::Pbsm(c) => c.mem_bytes as u64,
            JoinAlgorithm::S3j(c) => c.mem_bytes as u64,
        }
    }
}

/// Binary streaming spatial-join operator.
///
/// `open()` drains both children (the join consumes its inputs either way)
/// and launches the join on a worker thread; results cross a bounded channel
/// of `pipeline_depth` tuples, so `next()` delivers the first tuple as soon
/// as the algorithm produces it. A blocking algorithm configuration (PBSM
/// with [`pbsm::Dedup::SortPhase`]) therefore exhibits its full
/// time-to-first-tuple latency through this operator, while the Reference
/// Point Method variants stream.
///
/// Items are `Result`: a join that fails with a typed I/O error (retry
/// budget exhausted on an unrecoverable fault) or a panicking worker
/// delivers one final `Err` item and ends the stream, so the consumer is
/// never left blocked on the channel and never observes a panic directly.
pub struct SpatialJoinOp<L, R> {
    left: L,
    right: R,
    algorithm: JoinAlgorithm,
    disk: SimDisk,
    pipeline_depth: usize,
    cancel: CancelToken,
    deadline: Option<f64>,
    recorder: Option<Arc<Recorder>>,
    admission: Option<MemoryArbiter>,
    stats: Arc<Mutex<Option<OpStats>>>,
    rx: Option<mpsc::Receiver<Result<(RecordId, RecordId), JoinOpError>>>,
    worker: Option<JoinHandle<()>>,
}

impl<L, R> SpatialJoinOp<L, R>
where
    L: Operator<Item = Kpe>,
    R: Operator<Item = Kpe>,
{
    pub fn new(left: L, right: R, algorithm: JoinAlgorithm, disk: SimDisk) -> Self {
        SpatialJoinOp {
            left,
            right,
            algorithm,
            disk,
            pipeline_depth: 1024,
            cancel: CancelToken::new(),
            deadline: None,
            recorder: None,
            admission: None,
            stats: Arc::new(Mutex::new(None)),
            rx: None,
            worker: None,
        }
    }

    /// Bounded-channel capacity between the join and its consumer.
    pub fn with_pipeline_depth(mut self, depth: usize) -> Self {
        self.pipeline_depth = depth.max(1);
        self
    }

    /// Shares a cooperative-cancellation token with the operator. Tripping
    /// the token from any thread makes the running join stop at the next
    /// partition boundary and deliver a final `Cancelled` error item.
    /// `close()` trips the same token, so abandoning the operator stops the
    /// worker promptly instead of letting it join to a dead channel.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Simulated-time deadline (seconds under the disk's cost model). The
    /// join checks it at partition granularity; on expiry the stream ends
    /// with a final `DeadlineExceeded` error item after the tuples emitted
    /// so far.
    pub fn with_deadline(mut self, seconds: f64) -> Self {
        self.deadline = Some(seconds);
        self
    }

    /// Worker threads for the join's partition phase. The join itself runs
    /// on one producer thread either way; with `threads > 1` that producer
    /// fans partition pairs out to a pool and streams the re-ordered
    /// results into the same bounded channel.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.algorithm = self.algorithm.clone().with_threads(threads);
        self
    }

    /// Attaches a shared trace recorder: the join records phase spans and
    /// per-partition events on the simulated clock into it.
    pub fn with_recorder(mut self, recorder: Arc<Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Makes the operator budget-shared: `open()` leases the algorithm's
    /// `mem_bytes` from `arbiter` before the join starts, queueing (FIFO,
    /// cancellable via this operator's token) if the budget is currently
    /// exhausted. Admission refusal — a full queue or a request larger than
    /// the whole budget — never starts the worker: the stream delivers a
    /// single [`JoinOpError::Admission`] item. The lease is released when
    /// the worker finishes, errors, or panics.
    pub fn with_admission(mut self, arbiter: MemoryArbiter) -> Self {
        self.admission = Some(arbiter);
        self
    }

    /// The completed run's statistics. `None` while the join is still
    /// running, after an error, or before `open()`; populated once the
    /// stream has ended normally (drain to the end or `close()` after the
    /// final tuple).
    pub fn stats(&self) -> Option<OpStats> {
        self.stats
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }
}

impl<L, R> Operator for SpatialJoinOp<L, R>
where
    L: Operator<Item = Kpe>,
    R: Operator<Item = Kpe>,
{
    type Item = Result<(RecordId, RecordId), JoinOpError>;

    fn open(&mut self) {
        self.left.open();
        self.right.open();
        let mut lhs = Vec::new();
        while let Some(k) = self.left.next() {
            lhs.push(k);
        }
        let mut rhs = Vec::new();
        while let Some(k) = self.right.next() {
            rhs.push(k);
        }
        self.left.close();
        self.right.close();

        let (tx, rx) = mpsc::sync_channel(self.pipeline_depth);

        // Budget-shared admission happens *before* the worker exists: a
        // refused join must not spawn a thread, touch the disk, or count as
        // started. Waiting in the arbiter queue honours this operator's
        // cancel token, so an impatient consumer can abandon the wait.
        let lease = match &self.admission {
            None => None,
            Some(arbiter) => {
                match arbiter.lease(self.algorithm.mem_bytes(), Some(&self.cancel)) {
                    Ok(lease) => Some(lease),
                    Err(e) => {
                        let _ = tx.send(Err(JoinOpError::Admission(e)));
                        drop(tx); // hang up: the single error item ends the stream
                        self.rx = Some(rx);
                        return;
                    }
                }
            }
        };

        let algorithm = self.algorithm.clone();
        let disk = self.disk.clone();
        let mut ctl = RunControl::none().with_cancel(self.cancel.clone());
        if let Some(d) = self.deadline {
            ctl = ctl.with_deadline(d);
        }
        if let Some(r) = &self.recorder {
            ctl = ctl.with_recorder(Arc::clone(r));
        }
        *self.stats.lock().unwrap_or_else(|p| p.into_inner()) = None;
        let stats_slot = Arc::clone(&self.stats);
        self.worker = Some(std::thread::spawn(move || {
            // The lease lives on the worker thread for the whole join and is
            // released by Drop on every exit path — completion, typed error,
            // or panic (the unwind below is caught, so this frame always
            // finishes and the Drop always runs).
            let _lease = lease;
            // The whole join runs under `catch_unwind`: a panicking worker
            // must still hang up the channel with a final error item, or
            // the consumer would block forever on `recv()`.
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let mut emit = |a: RecordId, b: RecordId| {
                    // A send error means the consumer closed early; results
                    // are discarded, which is the correct LIMIT-style
                    // behaviour.
                    let _ = tx.send(Ok((a, b)));
                };
                match algorithm {
                    JoinAlgorithm::Pbsm(cfg) => {
                        try_pbsm_join_ctl(&disk, &lhs, &rhs, &cfg, &ctl, &mut emit)
                            .map(OpStats::Pbsm)
                    }
                    JoinAlgorithm::S3j(cfg) => {
                        try_s3j_join_ctl(&disk, &lhs, &rhs, &cfg, &ctl, &mut emit)
                            .map(OpStats::S3j)
                    }
                }
                .map(|st| {
                    *stats_slot.lock().unwrap_or_else(|p| p.into_inner()) = Some(st);
                })
            }));
            match outcome {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    let _ = tx.send(Err(JoinOpError::Join(e)));
                }
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    let _ = tx.send(Err(JoinOpError::WorkerPanicked(msg)));
                }
            }
            // `tx` drops here, which ends the stream for the consumer.
        }));
        self.rx = Some(rx);
    }

    fn next(&mut self) -> Option<Result<(RecordId, RecordId), JoinOpError>> {
        self.rx.as_ref()?.recv().ok()
    }

    fn close(&mut self) {
        self.cancel.cancel(); // stop the join at the next partition boundary
        self.rx = None; // hang up: the worker's sends start failing
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

/// LIMIT operator: stops its input after `n` tuples. Closing propagates,
/// which lets a streaming join below abort early — the canonical payoff of
/// a pipelined plan.
pub struct Limit<I> {
    input: I,
    remaining: usize,
}

impl<I: Operator> Limit<I> {
    pub fn new(input: I, n: usize) -> Self {
        Limit {
            input,
            remaining: n,
        }
    }
}

impl<I: Operator> Operator for Limit<I> {
    type Item = I::Item;

    fn open(&mut self) {
        self.input.open();
    }

    fn next(&mut self) -> Option<I::Item> {
        if self.remaining == 0 {
            return None;
        }
        let item = self.input.next()?;
        self.remaining -= 1;
        Some(item)
    }

    fn close(&mut self) {
        self.input.close();
    }
}

/// Sink that drains an operator, recording pipelining metrics.
pub struct Collected<T> {
    pub items: Vec<T>,
    /// Wall-clock seconds from `open()` to the first `next()` result.
    pub first_tuple_secs: Option<f64>,
    /// Wall-clock seconds from `open()` to exhaustion.
    pub total_secs: f64,
}

impl<T> Collected<T> {
    /// Runs a full open-drain-close cycle over `op`.
    pub fn drain<O: Operator<Item = T>>(op: &mut O) -> Collected<T> {
        let start = std::time::Instant::now();
        op.open();
        let mut items = Vec::new();
        let mut first = None;
        while let Some(x) = op.next() {
            if first.is_none() {
                first = Some(start.elapsed().as_secs_f64());
            }
            items.push(x);
        }
        let total = start.elapsed().as_secs_f64();
        op.close();
        Collected {
            items,
            first_tuple_secs: first,
            total_secs: total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::LineNetwork;
    use pbsm::Dedup;

    fn tiger(n: usize, seed: u64) -> Vec<Kpe> {
        LineNetwork {
            count: n,
            coverage: 0.15,
            segments_per_line: 12,
            seed,
        }
        .generate()
    }

    fn brute(r: &[Kpe], s: &[Kpe]) -> Vec<(u64, u64)> {
        let mut v = Vec::new();
        for a in r {
            for b in s {
                if a.rect.intersects(&b.rect) {
                    v.push((a.id.0, b.id.0));
                }
            }
        }
        v.sort_unstable();
        v
    }

    /// Unwraps a drained join stream into sorted id pairs.
    fn ok_pairs(items: Vec<Result<(RecordId, RecordId), JoinOpError>>) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = items
            .into_iter()
            .map(|r| r.expect("join stream delivered an error"))
            .map(|(a, b)| (a.0, b.0))
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn scan_and_filter_compose() {
        let data = tiger(500, 1);
        let window = Rect::new(0.25, 0.25, 0.75, 0.75);
        let mut op = WindowFilter::new(KpeScan::new(data.clone()), window);
        let got = Collected::drain(&mut op);
        let want: Vec<Kpe> = data
            .iter()
            .filter(|k| k.rect.intersects(&window))
            .copied()
            .collect();
        assert_eq!(got.items.len(), want.len());
        assert!(!got.items.is_empty() && got.items.len() < data.len());
    }

    #[test]
    fn streaming_pbsm_join_produces_full_result() {
        let r = tiger(1500, 2);
        let s = tiger(1500, 3);
        let disk = SimDisk::with_default_model();
        let cfg = PbsmConfig {
            mem_bytes: 32 * 1024,
            ..Default::default()
        };
        let mut op = SpatialJoinOp::new(
            KpeScan::new(r.clone()),
            KpeScan::new(s.clone()),
            JoinAlgorithm::Pbsm(cfg),
            disk,
        );
        let got = Collected::drain(&mut op);
        assert!(got.first_tuple_secs.unwrap() <= got.total_secs);
        assert_eq!(ok_pairs(got.items), brute(&r, &s));
    }

    #[test]
    fn streaming_s3j_join_produces_full_result() {
        let r = tiger(1200, 4);
        let s = tiger(1200, 5);
        let disk = SimDisk::with_default_model();
        let cfg = S3jConfig {
            mem_bytes: 32 * 1024,
            max_level: 9,
            ..Default::default()
        };
        let mut op = SpatialJoinOp::new(
            KpeScan::new(r.clone()),
            KpeScan::new(s.clone()),
            JoinAlgorithm::S3j(cfg),
            disk,
        );
        let got = Collected::drain(&mut op);
        assert_eq!(ok_pairs(got.items), brute(&r, &s));
    }

    #[test]
    fn early_close_does_not_deadlock_or_panic() {
        // LIMIT-style consumption: take 5 tuples, then close. The worker
        // must unblock (its sends fail) and join cleanly.
        let r = tiger(2000, 6);
        let s = tiger(2000, 7);
        let disk = SimDisk::with_default_model();
        let mut op = SpatialJoinOp::new(
            KpeScan::new(r),
            KpeScan::new(s),
            JoinAlgorithm::Pbsm(PbsmConfig {
                mem_bytes: 32 * 1024,
                ..Default::default()
            }),
            disk,
        )
        .with_pipeline_depth(4);
        op.open();
        for _ in 0..5 {
            assert!(op.next().is_some());
        }
        op.close(); // must not hang
    }

    #[test]
    fn filter_below_join_reduces_result() {
        let r = tiger(800, 8);
        let s = tiger(800, 9);
        let window = Rect::new(0.0, 0.0, 0.5, 0.5);
        let disk = SimDisk::with_default_model();
        let mut plan = SpatialJoinOp::new(
            WindowFilter::new(KpeScan::new(r.clone()), window),
            KpeScan::new(s.clone()),
            JoinAlgorithm::Pbsm(PbsmConfig::default()),
            disk,
        );
        let got = Collected::drain(&mut plan);
        let rf: Vec<Kpe> = r
            .iter()
            .filter(|k| k.rect.intersects(&window))
            .copied()
            .collect();
        assert_eq!(ok_pairs(got.items), brute(&rf, &s));
    }

    #[test]
    fn scan_reopen_restarts_from_the_beginning() {
        let data = tiger(50, 30);
        let mut scan = KpeScan::new(data.clone());
        scan.open();
        let first = scan.next().unwrap();
        scan.close();
        scan.open(); // open-next-close contract: reopen rewinds
        assert_eq!(scan.next().unwrap(), first);
        let rest = std::iter::from_fn(|| scan.next()).count();
        assert_eq!(rest, data.len() - 1);
        scan.close();
    }

    #[test]
    fn filter_with_disjoint_window_yields_nothing() {
        let mut data = tiger(100, 31);
        for k in data.iter_mut() {
            // Push everything into the left half.
            k.rect.xl *= 0.4;
            k.rect.xh *= 0.4;
        }
        let mut op = WindowFilter::new(KpeScan::new(data), Rect::new(0.9, 0.9, 1.0, 1.0));
        let got = Collected::drain(&mut op);
        assert!(got.items.is_empty());
        assert!(got.first_tuple_secs.is_none());
    }

    #[test]
    fn limit_stops_early_and_closes_cleanly() {
        let r = tiger(1500, 20);
        let s = tiger(1500, 21);
        let disk = SimDisk::with_default_model();
        let join = SpatialJoinOp::new(
            KpeScan::new(r),
            KpeScan::new(s),
            JoinAlgorithm::Pbsm(PbsmConfig {
                mem_bytes: 32 * 1024,
                ..Default::default()
            }),
            disk,
        )
        .with_pipeline_depth(8);
        let mut plan = Limit::new(join, 7);
        let got = Collected::drain(&mut plan);
        assert_eq!(got.items.len(), 7);
    }

    #[test]
    fn limit_larger_than_result_passes_everything() {
        let data = tiger(200, 22);
        let mut plan = Limit::new(KpeScan::new(data.clone()), 10_000);
        let got = Collected::drain(&mut plan);
        assert_eq!(got.items.len(), data.len());
    }

    #[test]
    fn parallel_operator_streams_identical_pairs_in_identical_order() {
        // The tentpole guarantee observed end to end through the operator
        // tree: many workers feed the one bounded channel, yet the consumer
        // sees the exact sequential tuple order (canonical re-assembly).
        let r = tiger(1500, 12);
        let s = tiger(1500, 13);
        for algorithm in [
            JoinAlgorithm::Pbsm(PbsmConfig {
                mem_bytes: 32 * 1024,
                ..Default::default()
            }),
            JoinAlgorithm::S3j(S3jConfig {
                mem_bytes: 32 * 1024,
                max_level: 9,
                ..Default::default()
            }),
        ] {
            let run = |threads: usize| {
                let mut op = SpatialJoinOp::new(
                    KpeScan::new(r.clone()),
                    KpeScan::new(s.clone()),
                    algorithm.clone(),
                    SimDisk::with_default_model(),
                )
                .with_threads(threads);
                Collected::drain(&mut op)
                    .items
                    .into_iter()
                    .map(|r| r.expect("join stream delivered an error"))
                    .collect::<Vec<_>>()
            };
            assert_eq!(run(1), run(4), "tuple order must not depend on threads");
        }
    }

    #[test]
    fn channels_leave_stream_identical_but_reduce_operator_clock() {
        use storage::DiskModel;
        let r = tiger(1500, 14);
        let s = tiger(1500, 15);
        let run = |algorithm: JoinAlgorithm, channels: usize| {
            // `cpu_slowdown: 0` keeps the clock free of host-timing noise so
            // the strict-improvement assertion is deterministic.
            let disk = SimDisk::new(DiskModel {
                channels,
                cpu_slowdown: 0.0,
                ..Default::default()
            });
            let mut op = SpatialJoinOp::new(
                KpeScan::new(r.clone()),
                KpeScan::new(s.clone()),
                algorithm,
                disk,
            );
            let items = Collected::drain(&mut op).items;
            let stats = op.stats().expect("stream ended normally");
            let pairs: Vec<(u64, u64)> = items
                .into_iter()
                .map(|r| r.expect("join stream delivered an error"))
                .map(|(a, b)| (a.0, b.0))
                .collect();
            (pairs, stats.total_seconds())
        };
        for algorithm in [
            JoinAlgorithm::Pbsm(PbsmConfig {
                mem_bytes: 32 * 1024,
                ..Default::default()
            }),
            JoinAlgorithm::S3j(S3jConfig {
                mem_bytes: 32 * 1024,
                max_level: 9,
                ..Default::default()
            }),
        ] {
            let (p1, t1) = run(algorithm.clone(), 1);
            let (p4, t4) = run(algorithm.clone(), 4);
            assert_eq!(p1, p4, "tuple stream must not depend on channels");
            assert!(
                t4 < t1,
                "4 channels must beat 1 on partitioned joins: {t4} vs {t1}"
            );
        }
    }

    #[test]
    fn rpm_streams_earlier_than_sort_phase() {
        // The §3.1 pipelining claim, observed end to end through the
        // operator tree: with RPM the first tuple arrives while the join
        // phase is still running; with the sort phase it arrives only after
        // all candidates are sorted. Compare relative first-tuple positions.
        let r = tiger(4000, 10);
        let s = tiger(4000, 11);
        let run = |dedup: Dedup| {
            let disk = SimDisk::with_default_model();
            let mut op = SpatialJoinOp::new(
                KpeScan::new(r.clone()),
                KpeScan::new(s.clone()),
                JoinAlgorithm::Pbsm(PbsmConfig {
                    mem_bytes: 64 * 1024,
                    dedup,
                    ..Default::default()
                }),
                disk,
            )
            .with_pipeline_depth(1);
            op.open();
            let first = op.next();
            op.close();
            first
        };
        // Both configurations deliver a first tuple through the pipe.
        assert!(run(Dedup::ReferencePoint).is_some());
        assert!(run(Dedup::SortPhase).is_some());
    }

    #[test]
    fn unrecoverable_fault_surfaces_as_error_item_not_hang() {
        use storage::{FaultPlan, RetryPolicy};
        let r = tiger(600, 40);
        let s = tiger(600, 41);
        for algorithm in [
            JoinAlgorithm::Pbsm(PbsmConfig {
                mem_bytes: 32 * 1024,
                ..Default::default()
            }),
            JoinAlgorithm::S3j(S3jConfig {
                mem_bytes: 32 * 1024,
                max_level: 9,
                ..Default::default()
            }),
        ] {
            let disk = SimDisk::with_default_model().with_faults(FaultPlan::unrecoverable(7), RetryPolicy::default());
            let mut op = SpatialJoinOp::new(
                KpeScan::new(r.clone()),
                KpeScan::new(s.clone()),
                algorithm,
                disk,
            )
            .with_pipeline_depth(4);
            let got = Collected::drain(&mut op); // must terminate, not hang
            let last = got.items.last().expect("stream delivers a final item");
            assert!(
                matches!(last, Err(JoinOpError::Join(_))),
                "expected a typed join error, got {last:?}"
            );
        }
    }

    #[test]
    fn cancellation_ends_stream_with_typed_error_item() {
        use storage::JoinErrorKind;
        let r = tiger(1500, 44);
        let s = tiger(1500, 45);
        let token = CancelToken::new();
        token.cancel_after_checks(3); // trip a few partitions into the run
        let mut op = SpatialJoinOp::new(
            KpeScan::new(r),
            KpeScan::new(s),
            JoinAlgorithm::Pbsm(PbsmConfig {
                mem_bytes: 32 * 1024,
                ..Default::default()
            }),
            SimDisk::with_default_model(),
        )
        .with_cancel(token);
        let got = Collected::drain(&mut op); // must terminate, not hang
        let last = got.items.last().expect("stream delivers a final item");
        match last {
            Err(JoinOpError::Join(e)) => {
                assert!(matches!(e.kind, JoinErrorKind::Cancelled), "got {e:?}")
            }
            other => panic!("expected a cancellation error item, got {other:?}"),
        }
    }

    #[test]
    fn deadline_expiry_ends_stream_with_typed_error_item() {
        use storage::JoinErrorKind;
        let r = tiger(1200, 46);
        let s = tiger(1200, 47);
        for algorithm in [
            JoinAlgorithm::Pbsm(PbsmConfig {
                mem_bytes: 32 * 1024,
                ..Default::default()
            }),
            JoinAlgorithm::S3j(S3jConfig {
                mem_bytes: 32 * 1024,
                max_level: 9,
                ..Default::default()
            }),
        ] {
            let mut op = SpatialJoinOp::new(
                KpeScan::new(r.clone()),
                KpeScan::new(s.clone()),
                algorithm,
                SimDisk::with_default_model(),
            )
            .with_deadline(1e-9); // expires at the first partition boundary
            let got = Collected::drain(&mut op);
            let last = got.items.last().expect("stream delivers a final item");
            match last {
                Err(JoinOpError::Join(e)) => assert!(
                    matches!(e.kind, JoinErrorKind::DeadlineExceeded { .. }),
                    "got {e:?}"
                ),
                other => panic!("expected a deadline error item, got {other:?}"),
            }
        }
    }

    #[test]
    fn admission_refusal_delivers_single_error_item_and_no_io() {
        use storage::{AdmissionError, MemoryArbiter};
        let r = tiger(400, 50);
        let s = tiger(400, 51);
        let arbiter = MemoryArbiter::new(16 * 1024, 0);
        let disk = SimDisk::with_default_model();
        let mut op = SpatialJoinOp::new(
            KpeScan::new(r),
            KpeScan::new(s),
            JoinAlgorithm::Pbsm(PbsmConfig {
                mem_bytes: 32 * 1024, // larger than the whole budget
                ..Default::default()
            }),
            disk.clone(),
        )
        .with_admission(arbiter.clone());
        let got = Collected::drain(&mut op);
        assert_eq!(got.items.len(), 1, "exactly one (error) item");
        match &got.items[0] {
            Err(JoinOpError::Admission(AdmissionError::TooLarge { requested, budget })) => {
                assert_eq!((*requested, *budget), (32 * 1024, 16 * 1024));
            }
            other => panic!("expected TooLarge admission error, got {other:?}"),
        }
        let io = disk.stats();
        assert_eq!(io.read_requests + io.write_requests, 0, "no I/O performed");
        assert!(arbiter.is_idle(), "refusal must not leak budget");
    }

    #[test]
    fn overload_shedding_with_zero_queue_depth() {
        use storage::{AdmissionError, MemoryArbiter};
        let arbiter = MemoryArbiter::new(64 * 1024, 0);
        // Hold most of the budget so the operator's request cannot fit.
        let _hold = arbiter.lease(48 * 1024, None).expect("fits");
        let mut op = SpatialJoinOp::new(
            KpeScan::new(tiger(200, 52)),
            KpeScan::new(tiger(200, 53)),
            JoinAlgorithm::Pbsm(PbsmConfig {
                mem_bytes: 32 * 1024,
                ..Default::default()
            }),
            SimDisk::with_default_model(),
        )
        .with_admission(arbiter.clone());
        let got = Collected::drain(&mut op);
        match got.items.last() {
            Some(Err(JoinOpError::Admission(AdmissionError::Overloaded { retry_after }))) => {
                assert!(*retry_after > 0.0)
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
    }

    #[test]
    fn admitted_joins_share_the_budget_and_release_leases() {
        use storage::MemoryArbiter;
        let r = tiger(800, 54);
        let s = tiger(800, 55);
        let want = brute(&r, &s);
        // Budget fits one join at a time; the second queues and runs after
        // the first releases. Both must produce the full solo result.
        let arbiter = MemoryArbiter::new(40 * 1024, 8);
        let mut handles = Vec::new();
        for _ in 0..2 {
            let (r, s, arbiter) = (r.clone(), s.clone(), arbiter.clone());
            handles.push(std::thread::spawn(move || {
                let mut op = SpatialJoinOp::new(
                    KpeScan::new(r),
                    KpeScan::new(s),
                    JoinAlgorithm::Pbsm(PbsmConfig {
                        mem_bytes: 32 * 1024,
                        ..Default::default()
                    }),
                    SimDisk::with_default_model(),
                )
                .with_admission(arbiter);
                ok_pairs(Collected::drain(&mut op).items)
            }));
        }
        for h in handles {
            assert_eq!(h.join().expect("no panic"), want);
        }
        assert!(arbiter.is_idle(), "all leases returned");
        let snap = arbiter.snapshot();
        assert_eq!(snap.admitted, 2);
        assert!(snap.peak_leased_bytes <= snap.budget_bytes);
    }

    #[test]
    fn recoverable_faults_leave_the_stream_intact() {
        use storage::{FaultPlan, RetryPolicy};
        let r = tiger(800, 42);
        let s = tiger(800, 43);
        let run = |plan: Option<FaultPlan>| {
            let mut disk = SimDisk::with_default_model();
            if let Some(p) = plan {
                disk = disk.with_faults(p, RetryPolicy::default());
            }
            let mut op = SpatialJoinOp::new(
                KpeScan::new(r.clone()),
                KpeScan::new(s.clone()),
                JoinAlgorithm::Pbsm(PbsmConfig {
                    mem_bytes: 32 * 1024,
                    ..Default::default()
                }),
                disk,
            );
            ok_pairs(Collected::drain(&mut op).items)
        };
        assert_eq!(run(None), run(Some(FaultPlan::recoverable(99))));
    }
}
