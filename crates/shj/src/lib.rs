//! Spatial Hash Join (SHJ) of Lo & Ravishankar ([LR 96]).
//!
//! The second partition-based no-index join the paper's related work
//! discusses: "the spatial-hash join … divides the datasets into smaller
//! partitions and applies a join algorithm to each pair of partitions. PBSM
//! replicates some of the data of both input relations …, whereas the
//! spatial-hash join only allows replication on one relation." [KS 97] found
//! it comparable to PBSM, which is why the paper concentrates on PBSM —
//! this crate supplies the missing comparison point.
//!
//! Phases:
//!
//! 1. **Seed selection** — a sample of the build relation R is spread in
//!    Z-order and every k-th sample becomes a bucket seed.
//! 2. **Build partitioning** — each R rectangle joins the bucket whose seed
//!    centre is nearest; the bucket's extent grows to cover it. R is *not*
//!    replicated.
//! 3. **Probe partitioning** — each S rectangle is replicated into every
//!    bucket whose grown extent it intersects (and dropped if it intersects
//!    none — it cannot join).
//! 4. **Join** — each bucket pair is loaded and joined in memory.
//!
//! Because R is partitioned (not replicated), a pair `(r, s)` can only be
//! found in `r`'s bucket: **no duplicates arise and no duplicate detection
//! is needed** — SHJ trades that for probe-side replication proportional to
//! bucket-extent overlap. Unlike PBSM there is no repartitioning: an
//! overflowing bucket pair is joined over budget (counted in
//! [`ShjStats::overflowed_pairs`]).

use std::time::Instant;

use geom::{Kpe, Rect, RecordId};
use rand::prelude::*;
use storage::{DiskModel, FileId, IoStats, RecordReader, RecordWriter, SimDisk};
use sweep::{InternalAlgo, JoinCounters};

/// SHJ tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ShjConfig {
    /// Memory budget in bytes (drives the bucket count, like PBSM's
    /// formula (1)).
    pub mem_bytes: usize,
    /// Safety factor on the bucket count.
    pub safety_factor: f64,
    /// Samples drawn per bucket when picking seeds.
    pub samples_per_bucket: usize,
    /// In-memory join algorithm for bucket pairs.
    pub internal: InternalAlgo,
    /// Write-buffer pages per bucket file.
    pub bucket_buffer_pages: usize,
    /// Buffer pages for sequential scans.
    pub io_buffer_pages: usize,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for ShjConfig {
    fn default() -> Self {
        ShjConfig {
            mem_bytes: 8 << 20,
            safety_factor: 1.2,
            samples_per_bucket: 8,
            internal: InternalAlgo::PlaneSweepList,
            bucket_buffer_pages: 1,
            io_buffer_pages: 4,
            seed: 0x5EED_5EED,
        }
    }
}

/// Measurements of one SHJ run.
#[derive(Debug, Clone)]
pub struct ShjStats {
    pub buckets: u32,
    /// Probe-side copies written (≥ the number of surviving S records).
    pub probe_copies: u64,
    /// Probe records that intersected no bucket extent (filtered out).
    pub probe_filtered: u64,
    /// Bucket pairs exceeding the memory budget (joined over budget; SHJ
    /// has no repartitioning).
    pub overflowed_pairs: u32,
    pub results: u64,
    pub join_counters: JoinCounters,
    pub io_build: IoStats,
    pub io_probe: IoStats,
    pub io_join: IoStats,
    /// Shared-lane I/O. SHJ's bucket files are untagged (the baseline's
    /// build/probe passes interleave one sequential stream), so this equals
    /// [`io_total`](Self::io_total) and the data channels carry nothing:
    /// extra channels cannot speed SHJ up.
    pub io_shared: IoStats,
    /// Per-data-channel I/O — always `model.data_channels()` zero entries.
    pub io_channels: Vec<IoStats>,
    pub cpu_build: f64,
    pub cpu_probe: f64,
    pub cpu_join: f64,
    pub model: DiskModel,
}

impl ShjStats {
    pub fn io_total(&self) -> IoStats {
        self.io_build.plus(&self.io_probe).plus(&self.io_join)
    }

    pub fn cpu_seconds(&self) -> f64 {
        self.cpu_build + self.cpu_probe + self.cpu_join
    }

    pub fn scaled_cpu_seconds(&self) -> f64 {
        self.model.scaled_cpu(self.cpu_seconds())
    }

    pub fn io_seconds(&self) -> f64 {
        self.model.seconds(&self.io_total())
    }

    /// Simulated I/O wall time under the multi-channel clock. All SHJ I/O
    /// is shared-lane, so this is bit-identical to
    /// [`io_seconds`](Self::io_seconds) at every channel count.
    pub fn io_parallel_seconds(&self) -> f64 {
        self.model.parallel_io_seconds(&self.io_shared, &self.io_channels)
    }

    /// I/O time hidden behind computation — always zero here (no data
    /// channels carry traffic, so there is nothing to overlap).
    pub fn prefetch_hidden_seconds(&self) -> f64 {
        self.model
            .prefetch_hidden_seconds(self.scaled_cpu_seconds(), &self.io_channels)
    }

    pub fn total_seconds(&self) -> f64 {
        self.model
            .total_seconds(self.scaled_cpu_seconds(), &self.io_shared, &self.io_channels)
    }

    /// Probe-side replication rate.
    pub fn replication_rate(&self, probe_len: usize) -> f64 {
        self.probe_copies as f64 / probe_len.max(1) as f64
    }
}

/// Runs the spatial hash join `r ⋈ s` with `r` as the build (partitioned)
/// relation and `s` as the probe (replicated) relation. Emits ordered
/// `(r, s)` pairs, each exactly once — no duplicate elimination required.
pub fn shj_join(
    disk: &SimDisk,
    r: &[Kpe],
    s: &[Kpe],
    cfg: &ShjConfig,
    out: &mut dyn FnMut(RecordId, RecordId),
) -> ShjStats {
    let model = disk.model();
    let mut stats = ShjStats {
        buckets: 0,
        probe_copies: 0,
        probe_filtered: 0,
        overflowed_pairs: 0,
        results: 0,
        join_counters: JoinCounters::default(),
        io_build: IoStats::default(),
        io_probe: IoStats::default(),
        io_join: IoStats::default(),
        io_shared: IoStats::default(),
        io_channels: vec![IoStats::default(); model.data_channels()],
        cpu_build: 0.0,
        cpu_probe: 0.0,
        cpu_join: 0.0,
        model,
    };
    if r.is_empty() || s.is_empty() {
        return stats;
    }

    // --- Phase 1+2: seeds, then partition the build relation ---------------
    let t0 = Instant::now();
    let io0 = disk.stats();
    let input_bytes = (r.len() + s.len()) * Kpe::ENCODED_SIZE;
    let b = ((cfg.safety_factor * input_bytes as f64 / cfg.mem_bytes as f64).ceil() as u32).max(1);
    stats.buckets = b;
    let seeds = pick_seeds(r, b as usize, cfg.samples_per_bucket, cfg.seed);

    // The baseline deliberately uses the panicking storage wrappers
    // (`push`/`finish`/`RecordReader::next`): SHJ does not opt into fault
    // injection (`SpatialJoin::try_run` refuses the combination up front),
    // so on a fault-free disk these calls cannot fail.
    let mut extents: Vec<Option<Rect>> = vec![None; b as usize];
    let mut build_writers: Vec<RecordWriter<Kpe>> = (0..b)
        .map(|_| RecordWriter::create(disk, cfg.bucket_buffer_pages))
        .collect();
    for k in r {
        let c = k.rect.center();
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, seed) in seeds.iter().enumerate() {
            let dx = c.x - seed.x;
            let dy = c.y - seed.y;
            let d = dx * dx + dy * dy;
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        build_writers[best].push(k);
        extents[best] = Some(match extents[best] {
            Some(e) => e.union(&k.rect),
            None => k.rect,
        });
    }
    let build_files: Vec<FileId> = build_writers.into_iter().map(|w| w.finish()).collect();
    stats.io_build = disk.stats().delta(&io0);
    stats.cpu_build = t0.elapsed().as_secs_f64();

    // --- Phase 3: replicate the probe relation into overlapping buckets ----
    let t1 = Instant::now();
    let io1 = disk.stats();
    let mut probe_writers: Vec<RecordWriter<Kpe>> = (0..b)
        .map(|_| RecordWriter::create(disk, cfg.bucket_buffer_pages))
        .collect();
    for k in s {
        let mut hit = false;
        for (i, extent) in extents.iter().enumerate() {
            if let Some(e) = extent {
                if e.intersects(&k.rect) {
                    probe_writers[i].push(k);
                    stats.probe_copies += 1;
                    hit = true;
                }
            }
        }
        if !hit {
            stats.probe_filtered += 1; // cannot join anything
        }
    }
    let probe_files: Vec<FileId> = probe_writers.into_iter().map(|w| w.finish()).collect();
    stats.io_probe = disk.stats().delta(&io1);
    stats.cpu_probe = t1.elapsed().as_secs_f64();

    // --- Phase 4: join bucket pairs in memory --------------------------------
    let t2 = Instant::now();
    let io2 = disk.stats();
    let mut internal = cfg.internal.create();
    for (fb, fp) in build_files.iter().zip(&probe_files) {
        let bytes = disk.len(*fb) + disk.len(*fp);
        if bytes == 0 {
            disk.delete(*fb);
            disk.delete(*fp);
            continue;
        }
        if bytes as usize > cfg.mem_bytes {
            stats.overflowed_pairs += 1;
        }
        let mut rv: Vec<Kpe> = RecordReader::new(disk, *fb, cfg.io_buffer_pages).collect();
        let mut sv: Vec<Kpe> = RecordReader::new(disk, *fp, cfg.io_buffer_pages).collect();
        let mut results = 0u64;
        internal.join(&mut rv, &mut sv, &mut |a, b| {
            results += 1;
            out(a.id, b.id);
        });
        stats.results += results;
        disk.delete(*fb);
        disk.delete(*fp);
    }
    stats.join_counters = internal.counters();
    stats.io_join = disk.stats().delta(&io2);
    stats.cpu_join = t2.elapsed().as_secs_f64();
    // All bucket files are untagged: the whole run rides the shared lane.
    stats.io_shared = stats.io_total();
    stats
}

/// Z-order-spread seed centres from a random sample of the build relation.
fn pick_seeds(r: &[Kpe], buckets: usize, samples_per_bucket: usize, seed: u64) -> Vec<geom::Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    let want = (buckets * samples_per_bucket.max(1)).min(r.len()).max(buckets.min(r.len()));
    let mut sample: Vec<geom::Point> = r
        .choose_multiple(&mut rng, want)
        .map(|k| k.rect.center())
        .collect();
    // Spread in Z-order, then take evenly spaced representatives.
    sample.sort_unstable_by_key(|p| {
        let ix = (p.x.clamp(0.0, 1.0) * 65535.0) as u32;
        let iy = (p.y.clamp(0.0, 1.0) * 65535.0) as u32;
        sfc_z(ix, iy)
    });
    let step = (sample.len() as f64 / buckets as f64).max(1.0);
    (0..buckets)
        .map(|i| sample[((i as f64 + 0.5) * step) as usize % sample.len()])
        .collect()
}

/// Local Morton interleave (avoids a dependency on the sfc crate).
fn sfc_z(x: u32, y: u32) -> u64 {
    fn spread(v: u32) -> u64 {
        let mut x = v as u64;
        x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
        x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
        x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
        x = (x | (x << 2)) & 0x3333_3333_3333_3333;
        x = (x | (x << 1)) & 0x5555_5555_5555_5555;
        x
    }
    spread(x) | (spread(y) << 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute(r: &[Kpe], s: &[Kpe]) -> Vec<(u64, u64)> {
        let mut v = Vec::new();
        for a in r {
            for b in s {
                if a.rect.intersects(&b.rect) {
                    v.push((a.id.0, b.id.0));
                }
            }
        }
        v.sort_unstable();
        v
    }

    fn run(r: &[Kpe], s: &[Kpe], cfg: &ShjConfig) -> (Vec<(u64, u64)>, ShjStats) {
        let disk = SimDisk::with_default_model();
        let mut got = Vec::new();
        let st = shj_join(&disk, r, s, cfg, &mut |a, b| got.push((a.0, b.0)));
        got.sort_unstable();
        (got, st)
    }

    fn tiger(n: usize, seed: u64) -> Vec<Kpe> {
        datagen::LineNetwork {
            count: n,
            coverage: 0.12,
            segments_per_line: 12,
            seed,
        }
        .generate()
    }

    #[test]
    fn matches_brute_force_multi_bucket() {
        let r = tiger(2500, 1);
        let s = tiger(2500, 2);
        let cfg = ShjConfig {
            mem_bytes: 32 * 1024,
            ..Default::default()
        };
        let (got, st) = run(&r, &s, &cfg);
        assert!(st.buckets > 4, "want several buckets, got {}", st.buckets);
        assert_eq!(got, brute(&r, &s));
        assert_eq!(st.results as usize, got.len());
    }

    #[test]
    fn no_duplicates_by_construction() {
        // Scaled data replicates the probe side heavily; results must still
        // be unique because the build side is partitioned.
        let r = datagen::scale(&tiger(1500, 3), 4.0);
        let s = datagen::scale(&tiger(1500, 4), 4.0);
        let cfg = ShjConfig {
            mem_bytes: 32 * 1024,
            ..Default::default()
        };
        let (got, st) = run(&r, &s, &cfg);
        assert!(
            st.probe_copies > s.len() as u64,
            "expected probe replication"
        );
        let mut dedup = got.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), got.len(), "SHJ produced duplicates");
        assert_eq!(got, brute(&r, &s));
    }

    #[test]
    fn probe_filtering_drops_unjoinable_records() {
        use geom::{Point, Rect};
        // Build data in the left half, probe data in both halves: right-half
        // probes are filtered.
        let r: Vec<Kpe> = (0..200)
            .map(|i| {
                let t = i as f64 / 500.0;
                Kpe::new(RecordId(i), Rect::from_corners(Point::new(t, t), Point::new(t + 0.002, t + 0.002)))
            })
            .collect();
        let mut s = r.clone();
        for (i, k) in s.iter_mut().enumerate() {
            if i % 2 == 0 {
                k.rect = Rect::new(0.95, 0.95, 0.96, 0.96); // far away
            }
        }
        let cfg = ShjConfig {
            mem_bytes: 4 * 1024,
            ..Default::default()
        };
        let (got, st) = run(&r, &s, &cfg);
        assert!(st.probe_filtered > 0, "expected filtered probes");
        assert_eq!(got, brute(&r, &s));
    }

    #[test]
    fn all_internal_algorithms_agree() {
        let r = tiger(1200, 5);
        let s = tiger(1200, 6);
        let mut want: Option<Vec<(u64, u64)>> = None;
        for internal in InternalAlgo::ALL {
            let cfg = ShjConfig {
                mem_bytes: 24 * 1024,
                internal,
                ..Default::default()
            };
            let (got, _) = run(&r, &s, &cfg);
            match &want {
                None => want = Some(got),
                Some(w) => assert_eq!(&got, w, "{internal}"),
            }
        }
    }

    #[test]
    fn empty_inputs() {
        let r = tiger(100, 7);
        let cfg = ShjConfig::default();
        let (got, st) = run(&r, &[], &cfg);
        assert!(got.is_empty());
        assert_eq!(st.results, 0);
        let (got, _) = run(&[], &r, &cfg);
        assert!(got.is_empty());
    }

    #[test]
    fn io_accounting_adds_up() {
        let r = tiger(1000, 8);
        let s = tiger(1000, 9);
        let disk = SimDisk::with_default_model();
        let cfg = ShjConfig {
            mem_bytes: 16 * 1024,
            ..Default::default()
        };
        let st = shj_join(&disk, &r, &s, &cfg, &mut |_, _| {});
        assert_eq!(st.io_total(), disk.stats());
        // Build side written once, never replicated.
        assert_eq!(
            st.io_build.bytes_written,
            (r.len() * Kpe::ENCODED_SIZE) as u64
        );
        assert!(st.total_seconds() > 0.0);
    }
}
