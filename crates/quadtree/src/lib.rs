//! The MX-CIF quadtree and its synchronized-traversal spatial join.
//!
//! S³J "can be viewed as an external version of a join algorithm that is
//! performed on MX-CIF quadtrees" (paper §4.1). This crate provides that
//! internal version: the [`MxCifQuadtree`] ([Sam 90], [AS 83]) stores each
//! rectangle at the *lowest* node whose region covers it (several rectangles
//! per node, no node capacity), and [`MxCifQuadtree::join`] performs the
//! synchronized pre-order traversal joining every node with the nodes on the
//! path to its counterpart.
//!
//! It doubles as the reference model in tests: the level-file decomposition
//! of S³J must agree exactly with the node contents of this tree.

use geom::{Kpe, Point, Rect};
use sfc::{mxcif_cell, Cell};

const NONE: u32 = u32::MAX;

struct Node {
    children: [u32; 4],
    entries: Vec<Kpe>,
}

impl Node {
    fn new() -> Self {
        Node {
            children: [NONE; 4],
            entries: Vec::new(),
        }
    }
}

/// In-memory MX-CIF quadtree over the unit data space.
pub struct MxCifQuadtree {
    nodes: Vec<Node>,
    max_level: u8,
    len: usize,
}

impl MxCifQuadtree {
    /// Creates an empty tree whose finest level is `max_level`.
    pub fn new(max_level: u8) -> Self {
        MxCifQuadtree {
            nodes: vec![Node::new()],
            max_level,
            len: 0,
        }
    }

    /// Builds a tree from a dataset.
    pub fn bulk(data: &[Kpe], max_level: u8) -> Self {
        let mut t = Self::new(max_level);
        for k in data {
            t.insert(*k);
        }
        t
    }

    /// Number of rectangles stored.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of allocated quadtree nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Index of the node for `cell`, creating the path to it on demand.
    fn node_for(&mut self, cell: Cell) -> usize {
        let mut idx = 0usize;
        for depth in (0..cell.level).rev() {
            // Quadrant of the next step: bit `depth` of the cell coords.
            let qx = (cell.ix >> depth) & 1;
            let qy = (cell.iy >> depth) & 1;
            let q = ((qy << 1) | qx) as usize;
            let next = self.nodes[idx].children[q];
            idx = if next == NONE {
                let new = self.nodes.len() as u32;
                self.nodes.push(Node::new());
                self.nodes[idx].children[q] = new;
                new as usize
            } else {
                next as usize
            };
        }
        idx
    }

    /// Inserts a rectangle at the lowest node covering it.
    pub fn insert(&mut self, k: Kpe) {
        let cell = mxcif_cell(&k.rect, self.max_level);
        let idx = self.node_for(cell);
        self.nodes[idx].entries.push(k);
        self.len += 1;
    }

    /// Histogram of entries per level (index = level). Exposes the paper's
    /// observation that with the original assignment rule "the vast majority
    /// of rectangles in the lowest level-file (level 0) were very small".
    pub fn level_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.max_level as usize + 1];
        // Recompute levels from node depth via DFS.
        let mut stack: Vec<(u32, usize)> = vec![(0, 0)];
        while let Some((idx, depth)) = stack.pop() {
            let node = &self.nodes[idx as usize];
            hist[depth] += node.entries.len();
            for &c in &node.children {
                if c != NONE {
                    stack.push((c, depth + 1));
                }
            }
        }
        hist
    }

    /// All stored rectangles intersecting `query`.
    pub fn window_query(&self, query: &Rect, out: &mut dyn FnMut(&Kpe)) {
        let mut stack: Vec<(u32, Cell)> = vec![(0, Cell::ROOT)];
        while let Some((idx, cell)) = stack.pop() {
            if !cell.rect().intersects(query) {
                continue;
            }
            let node = &self.nodes[idx as usize];
            for e in &node.entries {
                if e.rect.intersects(query) {
                    out(e);
                }
            }
            for (q, &c) in node.children.iter().enumerate() {
                if c != NONE {
                    let qx = (q as u32) & 1;
                    let qy = (q as u32) >> 1;
                    stack.push((
                        c,
                        Cell::new(cell.level + 1, cell.ix * 2 + qx, cell.iy * 2 + qy),
                    ));
                }
            }
        }
    }

    /// All stored rectangles containing point `p` (uses the covering
    /// property: only nodes on the path to `p`'s leaf can hold matches).
    pub fn point_query(&self, p: Point, out: &mut dyn FnMut(&Kpe)) {
        let leaf = Cell::containing(self.max_level, p);
        let mut idx = 0usize;
        for depth in (0..self.max_level).rev() {
            for e in &self.nodes[idx].entries {
                if e.rect.contains_point(p) {
                    out(e);
                }
            }
            let qx = (leaf.ix >> depth) & 1;
            let qy = (leaf.iy >> depth) & 1;
            let next = self.nodes[idx].children[((qy << 1) | qx) as usize];
            if next == NONE {
                return;
            }
            idx = next as usize;
        }
        for e in &self.nodes[idx].entries {
            if e.rect.contains_point(p) {
                out(e);
            }
        }
    }

    /// Synchronized pre-order traversal join (paper §4.1): for every pair of
    /// synchronously visited nodes `(N_R, N_S)`, `N_R` is joined with all
    /// nodes on the path to `N_S` (including `N_S`) and `N_S` with all nodes
    /// on the path to `N_R` (excluding `N_R`, which the first join covered).
    ///
    /// Reports ordered pairs `(r, s)`; each intersecting pair exactly once.
    /// Returns the number of rectangle intersection tests performed.
    pub fn join(&self, other: &MxCifQuadtree, out: &mut dyn FnMut(&Kpe, &Kpe)) -> u64 {
        let mut path_r: Vec<u32> = Vec::new();
        let mut path_s: Vec<u32> = Vec::new();
        let mut tests = 0u64;
        self.join_rec(other, Some(0), Some(0), &mut path_r, &mut path_s, &mut tests, out);
        tests
    }

    #[allow(clippy::too_many_arguments)]
    fn join_rec(
        &self,
        other: &MxCifQuadtree,
        nr: Option<u32>,
        ns: Option<u32>,
        path_r: &mut Vec<u32>,
        path_s: &mut Vec<u32>,
        tests: &mut u64,
        out: &mut dyn FnMut(&Kpe, &Kpe),
    ) {
        // Join the newly visited R node with the S path (including ns) and
        // the newly visited S node with the R path (excluding nr).
        if let Some(r) = nr {
            let r_entries = &self.nodes[r as usize].entries;
            for &s in path_s.iter().chain(ns.iter()) {
                join_lists(r_entries, &other.nodes[s as usize].entries, tests, out);
            }
        }
        if let Some(s) = ns {
            let s_entries = &other.nodes[s as usize].entries;
            for &r in path_r.iter() {
                join_lists(&self.nodes[r as usize].entries, s_entries, tests, out);
            }
        }
        // Descend into quadrants present in either tree.
        let rc = nr.map(|r| self.nodes[r as usize].children);
        let sc = ns.map(|s| other.nodes[s as usize].children);
        let any_child = |c: Option<[u32; 4]>, q: usize| c.map(|c| c[q]).filter(|&v| v != NONE);
        if rc.is_none() && sc.is_none() {
            return;
        }
        if let Some(r) = nr {
            path_r.push(r);
        }
        if let Some(s) = ns {
            path_s.push(s);
        }
        for q in 0..4 {
            let cr = any_child(rc, q);
            let cs = any_child(sc, q);
            if cr.is_some() || cs.is_some() {
                self.join_rec(other, cr, cs, path_r, path_s, tests, out);
            }
        }
        if nr.is_some() {
            path_r.pop();
        }
        if ns.is_some() {
            path_s.pop();
        }
    }
}

fn join_lists(r: &[Kpe], s: &[Kpe], tests: &mut u64, out: &mut dyn FnMut(&Kpe, &Kpe)) {
    *tests += (r.len() * s.len()) as u64;
    for a in r {
        for b in s {
            if a.rect.intersects(&b.rect) {
                out(a, b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::RecordId;
    use rand::prelude::*;

    fn random_kpes(n: usize, max_edge: f64, seed: u64) -> Vec<Kpe> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let x = rng.gen_range(0.0..1.0);
                let y = rng.gen_range(0.0..1.0);
                let w = rng.gen_range(0.0..max_edge);
                let h = rng.gen_range(0.0..max_edge);
                Kpe::new(
                    RecordId(i as u64),
                    Rect::new(x, y, (x + w).min(1.0), (y + h).min(1.0)),
                )
            })
            .collect()
    }

    fn brute(r: &[Kpe], s: &[Kpe]) -> Vec<(u64, u64)> {
        let mut v = Vec::new();
        for a in r {
            for b in s {
                if a.rect.intersects(&b.rect) {
                    v.push((a.id.0, b.id.0));
                }
            }
        }
        v.sort_unstable();
        v
    }

    #[test]
    fn insert_then_count() {
        let data = random_kpes(100, 0.05, 1);
        let t = MxCifQuadtree::bulk(&data, 10);
        assert_eq!(t.len(), 100);
        assert_eq!(t.level_histogram().iter().sum::<usize>(), 100);
    }

    #[test]
    fn window_query_matches_scan() {
        let data = random_kpes(300, 0.08, 2);
        let t = MxCifQuadtree::bulk(&data, 12);
        let q = Rect::new(0.2, 0.3, 0.5, 0.6);
        let mut got: Vec<u64> = Vec::new();
        t.window_query(&q, &mut |k| got.push(k.id.0));
        got.sort_unstable();
        let mut want: Vec<u64> = data
            .iter()
            .filter(|k| k.rect.intersects(&q))
            .map(|k| k.id.0)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn point_query_matches_scan() {
        let data = random_kpes(300, 0.1, 3);
        let t = MxCifQuadtree::bulk(&data, 12);
        for p in [
            Point::new(0.5, 0.5),
            Point::new(0.1, 0.9),
            Point::new(0.33, 0.66),
        ] {
            let mut got: Vec<u64> = Vec::new();
            t.point_query(p, &mut |k| got.push(k.id.0));
            got.sort_unstable();
            let mut want: Vec<u64> = data
                .iter()
                .filter(|k| k.rect.contains_point(p))
                .map(|k| k.id.0)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "point {p:?}");
        }
    }

    #[test]
    fn join_matches_brute_force() {
        let r = random_kpes(200, 0.06, 4);
        let s = random_kpes(250, 0.04, 5);
        let tr = MxCifQuadtree::bulk(&r, 12);
        let ts = MxCifQuadtree::bulk(&s, 12);
        let mut got = Vec::new();
        tr.join(&ts, &mut |a, b| got.push((a.id.0, b.id.0)));
        got.sort_unstable();
        assert_eq!(got, brute(&r, &s));
    }

    #[test]
    fn join_is_exactly_once_even_for_root_heavy_data() {
        // Rects straddling the centre all live at the root: the root-pair
        // join must still produce each pair exactly once.
        let mk = |id: u64, d: f64| {
            Kpe::new(
                RecordId(id),
                Rect::new(0.5 - d, 0.5 - d, 0.5 + d, 0.5 + d),
            )
        };
        let r: Vec<Kpe> = (0..10).map(|i| mk(i, 0.001 + i as f64 * 0.01)).collect();
        let s: Vec<Kpe> = (100..110).map(|i| mk(i, 0.002 + (i - 100) as f64 * 0.01)).collect();
        let tr = MxCifQuadtree::bulk(&r, 10);
        let ts = MxCifQuadtree::bulk(&s, 10);
        let mut got = Vec::new();
        tr.join(&ts, &mut |a, b| got.push((a.id.0, b.id.0)));
        got.sort_unstable();
        let want = brute(&r, &s);
        assert_eq!(got, want);
        assert_eq!(got.len(), 100); // all pairs intersect at the centre
    }

    #[test]
    fn join_with_empty_tree() {
        let r = random_kpes(50, 0.1, 6);
        let tr = MxCifQuadtree::bulk(&r, 10);
        let ts = MxCifQuadtree::new(10);
        let mut got = Vec::new();
        tr.join(&ts, &mut |a, b| got.push((a.id.0, b.id.0)));
        assert!(got.is_empty());
        ts.join(&tr, &mut |a, b| got.push((a.id.0, b.id.0)));
        assert!(got.is_empty());
    }

    #[test]
    fn join_does_fewer_tests_than_nested_loops_on_spread_data() {
        let r = random_kpes(1000, 0.01, 7);
        let s = random_kpes(1000, 0.01, 8);
        let tr = MxCifQuadtree::bulk(&r, 12);
        let ts = MxCifQuadtree::bulk(&s, 12);
        let tests = tr.join(&ts, &mut |_, _| {});
        assert!(tests < 1000 * 1000 / 10, "tests = {tests}");
    }

    #[test]
    fn level_histogram_shows_clipping_pathology() {
        // Tiny rects placed ON the centre lines land at coarse levels even
        // though they are small — the motivation for size separation.
        let mut data = Vec::new();
        for i in 0..50u64 {
            let t = i as f64 / 50.0;
            data.push(Kpe::new(
                RecordId(i),
                Rect::new(0.4999, t.min(0.998), 0.5001, (t + 0.001).min(0.999)),
            ));
        }
        let t = MxCifQuadtree::bulk(&data, 12);
        let hist = t.level_histogram();
        assert!(hist[0] + hist[1] > 25, "hist = {hist:?}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use geom::RecordId;
    use proptest::prelude::*;

    fn arb_kpes(max_n: usize) -> impl Strategy<Value = Vec<Kpe>> {
        prop::collection::vec(
            (0.0f64..1.0, 0.0f64..1.0, 0.0f64..0.4, 0.0f64..0.4),
            0..max_n,
        )
        .prop_map(|v| {
            v.into_iter()
                .enumerate()
                .map(|(i, (x, y, w, h))| {
                    Kpe::new(
                        RecordId(i as u64),
                        Rect::new(x, y, (x + w).min(1.0), (y + h).min(1.0)),
                    )
                })
                .collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The synchronized quadtree join (§4.1) equals brute force for
        /// arbitrary inputs and tree depths.
        #[test]
        fn prop_join_matches_brute_force(r in arb_kpes(60), s in arb_kpes(60),
                                         max_level in 1u8..10) {
            let tr = MxCifQuadtree::bulk(&r, max_level);
            let ts = MxCifQuadtree::bulk(&s, max_level);
            let mut got = Vec::new();
            tr.join(&ts, &mut |a, b| got.push((a.id.0, b.id.0)));
            got.sort_unstable();
            let mut want = Vec::new();
            for a in &r {
                for b in &s {
                    if a.rect.intersects(&b.rect) {
                        want.push((a.id.0, b.id.0));
                    }
                }
            }
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }

        /// Every stored rectangle is covered by its node's cell region — the
        /// MX-CIF invariant the join's path-only pairing relies on.
        #[test]
        fn prop_window_query_consistent(r in arb_kpes(80),
                                        qx in 0.0f64..1.0, qy in 0.0f64..1.0,
                                        qw in 0.0f64..0.5, qh in 0.0f64..0.5) {
            let q = Rect::new(qx, qy, (qx + qw).min(1.0), (qy + qh).min(1.0));
            let t = MxCifQuadtree::bulk(&r, 10);
            let mut got: Vec<u64> = Vec::new();
            t.window_query(&q, &mut |k| got.push(k.id.0));
            got.sort_unstable();
            let mut want: Vec<u64> = r
                .iter()
                .filter(|k| k.rect.intersects(&q))
                .map(|k| k.id.0)
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }
}
