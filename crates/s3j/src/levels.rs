use geom::Kpe;
use sfc::{cells_overlapping, mxcif_cell, size_level, Curve};
use storage::{FileId, FixedRecord, IoError, RecordWriter, SimDisk};

/// A record of a level file: a KPE tagged with its locational code. The
/// level itself is implicit in which file the record lives in; the code uses
/// `2·level` bits (§4.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelRecord {
    pub code: u64,
    pub kpe: Kpe,
}

impl FixedRecord for LevelRecord {
    const SIZE: usize = 8 + Kpe::ENCODED_SIZE;

    fn encode(&self, buf: &mut [u8]) {
        buf[0..8].copy_from_slice(&self.code.to_le_bytes());
        self.kpe.encode(&mut buf[8..]);
    }

    fn decode(buf: &[u8]) -> Self {
        // Invariant: callers hand `decode` exactly `SIZE` bytes, so the
        // 8-byte code sub-slice always converts.
        LevelRecord {
            code: u64::from_le_bytes(buf[0..8].try_into().expect("8-byte slice")),
            kpe: Kpe::decode(&buf[8..]),
        }
    }
}

/// The level files of one relation after the partitioning phase.
pub struct LevelFiles {
    /// `files[l]` holds the level-`l` records; empty levels are `None`.
    pub files: Vec<Option<FileId>>,
    /// Records written per level (the paper's level-occupancy observation).
    pub histogram: Vec<u64>,
    /// Total records written (`> input size` only when replicating).
    pub copies: u64,
    /// Locational-code computations performed (§4.4.2: Peano codes are
    /// cheaper than Hilbert codes, and level-0 codes are free).
    pub code_computations: u64,
}

impl LevelFiles {
    /// Partitioning phase for one relation.
    ///
    /// * `replicate == false`: original S³J — each rectangle goes to the
    ///   single lowest quadtree cell covering it ([`mxcif_cell`]).
    /// * `replicate == true`: §4.3 — each rectangle goes to its
    ///   [`size_level`] and is replicated into the ≤ 4 cells of that level it
    ///   overlaps.
    ///
    /// The `level_shift` parameter coarsens the size-separation assignment
    /// by that many levels: a shift of 1 gives cells 2-4x the rectangle's
    /// edge, roughly halving the straddle probability per axis and cutting
    /// the overall replication rate from ~3x to ~1.8x while preserving the
    /// <=4-copy bound (§4.3's second design choice: keep replication low).
    pub fn build(
        disk: &SimDisk,
        data: &[Kpe],
        max_level: u8,
        curve: Curve,
        replicate: bool,
        level_shift: u8,
        buffer_pages: usize,
    ) -> LevelFiles {
        Self::try_build(disk, data, max_level, curve, replicate, level_shift, buffer_pages)
            .unwrap_or_else(|e| panic!("unhandled simulated-disk error: {e}"))
    }

    /// Fallible [`LevelFiles::build`]: a write that exhausts the disk's
    /// retry budget surfaces as a typed error, after every file this call
    /// created has been deleted.
    pub fn try_build(
        disk: &SimDisk,
        data: &[Kpe],
        max_level: u8,
        curve: Curve,
        replicate: bool,
        level_shift: u8,
        buffer_pages: usize,
    ) -> Result<LevelFiles, IoError> {
        let n_levels = max_level as usize + 1;
        let mut writers: Vec<Option<RecordWriter<LevelRecord>>> = (0..n_levels).map(|_| None).collect();
        let mut histogram = vec![0u64; n_levels];
        let mut copies = 0u64;
        let mut code_computations = 0u64;
        let push = |writers: &mut Vec<Option<RecordWriter<LevelRecord>>>,
                    level: u8,
                    rec: LevelRecord|
         -> Result<(), IoError> {
            // Level `l` rides data channel `l mod D` (both relations): the
            // per-level partition writes and the join's level scans overlap
            // across channels under the multi-channel clock.
            let w = writers[level as usize]
                .get_or_insert_with(|| RecordWriter::create_on(disk, u64::from(level), buffer_pages));
            w.try_push(&rec)
        };
        let delete_all = |writers: &[Option<RecordWriter<LevelRecord>>]| {
            for w in writers.iter().flatten() {
                disk.delete(w.file());
            }
        };
        for k in data {
            if replicate {
                let level = size_level(&k.rect, max_level).saturating_sub(level_shift);
                for cell in cells_overlapping(&k.rect, level) {
                    let code = if level == 0 {
                        0 // level 0 has one cell; no code computation needed
                    } else {
                        code_computations += 1;
                        cell.code(curve)
                    };
                    if let Err(e) = push(&mut writers, level, LevelRecord { code, kpe: *k }) {
                        delete_all(&writers);
                        return Err(e);
                    }
                    histogram[level as usize] += 1;
                    copies += 1;
                }
            } else {
                let cell = mxcif_cell(&k.rect, max_level);
                let code = if cell.level == 0 {
                    0
                } else {
                    code_computations += 1;
                    cell.code(curve)
                };
                if let Err(e) = push(&mut writers, cell.level, LevelRecord { code, kpe: *k }) {
                    delete_all(&writers);
                    return Err(e);
                }
                histogram[cell.level as usize] += 1;
                copies += 1;
            }
        }
        let mut files: Vec<Option<FileId>> = Vec::with_capacity(n_levels);
        let mut err: Option<IoError> = None;
        for w in writers {
            match w {
                None => files.push(None),
                Some(w) => {
                    let fid = w.file();
                    match w.try_finish() {
                        Ok(f) if err.is_none() => files.push(Some(f)),
                        Ok(_) => {
                            disk.delete(fid);
                            files.push(None);
                        }
                        Err(e) => {
                            disk.delete(fid);
                            err.get_or_insert(e);
                            files.push(None);
                        }
                    }
                }
            }
        }
        if let Some(e) = err {
            for f in files.iter().flatten() {
                disk.delete(*f);
            }
            return Err(e);
        }
        Ok(LevelFiles {
            files,
            histogram,
            copies,
            code_computations,
        })
    }

    /// Deletes all level files.
    pub fn delete(&self, disk: &SimDisk) {
        for f in self.files.iter().flatten() {
            disk.delete(*f);
        }
    }

    /// Levels that actually hold records.
    pub fn occupied_levels(&self) -> impl Iterator<Item = u8> + '_ {
        self.files
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_some())
            .map(|(l, _)| l as u8)
    }
}

/// Recomputes the records of one level in memory, sorted by locational code
/// — the quarantine-recompute path for a level file on persistently damaged
/// media. The per-KPE assignment is a pure function of the rectangle and the
/// build parameters, so replaying [`LevelFiles::try_build`]'s rule filtered
/// to `level` reproduces exactly the records the damaged file holds, and the
/// stable by-code sort reproduces the sorted file's partition structure
/// (records within one code may permute relative to the external sort's
/// merge order; partitions are joined as unordered sets, so results are
/// unaffected). Reading the source relation is free of charge (paper §2).
pub fn rebuild_level_sorted(
    data: &[Kpe],
    level: u8,
    max_level: u8,
    curve: Curve,
    replicate: bool,
    level_shift: u8,
) -> Vec<LevelRecord> {
    let mut recs: Vec<LevelRecord> = Vec::new();
    for k in data {
        if replicate {
            let l = size_level(&k.rect, max_level).saturating_sub(level_shift);
            if l != level {
                continue;
            }
            for cell in cells_overlapping(&k.rect, l) {
                let code = if l == 0 { 0 } else { cell.code(curve) };
                recs.push(LevelRecord { code, kpe: *k });
            }
        } else {
            let cell = mxcif_cell(&k.rect, max_level);
            if cell.level != level {
                continue;
            }
            let code = if cell.level == 0 { 0 } else { cell.code(curve) };
            recs.push(LevelRecord { code, kpe: *k });
        }
    }
    recs.sort_by_key(|r| r.code);
    recs
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::{Rect, RecordId};
    use storage::read_all;

    fn disk() -> SimDisk {
        SimDisk::with_default_model()
    }

    #[test]
    fn level_record_roundtrip() {
        let rec = LevelRecord {
            code: 0xABCDEF,
            kpe: Kpe::new(RecordId(9), Rect::new(0.1, 0.2, 0.3, 0.4)),
        };
        let mut buf = [0u8; LevelRecord::SIZE];
        rec.encode(&mut buf);
        assert_eq!(LevelRecord::decode(&buf), rec);
    }

    #[test]
    fn original_assignment_writes_each_rect_once() {
        let d = disk();
        let data = datagen::uniform(500, 0.05, 3);
        let lf = LevelFiles::build(&d, &data, 10, Curve::Peano, false, 0, 1);
        assert_eq!(lf.copies, 500);
        assert_eq!(lf.histogram.iter().sum::<u64>(), 500);
        let total: usize = lf
            .files
            .iter()
            .flatten()
            .map(|&f| read_all::<LevelRecord>(&d, f, 1).len())
            .sum();
        assert_eq!(total, 500);
    }

    #[test]
    fn replication_is_bounded_by_four() {
        let d = disk();
        let data = datagen::uniform(1000, 0.08, 4);
        let lf = LevelFiles::build(&d, &data, 12, Curve::Peano, true, 0, 1);
        assert!(lf.copies >= 1000);
        assert!(lf.copies <= 4000, "copies = {}", lf.copies);
    }

    #[test]
    fn replicated_records_carry_their_cells_code() {
        let d = disk();
        // A rect straddling the centre: size level > 0, four copies.
        let k = Kpe::new(RecordId(1), Rect::new(0.49, 0.49, 0.51, 0.51));
        let lf = LevelFiles::build(&d, &[k], 12, Curve::Peano, true, 0, 1);
        assert_eq!(lf.copies, 4);
        let level = sfc::size_level(&k.rect, 12);
        let recs: Vec<LevelRecord> =
            read_all(&d, lf.files[level as usize].unwrap(), 1);
        let mut codes: Vec<u64> = recs.iter().map(|r| r.code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 4, "four distinct cells expected");
        for r in &recs {
            let cell = sfc::Cell::from_code(level, r.code, Curve::Peano);
            assert!(cell.rect().intersects(&k.rect));
        }
    }

    #[test]
    fn original_puts_straddlers_at_level_zero_replicated_does_not() {
        let d = disk();
        // Tiny rects on the centre cross.
        let data: Vec<Kpe> = (0..50)
            .map(|i| {
                let t = 0.01 + i as f64 * 0.019;
                Kpe::new(RecordId(i), Rect::new(0.4999, t, 0.5001, t + 0.001))
            })
            .collect();
        let orig = LevelFiles::build(&d, &data, 12, Curve::Peano, false, 0, 1);
        let repl = LevelFiles::build(&d, &data, 12, Curve::Peano, true, 0, 1);
        assert_eq!(orig.histogram[0], 50, "all straddlers clipped to root");
        assert_eq!(repl.histogram[0], 0, "size separation rescues them");
    }

    #[test]
    fn code_computation_counters_differ_by_level_zero() {
        let d = disk();
        let wide = Kpe::new(RecordId(0), Rect::new(0.0, 0.0, 0.9, 0.9)); // level 0
        let tiny = Kpe::new(RecordId(1), Rect::new(0.1, 0.1, 0.101, 0.101));
        let lf = LevelFiles::build(&d, &[wide, tiny], 12, Curve::Peano, true, 0, 1);
        // The wide rect is level 0 (one cell, free); the tiny one costs 1.
        assert_eq!(lf.code_computations, 1);
    }
}
