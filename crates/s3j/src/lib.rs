//! Size Separation Spatial Join (S³J), original and with controlled
//! replication.
//!
//! S³J ([KS 97]) partitions each input over a hierarchy of equidistant grids
//! (the levels of an MX-CIF quadtree) and joins them with a synchronized
//! linear scan, avoiding replication entirely:
//!
//! 1. **Partitioning** — each rectangle is assigned a *level* and a
//!    *locational code* and appended to that level's file.
//! 2. **Sorting** — every level file is sorted by locational code
//!    (externally if necessary).
//! 3. **Join** — a synchronized scan of all level files simulates a pre-order
//!    traversal of the two implicit quadtrees; a partition (one cell's
//!    rectangles) is joined with the other relation's partitions on the
//!    current root path. A heap over the file cursors skips empty partitions
//!    (§4.4.3).
//!
//! The paper's contribution (§4.3): the original covering-cell assignment
//! drops *small* rectangles that merely straddle a grid line into *coarse*
//! levels, where they are tested against nearly everything. **Size
//! separation with replication** assigns each rectangle to the level whose
//! cell size matches its edge lengths (`size_level`) and replicates it into
//! the ≤ 4 cells it overlaps; duplicates in the response set are eliminated
//! online by a modified Reference Point Method: report a pair only when the
//! reference point lies in the cell of the *deeper* of the two partitions.
//!
//! Entry point: [`s3j_join`] with [`S3jConfig`]; measurements in
//! [`S3jStats`].

mod levels;
mod scan;

pub use levels::{rebuild_level_sorted, LevelFiles, LevelRecord};
pub use scan::{s3j_join, try_s3j_join, try_s3j_join_ctl, S3jConfig, S3jStats, ScanMode};
