use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use geom::{reference_point, Kpe, RecordId};
use sfc::{Cell, Curve, MAX_LEVEL};
use storage::{
    try_external_sort_by, DiskModel, FileId, IoError, IoStats, JoinError, RecordReader, SimDisk,
};
use sweep::{InternalAlgo, InternalJoin, JoinCounters};

use crate::levels::{LevelFiles, LevelRecord};

/// Join-phase strategy (§4.4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanMode {
    /// One synchronized scan over all level files, driven by a heap of file
    /// cursors ordered by pre-order position — empty partitions are never
    /// touched (the paper's implementation, detailed in [Dit 99]).
    #[default]
    HeapMerge,
    /// Ablation baseline: join every pair of level files with its own merge
    /// scan. Re-reads each level file once per opposite level.
    LevelPairs,
}

/// S³J tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct S3jConfig {
    /// Memory budget in bytes (drives external sorting; partitions are
    /// assumed to fit, as in [KS 97]).
    pub mem_bytes: usize,
    /// Finest grid level.
    pub max_level: u8,
    /// `false`: original S³J (covering-cell assignment, no duplicates).
    /// `true`: §4.3 size separation with ≤4-fold replication + online RPM.
    pub replicate: bool,
    /// Levels to coarsen the size-separation assignment by (replicated mode
    /// only). 0 is the literal §4.3 rule (~3× replication on line data);
    /// the default 1 keeps the ≤4-copy bound but halves the per-axis
    /// straddle probability (~1.8× replication) — the paper's second design
    /// choice ("the overall replication rate should be kept sufficiently
    /// low").
    pub level_shift: u8,
    /// Space-filling curve for locational codes (§4.4.2).
    pub curve: Curve,
    /// Internal join algorithm for partition pairs (§4.4.1: nested loops
    /// wins for S³J's tiny partitions).
    pub internal: InternalAlgo,
    pub scan: ScanMode,
    /// Write-buffer pages per level file during partitioning.
    pub level_buffer_pages: usize,
    /// Read-buffer pages per cursor during the join scan.
    pub io_buffer_pages: usize,
    /// Worker threads for the partition-pair joins of the synchronized scan
    /// ([`ScanMode::HeapMerge`] only; the ablation scan stays sequential).
    /// `0` means "all available cores"; `1` runs the sequential code path.
    /// The result stream and all deterministic counters are identical for
    /// every value.
    pub threads: usize,
}

impl Default for S3jConfig {
    fn default() -> Self {
        S3jConfig {
            mem_bytes: 8 << 20,
            max_level: MAX_LEVEL,
            replicate: true,
            level_shift: 1,
            curve: Curve::Peano,
            internal: InternalAlgo::NestedLoops,
            scan: ScanMode::HeapMerge,
            level_buffer_pages: 1,
            io_buffer_pages: 2,
            threads: 0,
        }
    }
}

/// Everything S³J measured while running.
#[derive(Debug, Clone)]
pub struct S3jStats {
    pub copies_r: u64,
    pub copies_s: u64,
    pub histogram_r: Vec<u64>,
    pub histogram_s: Vec<u64>,
    pub code_computations: u64,
    /// Pairs produced by the internal joins before duplicate handling.
    pub candidates: u64,
    pub results: u64,
    pub duplicates: u64,
    pub join_counters: JoinCounters,
    pub sort_runs: usize,
    pub sort_passes_max: usize,
    pub io_partition: IoStats,
    pub io_sort: IoStats,
    pub io_join: IoStats,
    pub cpu_partition: f64,
    pub cpu_sort: f64,
    pub cpu_join: f64,
    /// Peak bytes of partitions resident during the join scan.
    pub peak_partition_bytes: usize,
    pub model: DiskModel,
    /// CPU position (seconds since start) of the first emitted result.
    pub first_result_cpu: Option<f64>,
    /// I/O meter at the first emitted result.
    pub first_result_io: Option<IoStats>,
}

impl S3jStats {
    pub fn io_total(&self) -> IoStats {
        self.io_partition.plus(&self.io_sort).plus(&self.io_join)
    }

    pub fn cpu_seconds(&self) -> f64 {
        self.cpu_partition + self.cpu_sort + self.cpu_join
    }

    pub fn io_seconds(&self) -> f64 {
        self.model.seconds(&self.io_total())
    }

    /// CPU seconds stretched to the emulated 1999 machine.
    pub fn scaled_cpu_seconds(&self) -> f64 {
        self.model.scaled_cpu(self.cpu_seconds())
    }

    /// The paper's "total runtime": (emulated) CPU plus simulated disk time.
    pub fn total_seconds(&self) -> f64 {
        self.scaled_cpu_seconds() + self.io_seconds()
    }

    pub fn replication_rate(&self, input_len: usize) -> f64 {
        (self.copies_r + self.copies_s) as f64 / input_len.max(1) as f64
    }

    /// Simulated time at which the first result appeared (None if empty).
    /// S³J pipelines once the level files are sorted: results flow during
    /// the synchronized scan.
    pub fn first_result_seconds(&self) -> Option<f64> {
        Some(
            self.model.scaled_cpu(self.first_result_cpu?)
                + self.model.seconds(self.first_result_io.as_ref()?),
        )
    }

    /// Folds a per-worker partial into this stats struct — the deterministic
    /// reduction of the parallel executor. Work counts and I/O counters are
    /// pure sums (independent of worker interleaving); CPU phase times and
    /// the resident peak take the **max over workers** (concurrent phases
    /// cost as much as the slowest worker). Run-level fields (`model`,
    /// histograms, sort stats, first-result probes) are kept from `self`.
    pub fn merge(&mut self, other: &S3jStats) {
        self.copies_r += other.copies_r;
        self.copies_s += other.copies_s;
        self.code_computations += other.code_computations;
        self.candidates += other.candidates;
        self.results += other.results;
        self.duplicates += other.duplicates;
        self.join_counters.merge(&other.join_counters);
        self.io_partition = self.io_partition.plus(&other.io_partition);
        self.io_sort = self.io_sort.plus(&other.io_sort);
        self.io_join = self.io_join.plus(&other.io_join);
        self.cpu_partition = self.cpu_partition.max(other.cpu_partition);
        self.cpu_sort = self.cpu_sort.max(other.cpu_sort);
        self.cpu_join = self.cpu_join.max(other.cpu_join);
        self.peak_partition_bytes = self.peak_partition_bytes.max(other.peak_partition_bytes);
    }

    /// A zeroed partial for per-worker accumulation (merged back with
    /// [`S3jStats::merge`]).
    fn partial(model: DiskModel) -> S3jStats {
        S3jStats {
            copies_r: 0,
            copies_s: 0,
            histogram_r: Vec::new(),
            histogram_s: Vec::new(),
            code_computations: 0,
            candidates: 0,
            results: 0,
            duplicates: 0,
            join_counters: JoinCounters::default(),
            sort_runs: 0,
            sort_passes_max: 0,
            io_partition: IoStats::default(),
            io_sort: IoStats::default(),
            io_join: IoStats::default(),
            cpu_partition: 0.0,
            cpu_sort: 0.0,
            cpu_join: 0.0,
            peak_partition_bytes: 0,
            model,
            first_result_cpu: None,
            first_result_io: None,
        }
    }
}

/// A loaded partition: one cell's rectangles from one relation. Cloned by
/// parallel workers (internal joins reorder rects in place, so every task
/// works on a pristine private copy).
#[derive(Clone)]
struct Part {
    rel: usize, // 0 = R, 1 = S
    level: u8,
    /// Pre-order range of the cell on the `max_level` grid.
    start: u64,
    end: u64,
    cell: Cell,
    rects: Vec<Kpe>,
}

impl Part {
    /// A private copy of this partition whose rects live in `buf` (cleared
    /// first) — lets parallel workers recycle scratch buffers instead of
    /// allocating per task.
    fn copy_into(&self, mut buf: Vec<Kpe>) -> Part {
        buf.clear();
        buf.extend_from_slice(&self.rects);
        Part {
            rel: self.rel,
            level: self.level,
            start: self.start,
            end: self.end,
            cell: self.cell,
            rects: buf,
        }
    }
}

/// Cursor over one sorted level file that yields whole partitions.
struct Cursor {
    reader: RecordReader<LevelRecord>,
    level: u8,
    rel: usize,
    pending: Option<LevelRecord>,
}

impl Cursor {
    fn new(
        disk: &SimDisk,
        file: FileId,
        level: u8,
        rel: usize,
        buffer_pages: usize,
    ) -> Result<Self, IoError> {
        let mut reader = RecordReader::new(disk, file, buffer_pages);
        let pending = reader.try_next()?;
        Ok(Cursor {
            reader,
            level,
            rel,
            pending,
        })
    }

    /// Pre-order heap key of the next partition.
    fn peek_key(&self, max_level: u8) -> Option<(u64, u8, usize)> {
        self.pending.as_ref().map(|r| {
            let shift = 2 * (max_level - self.level) as u32;
            (r.code << shift, self.level, self.rel)
        })
    }

    /// Consumes all records of the next cell. On error the cursor is broken
    /// (the partition in flight is lost); the scan treats it as terminal.
    fn take_partition(&mut self, curve: Curve, max_level: u8) -> Result<Part, IoError> {
        // Invariant: only called after `peek_key` returned `Some`, so a
        // pending record exists.
        let first = self.pending.take().expect("cursor exhausted");
        let code = first.code;
        let mut rects = vec![first.kpe];
        loop {
            match self.reader.try_next()? {
                Some(r) if r.code == code => rects.push(r.kpe),
                other => {
                    self.pending = other;
                    break;
                }
            }
        }
        let shift = 2 * (max_level - self.level) as u32;
        let start = code << shift;
        Ok(Part {
            rel: self.rel,
            level: self.level,
            start,
            end: start + (1u64 << shift),
            cell: Cell::from_code(self.level, code, curve),
            rects,
        })
    }
}

struct JoinCtx<'a> {
    cfg: &'a S3jConfig,
    internal: Box<dyn InternalJoin + Send>,
    candidates: u64,
    results: u64,
    duplicates: u64,
}

impl JoinCtx<'_> {
    /// Joins a pair of partitions where `deeper` is the one with the finer
    /// (or equal) cell. With replication, the modified RPM (§4.3) reports a
    /// pair only if its reference point lies in the deeper partition's cell.
    fn join_parts(
        &mut self,
        deeper: &mut Part,
        other: &mut Part,
        out: &mut dyn FnMut(RecordId, RecordId),
    ) {
        debug_assert!(deeper.level >= other.level);
        let replicate = self.cfg.replicate;
        let cell = deeper.cell;
        let mut candidates = 0u64;
        let mut results = 0u64;
        let mut duplicates = 0u64;
        // Orientation: callback receives (r, s) ids.
        let flip = deeper.rel == 0; // deeper from R => internal args (other=s? no)
        let (r_slice, s_slice) = if flip {
            (&mut deeper.rects, &mut other.rects)
        } else {
            (&mut other.rects, &mut deeper.rects)
        };
        self.internal.join(r_slice, s_slice, &mut |a, b| {
            candidates += 1;
            if replicate {
                if cell.contains_point(reference_point(&a.rect, &b.rect)) {
                    results += 1;
                    out(a.id, b.id);
                } else {
                    duplicates += 1;
                }
            } else {
                results += 1;
                out(a.id, b.id);
            }
        });
        self.candidates += candidates;
        self.results += results;
        self.duplicates += duplicates;
    }
}

/// Runs S³J on `r ⋈ s`, invoking `out` for every result pair.
///
/// Infallible wrapper over [`try_s3j_join`]; panics with the typed error's
/// message if a request exhausts the disk's retry budget (impossible on a
/// fault-free disk).
pub fn s3j_join(
    disk: &SimDisk,
    r: &[Kpe],
    s: &[Kpe],
    cfg: &S3jConfig,
    out: &mut dyn FnMut(RecordId, RecordId),
) -> S3jStats {
    try_s3j_join(disk, r, s, cfg, out)
        .unwrap_or_else(|e| panic!("unhandled simulated-disk error: {e}"))
}

/// Runs S³J on `r ⋈ s`, invoking `out` for every result pair.
///
/// Reading the inputs and delivering the output are free of charge (paper
/// §2); level files, sort runs and the join scan are fully accounted on
/// `disk`.
///
/// Failure semantics: every page request already retried under the disk's
/// [`storage::RetryPolicy`]; an error reaching this layer is terminal and
/// surfaces as a typed [`JoinError`] naming the phase (`"build"`, `"sort"`,
/// `"scan"`), after all intermediate files have been deleted. The parallel
/// scan's workers are pure CPU — the coordinator performs all discovery
/// I/O — so errors arise only from build, sort, and the discovery scan.
pub fn try_s3j_join(
    disk: &SimDisk,
    r: &[Kpe],
    s: &[Kpe],
    cfg: &S3jConfig,
    out: &mut dyn FnMut(RecordId, RecordId),
) -> Result<S3jStats, JoinError> {
    let run_start = Instant::now();
    // --- Phase 1: partitioning into level files -----------------------------
    let t0 = Instant::now();
    let io0 = disk.stats();
    let lf_r = LevelFiles::try_build(
        disk,
        r,
        cfg.max_level,
        cfg.curve,
        cfg.replicate,
        cfg.level_shift,
        cfg.level_buffer_pages,
    )
    .map_err(|e| JoinError::new("build", e))?;
    let lf_s = match LevelFiles::try_build(
        disk,
        s,
        cfg.max_level,
        cfg.curve,
        cfg.replicate,
        cfg.level_shift,
        cfg.level_buffer_pages,
    ) {
        Ok(lf) => lf,
        Err(e) => {
            lf_r.delete(disk);
            return Err(JoinError::new("build", e));
        }
    };
    let mut stats = S3jStats {
        copies_r: lf_r.copies,
        copies_s: lf_s.copies,
        histogram_r: lf_r.histogram.clone(),
        histogram_s: lf_s.histogram.clone(),
        code_computations: lf_r.code_computations + lf_s.code_computations,
        candidates: 0,
        results: 0,
        duplicates: 0,
        join_counters: JoinCounters::default(),
        sort_runs: 0,
        sort_passes_max: 0,
        io_partition: IoStats::default(),
        io_sort: IoStats::default(),
        io_join: IoStats::default(),
        cpu_partition: 0.0,
        cpu_sort: 0.0,
        cpu_join: 0.0,
        peak_partition_bytes: 0,
        model: disk.model(),
        first_result_cpu: None,
        first_result_io: None,
    };
    stats.io_partition = disk.stats().delta(&io0);
    stats.cpu_partition = t0.elapsed().as_secs_f64();

    // --- Phase 2: sort every level file by locational code ------------------
    let t1 = Instant::now();
    let io1 = disk.stats();
    // A sort failure is latched; later level files are deleted unsorted and
    // every already-sorted file is cleaned up before the error surfaces.
    let mut sort_err: Option<IoError> = None;
    let sort_levels =
        |lf: &LevelFiles, stats: &mut S3jStats, err: &mut Option<IoError>| -> Vec<Option<FileId>> {
            lf.files
                .iter()
                .map(|f| {
                    f.and_then(|f| {
                        if err.is_some() {
                            disk.delete(f);
                            return None;
                        }
                        match try_external_sort_by::<LevelRecord, _, _>(
                            disk,
                            f,
                            cfg.mem_bytes,
                            |r| r.code,
                        ) {
                            Ok((sorted, st)) => {
                                disk.delete(f);
                                stats.sort_runs += st.runs;
                                stats.sort_passes_max = stats.sort_passes_max.max(st.merge_passes);
                                Some(sorted)
                            }
                            Err(e) => {
                                disk.delete(f);
                                *err = Some(e);
                                None
                            }
                        }
                    })
                })
                .collect()
        };
    let sorted_r = sort_levels(&lf_r, &mut stats, &mut sort_err);
    let sorted_s = sort_levels(&lf_s, &mut stats, &mut sort_err);
    stats.io_sort = disk.stats().delta(&io1);
    stats.cpu_sort = t1.elapsed().as_secs_f64();
    if let Some(e) = sort_err {
        for f in sorted_r.iter().chain(sorted_s.iter()).flatten() {
            disk.delete(*f);
        }
        return Err(JoinError::new("sort", e));
    }

    // --- Phase 3: synchronized scan ------------------------------------------
    // On-CPU compute clock (wall fallback): keeps the sequential and
    // parallel join-phase measurements on the same basis, so speedup ratios
    // are meaningful even on an oversubscribed host.
    let t2 = parallel::WorkClock::start();
    let io2 = disk.stats();
    let mut first_cpu: Option<f64> = None;
    let mut first_io: Option<IoStats> = None;
    let probe_disk = disk.clone();
    let mut wrapped_out = |a: RecordId, b: RecordId| {
        if first_cpu.is_none() {
            first_cpu = Some(run_start.elapsed().as_secs_f64());
            first_io = Some(probe_disk.stats());
        }
        out(a, b);
    };
    let out = &mut wrapped_out as &mut dyn FnMut(RecordId, RecordId);
    let threads = parallel::resolve_threads(cfg.threads);
    let scan_res: Result<(), IoError> = if matches!(cfg.scan, ScanMode::HeapMerge) && threads > 1 {
        // `cpu_join` is assembled inside: the coordinator's discovery scan
        // plus the max-over-workers on-CPU join time — the phase cost on
        // dedicated cores, which the pool barrier realises as wall time on
        // an unloaded multicore host.
        heap_scan_parallel(disk, cfg, threads, &sorted_r, &sorted_s, &mut stats, out)
    } else {
        let mut ctx = JoinCtx {
            cfg,
            internal: cfg.internal.create(),
            candidates: 0,
            results: 0,
            duplicates: 0,
        };
        let res = match cfg.scan {
            ScanMode::HeapMerge => {
                heap_scan(disk, cfg, &sorted_r, &sorted_s, &mut ctx, &mut stats, out)
            }
            ScanMode::LevelPairs => {
                pair_scan(disk, cfg, &sorted_r, &sorted_s, &mut ctx, &mut stats, out)
            }
        };
        stats.candidates = ctx.candidates;
        stats.results = ctx.results;
        stats.duplicates = ctx.duplicates;
        stats.join_counters = ctx.internal.counters();
        stats.cpu_join = t2.seconds();
        res
    };
    stats.io_join = disk.stats().delta(&io2);

    for f in sorted_r.iter().chain(sorted_s.iter()).flatten() {
        disk.delete(*f);
    }
    scan_res.map_err(|e| JoinError::new("scan", e))?;
    stats.first_result_cpu = first_cpu;
    stats.first_result_io = first_io;
    Ok(stats)
}

/// §4.4.3: one pass over all level files, merged by a heap of cursors in
/// pre-order; per relation a stack of the partitions on the current root
/// path. A new partition is joined against the other relation's stack (its
/// cell's ancestors-or-equal), then pushed on its own stack.
fn heap_scan(
    disk: &SimDisk,
    cfg: &S3jConfig,
    sorted_r: &[Option<FileId>],
    sorted_s: &[Option<FileId>],
    ctx: &mut JoinCtx<'_>,
    stats: &mut S3jStats,
    out: &mut dyn FnMut(RecordId, RecordId),
) -> Result<(), IoError> {
    let mut cursors: Vec<Cursor> = Vec::new();
    for (rel, files) in [(0usize, sorted_r), (1, sorted_s)] {
        for (level, f) in files.iter().enumerate() {
            if let Some(f) = f {
                cursors.push(Cursor::new(disk, *f, level as u8, rel, cfg.io_buffer_pages)?);
            }
        }
    }
    let mut heap: BinaryHeap<Reverse<(u64, u8, usize, usize)>> = BinaryHeap::new();
    for (i, c) in cursors.iter().enumerate() {
        if let Some((start, level, rel)) = c.peek_key(cfg.max_level) {
            heap.push(Reverse((start, level, rel, i)));
        }
    }
    let mut stacks: [Vec<Part>; 2] = [Vec::new(), Vec::new()];
    let mut resident = 0usize;
    while let Some(Reverse((_, _, _, ci))) = heap.pop() {
        let mut part = cursors[ci].take_partition(cfg.curve, cfg.max_level)?;
        if let Some((st, lv, rl)) = cursors[ci].peek_key(cfg.max_level) {
            heap.push(Reverse((st, lv, rl, ci)));
        }
        // Unwind both stacks to the root path of the new cell.
        for stack in stacks.iter_mut() {
            while let Some(top) = stack.last() {
                if top.start <= part.start && part.start < top.end {
                    break; // ancestor (or equal): keep
                }
                resident -= top.rects.len() * Kpe::ENCODED_SIZE;
                stack.pop();
            }
        }
        // Join against the other relation's root path. Every stack entry is
        // an ancestor-or-equal cell, so `part` is always the deeper one.
        let other_stack = &mut stacks[1 - part.rel];
        for q in other_stack.iter_mut() {
            ctx.join_parts(&mut part, q, out);
        }
        resident += part.rects.len() * Kpe::ENCODED_SIZE;
        stats.peak_partition_bytes = stats.peak_partition_bytes.max(resident);
        stacks[part.rel].push(part);
    }
    Ok(())
}

/// Parallel variant of [`heap_scan`]: the discovery traversal (cursors,
/// heap, root-path stacks) runs unchanged on the coordinator — it is the
/// only I/O — but instead of joining inline, every (new partition, stack
/// entry) pair is queued over `Arc`-shared partitions and workers claim
/// contiguous chunks of the queue. Workers join pristine clones (internal
/// joins reorder rects in place) and buffer their result pairs; the pool
/// re-assembles chunk outputs in discovery order, so
/// the emitted stream is identical to the sequential scan, and the modified
/// RPM (§4.3) keeps the union of task outputs duplicate-free no matter how
/// tasks interleave.
fn heap_scan_parallel(
    disk: &SimDisk,
    cfg: &S3jConfig,
    threads: usize,
    sorted_r: &[Option<FileId>],
    sorted_s: &[Option<FileId>],
    stats: &mut S3jStats,
    out: &mut dyn FnMut(RecordId, RecordId),
) -> Result<(), IoError> {
    use std::sync::Arc;

    let t_discover = parallel::WorkClock::start();
    let mut cursors: Vec<Cursor> = Vec::new();
    for (rel, files) in [(0usize, sorted_r), (1, sorted_s)] {
        for (level, f) in files.iter().enumerate() {
            if let Some(f) = f {
                cursors.push(Cursor::new(disk, *f, level as u8, rel, cfg.io_buffer_pages)?);
            }
        }
    }
    let mut heap: BinaryHeap<Reverse<(u64, u8, usize, usize)>> = BinaryHeap::new();
    for (i, c) in cursors.iter().enumerate() {
        if let Some((start, level, rel)) = c.peek_key(cfg.max_level) {
            heap.push(Reverse((start, level, rel, i)));
        }
    }
    let mut stacks: [Vec<Arc<Part>>; 2] = [Vec::new(), Vec::new()];
    let mut resident = 0usize;
    let mut tasks: Vec<(Arc<Part>, Arc<Part>)> = Vec::new();
    while let Some(Reverse((_, _, _, ci))) = heap.pop() {
        let part = cursors[ci].take_partition(cfg.curve, cfg.max_level)?;
        if let Some((st, lv, rl)) = cursors[ci].peek_key(cfg.max_level) {
            heap.push(Reverse((st, lv, rl, ci)));
        }
        for stack in stacks.iter_mut() {
            while let Some(top) = stack.last() {
                if top.start <= part.start && part.start < top.end {
                    break; // ancestor (or equal): keep
                }
                resident -= top.rects.len() * Kpe::ENCODED_SIZE;
                stack.pop();
            }
        }
        let part = Arc::new(part);
        for q in stacks[1 - part.rel].iter() {
            tasks.push((Arc::clone(&part), Arc::clone(q)));
        }
        resident += part.rects.len() * Kpe::ENCODED_SIZE;
        stats.peak_partition_bytes = stats.peak_partition_bytes.max(resident);
        stacks[part.rel].push(part);
    }
    drop(stacks);
    let discover_secs = t_discover.seconds();

    // S³J partition pairs are tiny (often a handful of rects), so a task
    // per pair would drown in per-task overhead. Workers instead claim
    // contiguous *chunks* of the discovery-ordered pair list; chunk outputs
    // re-assemble in chunk order, which is discovery order.
    let chunk = tasks.len().div_ceil(threads * 16).max(1);
    let n_chunks = tasks.len().div_ceil(chunk);
    let model = stats.model;
    let workers = parallel::run_ordered(
        threads,
        n_chunks,
        |_w| {
            (
                JoinCtx {
                    cfg,
                    internal: cfg.internal.create(),
                    candidates: 0,
                    results: 0,
                    duplicates: 0,
                },
                0f64,
                parallel::WorkClock::start(),
                // Scratch rect buffers, reused across tasks: internal joins
                // reorder rects in place, so each task needs private copies,
                // but per-task Vec allocations would serialise the pool on
                // the allocator lock.
                (Vec::new(), Vec::new()),
            )
        },
        |(ctx, cpu, work_clock, scratch), c| {
            let c0 = work_clock.seconds();
            let mut pairs = Vec::new();
            for (deeper, other) in &tasks[c * chunk..tasks.len().min((c + 1) * chunk)] {
                let mut deeper = deeper.copy_into(std::mem::take(&mut scratch.0));
                let mut other = other.copy_into(std::mem::take(&mut scratch.1));
                ctx.join_parts(&mut deeper, &mut other, &mut |a, b| pairs.push((a, b)));
                scratch.0 = deeper.rects;
                scratch.1 = other.rects;
            }
            *cpu += work_clock.seconds() - c0;
            pairs
        },
        |_i, pairs| {
            for (a, b) in pairs {
                out(a, b);
            }
        },
    );
    for (ctx, cpu, _clock, _scratch) in workers {
        // Per-worker duplicate accounting: every candidate was either
        // reported or suppressed by the modified reference-point test
        // (duplicates are 0 in the unreplicated original), regardless of
        // how chunks were interleaved across workers.
        debug_assert_eq!(
            ctx.candidates,
            ctx.results + ctx.duplicates,
            "per-worker S3J accounting broken"
        );
        let mut partial = S3jStats::partial(model);
        partial.candidates = ctx.candidates;
        partial.results = ctx.results;
        partial.duplicates = ctx.duplicates;
        partial.join_counters = ctx.internal.counters();
        partial.cpu_join = cpu;
        stats.merge(&partial);
    }
    // Coordinator discovery (the phase's only I/O and heap work) happens
    // before the workers start; it adds to whichever worker was slowest.
    // Once discovery succeeded nothing below can fail: the worker tasks are
    // pure CPU over in-memory partitions.
    stats.cpu_join += discover_secs;
    Ok(())
}

/// Ablation baseline for §4.4.3: a separate merge scan per pair of level
/// files. Produces identical results; re-reads each level file once per
/// opposite occupied level.
fn pair_scan(
    disk: &SimDisk,
    cfg: &S3jConfig,
    sorted_r: &[Option<FileId>],
    sorted_s: &[Option<FileId>],
    ctx: &mut JoinCtx<'_>,
    stats: &mut S3jStats,
    out: &mut dyn FnMut(RecordId, RecordId),
) -> Result<(), IoError> {
    // The next whole partition of `c`, or `None` at end of file.
    fn next_part(c: &mut Cursor, curve: Curve, max_level: u8) -> Result<Option<Part>, IoError> {
        if c.pending.is_some() {
            Ok(Some(c.take_partition(curve, max_level)?))
        } else {
            Ok(None)
        }
    }
    for (lr, fr) in sorted_r.iter().enumerate() {
        let Some(fr) = fr else { continue };
        for (ls, fs) in sorted_s.iter().enumerate() {
            let Some(fs) = fs else { continue };
            let cr = Cursor::new(disk, *fr, lr as u8, 0, cfg.io_buffer_pages)?;
            let cs = Cursor::new(disk, *fs, ls as u8, 1, cfg.io_buffer_pages)?;
            // Merge: `a` is the coarser-or-equal side, `b` the deeper side.
            let (mut a, mut b) = if lr <= ls { (cr, cs) } else { (cs, cr) };
            let mut pa = next_part(&mut a, cfg.curve, cfg.max_level)?;
            let mut pb = next_part(&mut b, cfg.curve, cfg.max_level)?;
            while let (Some(ca), Some(cb)) = (&mut pa, &mut pb) {
                if ca.start <= cb.start && cb.start < ca.end {
                    // `ca` covers `cb`: join (cb is the deeper partition).
                    stats.peak_partition_bytes = stats.peak_partition_bytes.max(
                        (ca.rects.len() + cb.rects.len()) * Kpe::ENCODED_SIZE,
                    );
                    ctx.join_parts(cb, ca, out);
                    pb = next_part(&mut b, cfg.curve, cfg.max_level)?;
                } else if ca.end <= cb.start {
                    pa = next_part(&mut a, cfg.curve, cfg.max_level)?;
                } else {
                    pb = next_part(&mut b, cfg.curve, cfg.max_level)?;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{scale, LineNetwork};

    fn brute(r: &[Kpe], s: &[Kpe]) -> Vec<(u64, u64)> {
        let mut v = Vec::new();
        for a in r {
            for b in s {
                if a.rect.intersects(&b.rect) {
                    v.push((a.id.0, b.id.0));
                }
            }
        }
        v.sort_unstable();
        v
    }

    fn run(r: &[Kpe], s: &[Kpe], cfg: &S3jConfig) -> (Vec<(u64, u64)>, S3jStats) {
        let disk = SimDisk::with_default_model();
        let mut got = Vec::new();
        let stats = s3j_join(&disk, r, s, cfg, &mut |a, b| got.push((a.0, b.0)));
        got.sort_unstable();
        (got, stats)
    }

    fn tiger_pair(n: usize) -> (Vec<Kpe>, Vec<Kpe>) {
        let r = LineNetwork {
            count: n,
            coverage: 0.22,
            segments_per_line: 20,
            seed: 301,
        }
        .generate();
        let s = LineNetwork {
            count: n + n / 7,
            coverage: 0.03,
            segments_per_line: 10,
            seed: 302,
        }
        .generate();
        (r, s)
    }

    #[test]
    fn original_s3j_matches_brute_force() {
        let (r, s) = tiger_pair(2500);
        let cfg = S3jConfig {
            replicate: false,
            mem_bytes: 64 * 1024,
            max_level: 10,
            ..Default::default()
        };
        let (got, stats) = run(&r, &s, &cfg);
        assert_eq!(got, brute(&r, &s));
        assert_eq!(stats.duplicates, 0, "no replication, no duplicates");
        assert_eq!(stats.copies_r as usize, r.len());
    }

    #[test]
    fn replicated_s3j_matches_brute_force_and_dedups() {
        let (r0, s0) = tiger_pair(2000);
        // Scale up so rects straddle cells and replication actually happens.
        let (r, s) = (scale(&r0, 3.0), scale(&s0, 3.0));
        let cfg = S3jConfig {
            replicate: true,
            mem_bytes: 64 * 1024,
            max_level: 10,
            ..Default::default()
        };
        let (got, stats) = run(&r, &s, &cfg);
        assert_eq!(got, brute(&r, &s));
        assert!(stats.copies_r as usize > r.len(), "expected replication");
        assert!(stats.duplicates > 0, "expected suppressed duplicates");
        assert!(stats.replication_rate(r.len() + s.len()) <= 4.0);
    }

    #[test]
    fn heap_and_pair_scans_agree() {
        let (r, s) = tiger_pair(1500);
        for replicate in [false, true] {
            let base = S3jConfig {
                replicate,
                mem_bytes: 48 * 1024,
                max_level: 9,
                ..Default::default()
            };
            let (heap, hs) = run(&r, &s, &base);
            let (pairs, ps) = run(
                &r,
                &s,
                &S3jConfig {
                    scan: ScanMode::LevelPairs,
                    ..base
                },
            );
            assert_eq!(heap, pairs, "replicate={replicate}");
            assert_eq!(hs.results, ps.results);
            // The naive scan re-reads level files: strictly more join I/O.
            assert!(
                ps.io_join.pages_read >= hs.io_join.pages_read,
                "pair-scan should not read less"
            );
        }
    }

    #[test]
    fn all_internal_algorithms_agree() {
        let (r, s) = tiger_pair(1500);
        let mut reference: Option<Vec<(u64, u64)>> = None;
        for internal in InternalAlgo::ALL {
            let cfg = S3jConfig {
                internal,
                mem_bytes: 48 * 1024,
                max_level: 9,
                ..Default::default()
            };
            let (got, _) = run(&r, &s, &cfg);
            match &reference {
                None => reference = Some(got),
                Some(want) => assert_eq!(&got, want, "{internal} diverges"),
            }
        }
    }

    #[test]
    fn hilbert_and_peano_curves_agree() {
        let (r, s) = tiger_pair(1200);
        let base = S3jConfig {
            mem_bytes: 48 * 1024,
            max_level: 9,
            ..Default::default()
        };
        let (peano, pstats) = run(&r, &s, &base);
        let (hilbert, hstats) = run(
            &r,
            &s,
            &S3jConfig {
                curve: Curve::Hilbert,
                ..base
            },
        );
        assert_eq!(peano, hilbert);
        // §4.4.2: curve choice affects neither I/O nor intersection tests.
        assert_eq!(pstats.io_total(), hstats.io_total());
        assert_eq!(pstats.join_counters.tests, hstats.join_counters.tests);
    }

    #[test]
    fn replication_cuts_intersection_tests_on_straddler_heavy_data() {
        // The motivating pathology (§4.2–4.3): small rects straddling grid
        // lines land at coarse levels without replication and get tested
        // against everything.
        let (r0, s0) = tiger_pair(3000);
        let (r, s) = (scale(&r0, 2.0), scale(&s0, 2.0));
        let base = S3jConfig {
            mem_bytes: 64 * 1024,
            max_level: 10,
            ..Default::default()
        };
        let (res_o, orig) = run(&r, &s, &S3jConfig { replicate: false, ..base });
        let (res_r, repl) = run(&r, &s, &S3jConfig { replicate: true, ..base });
        assert_eq!(res_o, res_r);
        assert!(
            repl.join_counters.tests * 2 < orig.join_counters.tests,
            "replicated {} tests vs original {}",
            repl.join_counters.tests,
            orig.join_counters.tests
        );
    }

    #[test]
    fn self_join_consistent() {
        let (r, _) = tiger_pair(1200);
        let cfg = S3jConfig {
            mem_bytes: 48 * 1024,
            max_level: 9,
            ..Default::default()
        };
        let (got, _) = run(&r, &r, &cfg);
        assert_eq!(got, brute(&r, &r));
    }

    #[test]
    fn empty_inputs() {
        let (r, _) = tiger_pair(200);
        let cfg = S3jConfig::default();
        let (got, stats) = run(&r, &[], &cfg);
        assert!(got.is_empty());
        assert_eq!(stats.results, 0);
        let (got, _) = run(&[], &[], &cfg);
        assert!(got.is_empty());
    }

    #[test]
    fn stats_io_decomposition_adds_up() {
        let (r, s) = tiger_pair(1000);
        let disk = SimDisk::with_default_model();
        let stats = s3j_join(&disk, &r, &s, &S3jConfig::default(), &mut |_, _| {});
        assert_eq!(stats.io_total(), disk.stats());
        assert!(stats.total_seconds() > 0.0);
        assert!(stats.peak_partition_bytes > 0);
    }
}

#[cfg(test)]
mod rpm_unit_tests {
    use super::*;
    use geom::{Kpe, Rect, RecordId};

    fn run_cfg(r: &[Kpe], s: &[Kpe], cfg: &S3jConfig) -> (Vec<(u64, u64)>, S3jStats) {
        let disk = SimDisk::with_default_model();
        let mut got = Vec::new();
        let st = s3j_join(&disk, r, s, cfg, &mut |a, b| got.push((a.0, b.0)));
        got.sort_unstable();
        (got, st)
    }

    /// Hand-constructed instance of paper Figure 10: r sits one level above
    /// s; s is replicated into two sibling cells; the pair must be reported
    /// exactly once (from the cell containing the reference point).
    #[test]
    fn figure10_mixed_level_pair_reported_once() {
        // r: a rect needing a level-1 cell (edges just over 1/4).
        let r = Kpe::new(RecordId(1), Rect::new(0.05, 0.05, 0.35, 0.35));
        // s: a small rect straddling the vertical line x = 0.25 (level-2
        // cell boundary), inside r.
        let s = Kpe::new(RecordId(2), Rect::new(0.22, 0.1, 0.28, 0.15));
        let cfg = S3jConfig {
            replicate: true,
            level_shift: 0,
            max_level: 8,
            ..Default::default()
        };
        let (got, st) = run_cfg(&[r], &[s], &cfg);
        assert_eq!(got, vec![(1, 2)]);
        assert_eq!(st.results, 1);
        assert!(
            st.copies_s >= 2,
            "s must be replicated across the boundary (copies = {})",
            st.copies_s
        );
        assert_eq!(st.candidates, st.results + st.duplicates);
        assert!(st.duplicates >= 1, "the duplicate candidate must be caught");
    }

    /// Equal-level pair replicated into the same two cells: both cells see
    /// both rects, only the reference-point cell reports.
    #[test]
    fn equal_level_replicated_pair_reported_once() {
        let r = Kpe::new(RecordId(1), Rect::new(0.22, 0.1, 0.28, 0.14));
        let s = Kpe::new(RecordId(2), Rect::new(0.23, 0.11, 0.29, 0.15));
        let cfg = S3jConfig {
            replicate: true,
            level_shift: 0,
            max_level: 8,
            ..Default::default()
        };
        let (got, st) = run_cfg(&[r], &[s], &cfg);
        assert_eq!(got, vec![(1, 2)]);
        assert!(st.duplicates >= 1);
    }

    /// A pair whose rects only touch at one point on a cell boundary: the
    /// half-open cell convention must still deliver it exactly once.
    #[test]
    fn touching_pair_on_cell_boundary() {
        let r = Kpe::new(RecordId(1), Rect::new(0.20, 0.20, 0.25, 0.25));
        let s = Kpe::new(RecordId(2), Rect::new(0.25, 0.25, 0.30, 0.30));
        for shift in [0u8, 1] {
            let cfg = S3jConfig {
                replicate: true,
                level_shift: shift,
                max_level: 8,
                ..Default::default()
            };
            let (got, _) = run_cfg(&[r], &[s], &cfg);
            assert_eq!(got, vec![(1, 2)], "shift {shift}");
        }
    }
}
