use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use geom::{reference_point, Kpe, RecordId};
use sfc::{Cell, Curve, MAX_LEVEL};
use storage::{
    try_external_sort_by, DiskModel, FileId, IdPair, IoError, IoStats, JoinError, RecordReader,
    RecordWriter, RunCheckpoint, RunControl, RunPhase, SimDisk,
};
use sweep::{InternalAlgo, InternalJoin, JoinCounters};

use crate::levels::{LevelFiles, LevelRecord};

/// Join-phase strategy (§4.4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanMode {
    /// One synchronized scan over all level files, driven by a heap of file
    /// cursors ordered by pre-order position — empty partitions are never
    /// touched (the paper's implementation, detailed in [Dit 99]).
    #[default]
    HeapMerge,
    /// Ablation baseline: join every pair of level files with its own merge
    /// scan. Re-reads each level file once per opposite level.
    LevelPairs,
}

/// S³J tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct S3jConfig {
    /// Memory budget in bytes (drives external sorting; partitions are
    /// assumed to fit, as in [KS 97]).
    pub mem_bytes: usize,
    /// Finest grid level.
    pub max_level: u8,
    /// `false`: original S³J (covering-cell assignment, no duplicates).
    /// `true`: §4.3 size separation with ≤4-fold replication + online RPM.
    pub replicate: bool,
    /// Levels to coarsen the size-separation assignment by (replicated mode
    /// only). 0 is the literal §4.3 rule (~3× replication on line data);
    /// the default 1 keeps the ≤4-copy bound but halves the per-axis
    /// straddle probability (~1.8× replication) — the paper's second design
    /// choice ("the overall replication rate should be kept sufficiently
    /// low").
    pub level_shift: u8,
    /// Space-filling curve for locational codes (§4.4.2).
    pub curve: Curve,
    /// Internal join algorithm for partition pairs (§4.4.1: nested loops
    /// wins for S³J's tiny partitions).
    pub internal: InternalAlgo,
    pub scan: ScanMode,
    /// Write-buffer pages per level file during partitioning.
    pub level_buffer_pages: usize,
    /// Read-buffer pages per cursor during the join scan.
    pub io_buffer_pages: usize,
    /// Worker threads for the partition-pair joins of the synchronized scan
    /// ([`ScanMode::HeapMerge`] only; the ablation scan stays sequential).
    /// `0` means "all available cores"; `1` runs the sequential code path.
    /// The result stream and all deterministic counters are identical for
    /// every value.
    pub threads: usize,
}

impl Default for S3jConfig {
    fn default() -> Self {
        S3jConfig {
            mem_bytes: 8 << 20,
            max_level: MAX_LEVEL,
            replicate: true,
            level_shift: 1,
            curve: Curve::Peano,
            internal: InternalAlgo::NestedLoops,
            scan: ScanMode::HeapMerge,
            level_buffer_pages: 1,
            io_buffer_pages: 2,
            threads: 0,
        }
    }
}

/// Everything S³J measured while running.
#[derive(Debug, Clone)]
pub struct S3jStats {
    pub copies_r: u64,
    pub copies_s: u64,
    pub histogram_r: Vec<u64>,
    pub histogram_s: Vec<u64>,
    pub code_computations: u64,
    /// Pairs produced by the internal joins before duplicate handling.
    pub candidates: u64,
    pub results: u64,
    pub duplicates: u64,
    pub join_counters: JoinCounters,
    pub sort_runs: usize,
    pub sort_passes_max: usize,
    pub io_partition: IoStats,
    pub io_sort: IoStats,
    pub io_join: IoStats,
    /// Checkpoint-layer I/O of a durable run (manifest publishes, journal
    /// and results-file appends); zero without a checkpoint.
    pub io_checkpoint: IoStats,
    /// Shared-lane I/O: untagged files (manifest, journal, results, sort
    /// scratch that outlives its level tag) whose requests serialize on the
    /// multi-channel clock. With `io_channels` this is an exact
    /// field-for-field decomposition of [`io_total`](Self::io_total).
    pub io_shared: IoStats,
    /// Per-data-channel I/O: level `l`'s file (and its sort runs, which
    /// inherit the tag) rides channel `l mod D` for both relations. Always
    /// `model.data_channels()` entries.
    pub io_channels: Vec<IoStats>,
    pub cpu_partition: f64,
    pub cpu_sort: f64,
    pub cpu_join: f64,
    /// Peak bytes of partitions resident during the join scan.
    pub peak_partition_bytes: usize,
    /// Durable per-partition journal commits performed by this run (zero
    /// unless the run is checkpointed).
    pub checkpoint_commits: u64,
    /// Level files abandoned to persistent media damage and recomputed from
    /// the source relation (quarantine-recompute): sort-phase rebuilds that
    /// rewrote a level through a spare file, plus scan-phase cursors that
    /// switched to the in-memory replay. The run completes with the exact
    /// result set either way; this only marks that it ran degraded.
    pub quarantined_levels: u32,
    pub model: DiskModel,
    /// CPU position of the earliest result on the *pipelined* clock (scan
    /// base plus the emitting task's own CPU), minimized over tasks — the
    /// same at every thread count.
    pub first_result_cpu: Option<f64>,
    /// This run's I/O meter at the earliest result on the pipelined clock:
    /// the discovery I/O up to the emitting partition (plus its commit I/O
    /// when checkpointed) — scan workers themselves do no I/O.
    pub first_result_io: Option<IoStats>,
}

impl S3jStats {
    pub fn io_total(&self) -> IoStats {
        self.io_partition
            .plus(&self.io_sort)
            .plus(&self.io_join)
            .plus(&self.io_checkpoint)
    }

    pub fn cpu_seconds(&self) -> f64 {
        self.cpu_partition + self.cpu_sort + self.cpu_join
    }

    pub fn io_seconds(&self) -> f64 {
        self.model.seconds(&self.io_total())
    }

    /// CPU seconds stretched to the emulated 1999 machine.
    pub fn scaled_cpu_seconds(&self) -> f64 {
        self.model.scaled_cpu(self.cpu_seconds())
    }

    /// Simulated I/O wall time under the multi-channel clock: the shared
    /// lane serializes, data channels overlap (`shared + max over
    /// channels`). With one channel this is bit-identical to
    /// [`io_seconds`](Self::io_seconds).
    pub fn io_parallel_seconds(&self) -> f64 {
        self.model.parallel_io_seconds(&self.io_shared, &self.io_channels)
    }

    /// I/O time hidden behind computation — zero with a single channel.
    /// S³J needs no explicit prefetch stage for this: the coordinator's
    /// synchronized scan performs all I/O while workers join in-memory
    /// partitions, so discovery reads on spare channels overlap compute.
    pub fn prefetch_hidden_seconds(&self) -> f64 {
        self.model
            .prefetch_hidden_seconds(self.scaled_cpu_seconds(), &self.io_channels)
    }

    /// The paper's "total runtime": (emulated) CPU plus simulated disk time
    /// on the multi-channel clock, minus the compute/I-O overlap. With one
    /// channel this reduces bit-exactly to `scaled_cpu + io_seconds`.
    pub fn total_seconds(&self) -> f64 {
        self.model
            .total_seconds(self.scaled_cpu_seconds(), &self.io_shared, &self.io_channels)
    }

    pub fn replication_rate(&self, input_len: usize) -> f64 {
        (self.copies_r + self.copies_s) as f64 / input_len.max(1) as f64
    }

    /// Simulated time at which the first result appeared (None if empty).
    /// S³J pipelines once the level files are sorted: results flow during
    /// the synchronized scan.
    pub fn first_result_seconds(&self) -> Option<f64> {
        Some(
            self.model.scaled_cpu(self.first_result_cpu?)
                + self.model.seconds(self.first_result_io.as_ref()?),
        )
    }

    /// Folds a per-worker partial into this stats struct — the deterministic
    /// reduction of the parallel executor. Work counts and I/O counters are
    /// pure sums (independent of worker interleaving); CPU phase times and
    /// the resident peak take the **max over workers** (concurrent phases
    /// cost as much as the slowest worker). Run-level fields (`model`,
    /// histograms, sort stats, first-result probes, and the channel
    /// decomposition `io_shared`/`io_channels`, derived from the disk's
    /// per-channel meters at run end) are kept from `self`.
    pub fn merge(&mut self, other: &S3jStats) {
        self.copies_r += other.copies_r;
        self.copies_s += other.copies_s;
        self.code_computations += other.code_computations;
        self.candidates += other.candidates;
        self.results += other.results;
        self.duplicates += other.duplicates;
        self.join_counters.merge(&other.join_counters);
        self.io_partition = self.io_partition.plus(&other.io_partition);
        self.io_sort = self.io_sort.plus(&other.io_sort);
        self.io_join = self.io_join.plus(&other.io_join);
        self.io_checkpoint = self.io_checkpoint.plus(&other.io_checkpoint);
        self.cpu_partition = self.cpu_partition.max(other.cpu_partition);
        self.cpu_sort = self.cpu_sort.max(other.cpu_sort);
        self.cpu_join = self.cpu_join.max(other.cpu_join);
        self.peak_partition_bytes = self.peak_partition_bytes.max(other.peak_partition_bytes);
        self.checkpoint_commits += other.checkpoint_commits;
        self.quarantined_levels += other.quarantined_levels;
    }

    /// A zeroed partial for per-worker accumulation (merged back with
    /// [`S3jStats::merge`]).
    fn partial(model: DiskModel) -> S3jStats {
        S3jStats {
            copies_r: 0,
            copies_s: 0,
            histogram_r: Vec::new(),
            histogram_s: Vec::new(),
            code_computations: 0,
            candidates: 0,
            results: 0,
            duplicates: 0,
            join_counters: JoinCounters::default(),
            sort_runs: 0,
            sort_passes_max: 0,
            io_partition: IoStats::default(),
            io_sort: IoStats::default(),
            io_join: IoStats::default(),
            io_checkpoint: IoStats::default(),
            io_shared: IoStats::default(),
            io_channels: vec![IoStats::default(); model.data_channels()],
            cpu_partition: 0.0,
            cpu_sort: 0.0,
            cpu_join: 0.0,
            peak_partition_bytes: 0,
            checkpoint_commits: 0,
            quarantined_levels: 0,
            model,
            first_result_cpu: None,
            first_result_io: None,
        }
    }
}

/// A loaded partition: one cell's rectangles from one relation. Cloned by
/// parallel workers (internal joins reorder rects in place, so every task
/// works on a pristine private copy).
#[derive(Clone)]
struct Part {
    rel: usize, // 0 = R, 1 = S
    level: u8,
    /// Pre-order range of the cell on the `max_level` grid.
    start: u64,
    end: u64,
    cell: Cell,
    rects: Vec<Kpe>,
}

impl Part {
    /// A private copy of this partition whose rects live in `buf` (cleared
    /// first) — lets parallel workers recycle scratch buffers instead of
    /// allocating per task.
    fn copy_into(&self, mut buf: Vec<Kpe>) -> Part {
        buf.clear();
        buf.extend_from_slice(&self.rects);
        Part {
            rel: self.rel,
            level: self.level,
            start: self.start,
            end: self.end,
            cell: self.cell,
            rects: buf,
        }
    }
}

/// What a level-file cursor falls back to when its sorted file turns out to
/// sit on persistently damaged media: the source relation plus the build
/// parameters needed to recompute the level's records in memory
/// ([`crate::levels::rebuild_level_sorted`]).
#[derive(Clone, Copy)]
struct LevelSource<'a> {
    data: &'a [Kpe],
    max_level: u8,
    curve: Curve,
    replicate: bool,
    level_shift: u8,
}

impl<'a> LevelSource<'a> {
    fn for_rel(cfg: &S3jConfig, r: &'a [Kpe], s: &'a [Kpe], rel: usize) -> LevelSource<'a> {
        LevelSource {
            data: if rel == 0 { r } else { s },
            max_level: cfg.max_level,
            curve: cfg.curve,
            replicate: cfg.replicate,
            level_shift: cfg.level_shift,
        }
    }

    fn rebuild(&self, level: u8) -> Vec<LevelRecord> {
        crate::levels::rebuild_level_sorted(
            self.data,
            level,
            self.max_level,
            self.curve,
            self.replicate,
            self.level_shift,
        )
    }
}

/// Where a [`Cursor`] draws its records from: the sorted level file, or —
/// after a persistent read failure quarantined that file — the in-memory
/// replay of the level, already positioned past every fully-consumed
/// partition.
enum CursorSrc {
    Disk(RecordReader<LevelRecord>),
    Memory(std::vec::IntoIter<LevelRecord>),
}

/// Cursor over one sorted level file that yields whole partitions.
struct Cursor<'a> {
    src: CursorSrc,
    level: u8,
    rel: usize,
    pending: Option<LevelRecord>,
    source: LevelSource<'a>,
    /// Set once this cursor abandoned its damaged file for the replay.
    quarantined: bool,
}

impl<'a> Cursor<'a> {
    fn new(
        disk: &SimDisk,
        file: FileId,
        level: u8,
        rel: usize,
        buffer_pages: usize,
        source: LevelSource<'a>,
    ) -> Result<Self, IoError> {
        let mut reader = RecordReader::new(disk, file, buffer_pages);
        match reader.try_next() {
            Ok(pending) => Ok(Cursor {
                src: CursorSrc::Disk(reader),
                level,
                rel,
                pending,
                source,
                quarantined: false,
            }),
            Err(e) if e.kind.is_persistent() => {
                // The very first page is damaged: no partition was consumed
                // yet, so the replay starts from the beginning.
                let mut c = Cursor {
                    src: CursorSrc::Memory(Vec::new().into_iter()),
                    level,
                    rel,
                    pending: None,
                    source,
                    quarantined: false,
                };
                c.quarantine(None);
                Ok(c)
            }
            Err(e) => Err(e),
        }
    }

    /// Abandons the damaged level file: recomputes the level from the source
    /// relation (free of charge, paper §2 — the inputs stay readable),
    /// sorted by code, and repositions at `resume_code`'s partition (or the
    /// start when the first read failed). Every earlier partition was fully
    /// consumed and already joined; the in-flight one restarts from its
    /// first record — nothing is lost or double-joined.
    fn quarantine(&mut self, resume_code: Option<u64>) {
        let mut it = self.source.rebuild(self.level).into_iter();
        let mut pending = it.next();
        if let Some(c) = resume_code {
            while pending.as_ref().is_some_and(|r| r.code < c) {
                pending = it.next();
            }
        }
        self.pending = pending;
        self.src = CursorSrc::Memory(it);
        self.quarantined = true;
    }

    fn next_record(&mut self) -> Result<Option<LevelRecord>, IoError> {
        match &mut self.src {
            CursorSrc::Disk(r) => r.try_next(),
            CursorSrc::Memory(it) => Ok(it.next()),
        }
    }

    /// Pre-order heap key of the next partition.
    fn peek_key(&self, max_level: u8) -> Option<(u64, u8, usize)> {
        self.pending.as_ref().map(|r| {
            let shift = 2 * (max_level - self.level) as u32;
            (r.code << shift, self.level, self.rel)
        })
    }

    /// Consumes all records of the next cell's code.
    fn collect(&mut self, code: u64, mut rects: Vec<Kpe>) -> Result<Vec<Kpe>, IoError> {
        loop {
            match self.next_record()? {
                Some(r) if r.code == code => rects.push(r.kpe),
                other => {
                    self.pending = other;
                    return Ok(rects);
                }
            }
        }
    }

    fn make_part(&self, code: u64, rects: Vec<Kpe>, curve: Curve, max_level: u8) -> Part {
        let shift = 2 * (max_level - self.level) as u32;
        let start = code << shift;
        Part {
            rel: self.rel,
            level: self.level,
            start,
            end: start + (1u64 << shift),
            cell: Cell::from_code(self.level, code, curve),
            rects,
        }
    }

    /// Consumes all records of the next cell. A transient error that
    /// exhausted the retry budget is terminal (the partition in flight is
    /// lost); persistent damage quarantines the file instead and the
    /// partition is re-collected from the in-memory replay.
    fn take_partition(&mut self, curve: Curve, max_level: u8) -> Result<Part, IoError> {
        // Invariant: only called after `peek_key` returned `Some`, so a
        // pending record exists.
        let first = self.pending.take().expect("cursor exhausted");
        let code = first.code;
        match self.collect(code, vec![first.kpe]) {
            Ok(rects) => Ok(self.make_part(code, rects, curve, max_level)),
            Err(e) if e.kind.is_persistent() => {
                // Re-reads of a damaged page fail identically, so retrying
                // the file is pointless: switch to the replay and restart
                // the in-flight partition from its first record (the
                // partially collected rects were never joined or emitted).
                self.quarantine(Some(code));
                let first = self
                    .pending
                    .take()
                    .expect("rebuilt level lost the in-flight partition");
                debug_assert_eq!(first.code, code, "replay resumed at the wrong partition");
                let rects = self.collect(code, vec![first.kpe])?;
                Ok(self.make_part(code, rects, curve, max_level))
            }
            Err(e) => Err(e),
        }
    }
}

struct JoinCtx<'a> {
    cfg: &'a S3jConfig,
    internal: Box<dyn InternalJoin + Send>,
    candidates: u64,
    results: u64,
    duplicates: u64,
}

impl JoinCtx<'_> {
    /// Joins a pair of partitions where `deeper` is the one with the finer
    /// (or equal) cell. With replication, the modified RPM (§4.3) reports a
    /// pair only if its reference point lies in the deeper partition's cell.
    fn join_parts(
        &mut self,
        deeper: &mut Part,
        other: &mut Part,
        out: &mut dyn FnMut(RecordId, RecordId),
    ) {
        debug_assert!(deeper.level >= other.level);
        let replicate = self.cfg.replicate;
        let cell = deeper.cell;
        let mut candidates = 0u64;
        let mut results = 0u64;
        let mut duplicates = 0u64;
        // Orientation: callback receives (r, s) ids.
        let flip = deeper.rel == 0; // deeper from R => internal args (other=s? no)
        let (r_slice, s_slice) = if flip {
            (&mut deeper.rects, &mut other.rects)
        } else {
            (&mut other.rects, &mut deeper.rects)
        };
        self.internal.join(r_slice, s_slice, &mut |a, b| {
            candidates += 1;
            if replicate {
                if cell.contains_point(reference_point(&a.rect, &b.rect)) {
                    results += 1;
                    out(a.id, b.id);
                } else {
                    duplicates += 1;
                }
            } else {
                results += 1;
                out(a.id, b.id);
            }
        });
        self.candidates += candidates;
        self.results += results;
        self.duplicates += duplicates;
    }
}

/// Runs S³J on `r ⋈ s`, invoking `out` for every result pair.
///
/// Infallible wrapper over [`try_s3j_join`]; panics with the typed error's
/// message if a request exhausts the disk's retry budget (impossible on a
/// fault-free disk).
pub fn s3j_join(
    disk: &SimDisk,
    r: &[Kpe],
    s: &[Kpe],
    cfg: &S3jConfig,
    out: &mut dyn FnMut(RecordId, RecordId),
) -> S3jStats {
    try_s3j_join(disk, r, s, cfg, out)
        .unwrap_or_else(|e| panic!("unhandled simulated-disk error: {e}"))
}

/// Runs S³J on `r ⋈ s`, invoking `out` for every result pair.
///
/// Reading the inputs and delivering the output are free of charge (paper
/// §2); level files, sort runs and the join scan are fully accounted on
/// `disk`.
///
/// Failure semantics: every page request already retried under the disk's
/// [`storage::RetryPolicy`]; an error reaching this layer is terminal and
/// surfaces as a typed [`JoinError`] naming the phase (`"build"`, `"sort"`,
/// `"scan"`), after all intermediate files have been deleted. The parallel
/// scan's workers are pure CPU — the coordinator performs all discovery
/// I/O — so errors arise only from build, sort, and the discovery scan.
pub fn try_s3j_join(
    disk: &SimDisk,
    r: &[Kpe],
    s: &[Kpe],
    cfg: &S3jConfig,
    out: &mut dyn FnMut(RecordId, RecordId),
) -> Result<S3jStats, JoinError> {
    try_s3j_join_ctl(disk, r, s, cfg, &RunControl::none(), out)
}

/// Level-file lists travel through the run manifest as flat [`FileId`]
/// vectors indexed by level; empty levels are encoded as this sentinel raw
/// id (never a real file — deleting or keeping it is a no-op on `SimDisk`).
const EMPTY_LEVEL: u32 = u32::MAX;

fn pack_levels(files: &[Option<FileId>]) -> Vec<FileId> {
    files
        .iter()
        .map(|f| f.unwrap_or(FileId::from_raw(EMPTY_LEVEL)))
        .collect()
}

fn unpack_levels(files: &[FileId]) -> Vec<Option<FileId>> {
    files
        .iter()
        .map(|&f| (f.raw() != EMPTY_LEVEL).then_some(f))
        .collect()
}

/// Commit-protocol steps 2–4 for one discovered partition: durably flush
/// its buffered pairs to the results file, append its journal record (the
/// commit point — crash injection fires here), and only then emit the pairs
/// downstream. The checkpoint I/O delta is folded into `io_ckpt`, and each
/// durable journal record bumps `commits`.
#[allow(clippy::too_many_arguments)] // internal commit driver; the args are the commit state
fn commit_and_emit(
    cp: &mut RunCheckpoint,
    disk: &SimDisk,
    io_ckpt: &mut IoStats,
    commits: &mut u64,
    partition: u32,
    pairs: &[(RecordId, RecordId)],
    (candidates, results, duplicates): (u64, u64, u64),
    out: &mut dyn FnMut(RecordId, RecordId),
) -> Result<(), JoinError> {
    let io0 = disk.stats();
    let encoded: Vec<IdPair> = pairs
        .iter()
        .map(|&(a, b)| IdPair { r: a.0, s: b.0 })
        .collect();
    let res = cp
        .append_results(&encoded)
        .and_then(|()| cp.commit_partition(partition, candidates, results, duplicates));
    *io_ckpt = io_ckpt.plus(&disk.stats().delta(&io0));
    // The durable journal record — not the process's last instruction — is
    // the delivery boundary: a resume skips every committed partition, so a
    // committed partition's pairs must reach the consumer even when the
    // injected crash fires between the commit and this loop (otherwise they
    // would be emitted by neither leg). An uncommitted partition's pairs
    // stay unemitted; the resume recomputes and emits them.
    if res.is_ok() || cp.is_committed(partition) {
        *commits += 1;
        for &(a, b) in pairs {
            out(a, b);
        }
    }
    res
}

/// Sort-phase quarantine-recompute: `damaged` (an unsorted level file on
/// persistently bad media, or one whose sort ran out of disk) is abandoned;
/// the level's records are recomputed from the source relation (free, paper
/// §2), sorted in memory, and written through a **spare** file on the same
/// channel — the analogue of remapping damaged sectors — which the fault
/// model never damages. The spare is created before `damaged` is reclaimed
/// so it inherits the channel; page charges for the rewrite are real, only
/// the doomed re-sort is skipped. On a write failure the spare is deleted
/// and the error surfaces.
fn rebuild_sorted_to_spare(
    disk: &SimDisk,
    damaged: FileId,
    reclaim: bool,
    level: u8,
    src: LevelSource<'_>,
    buffer_pages: usize,
) -> Result<FileId, IoError> {
    let recs = src.rebuild(level);
    let spare = disk.create_spare_like(damaged);
    if reclaim {
        disk.delete(damaged);
    }
    let mut w = RecordWriter::new(disk, spare, buffer_pages);
    let mut push_err: Option<IoError> = None;
    for rec in &recs {
        if let Err(e) = w.try_push(rec) {
            push_err = Some(e);
            break;
        }
    }
    let res = match push_err {
        None => w.try_finish(),
        Some(e) => Err(e),
    };
    if res.is_err() {
        disk.delete(spare);
    }
    res
}

/// [`try_s3j_join`] with run-control plumbing: cooperative cancellation, a
/// simulated-time deadline (both checked per level file in the build/sort
/// phases and per discovered partition in the scan), and — when
/// [`RunControl::checkpoint`] is set — durable per-partition commits with
/// exactly-once resume.
///
/// The journal's work unit is the *discovered partition*: the synchronized
/// scan pops partitions off the cursor heap in a deterministic pre-order,
/// so numbering them in discovery order is stable across runs and thread
/// counts. Each candidate pair arises in exactly one discovery event (the
/// deeper partition joining the other relation's root path), and the
/// modified RPM (§4.3) reports a pair only in its reference-point cell, so
/// skipping journal-committed partitions on resume is duplicate-free — for
/// the original unreplicated S³J trivially so, since no pair is ever seen
/// twice. The ablation [`ScanMode::LevelPairs`] re-reads level files
/// pair-by-pair and has no such unit; checkpointing it is refused with a
/// typed `Unsupported` error.
///
/// The durable run is three manifests deep: a `Partition` manifest after
/// the build (a crash mid-sort resumes from the intact unsorted level
/// files), a `Join` manifest after the sort (journal + results + sorted
/// files; per-partition commits are durable from here), and `Done` at the
/// end.
pub fn try_s3j_join_ctl(
    disk: &SimDisk,
    r: &[Kpe],
    s: &[Kpe],
    cfg: &S3jConfig,
    ctl: &RunControl,
    out: &mut dyn FnMut(RecordId, RecordId),
) -> Result<S3jStats, JoinError> {
    let mut cp = ctl.checkpoint.as_ref().map(|m| m.lock());
    let checkpointing = cp.is_some();
    if checkpointing && !matches!(cfg.scan, ScanMode::HeapMerge) {
        return Err(JoinError::new("setup", IoError::unsupported()));
    }
    let model = disk.model();
    let mut stats = S3jStats::partial(model);
    // Absolute simulated-timeline position for trace spans: disk meter in
    // seconds plus scaled CPU.
    let sim_at = |io: &IoStats, cpu: f64| model.seconds(io) + model.scaled_cpu(cpu);

    // A recovered run that already published `Done`: everything was emitted
    // before the original process exited, so report the journaled totals
    // and emit nothing (re-emitting would break exactly-once).
    if let Some(c) = cp.as_deref() {
        if c.phase() == RunPhase::Done {
            for e in c.committed() {
                stats.candidates += e.candidates;
                stats.results += e.results;
                stats.duplicates += e.duplicates;
            }
            return Ok(stats);
        }
    }
    // A published manifest's level-file lists: unsorted when the run died
    // in the sort phase, sorted once the `Join` manifest was out. A freshly
    // started checkpoint is also in `Partition` phase but has no files yet.
    let manifest_levels = cp.as_deref().and_then(|c| {
        let (fr, fs) = c.files();
        (!(fr.is_empty() && fs.is_empty())).then(|| (unpack_levels(fr), unpack_levels(fs)))
    });
    let resume_join = cp.as_deref().is_some_and(|c| c.phase() == RunPhase::Join);
    let resume_build = cp.as_deref().is_some_and(|c| c.phase() == RunPhase::Partition)
        && manifest_levels.is_some();

    // --- Phase 1: partitioning into level files -----------------------------
    let t0 = Instant::now();
    let io0 = disk.stats();
    // Per-channel baseline for the run's channel decomposition (the disk
    // may carry charges from earlier runs; only this run's deltas count).
    let ch0 = disk.channel_stats();
    let (unsorted_r, unsorted_s) = if resume_join {
        (Vec::new(), Vec::new()) // build *and* sort already durable
    } else if resume_build {
        // The unsorted level files survived the crash intact: skip the
        // build, redo the sort.
        manifest_levels.clone().unwrap_or_default()
    } else {
        let elapsed = || disk.io_seconds() + model.scaled_cpu(t0.elapsed().as_secs_f64());
        if let Some(e) = ctl.charge("build", elapsed()) {
            return Err(e);
        }
        let lf_r = LevelFiles::try_build(
            disk,
            r,
            cfg.max_level,
            cfg.curve,
            cfg.replicate,
            cfg.level_shift,
            cfg.level_buffer_pages,
        )
        .map_err(|e| JoinError::new("build", e))?;
        if let Some(e) = ctl.charge("build", elapsed()) {
            lf_r.delete(disk);
            return Err(e);
        }
        let lf_s = match LevelFiles::try_build(
            disk,
            s,
            cfg.max_level,
            cfg.curve,
            cfg.replicate,
            cfg.level_shift,
            cfg.level_buffer_pages,
        ) {
            Ok(lf) => lf,
            Err(e) => {
                lf_r.delete(disk);
                return Err(JoinError::new("build", e));
            }
        };
        if let Some(e) = ctl.charge("build", elapsed()) {
            lf_r.delete(disk);
            lf_s.delete(disk);
            return Err(e);
        }
        stats.copies_r = lf_r.copies;
        stats.copies_s = lf_s.copies;
        stats.histogram_r = lf_r.histogram.clone();
        stats.histogram_s = lf_s.histogram.clone();
        stats.code_computations = lf_r.code_computations + lf_s.code_computations;
        (lf_r.files, lf_s.files)
    };
    stats.io_partition = disk.stats().delta(&io0);
    stats.cpu_partition = t0.elapsed().as_secs_f64();
    ctl.span("build", sim_at(&io0, 0.0), sim_at(&disk.stats(), stats.cpu_partition));
    // Durable build: after this publish, a crash or deadline during the
    // sort phase resumes from the intact unsorted level files instead of
    // re-partitioning.
    if !(resume_join || resume_build) {
        if let Some(c) = cp.as_deref_mut() {
            let c0 = disk.stats();
            let res =
                c.commit_partition_phase(&pack_levels(&unsorted_r), &pack_levels(&unsorted_s));
            stats.io_checkpoint = stats.io_checkpoint.plus(&disk.stats().delta(&c0));
            res?;
        }
    }

    // --- Phase 2: sort every level file by locational code ------------------
    let t1 = Instant::now();
    let io1 = disk.stats();
    let (sorted_r, sorted_s) = if resume_join {
        manifest_levels.unwrap_or_default()
    } else {
        // A sort failure (or interruption) is latched; later level files
        // are skipped and every already-sorted file is cleaned up before
        // the error surfaces. Without a checkpoint each unsorted file is
        // deleted as soon as it is consumed; a durable run keeps them until
        // the `Join` manifest — which references the sorted files instead —
        // is published, so an interrupted sort phase stays resumable.
        let cpu_base = stats.cpu_partition;
        let elapsed =
            || disk.io_seconds() + model.scaled_cpu(cpu_base + t1.elapsed().as_secs_f64());
        let mut sort_err: Option<JoinError> = None;
        let sort_levels = |lf: &[Option<FileId>],
                           src: LevelSource<'_>,
                           stats: &mut S3jStats,
                           err: &mut Option<JoinError>|
         -> Vec<Option<FileId>> {
            lf.iter()
                .enumerate()
                .map(|(level, f)| {
                    f.and_then(|f| {
                        if err.is_none() {
                            *err = ctl.charge("sort", elapsed());
                        }
                        if err.is_some() {
                            if !checkpointing {
                                disk.delete(f);
                            }
                            return None;
                        }
                        match try_external_sort_by::<LevelRecord, _, _>(
                            disk,
                            f,
                            cfg.mem_bytes,
                            |r| r.code,
                        ) {
                            Ok((sorted, st)) => {
                                if !checkpointing {
                                    disk.delete(f);
                                }
                                stats.sort_runs += st.runs;
                                stats.sort_passes_max = stats.sort_passes_max.max(st.merge_passes);
                                Some(sorted)
                            }
                            Err(e) if e.kind.is_persistent() => {
                                // Persistent damage (or ENOSPC in the sort's
                                // scratch): the external sort can never
                                // finish this file. Quarantine it and
                                // rewrite the level, recomputed from source
                                // and sorted in memory, through a spare file
                                // on the same channel — the remapped-sector
                                // analogue — exempt from further damage.
                                // Reclaiming the doomed unsorted file also
                                // frees its budget, so the direct rewrite
                                // can fit where sort scratch could not (a
                                // durable run keeps it: its manifest is
                                // what a resume re-sorts from).
                                match rebuild_sorted_to_spare(
                                    disk,
                                    f,
                                    !checkpointing,
                                    level as u8,
                                    src,
                                    cfg.level_buffer_pages,
                                ) {
                                    Ok(spare) => {
                                        stats.quarantined_levels += 1;
                                        Some(spare)
                                    }
                                    Err(e2) => {
                                        *err = Some(JoinError::new("sort", e2));
                                        None
                                    }
                                }
                            }
                            Err(e) => {
                                if !checkpointing {
                                    disk.delete(f);
                                }
                                *err = Some(JoinError::new("sort", e));
                                None
                            }
                        }
                    })
                })
                .collect()
        };
        let sorted_r = sort_levels(
            &unsorted_r,
            LevelSource::for_rel(cfg, r, s, 0),
            &mut stats,
            &mut sort_err,
        );
        let sorted_s = sort_levels(
            &unsorted_s,
            LevelSource::for_rel(cfg, r, s, 1),
            &mut stats,
            &mut sort_err,
        );
        stats.io_sort = disk.stats().delta(&io1);
        stats.cpu_sort = t1.elapsed().as_secs_f64();
        if let Some(e) = sort_err {
            // Half-done sorted files are orphans either way; under a
            // checkpoint the unsorted files stay (the `Partition` manifest
            // references them; resume redoes the sort).
            for f in sorted_r.iter().chain(sorted_s.iter()).flatten() {
                disk.delete(*f);
            }
            return Err(e);
        }
        // Publish the `Join` manifest (journal + results + sorted files):
        // from here on per-partition commits are durable, and the unsorted
        // level files are no longer needed by any resume.
        if let Some(c) = cp.as_deref_mut() {
            let c0 = disk.stats();
            let res = c.commit_join_phase(0, &pack_levels(&sorted_r), &pack_levels(&sorted_s));
            stats.io_checkpoint = stats.io_checkpoint.plus(&disk.stats().delta(&c0));
            res?;
            for f in unsorted_r.iter().chain(unsorted_s.iter()).flatten() {
                disk.delete(*f);
            }
        }
        (sorted_r, sorted_s)
    };
    ctl.span(
        "sort",
        sim_at(&io1, stats.cpu_partition),
        sim_at(&disk.stats(), stats.cpu_partition + stats.cpu_sort),
    );

    // A resumed join phase folds the journaled counters in, so its reported
    // totals match an uninterrupted run's (the committed partitions' pairs
    // were already emitted by the crashed process after each commit).
    if resume_join {
        if let Some(c) = cp.as_deref() {
            for e in c.committed() {
                stats.candidates += e.candidates;
                stats.results += e.results;
                stats.duplicates += e.duplicates;
            }
        }
    }

    // --- Phase 3: synchronized scan ------------------------------------------
    // On-CPU compute clock (wall fallback): keeps the sequential and
    // parallel join-phase measurements on the same basis, so speedup ratios
    // are meaningful even on an oversubscribed host.
    let t2 = parallel::WorkClock::start();
    let io2 = disk.stats();
    let ckpt2 = stats.io_checkpoint;
    let threads = parallel::resolve_threads(cfg.threads);
    // Simulated time so far — what the deadline is charged against at every
    // discovered partition (S³J scan workers do no I/O, so the
    // coordinator's meter is the whole story).
    let cpu_base = stats.cpu_partition + stats.cpu_sort;
    let elapsed_now = || disk.io_seconds() + model.scaled_cpu(cpu_base + t2.seconds());
    // Earliest result on the pipelined clock: (CPU position, this run's I/O
    // meter) at the first delivered pair, minimized over emitting tasks.
    // Run-relative (`delta(&io0)`) so a reused disk's earlier charges never
    // leak into the probe.
    let mut first_pos: Option<(f64, IoStats)> = None;
    let scan_res: Result<(), JoinError> = if matches!(cfg.scan, ScanMode::HeapMerge) && threads > 1
    {
        // `cpu_join` is assembled inside: the coordinator's discovery scan
        // plus the max-over-workers on-CPU join time — the phase cost on
        // dedicated cores, which the pool barrier realises as wall time on
        // an unloaded multicore host.
        heap_scan_parallel(
            disk,
            cfg,
            threads,
            r,
            s,
            &sorted_r,
            &sorted_s,
            &mut stats,
            ctl,
            cp.as_deref_mut(),
            &io0,
            &mut first_pos,
            &elapsed_now,
            out,
        )
    } else {
        // Sequential scans emit in discovery order against a monotone meter,
        // so the first delivery is already the minimum; reading the live
        // clocks at that moment matches the parallel probe exactly on the
        // I/O axis (discovery I/O through the emitting partition, plus its
        // commit when checkpointed).
        let mut wrapped_out = |a: RecordId, b: RecordId| {
            if first_pos.is_none() {
                first_pos = Some((cpu_base + t2.seconds(), disk.stats().delta(&io0)));
            }
            out(a, b);
        };
        let out = &mut wrapped_out as &mut dyn FnMut(RecordId, RecordId);
        let mut ctx = JoinCtx {
            cfg,
            internal: cfg.internal.create(),
            candidates: 0,
            results: 0,
            duplicates: 0,
        };
        let res = match cfg.scan {
            ScanMode::HeapMerge => heap_scan(
                disk,
                cfg,
                r,
                s,
                &sorted_r,
                &sorted_s,
                &mut ctx,
                &mut stats,
                ctl,
                cp.as_deref_mut(),
                &elapsed_now,
                out,
            ),
            ScanMode::LevelPairs => pair_scan(
                disk,
                cfg,
                r,
                s,
                &sorted_r,
                &sorted_s,
                &mut ctx,
                &mut stats,
                ctl,
                &elapsed_now,
                out,
            ),
        };
        stats.candidates += ctx.candidates;
        stats.results += ctx.results;
        stats.duplicates += ctx.duplicates;
        stats.join_counters = ctx.internal.counters();
        stats.cpu_join = t2.seconds();
        res
    };
    // Join-phase I/O excludes what the checkpoint layer did mid-scan (those
    // commits are accounted under `io_checkpoint`).
    stats.io_join = disk
        .stats()
        .delta(&io2)
        .delta(&stats.io_checkpoint.delta(&ckpt2));
    ctl.span(
        "scan",
        sim_at(&io2, cpu_base),
        sim_at(&disk.stats(), cpu_base + stats.cpu_join),
    );

    // An interrupted durable run must keep the sorted level files — the
    // `Join` manifest references them and a resume reads them again;
    // `finish` (or the next recovery scan) reclaims everything.
    if !checkpointing {
        for f in sorted_r.iter().chain(sorted_s.iter()).flatten() {
            disk.delete(*f);
        }
    }
    scan_res?;
    // Publish `Done` and drop the sorted level files; the journal, results
    // and manifest files remain as the run's durable record.
    if let Some(c) = cp.as_deref_mut() {
        let c0 = disk.stats();
        let res = c.finish();
        stats.io_checkpoint = stats.io_checkpoint.plus(&disk.stats().delta(&c0));
        res?;
    }
    stats.first_result_cpu = first_pos.as_ref().map(|p| p.0);
    stats.first_result_io = first_pos.map(|p| p.1);
    // Channel decomposition of this run's I/O: run-relative deltas of the
    // disk's per-channel meters. All S³J I/O happens on the coordinator
    // (scan workers are pure CPU), so no fork folding is needed.
    let ch_end = disk.channel_stats();
    stats.io_shared = ch_end[0].delta(&ch0[0]);
    stats.io_channels = ch_end[1..]
        .iter()
        .zip(ch0[1..].iter())
        .map(|(e, s)| e.delta(s))
        .collect();
    Ok(stats)
}

/// §4.4.3: one pass over all level files, merged by a heap of cursors in
/// pre-order; per relation a stack of the partitions on the current root
/// path. A new partition is joined against the other relation's stack (its
/// cell's ancestors-or-equal), then pushed on its own stack.
///
/// Partitions are numbered in discovery order — the journal's work unit.
/// Under a checkpoint each partition's pairs are buffered, durably flushed,
/// journaled, and only then emitted; a resumed run skips committed
/// partitions (their pairs were emitted by the original process after the
/// commit) while still maintaining the stacks they feed.
#[allow(clippy::too_many_arguments)] // internal scan driver; the args are the scan state
fn heap_scan(
    disk: &SimDisk,
    cfg: &S3jConfig,
    r: &[Kpe],
    s: &[Kpe],
    sorted_r: &[Option<FileId>],
    sorted_s: &[Option<FileId>],
    ctx: &mut JoinCtx<'_>,
    stats: &mut S3jStats,
    ctl: &RunControl,
    mut cp: Option<&mut RunCheckpoint>,
    elapsed: &dyn Fn() -> f64,
    out: &mut dyn FnMut(RecordId, RecordId),
) -> Result<(), JoinError> {
    let to_err = |e: IoError| JoinError::new("scan", e);
    let mut cursors: Vec<Cursor<'_>> = Vec::new();
    for (rel, files) in [(0usize, sorted_r), (1, sorted_s)] {
        for (level, f) in files.iter().enumerate() {
            if let Some(f) = f {
                let src = LevelSource::for_rel(cfg, r, s, rel);
                cursors.push(
                    Cursor::new(disk, *f, level as u8, rel, cfg.io_buffer_pages, src)
                        .map_err(to_err)?,
                );
            }
        }
    }
    let mut heap: BinaryHeap<Reverse<(u64, u8, usize, usize)>> = BinaryHeap::new();
    for (i, c) in cursors.iter().enumerate() {
        if let Some((start, level, rel)) = c.peek_key(cfg.max_level) {
            heap.push(Reverse((start, level, rel, i)));
        }
    }
    let mut stacks: [Vec<Part>; 2] = [Vec::new(), Vec::new()];
    let mut resident = 0usize;
    let mut d: u32 = 0; // discovery index
    while let Some(Reverse((_, _, _, ci))) = heap.pop() {
        // Interruption check at partition granularity; a checkpointed run's
        // committed prefix stays durable and resumable.
        if let Some(e) = ctl.charge("scan", elapsed()) {
            return Err(e);
        }
        let mut part = cursors[ci]
            .take_partition(cfg.curve, cfg.max_level)
            .map_err(to_err)?;
        if let Some((st, lv, rl)) = cursors[ci].peek_key(cfg.max_level) {
            heap.push(Reverse((st, lv, rl, ci)));
        }
        // Unwind both stacks to the root path of the new cell.
        for stack in stacks.iter_mut() {
            while let Some(top) = stack.last() {
                if top.start <= part.start && part.start < top.end {
                    break; // ancestor (or equal): keep
                }
                resident -= top.rects.len() * Kpe::ENCODED_SIZE;
                stack.pop();
            }
        }
        // Join against the other relation's root path. Every stack entry is
        // an ancestor-or-equal cell, so `part` is always the deeper one.
        // Partitions with nothing to join against do no work and are never
        // journaled.
        let committed = cp.as_deref().is_some_and(|c| c.is_committed(d));
        let base = (ctx.candidates, ctx.results, ctx.duplicates);
        let other_stack = &mut stacks[1 - part.rel];
        let has_work = !other_stack.is_empty();
        if !committed && has_work {
            match cp.as_deref_mut() {
                Some(c) => {
                    let mut pairs: Vec<(RecordId, RecordId)> = Vec::new();
                    for q in other_stack.iter_mut() {
                        ctx.join_parts(&mut part, q, &mut |a, b| pairs.push((a, b)));
                    }
                    let deltas = (
                        ctx.candidates - base.0,
                        ctx.results - base.1,
                        ctx.duplicates - base.2,
                    );
                    commit_and_emit(
                        c,
                        disk,
                        &mut stats.io_checkpoint,
                        &mut stats.checkpoint_commits,
                        d,
                        &pairs,
                        deltas,
                        out,
                    )?;
                }
                None => {
                    for q in other_stack.iter_mut() {
                        ctx.join_parts(&mut part, q, out);
                    }
                }
            }
        }
        if ctl.observed() && has_work {
            ctl.event(
                "partition-done",
                elapsed(),
                &[
                    ("partition", u64::from(d)),
                    ("candidates", ctx.candidates - base.0),
                    ("results", ctx.results - base.1),
                    ("duplicates", ctx.duplicates - base.2),
                    ("committed", u64::from(committed || cp.is_some())),
                ],
            );
        }
        resident += part.rects.len() * Kpe::ENCODED_SIZE;
        stats.peak_partition_bytes = stats.peak_partition_bytes.max(resident);
        stacks[part.rel].push(part);
        d += 1;
    }
    stats.quarantined_levels += cursors.iter().filter(|c| c.quarantined).count() as u32;
    Ok(())
}

/// Parallel variant of [`heap_scan`]: the discovery traversal (cursors,
/// heap, root-path stacks) runs unchanged on the coordinator — it is the
/// only I/O — but instead of joining inline, every (new partition, stack
/// entry) pair is queued over `Arc`-shared partitions and workers claim
/// contiguous chunks of the queue. Workers join pristine clones (internal
/// joins reorder rects in place) and buffer their result pairs; the pool
/// re-assembles chunk outputs in discovery order, so
/// the emitted stream is identical to the sequential scan, and the modified
/// RPM (§4.3) keeps the union of task outputs duplicate-free no matter how
/// tasks interleave.
#[allow(clippy::too_many_arguments)] // internal scan driver; the args are the scan state
fn heap_scan_parallel(
    disk: &SimDisk,
    cfg: &S3jConfig,
    threads: usize,
    r: &[Kpe],
    s: &[Kpe],
    sorted_r: &[Option<FileId>],
    sorted_s: &[Option<FileId>],
    stats: &mut S3jStats,
    ctl: &RunControl,
    mut cp: Option<&mut RunCheckpoint>,
    io0: &IoStats,
    first_pos: &mut Option<(f64, IoStats)>,
    elapsed: &dyn Fn() -> f64,
    out: &mut dyn FnMut(RecordId, RecordId),
) -> Result<(), JoinError> {
    use std::sync::Arc;

    let to_err = |e: IoError| JoinError::new("scan", e);
    let cpu_base = stats.cpu_partition + stats.cpu_sort;
    // Scan-phase checkpoint I/O accumulated so far (build/sort publishes):
    // subtracted out when reconstructing the sequential meter position of a
    // mid-scan delivery.
    let ckpt0 = stats.io_checkpoint;
    let t_discover = parallel::WorkClock::start();
    let mut cursors: Vec<Cursor<'_>> = Vec::new();
    for (rel, files) in [(0usize, sorted_r), (1, sorted_s)] {
        for (level, f) in files.iter().enumerate() {
            if let Some(f) = f {
                let src = LevelSource::for_rel(cfg, r, s, rel);
                cursors.push(
                    Cursor::new(disk, *f, level as u8, rel, cfg.io_buffer_pages, src)
                        .map_err(to_err)?,
                );
            }
        }
    }
    let mut heap: BinaryHeap<Reverse<(u64, u8, usize, usize)>> = BinaryHeap::new();
    for (i, c) in cursors.iter().enumerate() {
        if let Some((start, level, rel)) = c.peek_key(cfg.max_level) {
            heap.push(Reverse((start, level, rel, i)));
        }
    }
    let mut stacks: [Vec<Arc<Part>>; 2] = [Vec::new(), Vec::new()];
    let mut resident = 0usize;
    let mut tasks: Vec<(Arc<Part>, Arc<Part>)> = Vec::new();
    // Per task: the run-relative I/O meter right after its partition's
    // discovery read — exactly the sequential scan's meter position when it
    // would join that partition (scan workers do no I/O). Feeds the
    // pipelined first-result probe; kept aligned with `tasks`.
    let mut snaps: Vec<IoStats> = Vec::new();
    // The pair ranges of the task list that belong to each uncommitted
    // discovered partition (checkpointed runs only — see `units` below).
    let mut partition_ranges: Vec<(u32, std::ops::Range<usize>)> = Vec::new();
    let mut d: u32 = 0; // discovery index, identical to the sequential scan
    while let Some(Reverse((_, _, _, ci))) = heap.pop() {
        if let Some(e) = ctl.charge("scan", elapsed()) {
            return Err(e);
        }
        let part = cursors[ci]
            .take_partition(cfg.curve, cfg.max_level)
            .map_err(to_err)?;
        if let Some((st, lv, rl)) = cursors[ci].peek_key(cfg.max_level) {
            heap.push(Reverse((st, lv, rl, ci)));
        }
        for stack in stacks.iter_mut() {
            while let Some(top) = stack.last() {
                if top.start <= part.start && part.start < top.end {
                    break; // ancestor (or equal): keep
                }
                resident -= top.rects.len() * Kpe::ENCODED_SIZE;
                stack.pop();
            }
        }
        let part = Arc::new(part);
        let start = tasks.len();
        let snap = disk.stats().delta(io0);
        for q in stacks[1 - part.rel].iter() {
            tasks.push((Arc::clone(&part), Arc::clone(q)));
            snaps.push(snap);
        }
        if tasks.len() > start {
            if cp.as_deref().is_some_and(|c| c.is_committed(d)) {
                // Resumed run: the crashed process already emitted this
                // partition's pairs after its commit — skip the work.
                tasks.truncate(start);
                snaps.truncate(start);
            } else {
                partition_ranges.push((d, start..tasks.len()));
            }
        }
        resident += part.rects.len() * Kpe::ENCODED_SIZE;
        stats.peak_partition_bytes = stats.peak_partition_bytes.max(resident);
        stacks[part.rel].push(part);
        d += 1;
    }
    drop(stacks);
    stats.quarantined_levels += cursors.iter().filter(|c| c.quarantined).count() as u32;
    let discover_secs = t_discover.seconds();

    // S³J partition pairs are tiny (often a handful of rects), so a task
    // per pair would drown in per-task overhead. Workers instead claim
    // contiguous *chunks* of the discovery-ordered pair list; chunk outputs
    // re-assemble in chunk order, which is discovery order. Under a
    // checkpoint the unit is one discovered partition's pair range instead
    // — the span a journal record covers — so commits align with units.
    let units: Vec<(u32, std::ops::Range<usize>)> = if cp.is_some() {
        partition_ranges
    } else {
        let chunk = tasks.len().div_ceil(threads * 16).max(1);
        (0..tasks.len().div_ceil(chunk))
            .map(|c| (0, c * chunk..tasks.len().min((c + 1) * chunk)))
            .collect()
    };
    let model = stats.model;
    let mut first_err: Option<JoinError> = None;
    let io_ckpt = &mut stats.io_checkpoint;
    let ckpt_commits = &mut stats.checkpoint_commits;
    let units_ref = &units;
    let snaps_ref = &snaps;
    // Keep whichever candidate sits earliest on the pipelined clock.
    let fold_first = |slot: &mut Option<(f64, IoStats)>, cand: (f64, IoStats)| {
        let pos = |p: &(f64, IoStats)| model.scaled_cpu(p.0) + model.seconds(&p.1);
        if slot.as_ref().is_none_or(|cur| pos(&cand) < pos(cur)) {
            *slot = Some(cand);
        }
    };
    let workers = parallel::run_ordered_with(
        threads,
        units.len(),
        Some(&ctl.cancel),
        |_w| {
            (
                JoinCtx {
                    cfg,
                    internal: cfg.internal.create(),
                    candidates: 0,
                    results: 0,
                    duplicates: 0,
                },
                0f64,
                parallel::WorkClock::start(),
                // Scratch rect buffers, reused across tasks: internal joins
                // reorder rects in place, so each task needs private copies,
                // but per-task Vec allocations would serialise the pool on
                // the allocator lock.
                (Vec::new(), Vec::new()),
            )
        },
        |(ctx, cpu, work_clock, scratch), u| {
            let c0 = work_clock.seconds();
            let base = (ctx.candidates, ctx.results, ctx.duplicates);
            let mut pairs = Vec::new();
            // (global task index, own on-CPU seconds) at this unit's first
            // produced pair — the unit's contribution to the pipelined
            // first-result probe.
            let mut first: Option<(usize, f64)> = None;
            let range = units_ref[u].1.clone();
            for (i, (deeper, other)) in tasks[range.clone()].iter().enumerate() {
                let mut deeper = deeper.copy_into(std::mem::take(&mut scratch.0));
                let mut other = other.copy_into(std::mem::take(&mut scratch.1));
                ctx.join_parts(&mut deeper, &mut other, &mut |a, b| {
                    if first.is_none() {
                        first = Some((range.start + i, work_clock.seconds() - c0));
                    }
                    pairs.push((a, b));
                });
                scratch.0 = deeper.rects;
                scratch.1 = other.rects;
            }
            *cpu += work_clock.seconds() - c0;
            let deltas = (
                ctx.candidates - base.0,
                ctx.results - base.1,
                ctx.duplicates - base.2,
            );
            (pairs, deltas, first)
        },
        |u, (pairs, deltas, first)| {
            // Deadline at unit granularity on the coordinator (workers do
            // no I/O, so `elapsed` sees the whole simulated-time story).
            if first_err.is_none() {
                first_err = ctl.charge("scan", elapsed());
            }
            if ctl.observed() && first_err.is_none() {
                ctl.event(
                    "partition-done",
                    elapsed(),
                    &[
                        ("partition", u64::from(units_ref[u].0)),
                        ("unit", u as u64),
                        ("candidates", deltas.0),
                        ("results", deltas.1),
                        ("duplicates", deltas.2),
                        ("committed", u64::from(cp.is_some())),
                    ],
                );
            }
            if first_err.is_none() {
                match cp.as_deref_mut() {
                    Some(c) => {
                        // Reconstruct the sequential meter position of this
                        // unit's first delivered pair: discovery I/O through
                        // its partition, scan commits of earlier units, and
                        // the live delta of its own in-flight commit.
                        let prior_commits = io_ckpt.delta(&ckpt0);
                        let io_c0 = disk.stats();
                        let mut task_first: Option<(f64, IoStats)> = None;
                        let res = {
                            let mut track = |a: RecordId, b: RecordId| {
                                if task_first.is_none() {
                                    if let Some((ti, fc)) = first {
                                        task_first = Some((
                                            cpu_base + discover_secs + fc,
                                            snaps_ref[ti]
                                                .plus(&prior_commits)
                                                .plus(&disk.stats().delta(&io_c0)),
                                        ));
                                    }
                                }
                                out(a, b);
                            };
                            commit_and_emit(
                                c,
                                disk,
                                io_ckpt,
                                ckpt_commits,
                                units_ref[u].0,
                                &pairs,
                                deltas,
                                &mut track,
                            )
                        };
                        if let Err(e) = res {
                            first_err = Some(e);
                        }
                        if let Some(f) = task_first {
                            fold_first(first_pos, f);
                        }
                    }
                    None => {
                        if let Some((ti, fc)) = first {
                            fold_first(
                                first_pos,
                                (cpu_base + discover_secs + fc, snaps_ref[ti]),
                            );
                        }
                        for (a, b) in pairs {
                            out(a, b);
                        }
                    }
                }
            }
            if first_err.is_some() && cp.is_some() {
                // A checkpointed run that hit a terminal error (crash
                // injection, commit failure, deadline) is dead: stop the
                // workers from claiming further partitions, like the
                // process exit they simulate. Committed state stays.
                ctl.cancel.cancel();
            }
        },
    );
    for (ctx, cpu, _clock, _scratch) in workers {
        // Per-worker duplicate accounting: every candidate was either
        // reported or suppressed by the modified reference-point test
        // (duplicates are 0 in the unreplicated original), regardless of
        // how chunks were interleaved across workers.
        debug_assert_eq!(
            ctx.candidates,
            ctx.results + ctx.duplicates,
            "per-worker S3J accounting broken"
        );
        let mut partial = S3jStats::partial(model);
        partial.candidates = ctx.candidates;
        partial.results = ctx.results;
        partial.duplicates = ctx.duplicates;
        partial.join_counters = ctx.internal.counters();
        partial.cpu_join = cpu;
        stats.merge(&partial);
    }
    // Coordinator discovery (the phase's only non-checkpoint I/O and heap
    // work) happens before the workers start; it adds to whichever worker
    // was slowest. Without a checkpoint nothing below discovery can fail:
    // the worker tasks are pure CPU over in-memory partitions.
    stats.cpu_join += discover_secs;
    if ctl.observed() {
        ctl.event(
            "pool-drained",
            elapsed(),
            &[
                ("units", units.len() as u64),
                ("tasks", tasks.len() as u64),
                ("threads", threads as u64),
            ],
        );
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Ablation baseline for §4.4.3: a separate merge scan per pair of level
/// files. Produces identical results; re-reads each level file once per
/// opposite occupied level.
#[allow(clippy::too_many_arguments)] // internal scan driver; the args are the scan state
fn pair_scan(
    disk: &SimDisk,
    cfg: &S3jConfig,
    r: &[Kpe],
    s: &[Kpe],
    sorted_r: &[Option<FileId>],
    sorted_s: &[Option<FileId>],
    ctx: &mut JoinCtx<'_>,
    stats: &mut S3jStats,
    ctl: &RunControl,
    elapsed: &dyn Fn() -> f64,
    out: &mut dyn FnMut(RecordId, RecordId),
) -> Result<(), JoinError> {
    let to_err = |e: IoError| JoinError::new("scan", e);
    // The next whole partition of `c`, or `None` at end of file.
    fn next_part(c: &mut Cursor<'_>, curve: Curve, max_level: u8) -> Result<Option<Part>, IoError> {
        if c.pending.is_some() {
            Ok(Some(c.take_partition(curve, max_level)?))
        } else {
            Ok(None)
        }
    }
    for (lr, fr) in sorted_r.iter().enumerate() {
        let Some(fr) = fr else { continue };
        for (ls, fs) in sorted_s.iter().enumerate() {
            let Some(fs) = fs else { continue };
            // Interruption check once per level-file pair: the ablation
            // scan has no partition-discovery loop on the coordinator to
            // hook into, so cancellation is coarser here.
            if let Some(e) = ctl.charge("scan", elapsed()) {
                return Err(e);
            }
            let src_r = LevelSource::for_rel(cfg, r, s, 0);
            let src_s = LevelSource::for_rel(cfg, r, s, 1);
            let cr = Cursor::new(disk, *fr, lr as u8, 0, cfg.io_buffer_pages, src_r)
                .map_err(to_err)?;
            let cs = Cursor::new(disk, *fs, ls as u8, 1, cfg.io_buffer_pages, src_s)
                .map_err(to_err)?;
            // Merge: `a` is the coarser-or-equal side, `b` the deeper side.
            let (mut a, mut b) = if lr <= ls { (cr, cs) } else { (cs, cr) };
            let mut pa = next_part(&mut a, cfg.curve, cfg.max_level).map_err(to_err)?;
            let mut pb = next_part(&mut b, cfg.curve, cfg.max_level).map_err(to_err)?;
            while let (Some(ca), Some(cb)) = (&mut pa, &mut pb) {
                if ca.start <= cb.start && cb.start < ca.end {
                    // `ca` covers `cb`: join (cb is the deeper partition).
                    stats.peak_partition_bytes = stats.peak_partition_bytes.max(
                        (ca.rects.len() + cb.rects.len()) * Kpe::ENCODED_SIZE,
                    );
                    ctx.join_parts(cb, ca, out);
                    pb = next_part(&mut b, cfg.curve, cfg.max_level).map_err(to_err)?;
                } else if ca.end <= cb.start {
                    pa = next_part(&mut a, cfg.curve, cfg.max_level).map_err(to_err)?;
                } else {
                    pb = next_part(&mut b, cfg.curve, cfg.max_level).map_err(to_err)?;
                }
            }
            // The ablation re-reads each level file once per opposite level,
            // so one damaged file can quarantine once per pairing — an
            // honest per-event count.
            stats.quarantined_levels +=
                [&a, &b].iter().filter(|c| c.quarantined).count() as u32;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{scale, LineNetwork};

    fn brute(r: &[Kpe], s: &[Kpe]) -> Vec<(u64, u64)> {
        let mut v = Vec::new();
        for a in r {
            for b in s {
                if a.rect.intersects(&b.rect) {
                    v.push((a.id.0, b.id.0));
                }
            }
        }
        v.sort_unstable();
        v
    }

    fn run(r: &[Kpe], s: &[Kpe], cfg: &S3jConfig) -> (Vec<(u64, u64)>, S3jStats) {
        let disk = SimDisk::with_default_model();
        let mut got = Vec::new();
        let stats = s3j_join(&disk, r, s, cfg, &mut |a, b| got.push((a.0, b.0)));
        got.sort_unstable();
        (got, stats)
    }

    fn tiger_pair(n: usize) -> (Vec<Kpe>, Vec<Kpe>) {
        let r = LineNetwork {
            count: n,
            coverage: 0.22,
            segments_per_line: 20,
            seed: 301,
        }
        .generate();
        let s = LineNetwork {
            count: n + n / 7,
            coverage: 0.03,
            segments_per_line: 10,
            seed: 302,
        }
        .generate();
        (r, s)
    }

    #[test]
    fn original_s3j_matches_brute_force() {
        let (r, s) = tiger_pair(2500);
        let cfg = S3jConfig {
            replicate: false,
            mem_bytes: 64 * 1024,
            max_level: 10,
            ..Default::default()
        };
        let (got, stats) = run(&r, &s, &cfg);
        assert_eq!(got, brute(&r, &s));
        assert_eq!(stats.duplicates, 0, "no replication, no duplicates");
        assert_eq!(stats.copies_r as usize, r.len());
    }

    #[test]
    fn replicated_s3j_matches_brute_force_and_dedups() {
        let (r0, s0) = tiger_pair(2000);
        // Scale up so rects straddle cells and replication actually happens.
        let (r, s) = (scale(&r0, 3.0), scale(&s0, 3.0));
        let cfg = S3jConfig {
            replicate: true,
            mem_bytes: 64 * 1024,
            max_level: 10,
            ..Default::default()
        };
        let (got, stats) = run(&r, &s, &cfg);
        assert_eq!(got, brute(&r, &s));
        assert!(stats.copies_r as usize > r.len(), "expected replication");
        assert!(stats.duplicates > 0, "expected suppressed duplicates");
        assert!(stats.replication_rate(r.len() + s.len()) <= 4.0);
    }

    #[test]
    fn persistent_corruption_quarantines_levels_and_stays_exact() {
        use storage::{FaultPlan, RetryPolicy};
        let (r0, s0) = tiger_pair(1200);
        let (r, s) = (scale(&r0, 3.0), scale(&s0, 3.0));
        for replicate in [false, true] {
            let cfg = S3jConfig {
                replicate,
                mem_bytes: 48 * 1024,
                max_level: 9,
                ..Default::default()
            };
            let clean = run(&r, &s, &cfg).0;
            // Persistent damage is a pure function of (seed, channel, page):
            // hunt seeds until one lands on a level file (unsorted — the
            // sort-phase rebuild — or sorted — the scan-phase cursor
            // replay); every seed, hit or miss, must still produce the
            // exact result set.
            let mut hit = false;
            for seed in 0..48u64 {
                let disk = SimDisk::with_default_model().with_faults(
                    FaultPlan::persistent(seed).with_persistent_rate(0.03),
                    RetryPolicy::default(),
                );
                let mut got = Vec::new();
                let stats = try_s3j_join(&disk, &r, &s, &cfg, &mut |a, b| got.push((a.0, b.0)))
                    .expect("persistent damage must quarantine, not kill the join");
                got.sort_unstable();
                assert_eq!(got, clean, "seed {seed} replicate {replicate} diverged");
                if stats.quarantined_levels > 0 {
                    hit = true;
                    break;
                }
            }
            assert!(hit, "no seed damaged a level file (replicate {replicate})");
        }
    }

    #[test]
    fn level_quarantine_is_thread_invariant() {
        use storage::{FaultPlan, RetryPolicy};
        let (r0, s0) = tiger_pair(1200);
        let (r, s) = (scale(&r0, 3.0), scale(&s0, 3.0));
        // Damage keys on (seed, channel, page) — not on who reads — and the
        // discovery scan is coordinator-only at every thread count, so the
        // sequential and parallel scans quarantine the same levels and emit
        // the same results.
        let run_t = |threads: usize, seed: u64| {
            let disk = SimDisk::with_default_model().with_faults(
                FaultPlan::persistent(seed).with_persistent_rate(0.05),
                RetryPolicy::default(),
            );
            let cfg = S3jConfig {
                mem_bytes: 48 * 1024,
                max_level: 9,
                threads,
                ..Default::default()
            };
            let mut got = Vec::new();
            let stats = try_s3j_join(&disk, &r, &s, &cfg, &mut |a, b| got.push((a.0, b.0)))
                .expect("quarantine covers persistent damage");
            got.sort_unstable();
            (got, stats)
        };
        for seed in [3u64, 11, 29] {
            let (got1, st1) = run_t(1, seed);
            let (got4, st4) = run_t(4, seed);
            assert_eq!(got1, got4, "seed {seed}");
            assert_eq!(st1.quarantined_levels, st4.quarantined_levels, "seed {seed}");
        }
    }

    #[test]
    fn rebuilt_level_matches_what_the_build_wrote() {
        use crate::levels::rebuild_level_sorted;
        use storage::read_all;
        let (r0, _) = tiger_pair(600);
        let r = scale(&r0, 3.0);
        for (replicate, shift) in [(false, 0u8), (true, 0), (true, 1)] {
            let disk = SimDisk::with_default_model();
            let lf = LevelFiles::build(&disk, &r, 9, Curve::Peano, replicate, shift, 1);
            for level in lf.occupied_levels() {
                let mut on_disk: Vec<LevelRecord> =
                    read_all(&disk, lf.files[level as usize].unwrap(), 1);
                on_disk.sort_by_key(|rec| rec.code);
                let rebuilt =
                    rebuild_level_sorted(&r, level, 9, Curve::Peano, replicate, shift);
                assert_eq!(
                    rebuilt, on_disk,
                    "level {level} replicate {replicate} shift {shift}"
                );
            }
        }
    }

    #[test]
    fn disk_full_during_build_surfaces_typed_error() {
        use storage::{FaultPlan, IoErrorKind, RetryPolicy};
        let (r, s) = tiger_pair(400);
        let disk = SimDisk::with_default_model().with_faults(
            FaultPlan::none(7).with_disk_budget(0),
            RetryPolicy::default(),
        );
        let err = try_s3j_join(&disk, &r, &s, &S3jConfig::default(), &mut |_, _| {})
            .expect_err("a zero-page volume cannot hold level files");
        assert_eq!(err.phase, "build");
        assert_eq!(err.io().expect("io-layer error").kind, IoErrorKind::DiskFull);
        assert_eq!(disk.pages_in_use(), 0, "failed build leaked files");
    }

    #[test]
    fn heap_and_pair_scans_agree() {
        let (r, s) = tiger_pair(1500);
        for replicate in [false, true] {
            let base = S3jConfig {
                replicate,
                mem_bytes: 48 * 1024,
                max_level: 9,
                ..Default::default()
            };
            let (heap, hs) = run(&r, &s, &base);
            let (pairs, ps) = run(
                &r,
                &s,
                &S3jConfig {
                    scan: ScanMode::LevelPairs,
                    ..base
                },
            );
            assert_eq!(heap, pairs, "replicate={replicate}");
            assert_eq!(hs.results, ps.results);
            // The naive scan re-reads level files: strictly more join I/O.
            assert!(
                ps.io_join.pages_read >= hs.io_join.pages_read,
                "pair-scan should not read less"
            );
        }
    }

    #[test]
    fn all_internal_algorithms_agree() {
        let (r, s) = tiger_pair(1500);
        let mut reference: Option<Vec<(u64, u64)>> = None;
        for internal in InternalAlgo::ALL {
            let cfg = S3jConfig {
                internal,
                mem_bytes: 48 * 1024,
                max_level: 9,
                ..Default::default()
            };
            let (got, _) = run(&r, &s, &cfg);
            match &reference {
                None => reference = Some(got),
                Some(want) => assert_eq!(&got, want, "{internal} diverges"),
            }
        }
    }

    #[test]
    fn hilbert_and_peano_curves_agree() {
        let (r, s) = tiger_pair(1200);
        let base = S3jConfig {
            mem_bytes: 48 * 1024,
            max_level: 9,
            ..Default::default()
        };
        let (peano, pstats) = run(&r, &s, &base);
        let (hilbert, hstats) = run(
            &r,
            &s,
            &S3jConfig {
                curve: Curve::Hilbert,
                ..base
            },
        );
        assert_eq!(peano, hilbert);
        // §4.4.2: curve choice affects neither I/O nor intersection tests.
        assert_eq!(pstats.io_total(), hstats.io_total());
        assert_eq!(pstats.join_counters.tests, hstats.join_counters.tests);
    }

    #[test]
    fn replication_cuts_intersection_tests_on_straddler_heavy_data() {
        // The motivating pathology (§4.2–4.3): small rects straddling grid
        // lines land at coarse levels without replication and get tested
        // against everything.
        let (r0, s0) = tiger_pair(3000);
        let (r, s) = (scale(&r0, 2.0), scale(&s0, 2.0));
        let base = S3jConfig {
            mem_bytes: 64 * 1024,
            max_level: 10,
            ..Default::default()
        };
        let (res_o, orig) = run(&r, &s, &S3jConfig { replicate: false, ..base });
        let (res_r, repl) = run(&r, &s, &S3jConfig { replicate: true, ..base });
        assert_eq!(res_o, res_r);
        assert!(
            repl.join_counters.tests * 2 < orig.join_counters.tests,
            "replicated {} tests vs original {}",
            repl.join_counters.tests,
            orig.join_counters.tests
        );
    }

    #[test]
    fn self_join_consistent() {
        let (r, _) = tiger_pair(1200);
        let cfg = S3jConfig {
            mem_bytes: 48 * 1024,
            max_level: 9,
            ..Default::default()
        };
        let (got, _) = run(&r, &r, &cfg);
        assert_eq!(got, brute(&r, &r));
    }

    #[test]
    fn empty_inputs() {
        let (r, _) = tiger_pair(200);
        let cfg = S3jConfig::default();
        let (got, stats) = run(&r, &[], &cfg);
        assert!(got.is_empty());
        assert_eq!(stats.results, 0);
        let (got, _) = run(&[], &[], &cfg);
        assert!(got.is_empty());
    }

    #[test]
    fn stats_io_decomposition_adds_up() {
        let (r, s) = tiger_pair(1000);
        let disk = SimDisk::with_default_model();
        let stats = s3j_join(&disk, &r, &s, &S3jConfig::default(), &mut |_, _| {});
        assert_eq!(stats.io_total(), disk.stats());
        assert!(stats.total_seconds() > 0.0);
        assert!(stats.peak_partition_bytes > 0);
    }

    #[test]
    fn channels_decompose_io_and_buy_simulated_time() {
        let (r, s) = tiger_pair(1000);
        // cpu_slowdown 0 isolates the deterministic I/O clock.
        let run_ch = |channels: usize, threads: usize| {
            let disk = SimDisk::new(DiskModel {
                channels,
                cpu_slowdown: 0.0,
                ..Default::default()
            });
            let cfg = S3jConfig {
                mem_bytes: 48 * 1024,
                max_level: 9,
                threads,
                ..Default::default()
            };
            let mut got = Vec::new();
            let stats = s3j_join(&disk, &r, &s, &cfg, &mut |a, b| got.push((a.0, b.0)));
            got.sort_unstable();
            (got, stats)
        };
        let (res1, st1) = run_ch(1, 1);
        let (res4, st4) = run_ch(4, 1);
        let (res4t, st4t) = run_ch(4, 4);
        // Results and counters are channel- and thread-invariant.
        assert_eq!(res1, res4);
        assert_eq!(res4, res4t);
        assert_eq!(st1.io_total(), st4.io_total());
        assert_eq!(st4.io_total(), st4t.io_total());
        // The channel meters are an exact decomposition of the total.
        assert_eq!(st1.io_channels.len(), 1);
        assert_eq!(st4.io_channels.len(), 4);
        for st in [&st1, &st4, &st4t] {
            let mut sum = st.io_shared;
            for c in &st.io_channels {
                sum = sum.plus(c);
            }
            assert_eq!(sum, st.io_total());
        }
        // One channel reduces bit-exactly to the serial clock; four spread
        // the level files across channels and strictly beat it.
        assert_eq!(st1.total_seconds(), st1.scaled_cpu_seconds() + st1.io_seconds());
        assert!(
            st4.io_channels.iter().filter(|c| c.pages_read > 0).count() > 1,
            "level files should land on several channels"
        );
        assert!(
            st4.total_seconds() < st1.total_seconds(),
            "channels=4 ({}) should strictly beat channels=1 ({})",
            st4.total_seconds(),
            st1.total_seconds()
        );
        assert_eq!(st4.total_seconds(), st4t.total_seconds());
    }
}

#[cfg(test)]
mod rpm_unit_tests {
    use super::*;
    use geom::{Kpe, Rect, RecordId};

    fn run_cfg(r: &[Kpe], s: &[Kpe], cfg: &S3jConfig) -> (Vec<(u64, u64)>, S3jStats) {
        let disk = SimDisk::with_default_model();
        let mut got = Vec::new();
        let st = s3j_join(&disk, r, s, cfg, &mut |a, b| got.push((a.0, b.0)));
        got.sort_unstable();
        (got, st)
    }

    /// Hand-constructed instance of paper Figure 10: r sits one level above
    /// s; s is replicated into two sibling cells; the pair must be reported
    /// exactly once (from the cell containing the reference point).
    #[test]
    fn figure10_mixed_level_pair_reported_once() {
        // r: a rect needing a level-1 cell (edges just over 1/4).
        let r = Kpe::new(RecordId(1), Rect::new(0.05, 0.05, 0.35, 0.35));
        // s: a small rect straddling the vertical line x = 0.25 (level-2
        // cell boundary), inside r.
        let s = Kpe::new(RecordId(2), Rect::new(0.22, 0.1, 0.28, 0.15));
        let cfg = S3jConfig {
            replicate: true,
            level_shift: 0,
            max_level: 8,
            ..Default::default()
        };
        let (got, st) = run_cfg(&[r], &[s], &cfg);
        assert_eq!(got, vec![(1, 2)]);
        assert_eq!(st.results, 1);
        assert!(
            st.copies_s >= 2,
            "s must be replicated across the boundary (copies = {})",
            st.copies_s
        );
        assert_eq!(st.candidates, st.results + st.duplicates);
        assert!(st.duplicates >= 1, "the duplicate candidate must be caught");
    }

    /// Equal-level pair replicated into the same two cells: both cells see
    /// both rects, only the reference-point cell reports.
    #[test]
    fn equal_level_replicated_pair_reported_once() {
        let r = Kpe::new(RecordId(1), Rect::new(0.22, 0.1, 0.28, 0.14));
        let s = Kpe::new(RecordId(2), Rect::new(0.23, 0.11, 0.29, 0.15));
        let cfg = S3jConfig {
            replicate: true,
            level_shift: 0,
            max_level: 8,
            ..Default::default()
        };
        let (got, st) = run_cfg(&[r], &[s], &cfg);
        assert_eq!(got, vec![(1, 2)]);
        assert!(st.duplicates >= 1);
    }

    /// A pair whose rects only touch at one point on a cell boundary: the
    /// half-open cell convention must still deliver it exactly once.
    #[test]
    fn touching_pair_on_cell_boundary() {
        let r = Kpe::new(RecordId(1), Rect::new(0.20, 0.20, 0.25, 0.25));
        let s = Kpe::new(RecordId(2), Rect::new(0.25, 0.25, 0.30, 0.30));
        for shift in [0u8, 1] {
            let cfg = S3jConfig {
                replicate: true,
                level_shift: shift,
                max_level: 8,
                ..Default::default()
            };
            let (got, _) = run_cfg(&[r], &[s], &cfg);
            assert_eq!(got, vec![(1, 2)], "shift {shift}");
        }
    }
}
