//! Wire protocol: newline-delimited JSON requests and responses.
//!
//! Every request is one JSON object on one line with a `"cmd"` member
//! (`ping` | `register` | `list` | `metrics` | `join` | `shutdown`). Every
//! response is one line too, except `join`, which streams zero or more
//! `{"pairs":[[r,s],...]}` batches followed by exactly one terminal line:
//! `{"done":{...}}` on success or `{"error":{"kind":...,...}}` on refusal,
//! interruption or failure. Error kinds are stable strings clients can
//! dispatch on:
//!
//! | kind              | meaning                                            |
//! |-------------------|----------------------------------------------------|
//! | `overloaded`      | shed by admission control; `retry_after` hint (s)  |
//! | `too_large`       | request exceeds the whole memory budget            |
//! | `cancelled`       | cooperative cancellation (client went away)        |
//! | `deadline`        | simulated-time deadline expired; resumable         |
//! | `crashed`         | injected crash point fired; resumable              |
//! | `io`              | retry budget exhausted on an unrecoverable fault   |
//! | `panicked`        | worker panic, contained to this request            |
//! | `unsupported`     | algorithm can't serve the requested mode           |
//! | `unknown_dataset` | join referenced an unregistered name               |
//! | `bad_request`     | malformed JSON or missing/invalid fields           |
//! | `draining`        | server is shutting down, not accepting joins       |

use spatialjoin::estimate::PlanChoice;
use spatialjoin::{Algorithm, CrashPoint, InternalAlgo};

use crate::json::{escape, Json};

/// Algorithms the service accepts (`exec`-streamable joins; the sweep-line
/// baselines have no partition phase and no cancel support, so they stay
/// CLI-only).
pub const ALGOS: [&str; 6] = [
    "pbsm",
    "pbsm-trie",
    "pbsm-sort",
    "twolayer",
    "s3j",
    "s3j-orig",
];

/// Subset of [`ALGOS`] the durable-run machinery can checkpoint — the only
/// algorithms `reuse`/`crash` requests can serve (PR 4: sort-phase dedup and
/// the S³J ablation scan are refused by the checkpoint layer; the two-layer
/// class scheme, like RPM, dedups online and checkpoints fine).
pub const CHECKPOINTABLE: [&str; 4] = ["pbsm", "pbsm-trie", "twolayer", "s3j"];

/// Dataset generators the `register` command understands (same set and
/// sizing rules as the `sjoin` CLI).
pub const SOURCES: [&str; 5] = ["la_rr", "la_st", "cal_st", "uniform", "clustered"];

/// A validated `join` request.
#[derive(Debug, Clone)]
pub struct JoinRequest {
    pub left: String,
    pub right: String,
    pub algo: String,
    /// Memory budget the join sizes itself from *and* leases from the
    /// arbiter, in bytes.
    pub mem_bytes: usize,
    pub threads: usize,
    pub channels: usize,
    /// Simulated-seconds deadline propagated into the join.
    pub deadline: Option<f64>,
    /// Stop *sending* pairs after this many; the join still completes and
    /// the terminal `done` line carries the full deterministic totals.
    pub limit: Option<u64>,
    /// Serve from the partition-file cache (warming it on first use).
    pub reuse: bool,
    /// Run under seeded recoverable fault injection.
    pub faults: Option<u64>,
    /// Escalate `faults` to the persistent-damage plan: re-reads of a bad
    /// page always fail, exercising the quarantine-recompute paths. Results
    /// must still be bit-identical — that is the claim the soak checks.
    pub faults_persistent: bool,
    /// Inject a crash point (spec string, e.g. `"mid-partition:1"`).
    pub crash: Option<CrashPoint>,
    /// Test hook: panic the worker after emitting this many pairs.
    pub panic_after: Option<u64>,
    /// Test hook: hold the memory lease this many real milliseconds before
    /// joining, to make overload windows deterministic in tests.
    pub hold_ms: Option<u64>,
    /// Attach the reconciled `MetricsReport` to the `done` line.
    pub metrics: bool,
    /// `"plan": "auto"` — let the cost-based planner pick the algorithm
    /// and its knobs over the service's streamable candidate space; any
    /// explicit `algo` is ignored. The chosen plan is reported on the
    /// `done` line.
    pub plan: bool,
    /// Filled by the server once the planner has run: the full chosen
    /// configuration (including knobs the algorithm name alone cannot
    /// carry, like the tile count and buffer split). Never parsed from
    /// the wire; `chosen_plan()` renders the `done`-line description.
    pub chosen_choice: Option<PlanChoice>,
}

impl JoinRequest {
    /// Extracts and validates a join request from a parsed protocol line.
    pub fn from_json(v: &Json) -> Result<JoinRequest, String> {
        let field_str = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("join requires string field {key:?}"))
        };
        let opt_u64 = |key: &str| -> Result<Option<u64>, String> {
            match v.get(key) {
                None | Some(Json::Null) => Ok(None),
                Some(j) => j
                    .as_u64()
                    .map(Some)
                    .ok_or_else(|| format!("field {key:?} must be a non-negative integer")),
            }
        };
        let opt_f64 = |key: &str| -> Result<Option<f64>, String> {
            match v.get(key) {
                None | Some(Json::Null) => Ok(None),
                Some(j) => j
                    .as_f64()
                    .filter(|x| x.is_finite() && *x >= 0.0)
                    .map(Some)
                    .ok_or_else(|| format!("field {key:?} must be a finite number >= 0")),
            }
        };
        let flag = |key: &str| v.get(key).and_then(Json::as_bool).unwrap_or(false);

        let algo = match v.get("algo").and_then(Json::as_str) {
            None => "pbsm".to_owned(),
            Some(a) if ALGOS.contains(&a) => a.to_owned(),
            Some(other) => {
                return Err(format!(
                    "unknown algorithm {other:?} (expected one of {})",
                    ALGOS.join("|")
                ))
            }
        };
        let mem_mb = opt_f64("mem_mb")?.unwrap_or(1.0);
        if mem_mb <= 0.0 || mem_mb > 16_384.0 {
            return Err("mem_mb must be in (0, 16384]".to_owned());
        }
        let plan = match v.get("plan") {
            None | Some(Json::Null) => false,
            Some(j) => match j.as_str() {
                Some("auto") => true,
                Some(other) => {
                    return Err(format!("field \"plan\" must be \"auto\", got {other:?}"))
                }
                None => return Err("field \"plan\" must be the string \"auto\"".to_owned()),
            },
        };
        let crash = match v.get("crash") {
            None | Some(Json::Null) => None,
            Some(j) => {
                let spec = j.as_str().ok_or("field \"crash\" must be a spec string")?;
                Some(CrashPoint::from_spec(spec).ok_or_else(|| {
                    format!(
                        "bad crash spec {spec:?} (after-commit:N | mid-partition:N | mid-rename)"
                    )
                })?)
            }
        };
        let req = JoinRequest {
            left: field_str("left")?,
            right: field_str("right")?,
            mem_bytes: (mem_mb * 1024.0 * 1024.0) as usize,
            threads: opt_u64("threads")?.unwrap_or(1).clamp(1, 64) as usize,
            channels: opt_u64("channels")?.unwrap_or(1).clamp(1, 64) as usize,
            deadline: opt_f64("deadline")?,
            limit: opt_u64("limit")?,
            reuse: flag("reuse"),
            faults: opt_u64("faults")?,
            faults_persistent: flag("faults_persistent"),
            crash,
            panic_after: opt_u64("panic_after")?,
            hold_ms: opt_u64("hold_ms")?,
            metrics: flag("metrics"),
            plan,
            chosen_choice: None,
            algo,
        };
        if req.plan && (req.reuse || req.crash.is_some()) {
            // The reuse cache and crash/resume machinery key on a *fixed*
            // configuration fingerprint; a data-dependent planner pick
            // would silently miss the cache or refuse the resume.
            return Err("plan cannot be combined with reuse/crash".to_owned());
        }
        if (req.reuse || req.crash.is_some()) && !CHECKPOINTABLE.contains(&req.algo.as_str()) {
            return Err(format!(
                "algorithm {:?} cannot serve reuse/crash requests (not checkpointable; use {})",
                req.algo,
                CHECKPOINTABLE.join("|")
            ));
        }
        if req.reuse && (req.crash.is_some() || req.faults.is_some()) {
            return Err("reuse cannot be combined with crash/faults".to_owned());
        }
        if req.faults_persistent && req.faults.is_none() {
            return Err("faults_persistent requires a faults seed".to_owned());
        }
        Ok(req)
    }
}

/// Builds the CLI-convention [`Algorithm`] for a validated name.
pub fn algorithm(name: &str, mem: usize, threads: usize) -> Result<Algorithm, String> {
    let algo = match name {
        "pbsm" => Algorithm::pbsm_rpm(mem),
        "pbsm-trie" => {
            let Algorithm::Pbsm(mut cfg) = Algorithm::pbsm_rpm(mem) else {
                unreachable!()
            };
            cfg.internal = InternalAlgo::PlaneSweepTrie;
            Algorithm::Pbsm(cfg)
        }
        "pbsm-sort" => Algorithm::pbsm_original(mem),
        "twolayer" => Algorithm::two_layer(mem),
        "s3j" => Algorithm::s3j_replicated(mem),
        "s3j-orig" => Algorithm::s3j_original(mem),
        other => return Err(format!("unknown algorithm {other}")),
    };
    Ok(algo.with_threads(threads))
}

/// Generates a dataset's KPEs for `register` (sizing rules shared with the
/// `sjoin` CLI: the synthetic networks size by `scale` directly, the paper's
/// datasets scale their full configuration).
pub fn dataset(source: &str, scale: f64, seed: u64) -> Result<Vec<geom::Kpe>, String> {
    let cfg = match source {
        "la_rr" => datagen::la_rr_config(seed),
        "la_st" => datagen::la_st_config(seed),
        "cal_st" => datagen::cal_st_config(seed),
        "uniform" | "clustered" => datagen::LineNetwork {
            count: (50_000_f64 * scale).max(16.0) as usize,
            coverage: 0.1,
            segments_per_line: if source == "clustered" { 60 } else { 2 },
            seed,
        },
        other => {
            return Err(format!(
                "unknown source {other:?} (expected one of {})",
                SOURCES.join("|")
            ))
        }
    };
    let fraction = if matches!(source, "uniform" | "clustered") {
        1.0
    } else {
        scale
    };
    Ok(datagen::sized(&cfg, fraction).generate_dataset().kpes)
}

/// One-line error response. `extra` members are appended verbatim (already
/// JSON-encoded values, e.g. `("retry_after", "0.05")`).
pub fn error_line(kind: &str, message: &str, extra: &[(&str, String)]) -> String {
    let mut line = format!(
        "{{\"error\":{{\"kind\":\"{}\",\"message\":\"{}\"",
        escape(kind),
        escape(message)
    );
    for (k, v) in extra {
        line.push_str(&format!(",\"{}\":{v}", escape(k)));
    }
    line.push_str("}}");
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str) -> Result<JoinRequest, String> {
        JoinRequest::from_json(&Json::parse(line).expect("test line parses"))
    }

    #[test]
    fn minimal_join_defaults() {
        let r = parse(r#"{"cmd":"join","left":"a","right":"b"}"#).unwrap();
        assert_eq!(r.algo, "pbsm");
        assert_eq!(r.mem_bytes, 1024 * 1024);
        assert_eq!((r.threads, r.channels), (1, 1));
        assert!(!r.reuse && r.crash.is_none() && r.deadline.is_none());
    }

    #[test]
    fn full_join_round_trip() {
        let r = parse(
            r#"{"cmd":"join","left":"a","right":"b","algo":"s3j","mem_mb":2.5,
                "threads":4,"channels":2,"deadline":9.5,"limit":10,
                "faults":7,"panic_after":3,"hold_ms":20,"metrics":true}"#,
        )
        .unwrap();
        assert_eq!(r.algo, "s3j");
        assert_eq!(r.mem_bytes, (2.5 * 1024.0 * 1024.0) as usize);
        assert_eq!((r.threads, r.channels), (4, 2));
        assert_eq!(r.deadline, Some(9.5));
        assert_eq!(r.limit, Some(10));
        assert_eq!((r.faults, r.panic_after, r.hold_ms), (Some(7), Some(3), Some(20)));
        assert!(r.metrics);
    }

    #[test]
    fn rejects_bad_fields() {
        assert!(parse(r#"{"cmd":"join","left":"a"}"#).is_err()); // missing right
        assert!(parse(r#"{"cmd":"join","left":"a","right":"b","algo":"nope"}"#).is_err());
        assert!(parse(r#"{"cmd":"join","left":"a","right":"b","mem_mb":0}"#).is_err());
        assert!(parse(r#"{"cmd":"join","left":"a","right":"b","deadline":-1}"#).is_err());
        assert!(parse(r#"{"cmd":"join","left":"a","right":"b","crash":"mid-nothing"}"#).is_err());
        // Non-checkpointable algorithms cannot serve reuse or crash modes.
        assert!(parse(r#"{"cmd":"join","left":"a","right":"b","algo":"pbsm-sort","reuse":true}"#)
            .is_err());
        assert!(parse(
            r#"{"cmd":"join","left":"a","right":"b","algo":"s3j-orig","crash":"mid-rename"}"#
        )
        .is_err());
        // reuse is exclusive with fault/crash injection.
        assert!(parse(r#"{"cmd":"join","left":"a","right":"b","reuse":true,"faults":1}"#).is_err());
        // the persistent escalation needs a seed to escalate.
        assert!(
            parse(r#"{"cmd":"join","left":"a","right":"b","faults_persistent":true}"#).is_err()
        );
        let r = parse(
            r#"{"cmd":"join","left":"a","right":"b","faults":4,"faults_persistent":true}"#,
        )
        .unwrap();
        assert!(r.faults_persistent && r.faults == Some(4));
    }

    #[test]
    fn plan_field_parses_and_validates() {
        let r = parse(r#"{"cmd":"join","left":"a","right":"b","plan":"auto"}"#).unwrap();
        assert!(r.plan && r.chosen_choice.is_none());
        // Only the literal "auto" is accepted on the wire.
        assert!(parse(r#"{"cmd":"join","left":"a","right":"b","plan":"explain"}"#).is_err());
        assert!(parse(r#"{"cmd":"join","left":"a","right":"b","plan":true}"#).is_err());
        // Planner picks are data-dependent; fingerprint-keyed modes refuse them.
        assert!(parse(r#"{"cmd":"join","left":"a","right":"b","plan":"auto","reuse":true}"#)
            .is_err());
        assert!(parse(
            r#"{"cmd":"join","left":"a","right":"b","plan":"auto","crash":"mid-rename"}"#
        )
        .is_err());
        // Faults compose fine: the planner only picks the configuration.
        assert!(parse(r#"{"cmd":"join","left":"a","right":"b","plan":"auto","faults":3}"#).is_ok());
    }

    #[test]
    fn crash_spec_parses() {
        let r = parse(r#"{"cmd":"join","left":"a","right":"b","crash":"mid-partition:2"}"#).unwrap();
        assert_eq!(r.crash, Some(CrashPoint::MidPartition(2)));
    }

    #[test]
    fn error_line_is_valid_json() {
        let line = error_line(
            "overloaded",
            "memory budget \"exhausted\"",
            &[("retry_after", "0.05".to_owned())],
        );
        let v = Json::parse(&line).unwrap();
        let e = v.get("error").unwrap();
        assert_eq!(e.get("kind").and_then(Json::as_str), Some("overloaded"));
        assert_eq!(e.get("retry_after").and_then(Json::as_f64), Some(0.05));
    }

    #[test]
    fn dataset_sources_generate() {
        for source in ["uniform", "clustered"] {
            let kpes = dataset(source, 0.001, 42).unwrap();
            assert!(kpes.len() >= 16, "{source} too small");
        }
        assert!(dataset("mars_rr", 1.0, 1).is_err());
    }
}
