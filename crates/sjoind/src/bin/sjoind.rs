//! `sjoind` — the concurrent spatial-join service daemon.
//!
//! ```text
//! sjoind [--addr A] [--budget-mb F] [--max-queue N] [--batch N]
//!        [--cache N] [--log PATH]
//! ```
//!
//! Speaks newline-delimited JSON; one object per line, `"cmd"` selects:
//! `ping`, `register {name, source, scale, seed}`, `list`, `metrics`,
//! `join {left, right, algo, mem_mb, ...}` (streams `{"pairs":[...]}`
//! batches then one `{"done":...}` or `{"error":...}` line), `shutdown`
//! (graceful drain). Try it:
//!
//! ```text
//! printf '%s\n' '{"cmd":"register","name":"a","source":"uniform","scale":0.02}' \
//!               '{"cmd":"register","name":"b","source":"clustered","scale":0.02}' \
//!               '{"cmd":"join","left":"a","right":"b","algo":"pbsm"}' \
//!               '{"cmd":"shutdown"}' | nc 127.0.0.1 7878
//! ```

use std::process::ExitCode;

use sjoind::{Server, ServerConfig};

const HELP: &str = "sjoind - concurrent spatial-join service

USAGE: sjoind [OPTIONS]

OPTIONS:
  --addr A        listen address (default 127.0.0.1:7878; port 0 = ephemeral)
  --budget-mb F   total memory budget the arbiter leases out (default 64)
  --max-queue N   joins allowed to queue for memory; more are shed (default 16)
  --batch N       result pairs per streamed protocol line (default 256)
  --cache N       partition-snapshot cache capacity (default 16)
  --log PATH      append a line-oriented server log to PATH
  --help          print this help";

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7878".to_owned();
    let mut cfg = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        let result: Result<(), String> = match arg.as_str() {
            "--help" | "-h" => {
                println!("{HELP}");
                return ExitCode::SUCCESS;
            }
            "--addr" => value("--addr").map(|v| addr = v),
            "--budget-mb" => value("--budget-mb").and_then(|v| {
                let mb: f64 = v.parse().map_err(|e| format!("bad --budget-mb: {e}"))?;
                if !(mb > 0.0 && mb <= 1_048_576.0) {
                    return Err("--budget-mb must be in (0, 1048576]".to_owned());
                }
                cfg.budget_bytes = (mb * 1024.0 * 1024.0) as u64;
                Ok(())
            }),
            "--max-queue" => value("--max-queue").and_then(|v| {
                cfg.max_queue = v.parse().map_err(|e| format!("bad --max-queue: {e}"))?;
                Ok(())
            }),
            "--batch" => value("--batch").and_then(|v| {
                cfg.batch = v.parse().map_err(|e| format!("bad --batch: {e}"))?;
                Ok(())
            }),
            "--cache" => value("--cache").and_then(|v| {
                cfg.cache_capacity = v.parse().map_err(|e| format!("bad --cache: {e}"))?;
                Ok(())
            }),
            "--log" => value("--log").map(|v| cfg.log_path = Some(v.into())),
            other => Err(format!("unknown flag {other} (see --help)")),
        };
        if let Err(e) = result {
            eprintln!("sjoind: {e}");
            return ExitCode::from(2);
        }
    }

    let budget_mb = cfg.budget_bytes as f64 / (1024.0 * 1024.0);
    let max_queue = cfg.max_queue;
    let handle = match Server::new(cfg).start(&addr) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("sjoind: cannot listen on {addr}: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "sjoind listening on {} (budget {budget_mb:.1} MiB, queue depth {max_queue})",
        handle.addr()
    );
    // The accept loop runs until a client sends `shutdown`, then drains.
    handle.join();
    println!("sjoind: drained, bye");
    ExitCode::SUCCESS
}
