//! Service soak driver: seeded multi-client load against an in-process
//! `sjoind`, asserting the invariants the service layer guarantees.
//!
//! ```text
//! soak [--seed N] [--clients K] [--requests M] [--budget-mb F]
//!      [--max-queue N] [--log PATH]
//! ```
//!
//! K client threads replay a seed-derived request mix — random dataset
//! pairs, algorithms and memory sizes, cache reuse, seeded fault injection
//! (half of the fault legs escalated to *persistent* media damage, which the
//! quarantine-recompute paths must absorb bit-identically), tiny deadlines,
//! mid-stream disconnects, one injected crash point and one worker panic —
//! against a deliberately small memory budget so admission queueing and
//! overload shedding both fire. A cache-rot chaos leg then corrupts every
//! cached partition snapshot in place and replays a reuse join: the
//! integrity gate must evict and re-warm, never resume from rotten state.
//! Afterwards the driver asserts:
//!
//! * every completed join is **bit-identical to its solo run** (sorted pair
//!   set and result count against a library-computed baseline);
//! * every refused join carries an allowed typed error kind;
//! * **no leaked leases**: the arbiter reports zero leased bytes, zero
//!   active leases and an empty queue once the clients are done;
//! * **no orphan run dirs**: the service keeps all durable state on
//!   in-memory simulated disks — nothing may appear on the host;
//! * `shutdown` drains cleanly (the server thread exits).
//!
//! Exit 0 on success, 1 with a violation list otherwise. The server log
//! (`--log`) is the CI artifact to grab on failure.

use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};

use rand::prelude::*;
use sjoind::{Client, Json, Server, ServerConfig};
use spatialjoin::{Algorithm, InternalAlgo, SpatialJoin};

const DATASETS: [(&str, &str); 3] = [("a", "uniform"), ("b", "uniform"), ("c", "clustered")];
const ALGOS: [&str; 4] = ["pbsm", "pbsm-trie", "twolayer", "s3j"];
const MEM_MB: [f64; 3] = [0.5, 1.0, 2.0];
const SCALE: f64 = 0.01;

type Baselines = HashMap<(usize, usize, usize, usize), (Vec<(u64, u64)>, u64)>;

struct Args {
    seed: u64,
    clients: usize,
    requests: usize,
    budget_mb: f64,
    max_queue: usize,
    log: std::path::PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 42,
        clients: 4,
        requests: 6,
        budget_mb: 4.0,
        max_queue: 2,
        log: "soak-server.log".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("{arg} requires a value"));
        match arg.as_str() {
            "--seed" => args.seed = value()?.parse().map_err(|e| format!("bad --seed: {e}"))?,
            "--clients" => {
                args.clients = value()?.parse().map_err(|e| format!("bad --clients: {e}"))?
            }
            "--requests" => {
                args.requests = value()?.parse().map_err(|e| format!("bad --requests: {e}"))?
            }
            "--budget-mb" => {
                args.budget_mb = value()?
                    .parse()
                    .map_err(|e| format!("bad --budget-mb: {e}"))?
            }
            "--max-queue" => {
                args.max_queue = value()?.parse().map_err(|e| format!("bad --max-queue: {e}"))?
            }
            "--log" => args.log = value()?.into(),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.clients == 0 || args.requests == 0 {
        return Err("--clients and --requests must be positive".to_owned());
    }
    Ok(args)
}

fn dataset_seed(idx: usize, seed: u64) -> u64 {
    match idx {
        0 => seed,
        1 => seed ^ 0xFFFF,
        _ => seed.wrapping_add(1),
    }
}

fn algorithm(idx: usize, mem_bytes: usize) -> Algorithm {
    match ALGOS[idx] {
        "pbsm" => Algorithm::pbsm_rpm(mem_bytes),
        "pbsm-trie" => {
            let Algorithm::Pbsm(mut cfg) = Algorithm::pbsm_rpm(mem_bytes) else {
                unreachable!()
            };
            cfg.internal = InternalAlgo::PlaneSweepTrie;
            Algorithm::Pbsm(cfg)
        }
        "twolayer" => Algorithm::two_layer(mem_bytes),
        _ => Algorithm::s3j_replicated(mem_bytes),
    }
}

/// Solo-run baselines for every (left, right, algo, mem) cell the request
/// mix can produce — the bit-identity oracle.
fn compute_baselines(seed: u64, kpes: &[Vec<geom::Kpe>; 3]) -> Baselines {
    let _ = seed;
    let mut out = HashMap::new();
    for l in 0..3 {
        for r in 0..3 {
            if l == r {
                continue;
            }
            for a in 0..ALGOS.len() {
                for (m, mem_mb) in MEM_MB.iter().enumerate() {
                    let mem = (mem_mb * 1024.0 * 1024.0) as usize;
                    let run = SpatialJoin::new(algorithm(a, mem))
                        .try_run(&kpes[l], &kpes[r])
                        .expect("baseline join cannot fail");
                    let mut pairs: Vec<(u64, u64)> = run
                        .pairs
                        .iter()
                        .map(|&(x, y)| (x.0, y.0))
                        .collect();
                    pairs.sort_unstable();
                    out.insert((l, r, a, m), (pairs, run.stats.results()));
                }
            }
        }
    }
    out
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("soak: {e}");
            return ExitCode::from(2);
        }
    };

    let cfg = ServerConfig {
        budget_bytes: (args.budget_mb * 1024.0 * 1024.0) as u64,
        max_queue: args.max_queue,
        log_path: Some(args.log.clone()),
        ..ServerConfig::default()
    };
    let handle = match Server::new(cfg).start("127.0.0.1:0") {
        Ok(h) => h,
        Err(e) => {
            eprintln!("soak: cannot start server: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = handle.addr();
    println!("soak: server on {addr}, seed {}, {} clients x {} requests",
        args.seed, args.clients, args.requests);

    // Register the datasets and compute the solo baselines from the same
    // generator configs the server uses.
    let mut control = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("soak: connect failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut kpes: Vec<Vec<geom::Kpe>> = Vec::new();
    for (idx, (name, source)) in DATASETS.iter().enumerate() {
        let seed = dataset_seed(idx, args.seed);
        let line = format!(
            "{{\"cmd\":\"register\",\"name\":\"{name}\",\"source\":\"{source}\",\"scale\":{SCALE},\"seed\":{seed}}}"
        );
        match control.request(&line) {
            Ok(v) if v.get("ok").is_some() => {}
            other => {
                eprintln!("soak: register {name} failed: {other:?}");
                return ExitCode::FAILURE;
            }
        }
        kpes.push(sjoind::proto::dataset(source, SCALE, seed).expect("soak dataset"));
    }
    let kpes: [Vec<geom::Kpe>; 3] = kpes.try_into().expect("three datasets");
    let baselines = Arc::new(compute_baselines(args.seed, &kpes));

    let violations: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let tallies: Arc<Mutex<HashMap<&'static str, u64>>> = Arc::new(Mutex::new(HashMap::new()));

    let mut threads = Vec::new();
    for client_idx in 0..args.clients {
        let baselines = Arc::clone(&baselines);
        let violations = Arc::clone(&violations);
        let tallies = Arc::clone(&tallies);
        let requests = args.requests;
        let seed = args.seed;
        threads.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(1000).wrapping_add(client_idx as u64));
            let complain = |msg: String| {
                violations.lock().expect("violations lock").push(msg);
            };
            let tally = |key: &'static str| {
                *tallies.lock().expect("tallies lock").entry(key).or_insert(0) += 1;
            };
            for req_idx in 0..requests {
                let l = rng.gen_range(0..3usize);
                let r = (l + 1 + rng.gen_range(0..2usize)) % 3;
                let a = rng.gen_range(0..ALGOS.len());
                let m = rng.gen_range(0..MEM_MB.len());
                let reuse = rng.gen_bool(0.3);
                let hold_ms = if rng.gen_bool(0.4) { rng.gen_range(1..25u64) } else { 0 };
                let deadline = rng.gen_bool(0.1);
                let disconnect = rng.gen_bool(0.15);
                // Two deterministic fault legs: one injected crash point and
                // one worker panic, each exactly once per soak.
                let crash = client_idx == 0 && req_idx == 1;
                let panic_hook = client_idx == 1 && req_idx == 1;
                let faults = !crash && !panic_hook && rng.gen_bool(0.2);
                // Half the fault legs carry persistent media damage instead
                // of transient faults: retries cannot cure those, so an OK
                // response proves the quarantine-recompute paths delivered
                // the exact clean result through the service.
                let persistent = faults && rng.gen_bool(0.5);

                let mut line = format!(
                    "{{\"cmd\":\"join\",\"left\":\"{}\",\"right\":\"{}\",\"algo\":\"{}\",\"mem_mb\":{}",
                    DATASETS[l].0, DATASETS[r].0, ALGOS[a], MEM_MB[m]
                );
                if crash {
                    line.push_str(",\"crash\":\"mid-partition:0\"");
                } else if panic_hook {
                    line.push_str(",\"panic_after\":1");
                } else {
                    if reuse {
                        line.push_str(",\"reuse\":true");
                    } else if faults {
                        line.push_str(&format!(",\"faults\":{}", seed.wrapping_add(req_idx as u64)));
                        if persistent {
                            line.push_str(",\"faults_persistent\":true");
                        }
                    }
                    if deadline {
                        line.push_str(",\"deadline\":1e-9");
                    }
                }
                if hold_ms > 0 {
                    line.push_str(&format!(",\"hold_ms\":{hold_ms}"));
                }
                line.push('}');

                let mut client = match Client::connect(addr) {
                    Ok(c) => c,
                    Err(e) => {
                        complain(format!("client {client_idx}: connect failed: {e}"));
                        return;
                    }
                };
                if disconnect {
                    // Send the join and walk away after at most one line —
                    // the server must cancel the worker and release the
                    // lease.
                    let _ = client.send(&line);
                    let _ = client.recv();
                    drop(client);
                    tally("disconnected");
                    continue;
                }
                let resp = match client.join(&line) {
                    Ok(r) => r,
                    Err(e) => {
                        complain(format!(
                            "client {client_idx} req {req_idx}: protocol error: {e} (line {line})"
                        ));
                        continue;
                    }
                };
                match resp.error_kind() {
                    None => {
                        tally("ok");
                        if persistent {
                            tally("persistent_ok");
                        }
                        let Some((expected_pairs, expected_results)) =
                            baselines.get(&(l, r, a, m))
                        else {
                            complain(format!("no baseline for cell {l},{r},{a},{m}"));
                            continue;
                        };
                        if resp.results() != Some(*expected_results) {
                            complain(format!(
                                "client {client_idx} req {req_idx}: results {:?} != solo {expected_results} ({line})",
                                resp.results()
                            ));
                        }
                        let mut got = resp.pairs.clone();
                        got.sort_unstable();
                        if got != *expected_pairs {
                            complain(format!(
                                "client {client_idx} req {req_idx}: pair stream differs from solo run ({} vs {} pairs) ({line})",
                                got.len(),
                                expected_pairs.len()
                            ));
                        }
                    }
                    Some("overloaded") => {
                        let retry_after = resp
                            .error
                            .as_ref()
                            .and_then(|e| e.get("retry_after"))
                            .and_then(Json::as_f64);
                        if !retry_after.is_some_and(|t| t > 0.0) {
                            complain(format!(
                                "client {client_idx} req {req_idx}: overloaded without a positive retry_after"
                            ));
                        }
                        tally("shed");
                    }
                    Some("deadline") if deadline => tally("deadline"),
                    Some("crashed") if crash => {
                        let resumable = resp
                            .error
                            .as_ref()
                            .and_then(|e| e.get("resumable"))
                            .and_then(Json::as_bool);
                        if resumable != Some(true) {
                            complain("crash response not marked resumable".to_owned());
                        }
                        tally("crashed");
                    }
                    Some("panicked") if panic_hook => tally("panicked"),
                    // A crash/panic/deadline leg can still be shed or expire
                    // under load; anything else is a contract violation.
                    Some(other) => complain(format!(
                        "client {client_idx} req {req_idx}: unexpected error kind {other:?} ({line})"
                    )),
                }
            }
        }));
    }
    for t in threads {
        if t.join().is_err() {
            violations
                .lock()
                .expect("violations lock")
                .push("client thread panicked".to_owned());
        }
    }

    // Cache-rot chaos leg: warm one cell's snapshot, probe it (a second
    // reuse join bumps the hit counter iff the slot is Ready rather than
    // Uncacheable), rot every cached snapshot in place, and replay the
    // identical join. The integrity gate must evict the rotten snapshot and
    // re-warm — same bits, one more warm pass — never resume from it.
    {
        let complain = |msg: String| {
            violations.lock().expect("violations lock").push(msg);
        };
        let chaos_cell = (0usize, 1usize, 0usize, 2usize);
        let chaos_line = format!(
            "{{\"cmd\":\"join\",\"left\":\"{}\",\"right\":\"{}\",\"algo\":\"{}\",\"mem_mb\":{},\"reuse\":true}}",
            DATASETS[chaos_cell.0].0, DATASETS[chaos_cell.1].0, ALGOS[chaos_cell.2], MEM_MB[chaos_cell.3]
        );
        let (chaos_pairs, chaos_results) = &baselines[&chaos_cell];
        let hits_before_probe = handle.cache_hits();
        let mut corrupted = 0usize;
        for stage in ["warm", "probe", "rotten"] {
            if stage == "rotten" {
                corrupted = handle.corrupt_cache();
            }
            match control.join(&chaos_line) {
                Ok(resp) if resp.error_kind().is_none() => {
                    let mut got = resp.pairs.clone();
                    got.sort_unstable();
                    if got != *chaos_pairs || resp.results() != Some(*chaos_results) {
                        complain(format!(
                            "cache-rot {stage} leg diverged from the solo run ({chaos_line})"
                        ));
                    }
                }
                other => complain(format!("cache-rot {stage} leg failed: {other:?}")),
            }
        }
        let slot_was_ready = handle.cache_hits() > hits_before_probe;
        if slot_was_ready && corrupted > 0 && handle.cache_integrity_evictions() == 0 {
            complain(
                "rotten snapshots were looked up without a single integrity eviction".to_owned(),
            );
        }
    }

    // Post-load invariants: nothing leaked, nothing orphaned.
    let snap = handle.arbiter().snapshot();
    let mut violations = Arc::try_unwrap(violations)
        .map(|m| m.into_inner().expect("violations lock"))
        .unwrap_or_default();
    if snap.leased_bytes != 0 || snap.active_leases != 0 || snap.queued != 0 {
        violations.push(format!(
            "leaked leases after load: {} bytes in {} leases, {} queued",
            snap.leased_bytes, snap.active_leases, snap.queued
        ));
    }
    if !handle.arbiter().is_idle() {
        violations.push("arbiter not idle after load".to_owned());
    }
    for orphan in ["runs", "sjoind-runs"] {
        if std::path::Path::new(orphan).exists() {
            violations.push(format!("orphan run dir {orphan:?} left on the host"));
        }
    }

    match control.request("{\"cmd\":\"metrics\"}") {
        Ok(v) => {
            let leased = v
                .get("ok")
                .and_then(|o| o.get("arbiter"))
                .and_then(|a| a.get("leased_bytes"))
                .and_then(Json::as_u64);
            if leased != Some(0) {
                violations.push(format!("metrics report {leased:?} leased bytes after load"));
            }
        }
        Err(e) => violations.push(format!("metrics request failed: {e}")),
    }
    match control.request("{\"cmd\":\"shutdown\"}") {
        Ok(v) if v.get("ok").is_some() => {}
        other => violations.push(format!("shutdown not acknowledged: {other:?}")),
    }
    let cache_hits = handle.cache_hits();
    let integrity_evictions = handle.cache_integrity_evictions();
    handle.join(); // must return: drain leaves no stuck sessions

    let tallies = tallies.lock().expect("tallies lock");
    let mut summary: Vec<String> = tallies.iter().map(|(k, v)| format!("{k}={v}")).collect();
    summary.sort();
    println!("soak: {}", summary.join(" "));
    println!(
        "soak: peak leased {} / {} bytes, {} admitted, {} shed, cache hits {}, integrity evictions {}",
        snap.peak_leased_bytes,
        snap.budget_bytes,
        snap.admitted,
        snap.rejected_overloaded,
        cache_hits,
        integrity_evictions
    );
    if violations.is_empty() {
        println!("soak: all invariants held");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("soak: VIOLATION: {v}");
        }
        ExitCode::FAILURE
    }
}
