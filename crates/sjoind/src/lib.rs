//! `sjoind` — a concurrent spatial-join service over the simulation suite.
//!
//! The suite's joins are one-shot CLI runs; this crate turns them into a
//! long-running server that registers paged datasets once and serves
//! concurrent join requests over TCP (newline-delimited JSON, thread per
//! connection — std only, no async runtime). What is genuinely shared
//! between co-tenant requests:
//!
//! * **Memory** — every join leases its budget from one
//!   [`storage::MemoryArbiter`] before starting. Grants are all-or-nothing
//!   (a join admitted under load is configured exactly as solo, so its
//!   output is bit-identical); joins that cannot be granted queue FIFO up
//!   to a bounded depth and are shed with a typed `overloaded` response
//!   (with a `retry_after` hint) beyond it.
//! * **Partition files** — `reuse` joins of the same config+input
//!   fingerprint serve from a cached post-partition disk snapshot by
//!   resuming a durable run past its partition phase
//!   ([`cache::PartitionCache`]).
//!
//! Everything else stays per-request: each join runs on its own simulated
//! disk and clock, panics and injected crashes are contained to their
//! session, and a disconnecting client cancels only its own join. Shutdown
//! drains: in-flight joins finish streaming, new ones are refused.
//!
//! Modules: [`json`] (hand-rolled parser/emitter), [`proto`] (wire
//! protocol), [`cache`], [`server`], [`client`] (reference client used by
//! the tests and the soak driver).

pub mod cache;
pub mod client;
pub mod json;
pub mod proto;
pub mod server;

pub use client::{Client, JoinResponse};
pub use json::Json;
pub use proto::JoinRequest;
pub use server::{Server, ServerConfig, ServerHandle};
