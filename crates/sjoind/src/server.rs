//! The join service: thread-per-connection TCP server with admission
//! control, memory arbitration, fault isolation and graceful drain.
//!
//! Datasets are registered once and joined many times by concurrent
//! clients. Every join leases its memory budget from one shared
//! [`MemoryArbiter`] before it may start; joins that cannot get their grant
//! queue (FIFO) up to a bounded depth and are shed with a typed
//! `overloaded` response beyond it. Because grants are all-or-nothing —
//! never scaled down — a join admitted under load runs with exactly the
//! configuration it asked for, so its result stream is bit-identical to a
//! solo run of the same request. Time stays *simulated* and per-request;
//! only the memory budget and the partition-file cache are truly shared.
//!
//! Fault isolation: each request runs on its own worker thread behind
//! `catch_unwind` (directly here for the durable/fault/reuse paths, inside
//! [`exec::SpatialJoinOp`] for plain streaming). A panicking or crashing
//! request delivers one typed terminal line to its own client, its memory
//! lease is released by `Drop`, and co-tenant joins never observe it. A
//! client that disconnects mid-stream trips the join's [`CancelToken`]; the
//! worker stops at the next partition boundary and the lease is released.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use exec::{JoinOpError, KpeScan, Operator, SpatialJoinOp};
use spatialjoin::{
    Algorithm, CancelToken, CrashPoint, DiskModel, FaultPlan, IoError, IoErrorKind, JoinError,
    JoinErrorKind, JoinStats, Kpe, RecordId, RetryPolicy, SimDisk, SpatialJoin,
};
use storage::{AdmissionError, MemoryArbiter};

use crate::cache::{PartitionCache, Slot, Snapshot};
use crate::json::{escape, Json};
use crate::proto::{self, JoinRequest};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Total memory the arbiter may lease out at once, in bytes.
    pub budget_bytes: u64,
    /// Joins allowed to wait for a grant; one more is shed `overloaded`.
    pub max_queue: usize,
    /// Result pairs per streamed `{"pairs":[...]}` line.
    pub batch: usize,
    /// Partition-snapshot cache capacity (distinct config+input keys).
    pub cache_capacity: usize,
    /// Append a line-oriented server log here (soak artifact).
    pub log_path: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            budget_bytes: 64 << 20,
            max_queue: 16,
            batch: 256,
            cache_capacity: 16,
            log_path: None,
        }
    }
}

struct Inner {
    cfg: ServerConfig,
    arbiter: MemoryArbiter,
    datasets: Mutex<HashMap<String, Arc<Vec<Kpe>>>>,
    cache: PartitionCache,
    draining: AtomicBool,
    /// In-flight join count; the drain gate waits for it to reach zero.
    active: Mutex<u32>,
    active_cv: Condvar,
    joins_ok: AtomicU64,
    joins_failed: AtomicU64,
    joins_shed: AtomicU64,
    log: Mutex<Option<std::fs::File>>,
}

impl Inner {
    fn log(&self, msg: &str) {
        let mut g = self.log.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(f) = g.as_mut() {
            let _ = writeln!(f, "{msg}");
        }
    }
}

/// A configured-but-not-yet-listening server.
pub struct Server {
    inner: Arc<Inner>,
}

/// Handle to a running server: its bound address (ephemeral ports resolve
/// here) plus introspection for tests, and `join()` to wait for drain.
pub struct ServerHandle {
    addr: SocketAddr,
    thread: Option<JoinHandle<()>>,
    inner: Arc<Inner>,
}

impl Server {
    pub fn new(cfg: ServerConfig) -> Server {
        let log = cfg
            .log_path
            .as_ref()
            .and_then(|p| std::fs::File::create(p).ok());
        let inner = Inner {
            arbiter: MemoryArbiter::new(cfg.budget_bytes, cfg.max_queue),
            cache: PartitionCache::new(cfg.cache_capacity),
            datasets: Mutex::new(HashMap::new()),
            draining: AtomicBool::new(false),
            active: Mutex::new(0),
            active_cv: Condvar::new(),
            joins_ok: AtomicU64::new(0),
            joins_failed: AtomicU64::new(0),
            joins_shed: AtomicU64::new(0),
            log: Mutex::new(log),
            cfg,
        };
        Server {
            inner: Arc::new(inner),
        }
    }

    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop on a background thread.
    pub fn start(self, addr: &str) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        self.inner.log(&format!("listening on {local}"));
        let inner = Arc::clone(&self.inner);
        let thread = std::thread::spawn(move || accept_loop(inner, listener));
        Ok(ServerHandle {
            addr: local,
            thread: Some(thread),
            inner: self.inner,
        })
    }
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared arbiter — lets tests assert lease accounting directly.
    pub fn arbiter(&self) -> &MemoryArbiter {
        &self.inner.arbiter
    }

    pub fn cache_hits(&self) -> u64 {
        self.inner.cache.hits()
    }

    /// Snapshots the integrity gate evicted because their bytes rotted.
    pub fn cache_integrity_evictions(&self) -> u64 {
        self.inner.cache.integrity_evictions()
    }

    /// Chaos hook: corrupts every cached partition snapshot in place (the
    /// checksums are left stale, so the next lookup must catch it). Returns
    /// how many snapshots were corrupted.
    pub fn corrupt_cache(&self) -> usize {
        self.inner.cache.corrupt_all()
    }

    /// Waits for the server to drain and stop (a client must have sent
    /// `shutdown`, or [`ServerHandle::request_drain`] must have been called).
    pub fn join(mut self) {
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    /// Starts the drain without a client connection (used on signal paths).
    pub fn request_drain(&self) {
        self.inner.draining.store(true, Ordering::Release);
    }
}

fn accept_loop(inner: Arc<Inner>, listener: TcpListener) {
    let _ = listener.set_nonblocking(true);
    let mut sessions: Vec<JoinHandle<()>> = Vec::new();
    let mut session_socks: Vec<TcpStream> = Vec::new();
    let mut next_id = 0u64;
    loop {
        if inner.draining.load(Ordering::Acquire) {
            break;
        }
        match listener.accept() {
            Ok((stream, peer)) => {
                next_id += 1;
                let id = next_id;
                inner.log(&format!("session {id}: accepted {peer}"));
                let _ = stream.set_nodelay(true);
                if let Ok(clone) = stream.try_clone() {
                    session_socks.push(clone);
                }
                let inner2 = Arc::clone(&inner);
                sessions.push(std::thread::spawn(move || session(inner2, stream, id)));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                inner.log(&format!("accept error: {e}"));
                break;
            }
        }
    }
    // Drain: let every in-flight join finish streaming (new ones are
    // already refused), then hang up the idle sessions so their blocked
    // reads return, and reap the session threads.
    let mut active = inner.active.lock().unwrap_or_else(PoisonError::into_inner);
    while *active > 0 {
        active = inner
            .active_cv
            .wait(active)
            .unwrap_or_else(PoisonError::into_inner);
    }
    drop(active);
    for s in &session_socks {
        let _ = s.shutdown(Shutdown::Both);
    }
    for h in sessions {
        let _ = h.join();
    }
    inner.log("drained; server stopped");
}

fn session(inner: Arc<Inner>, stream: TcpStream, id: u64) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut out = stream;
    let reader = BufReader::new(read_half);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let parsed = match Json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                if !send(
                    &mut out,
                    &proto::error_line("bad_request", &format!("malformed JSON: {e}"), &[]),
                ) {
                    break;
                }
                continue;
            }
        };
        let cmd = parsed
            .get("cmd")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_owned();
        let keep_going = match cmd.as_str() {
            "ping" => send(&mut out, "{\"ok\":\"pong\"}"),
            "register" => handle_register(&inner, &mut out, &parsed),
            "list" => handle_list(&inner, &mut out),
            "metrics" => send(&mut out, &metrics_line(&inner)),
            "join" => handle_join(&inner, &mut out, &parsed, id),
            "shutdown" => {
                inner.log(&format!("session {id}: shutdown requested; draining"));
                inner.draining.store(true, Ordering::Release);
                let _ = send(&mut out, "{\"ok\":\"draining\"}");
                false
            }
            other => send(
                &mut out,
                &proto::error_line("bad_request", &format!("unknown cmd {other:?}"), &[]),
            ),
        };
        if !keep_going {
            break;
        }
    }
    inner.log(&format!("session {id}: closed"));
}

/// Writes one protocol line; `false` means the client is gone.
fn send(out: &mut TcpStream, line: &str) -> bool {
    out.write_all(line.as_bytes())
        .and_then(|()| out.write_all(b"\n"))
        .is_ok()
}

fn handle_register(inner: &Inner, out: &mut TcpStream, req: &Json) -> bool {
    let name = match req.get("name").and_then(Json::as_str) {
        Some(n) if !n.is_empty() => n.to_owned(),
        _ => {
            return send(
                out,
                &proto::error_line("bad_request", "register requires a non-empty \"name\"", &[]),
            )
        }
    };
    let source = req
        .get("source")
        .and_then(Json::as_str)
        .unwrap_or("uniform")
        .to_owned();
    let scale = req.get("scale").and_then(Json::as_f64).unwrap_or(0.01);
    if !(scale > 0.0 && scale <= 4.0 && scale.is_finite()) {
        return send(
            out,
            &proto::error_line("bad_request", "scale must be in (0, 4]", &[]),
        );
    }
    let seed = req.get("seed").and_then(Json::as_u64).unwrap_or(42);
    match proto::dataset(&source, scale, seed) {
        Ok(kpes) => {
            let records = kpes.len();
            inner
                .datasets
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .insert(name.clone(), Arc::new(kpes));
            inner.log(&format!("registered {name:?}: {records} records ({source})"));
            send(
                out,
                &format!(
                    "{{\"ok\":{{\"registered\":\"{}\",\"records\":{records}}}}}",
                    escape(&name)
                ),
            )
        }
        Err(e) => send(out, &proto::error_line("bad_request", &e, &[])),
    }
}

fn handle_list(inner: &Inner, out: &mut TcpStream) -> bool {
    let mut entries: Vec<(String, usize)> = inner
        .datasets
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .map(|(name, kpes)| (name.clone(), kpes.len()))
        .collect();
    entries.sort();
    let body = entries
        .iter()
        .map(|(name, records)| format!("{{\"name\":\"{}\",\"records\":{records}}}", escape(name)))
        .collect::<Vec<_>>()
        .join(",");
    send(out, &format!("{{\"ok\":{{\"datasets\":[{body}]}}}}"))
}

fn metrics_line(inner: &Inner) -> String {
    let s = inner.arbiter.snapshot();
    let active = *inner.active.lock().unwrap_or_else(PoisonError::into_inner);
    format!(
        concat!(
            "{{\"ok\":{{\"arbiter\":{{\"budget_bytes\":{},\"leased_bytes\":{},",
            "\"active_leases\":{},\"queued\":{},\"admitted\":{},",
            "\"rejected_overloaded\":{},\"rejected_too_large\":{},",
            "\"peak_leased_bytes\":{}}},",
            "\"cache\":{{\"entries\":{},\"hits\":{},\"misses\":{},",
            "\"integrity_evictions\":{}}},",
            "\"joins\":{{\"ok\":{},\"failed\":{},\"shed\":{},\"active\":{}}},",
            "\"draining\":{}}}}}"
        ),
        s.budget_bytes,
        s.leased_bytes,
        s.active_leases,
        s.queued,
        s.admitted,
        s.rejected_overloaded,
        s.rejected_too_large,
        s.peak_leased_bytes,
        inner.cache.len(),
        inner.cache.hits(),
        inner.cache.misses(),
        inner.cache.integrity_evictions(),
        inner.joins_ok.load(Ordering::Relaxed),
        inner.joins_failed.load(Ordering::Relaxed),
        inner.joins_shed.load(Ordering::Relaxed),
        active,
        inner.draining.load(Ordering::Acquire),
    )
}

/// How a join request ended, for the server-level counters.
enum Outcome {
    Ok,
    Failed,
    Shed,
    Disconnected,
}

fn handle_join(inner: &Arc<Inner>, out: &mut TcpStream, parsed: &Json, sid: u64) -> bool {
    let mut jr = match JoinRequest::from_json(parsed) {
        Ok(jr) => jr,
        Err(e) => return send(out, &proto::error_line("bad_request", &e, &[])),
    };
    let (left, right) = {
        let g = inner.datasets.lock().unwrap_or_else(PoisonError::into_inner);
        match (g.get(&jr.left).cloned(), g.get(&jr.right).cloned()) {
            (Some(l), Some(r)) => (l, r),
            (l, _) => {
                let missing = if l.is_none() { &jr.left } else { &jr.right };
                return send(
                    out,
                    &proto::error_line(
                        "unknown_dataset",
                        &format!("no dataset {missing:?} registered"),
                        &[],
                    ),
                );
            }
        }
    };
    let Some(_guard) = JoinGuard::enter(inner) else {
        return send(
            out,
            &proto::error_line("draining", "server is shutting down", &[]),
        );
    };
    if jr.plan {
        // Cost-based plan selection over the service's streamable candidate
        // space: profile the resolved datasets, rank, and rewrite the
        // request as if the client had asked for the winner explicitly.
        let planner = spatialjoin::estimate::Planner::new(jr.mem_bytes)
            .with_disk_model(DiskModel {
                channels: jr.channels,
                ..DiskModel::default()
            })
            .with_space(spatialjoin::estimate::PlanSpace::Streamable);
        let plan = planner.plan(
            &spatialjoin::estimate::DatasetProfile::build(&left),
            &spatialjoin::estimate::DatasetProfile::build(&right),
        );
        let choice = plan.chosen().choice;
        inner.log(&format!(
            "session {sid}: plan auto chose {}",
            choice.describe()
        ));
        jr.algo = choice.cli_name().to_owned();
        jr.chosen_choice = Some(choice);
    }
    let jr = jr;
    inner.log(&format!(
        "session {sid}: join {}x{} algo={} mem={}B reuse={} crash={:?}",
        jr.left, jr.right, jr.algo, jr.mem_bytes, jr.reuse, jr.crash
    ));
    // The exec operator path covers plain streaming; anything touching
    // durable runs, fault injection or the test hooks goes through a
    // dedicated worker so its panics and its lease are contained here.
    let special = jr.reuse
        || jr.faults.is_some()
        || jr.crash.is_some()
        || jr.panic_after.is_some()
        || jr.hold_ms.is_some();
    let outcome = if special {
        run_special(inner, out, &jr, &left, &right)
    } else {
        run_streaming(inner, out, &jr, &left, &right)
    };
    match outcome {
        Outcome::Ok => {
            inner.joins_ok.fetch_add(1, Ordering::Relaxed);
            true
        }
        Outcome::Failed => {
            inner.joins_failed.fetch_add(1, Ordering::Relaxed);
            true
        }
        Outcome::Shed => {
            inner.joins_shed.fetch_add(1, Ordering::Relaxed);
            true
        }
        Outcome::Disconnected => {
            inner.log(&format!("session {sid}: client left mid-join; cancelled"));
            inner.joins_failed.fetch_add(1, Ordering::Relaxed);
            false
        }
    }
}

/// RAII in-flight counter; the accept loop's drain waits on it.
struct JoinGuard<'a> {
    inner: &'a Inner,
}

impl<'a> JoinGuard<'a> {
    fn enter(inner: &'a Inner) -> Option<JoinGuard<'a>> {
        let mut g = inner.active.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.draining.load(Ordering::Acquire) {
            return None;
        }
        *g += 1;
        Some(JoinGuard { inner })
    }
}

impl Drop for JoinGuard<'_> {
    fn drop(&mut self) {
        let mut g = self
            .inner
            .active
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *g -= 1;
        drop(g);
        self.inner.active_cv.notify_all();
    }
}

/// Batches result pairs into `{"pairs":[...]}` lines, honouring `limit`
/// (pairs past it are counted by the join but not sent).
struct Emitter<'a> {
    out: &'a mut TcpStream,
    batch: Vec<(u64, u64)>,
    cap: usize,
    limit: Option<u64>,
    sent: u64,
    alive: bool,
}

impl<'a> Emitter<'a> {
    fn new(out: &'a mut TcpStream, cap: usize, limit: Option<u64>) -> Emitter<'a> {
        Emitter {
            out,
            batch: Vec::with_capacity(cap.clamp(1, 4096)),
            cap: cap.clamp(1, 4096),
            limit,
            sent: 0,
            alive: true,
        }
    }

    /// `false` once the client is gone.
    fn pair(&mut self, a: u64, b: u64) -> bool {
        if !self.alive {
            return false;
        }
        if self.limit.is_some_and(|l| self.sent >= l) {
            return true;
        }
        self.batch.push((a, b));
        self.sent += 1;
        if self.batch.len() >= self.cap {
            self.flush()
        } else {
            true
        }
    }

    /// Writes a terminal (non-pair) line through the same socket borrow.
    fn send_line(&mut self, line: &str) -> bool {
        if !self.alive {
            return false;
        }
        self.alive = send(self.out, line);
        self.alive
    }

    fn flush(&mut self) -> bool {
        if !self.alive {
            return false;
        }
        if self.batch.is_empty() {
            return true;
        }
        let mut line = String::with_capacity(self.batch.len() * 14 + 12);
        line.push_str("{\"pairs\":[");
        for (i, (a, b)) in self.batch.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push('[');
            line.push_str(&a.to_string());
            line.push(',');
            line.push_str(&b.to_string());
            line.push(']');
        }
        line.push_str("]}");
        self.batch.clear();
        self.alive = send(self.out, &line);
        self.alive
    }
}

/// Plain streaming join through [`exec::SpatialJoinOp`]: the operator
/// leases from the arbiter before spawning its worker, pipelines first
/// results, and contains worker panics.
fn run_streaming(
    inner: &Arc<Inner>,
    out: &mut TcpStream,
    jr: &JoinRequest,
    left: &Arc<Vec<Kpe>>,
    right: &Arc<Vec<Kpe>>,
) -> Outcome {
    // A planner-selected choice carries knobs (tile count, buffer split)
    // the algorithm name alone cannot; materialise it directly.
    let planned = jr
        .chosen_choice
        .as_ref()
        .and_then(exec::JoinAlgorithm::from_choice)
        .map(|a| a.with_threads(jr.threads));
    let exec_algo = match planned {
        Some(a) => a,
        None => {
            let algo = match proto::algorithm(&jr.algo, jr.mem_bytes, jr.threads) {
                Ok(a) => a,
                Err(e) => {
                    let _ = send(out, &proto::error_line("bad_request", &e, &[]));
                    return Outcome::Failed;
                }
            };
            match algo {
                Algorithm::Pbsm(cfg) => exec::JoinAlgorithm::Pbsm(cfg),
                Algorithm::S3j(cfg) => exec::JoinAlgorithm::S3j(cfg),
                _ => {
                    let _ = send(
                        out,
                        &proto::error_line("unsupported", "algorithm cannot stream", &[]),
                    );
                    return Outcome::Failed;
                }
            }
        }
    };
    let model = DiskModel {
        channels: jr.channels,
        ..DiskModel::default()
    };
    let token = CancelToken::new();
    let mut op = SpatialJoinOp::new(
        KpeScan::new(left.as_ref().clone()),
        KpeScan::new(right.as_ref().clone()),
        exec_algo,
        SimDisk::new(model),
    )
    .with_admission(inner.arbiter.clone())
    .with_cancel(token.clone())
    .with_pipeline_depth(inner.cfg.batch.max(64));
    if let Some(d) = jr.deadline {
        op = op.with_deadline(d);
    }
    op.open();

    let mut emitter = Emitter::new(out, inner.cfg.batch, jr.limit);
    let mut error: Option<JoinOpError> = None;
    while let Some(item) = op.next() {
        match item {
            Ok((a, b)) => {
                if !emitter.pair(a.0, b.0) {
                    // Client went away: close() trips the token, drops the
                    // channel and joins the worker; the lease drops with it.
                    op.close();
                    return Outcome::Disconnected;
                }
            }
            Err(e) => {
                error = Some(e);
                break;
            }
        }
    }
    op.close();
    match error {
        Some(e) => {
            // Pairs already streamed before the error stay observable —
            // same contract as an interrupted durable run.
            let _ = emitter.flush();
            let (line, outcome) = op_error_response(&e);
            if send(out, &line) {
                outcome
            } else {
                Outcome::Disconnected
            }
        }
        None => {
            if !emitter.flush() {
                return Outcome::Disconnected;
            }
            let Some(stats) = op.stats().map(op_stats_to_join) else {
                let _ = emitter
                    .send_line(&proto::error_line("io", "join finished without statistics", &[]));
                return Outcome::Failed;
            };
            let line = done_line(&stats, jr, false, emitter.sent);
            if emitter.send_line(&line) {
                Outcome::Ok
            } else {
                Outcome::Disconnected
            }
        }
    }
}

fn op_stats_to_join(stats: exec::OpStats) -> JoinStats {
    match stats {
        exec::OpStats::Pbsm(s) => JoinStats::Pbsm(s),
        exec::OpStats::S3j(s) => JoinStats::S3j(s),
    }
}

/// Worker → session messages on the special (durable/fault/hook) path.
enum Msg {
    Pair(u64, u64),
    Done(Box<JoinStats>, bool),
    Fail(Box<JoinError>),
    Panicked(String),
}

/// Durable, fault-injected, cached and test-hook joins: the session thread
/// leases explicitly, then confines the join to a worker whose panics are
/// caught and whose lease is released by `Drop` on every exit path.
fn run_special(
    inner: &Arc<Inner>,
    out: &mut TcpStream,
    jr: &JoinRequest,
    left: &Arc<Vec<Kpe>>,
    right: &Arc<Vec<Kpe>>,
) -> Outcome {
    let token = CancelToken::new();
    let lease = match inner.arbiter.lease(jr.mem_bytes as u64, Some(&token)) {
        Ok(lease) => lease,
        Err(e) => {
            let (line, outcome) = admission_response(&e);
            let _ = send(out, &line);
            return outcome;
        }
    };
    let model = DiskModel {
        channels: jr.channels,
        ..DiskModel::default()
    };
    let (tx, rx) = mpsc::sync_channel::<Msg>(inner.cfg.batch.clamp(16, 4096));
    let worker = {
        let inner = Arc::clone(inner);
        let jr = jr.clone();
        let (left, right) = (Arc::clone(left), Arc::clone(right));
        let token = token.clone();
        let tx_final = tx;
        std::thread::spawn(move || {
            // Held for the worker's whole life: completion, typed error and
            // panic all release the grant via Drop.
            let _lease = lease;
            if let Some(ms) = jr.hold_ms {
                std::thread::sleep(Duration::from_millis(ms.min(60_000)));
            }
            let tx = tx_final.clone();
            let result = catch_unwind(AssertUnwindSafe(|| {
                run_special_join(&inner, &jr, &left, &right, model, &token, &tx)
            }));
            let terminal = match result {
                Ok(Ok((stats, cache_hit))) => Msg::Done(Box::new(stats), cache_hit),
                Ok(Err(e)) => Msg::Fail(Box::new(e)),
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_owned())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "worker panicked".to_owned());
                    Msg::Panicked(msg)
                }
            };
            let _ = tx_final.send(terminal);
        })
    };

    let mut emitter = Emitter::new(out, inner.cfg.batch, jr.limit);
    let mut terminal = None;
    for msg in rx.iter() {
        match msg {
            Msg::Pair(a, b) => {
                if !emitter.pair(a, b) {
                    token.cancel();
                    break;
                }
            }
            other => {
                terminal = Some(other);
                break;
            }
        }
    }
    // Dropping the receiver unblocks a worker stuck on a full channel; the
    // cancel token stops it at the next partition boundary.
    drop(rx);
    let _ = worker.join();
    let Some(terminal) = terminal else {
        return Outcome::Disconnected;
    };
    match terminal {
        Msg::Done(stats, cache_hit) => {
            if !emitter.flush() {
                return Outcome::Disconnected;
            }
            let line = done_line(&stats, jr, cache_hit, emitter.sent);
            if emitter.send_line(&line) {
                Outcome::Ok
            } else {
                Outcome::Disconnected
            }
        }
        Msg::Fail(e) => {
            let _ = emitter.flush();
            let (line, outcome) = join_error_response(&e);
            if send(out, &line) {
                outcome
            } else {
                Outcome::Disconnected
            }
        }
        Msg::Panicked(msg) => {
            let _ = emitter.flush();
            if send(
                out,
                &proto::error_line("panicked", &format!("worker panicked: {msg}"), &[]),
            ) {
                Outcome::Failed
            } else {
                Outcome::Disconnected
            }
        }
        Msg::Pair(..) => unreachable!("pairs are consumed in the loop"),
    }
}

fn run_special_join(
    inner: &Inner,
    jr: &JoinRequest,
    left: &[Kpe],
    right: &[Kpe],
    model: DiskModel,
    token: &CancelToken,
    tx: &mpsc::SyncSender<Msg>,
) -> Result<(JoinStats, bool), JoinError> {
    let algo = match &jr.chosen_choice {
        Some(choice) => Algorithm::from_choice(choice).with_threads(jr.threads),
        None => proto::algorithm(&jr.algo, jr.mem_bytes, jr.threads)
            .map_err(|_| JoinError::new("setup", IoError::unsupported()))?,
    };
    let mut join = SpatialJoin::new(algo)
        .with_disk_model(model)
        .with_cancel(token.clone());
    if let Some(d) = jr.deadline {
        join = join.with_deadline(d);
    }

    let mut emitted = 0u64;
    let panic_after = jr.panic_after;
    let mut emit = |a: RecordId, b: RecordId| {
        emitted += 1;
        if Some(emitted) == panic_after {
            panic!("panic_after test hook fired at pair {emitted}");
        }
        // A send to a hung-up session is fine: the token is already
        // tripped and the join stops at its next cancellation check.
        let _ = tx.send(Msg::Pair(a.0, b.0));
    };

    if let Some(point) = jr.crash {
        // A durable run on a scratch disk with the requested crash point
        // armed — the service-level equivalent of `sjoin --crash`.
        let fp = join.fingerprint(left, right);
        let disk = SimDisk::new(model).with_faults(
            FaultPlan::crash_only(fp, point),
            RetryPolicy::default(),
        );
        return join
            .try_run_durable_with(&disk, left, right, fp, &mut emit)
            .map(|s| (s, false));
    }
    if jr.reuse {
        return run_cached(inner, &join, left, right, model, &mut emit);
    }
    if let Some(seed) = jr.faults {
        // Persistent damage exercises the quarantine-recompute paths end to
        // end: the join must still deliver the exact clean result set.
        join = join.with_faults(if jr.faults_persistent {
            FaultPlan::persistent(seed)
        } else {
            FaultPlan::recoverable(seed)
        });
    }
    join.try_run_with(left, right, &mut emit).map(|s| (s, false))
}

/// Serves a `reuse` join from the partition-file cache (warming it on the
/// first miss). See [`crate::cache`] for why the snapshot is taken at an
/// injected `mid-partition:0` crash and served by resuming past it.
fn run_cached(
    inner: &Inner,
    join: &SpatialJoin,
    left: &[Kpe],
    right: &[Kpe],
    model: DiskModel,
    emit: &mut dyn FnMut(RecordId, RecordId),
) -> Result<(JoinStats, bool), JoinError> {
    let fp = join.fingerprint(left, right);
    let (snapshot, cache_hit) = match inner.cache.get(fp) {
        Some(Slot::Ready(snap)) => (snap, true),
        Some(Slot::Uncacheable) => {
            return join.try_run_with(left, right, emit).map(|s| (s, false));
        }
        None => {
            let warm = SimDisk::new(model).with_faults(
                FaultPlan::crash_only(fp, CrashPoint::MidPartition(0)),
                RetryPolicy::default(),
            );
            match join.try_run_durable_with(&warm, left, right, fp, &mut |_, _| {}) {
                Err(e) if matches!(e.kind, JoinErrorKind::Crashed(_)) => {
                    let snap = Snapshot::new(warm.export_files());
                    inner.cache.insert(fp, Slot::Ready(snap.clone()));
                    (snap, false)
                }
                Ok(_) => {
                    // The join finished before its first checkpoint (too
                    // small for the crash to fire): there is no partitioned-
                    // but-unjoined state to snapshot. Remember that and
                    // serve plainly.
                    inner.cache.insert(fp, Slot::Uncacheable);
                    return join.try_run_with(left, right, emit).map(|s| (s, false));
                }
                Err(e) => return Err(e),
            }
        }
    };
    let disk = SimDisk::new(model);
    disk.restore_files(snapshot.bytes())
        .map_err(|io| JoinError::new("setup", io))?;
    join.try_run_durable_with(&disk, left, right, fp, emit)
        .map(|s| (s, cache_hit))
}

fn admission_response(e: &AdmissionError) -> (String, Outcome) {
    match e {
        AdmissionError::Overloaded { retry_after } => (
            proto::error_line(
                "overloaded",
                &e.to_string(),
                &[("retry_after", format!("{retry_after:?}"))],
            ),
            Outcome::Shed,
        ),
        AdmissionError::TooLarge { requested, budget } => (
            proto::error_line(
                "too_large",
                &e.to_string(),
                &[
                    ("requested", requested.to_string()),
                    ("budget", budget.to_string()),
                ],
            ),
            Outcome::Shed,
        ),
        AdmissionError::Cancelled => (
            proto::error_line("cancelled", &e.to_string(), &[]),
            Outcome::Failed,
        ),
    }
}

fn op_error_response(e: &JoinOpError) -> (String, Outcome) {
    match e {
        JoinOpError::Admission(a) => admission_response(a),
        JoinOpError::Join(j) => join_error_response(j),
        JoinOpError::WorkerPanicked(msg) => (
            proto::error_line("panicked", &format!("worker panicked: {msg}"), &[]),
            Outcome::Failed,
        ),
    }
}

fn join_error_response(e: &JoinError) -> (String, Outcome) {
    let mut extra = vec![
        ("resumable", e.is_resumable().to_string()),
        ("phase", format!("\"{}\"", escape(e.phase))),
    ];
    let kind = match &e.kind {
        JoinErrorKind::DeadlineExceeded { elapsed, deadline } => {
            extra.push(("elapsed", format!("{elapsed:?}")));
            extra.push(("deadline", format!("{deadline:?}")));
            "deadline"
        }
        JoinErrorKind::Cancelled => "cancelled",
        JoinErrorKind::Crashed(p) => {
            extra.push(("crash_point", format!("\"{}\"", escape(&p.spec()))));
            "crashed"
        }
        JoinErrorKind::Io(io) if io.kind == IoErrorKind::Unsupported => "unsupported",
        JoinErrorKind::Io(_) | JoinErrorKind::RequeueExhausted { .. } => "io",
    };
    (
        proto::error_line(kind, &e.to_string(), &extra),
        Outcome::Failed,
    )
}

fn done_line(stats: &JoinStats, jr: &JoinRequest, cache_hit: bool, pairs_sent: u64) -> String {
    let mut line = format!(
        concat!(
            "{{\"done\":{{\"results\":{},\"duplicates\":{},\"candidates\":{},",
            "\"total_seconds\":{:?},\"first_result_seconds\":{},",
            "\"cache_hit\":{},\"pairs_sent\":{}"
        ),
        stats.results(),
        stats.duplicates(),
        stats
            .candidates()
            .map_or_else(|| "null".to_owned(), |c| c.to_string()),
        stats.total_seconds(),
        stats
            .first_result_seconds()
            .map_or_else(|| "null".to_owned(), |s| format!("{s:?}")),
        cache_hit,
        pairs_sent,
    );
    if let Some(choice) = &jr.chosen_choice {
        line.push_str(&format!(",\"plan\":\"{}\"", escape(&choice.describe())));
    }
    if jr.metrics {
        let mut report = stats.metrics_report(&jr.algo, jr.threads);
        report.counters.partition_cache_hits = u64::from(cache_hit);
        match report.reconcile() {
            // The report's canonical form is pretty-printed; a protocol
            // line must stay single-line, and stripping newlines keeps it
            // valid JSON (the indentation collapses into spaces).
            Ok(()) => {
                let compact: String = report.to_json().replace('\n', " ");
                line.push_str(",\"metrics\":");
                line.push_str(&compact);
            }
            Err(e) => {
                line.push_str(&format!(
                    ",\"metrics_error\":\"{}\"",
                    escape(&e.to_string())
                ));
            }
        }
    }
    line.push_str("}}");
    line
}
