//! Minimal blocking client for the `sjoind` protocol — shared by the
//! integration tests and the soak driver, and small enough to be a
//! reference implementation of the wire format.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

use crate::json::Json;

/// One protocol connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// Everything a `join` command produced: the streamed pairs in arrival
/// order plus exactly one terminal object.
#[derive(Debug, Clone)]
pub struct JoinResponse {
    pub pairs: Vec<(u64, u64)>,
    /// The `"done"` object on success.
    pub done: Option<Json>,
    /// The `"error"` object on refusal / interruption / failure.
    pub error: Option<Json>,
}

impl JoinResponse {
    pub fn error_kind(&self) -> Option<&str> {
        self.error.as_ref()?.get("kind")?.as_str()
    }

    pub fn results(&self) -> Option<u64> {
        self.done.as_ref()?.get("results")?.as_u64()
    }
}

impl Client {
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Sends one raw protocol line.
    pub fn send(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Reads and parses one response line.
    pub fn recv(&mut self) -> io::Result<Json> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server hung up",
            ));
        }
        Json::parse(line.trim())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}")))
    }

    /// One-line request/response round trip (everything except `join`).
    pub fn request(&mut self, line: &str) -> io::Result<Json> {
        self.send(line)?;
        self.recv()
    }

    /// Sends a `join` line and collects the whole streamed response.
    pub fn join(&mut self, line: &str) -> io::Result<JoinResponse> {
        self.send(line)?;
        let mut resp = JoinResponse {
            pairs: Vec::new(),
            done: None,
            error: None,
        };
        loop {
            let v = self.recv()?;
            if let Some(batch) = v.get("pairs").and_then(Json::as_arr) {
                for pair in batch {
                    let Some([a, b]) = pair.as_arr().and_then(|p| <&[Json; 2]>::try_from(p).ok())
                    else {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "malformed pair in stream",
                        ));
                    };
                    match (a.as_u64(), b.as_u64()) {
                        (Some(a), Some(b)) => resp.pairs.push((a, b)),
                        _ => {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                "non-integer pair in stream",
                            ))
                        }
                    }
                }
            } else if let Some(done) = v.get("done") {
                resp.done = Some(done.clone());
                return Ok(resp);
            } else if let Some(err) = v.get("error") {
                resp.error = Some(err.clone());
                return Ok(resp);
            } else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected line in join stream: {v}"),
                ));
            }
        }
    }
}
