//! Minimal JSON value type, recursive-descent parser and compact emitter.
//!
//! The service protocol is newline-delimited JSON and the workspace is
//! offline (no serde); this module is the entire (de)serialisation layer.
//! Numbers are `f64` — protocol integers (record ids, counters) stay exact
//! up to 2^53, far beyond anything the suite produces in one response.

use std::fmt;

/// A parsed JSON value. Object keys keep insertion order (the emitter is
/// deterministic), duplicate keys keep the last occurrence on lookup.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document, requiring it to consume the whole input.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object member lookup (last occurrence wins); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    /// Compact single-line emission — exactly what a protocol line needs.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => write!(f, "{}", fmt_num(*n)),
            Json::Str(s) => write!(f, "\"{}\"", escape(s)),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Obj(members) => {
                write!(f, "{{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "\"{}\":{v}", escape(k))?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Formats a number the way the rest of the suite's JSON surfaces do:
/// integers without a fraction, everything else via `{:?}` (shortest
/// round-trippable form). Non-finite values degrade to `null` — JSON has no
/// NaN/Inf and a malformed protocol line would kill the session.
fn fmt_num(n: f64) -> String {
    if !n.is_finite() {
        return "null".to_owned();
    }
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else {
        format!("{n:?}")
    }
}

/// Escapes a string for embedding between JSON quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_owned())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".to_owned());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_owned());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: re-borrow the source slice so the
                    // bytes are validated as a unit.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "invalid utf8 in string".to_owned())?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, String> {
        let hex4 = |p: &mut Self| -> Result<u32, String> {
            if p.pos + 4 > p.bytes.len() {
                return Err("truncated \\u escape".to_owned());
            }
            let text = std::str::from_utf8(&p.bytes[p.pos..p.pos + 4])
                .map_err(|_| "non-utf8 \\u escape".to_owned())?;
            let v = u32::from_str_radix(text, 16).map_err(|_| format!("bad \\u{text}"))?;
            p.pos += 4;
            Ok(v)
        };
        let hi = hex4(self)?;
        // Surrogate pair: a high surrogate must be followed by \uDCxx.
        if (0xD800..0xDC00).contains(&hi) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = hex4(self)?;
                if (0xDC00..0xE000).contains(&lo) {
                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return Ok(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                }
            }
            return Ok('\u{FFFD}');
        }
        Ok(char::from_u32(hi).unwrap_or('\u{FFFD}'))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_protocol_shapes() {
        for line in [
            r#"{"cmd":"join","left":"a","right":"b","mem_mb":1.5,"reuse":true}"#,
            r#"{"pairs":[[1,2],[3,4]]}"#,
            r#"{"done":{"results":10,"first_result_seconds":null}}"#,
            r#"[]"#,
            r#"{}"#,
            r#""tab\tquote\"backslash\\""#,
        ] {
            let v = Json::parse(line).expect(line);
            let emitted = v.to_string();
            assert_eq!(Json::parse(&emitted).expect(&emitted), v, "{line}");
        }
    }

    #[test]
    fn lookup_and_scalars() {
        let v = Json::parse(r#"{"a":1,"b":"x","c":true,"d":null,"a":2}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(2)); // last wins
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("c").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("d"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::parse("-2.5").unwrap().as_f64(), Some(-2.5));
        assert_eq!(Json::parse("2.5").unwrap().as_u64(), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2", ""] {
            assert!(Json::parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn unicode_escapes_and_multibyte() {
        assert_eq!(
            Json::parse(r#""é café 😀""#).unwrap(),
            Json::Str("é café 😀".to_owned())
        );
        let v = Json::parse("\"héllo 世界\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo 世界"));
        let emitted = v.to_string();
        assert_eq!(Json::parse(&emitted).unwrap(), v);
    }

    #[test]
    fn integers_emit_without_fraction() {
        assert_eq!(Json::Num(10.0).to_string(), "10");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }
}
