//! Partition-file reuse across repeated joins of one registered dataset pair.
//!
//! A PBSM/S³J run spends its first phase partitioning both inputs to disk;
//! when the same config+input pair is joined repeatedly (the service's whole
//! reason to exist), that work is identical every time. The cache keys on
//! [`spatialjoin::SpatialJoin::fingerprint`] — the exact config+input hash
//! the crash-recovery layer uses to guard resumes — and stores a disk
//! snapshot from which a durable run *resumes past the partition phase*.
//!
//! Warming trick: run the join once on a scratch disk with an injected
//! [`storage::CrashPoint::MidPartition(0)`] crash. The "process" dies while
//! appending the very first journal record, so zero partitions are committed
//! but the manifest — which lists every partition file — is already
//! published. Snapshotting that disk captures exactly "partitioning done,
//! join not started". Serving a request restores the snapshot onto a fresh
//! disk and resumes: recovery truncates the torn journal tail, skips the
//! partition phase, and replays *all* partitions, so the resumed leg alone
//! emits the full solo-identical output (the exactly-once machinery of PR 4
//! is what makes the cached run bit-equal to a cold one).
//!
//! A join too small for the crash point to fire (it completes before the
//! first journal append) is marked [`Slot::Uncacheable`] and served by a
//! plain run forever after — restoring a *finished* run would "resume" into
//! an empty emission.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// One cache slot for a config+input fingerprint.
#[derive(Clone)]
pub enum Slot {
    /// Post-partition disk snapshot ([`storage::SimDisk::export_files`]).
    Ready(Arc<Vec<u8>>),
    /// The warm run finished before its first checkpoint — there is no
    /// "partitioned but unjoined" state to capture for this key.
    Uncacheable,
}

/// Bounded, thread-safe snapshot cache with hit/miss counters.
///
/// Eviction is FIFO over insertion order — the service's workloads re-join
/// a handful of registered pairs, so anything smarter buys nothing.
pub struct PartitionCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

struct Inner {
    slots: HashMap<u64, Slot>,
    order: Vec<u64>,
}

impl PartitionCache {
    pub fn new(capacity: usize) -> PartitionCache {
        PartitionCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                order: Vec::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up a fingerprint, counting a hit only for a `Ready` snapshot.
    /// `None` (counted as a miss) means the caller should warm the key;
    /// `Some(Uncacheable)` means don't bother trying again.
    pub fn get(&self, fp: u64) -> Option<Slot> {
        let g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        match g.slots.get(&fp) {
            Some(slot @ Slot::Ready(_)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(slot.clone())
            }
            Some(Slot::Uncacheable) => Some(Slot::Uncacheable),
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Installs a slot for `fp`, evicting the oldest entry at capacity.
    /// Concurrent misses may both warm and insert the same key — the
    /// snapshots are deterministic, so last-writer-wins is correct.
    pub fn insert(&self, fp: u64, slot: Slot) {
        let mut g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if g.slots.insert(fp, slot).is_none() {
            g.order.push(fp);
            if g.order.len() > self.capacity {
                let victim = g.order.remove(0);
                g.slots.remove(&victim);
            }
        }
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .slots
            .len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_counts() {
        let c = PartitionCache::new(4);
        assert!(c.get(7).is_none());
        c.insert(7, Slot::Ready(Arc::new(vec![1, 2, 3])));
        assert!(matches!(c.get(7), Some(Slot::Ready(_))));
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn uncacheable_is_remembered_but_never_a_hit() {
        let c = PartitionCache::new(4);
        c.insert(9, Slot::Uncacheable);
        assert!(matches!(c.get(9), Some(Slot::Uncacheable)));
        assert_eq!(c.hits(), 0);
    }

    #[test]
    fn evicts_oldest_at_capacity() {
        let c = PartitionCache::new(2);
        for fp in [1u64, 2, 3] {
            c.insert(fp, Slot::Ready(Arc::new(vec![fp as u8])));
        }
        assert_eq!(c.len(), 2);
        assert!(c.get(1).is_none(), "oldest entry should be gone");
        assert!(matches!(c.get(3), Some(Slot::Ready(_))));
    }

    #[test]
    fn reinsert_does_not_grow_order() {
        let c = PartitionCache::new(2);
        for _ in 0..10 {
            c.insert(5, Slot::Ready(Arc::new(vec![])));
        }
        c.insert(6, Slot::Ready(Arc::new(vec![])));
        assert_eq!(c.len(), 2);
        assert!(c.get(5).is_some() && c.get(6).is_some());
    }
}
